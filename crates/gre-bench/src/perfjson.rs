//! Versioned `BENCH_*.json` perf-trajectory reports.
//!
//! Every invocation of the `bench_trajectory` binary emits one report file
//! at the repo root describing a full backend × target × mix sweep, so the
//! performance trajectory of the codebase is persisted *in the repository*
//! alongside the code it measured. A report is self-describing:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "commit": "289eef7…",
//!   "config": { "keys": 200000, "ops": 200000, "threads": 8, … },
//!   "results": [
//!     { "backend": "ALEX+", "target": "direct", "mix": "read_only",
//!       "threads": 8, "ops": 200000, "throughput_ops_s": 1.2e7,
//!       "p50_us": 0.4, "p99_us": 1.9, "p999_us": 4.2,
//!       "mean_us": 0.5, "max_us": 120.0 }
//!   ]
//! }
//! ```
//!
//! The module is deliberately dependency-free: the writer hand-rolls JSON
//! (same idiom as [`heatmap`](crate::heatmap)) and [`Json::parse`] is a
//! small recursive-descent parser that round-trips everything the writer
//! emits, so CI can smoke-check an emitted file without any external crate.

use gre_core::ops::RequestKind;
use gre_workloads::driver::PhaseResult;

/// Version stamp of the report layout. Bump when a field is renamed,
/// removed, or changes meaning; adding fields is backward compatible.
pub const SCHEMA_VERSION: u64 = 1;

/// The serving paths a sweep must cover for [`smoke_check`] to pass.
pub const REQUIRED_TARGETS: [&str; 3] = ["direct", "pipeline", "session"];

/// One measured cell of the sweep: a backend serving one mix through one
/// target at a fixed client count.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Display name of the backend (e.g. `ALEX+`, `sharded(ALEX+,8)`).
    pub backend: String,
    /// Serving path: `direct`, `direct_batched`, `pipeline`, or `session`.
    pub target: String,
    /// Mix label, e.g. `read_only`, `ycsb_a`, `read_mostly`.
    pub mix: String,
    /// Closed-loop client threads.
    pub threads: usize,
    /// Completed operations.
    pub ops: u64,
    /// Completed operations per second of phase wall-clock.
    pub throughput_ops_s: f64,
    pub p50_us: f64,
    pub p99_us: f64,
    pub p999_us: f64,
    pub mean_us: f64,
    pub max_us: f64,
}

impl BenchResult {
    /// Build a result row from one executed phase, merging the latency
    /// histograms of every request kind (they are all measured from the
    /// op's intended send time, so merging keeps them comparable).
    pub fn from_phase(backend: &str, target: &str, mix: &str, phase: &PhaseResult) -> BenchResult {
        let hist = phase.latency.merged(&RequestKind::ALL);
        BenchResult {
            backend: backend.to_string(),
            target: target.to_string(),
            mix: mix.to_string(),
            threads: phase.threads,
            ops: phase.ops(),
            throughput_ops_s: phase.achieved_rate(),
            p50_us: hist.percentile(0.50) as f64 / 1e3,
            p99_us: hist.percentile(0.99) as f64 / 1e3,
            p999_us: hist.percentile(0.999) as f64 / 1e3,
            mean_us: hist.mean() / 1e3,
            max_us: hist.max() as f64 / 1e3,
        }
    }

    /// The fields that must be identical across two runs with the same
    /// seed and configuration — everything except wall-clock-derived
    /// numbers (throughput and the latency quantiles).
    pub fn identity(&self) -> (String, String, String, usize, u64) {
        (
            self.backend.clone(),
            self.target.clone(),
            self.mix.clone(),
            self.threads,
            self.ops,
        )
    }
}

/// A scalar-vs-batched comparison on the read-only mix: the same backend
/// driven through per-op `get` calls and through interleaved
/// [`get_batch`](gre_core::ConcurrentIndex::get_batch) lookups.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchedCompare {
    pub backend: String,
    /// Throughput of the scalar per-op `direct` run, ops/s.
    pub scalar_ops_s: f64,
    /// Throughput of the `direct_batched` run, ops/s.
    pub batched_ops_s: f64,
    /// `batched_ops_s / scalar_ops_s`.
    pub speedup: f64,
}

/// The sweep configuration a report was produced under.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchConfig {
    /// Bulk-loaded keys.
    pub keys: usize,
    /// Operations per phase.
    pub ops: u64,
    /// Closed-loop client threads.
    pub threads: usize,
    /// Shard count of the sharded composite (and pipeline/session targets).
    pub shards: usize,
    /// Scenario seed; two runs with the same seed offer identical traffic.
    pub seed: u64,
    /// Whether the sweep ran in `--quick` mode.
    pub quick: bool,
    /// Scalar-vs-batched lookup comparisons recorded by this sweep.
    pub batched_compare: Vec<BatchedCompare>,
}

/// A full perf-trajectory report: version stamp, the commit it measured,
/// the sweep configuration, and one [`BenchResult`] per cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    pub schema_version: u64,
    /// `git rev-parse HEAD` at run time (`unknown` outside a work tree).
    pub commit: String,
    pub config: BenchConfig,
    pub results: Vec<BenchResult>,
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Escape a string for embedding in JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` as a JSON number; non-finite values become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        String::from("null")
    }
}

impl BatchedCompare {
    fn to_json(&self) -> String {
        format!(
            "{{\"backend\": {}, \"scalar_ops_s\": {}, \"batched_ops_s\": {}, \"speedup\": {}}}",
            json_string(&self.backend),
            json_f64(self.scalar_ops_s),
            json_f64(self.batched_ops_s),
            json_f64(self.speedup),
        )
    }
}

impl BenchResult {
    fn to_json(&self) -> String {
        format!(
            "{{\"backend\": {}, \"target\": {}, \"mix\": {}, \"threads\": {}, \"ops\": {}, \
             \"throughput_ops_s\": {}, \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \
             \"mean_us\": {}, \"max_us\": {}}}",
            json_string(&self.backend),
            json_string(&self.target),
            json_string(&self.mix),
            self.threads,
            self.ops,
            json_f64(self.throughput_ops_s),
            json_f64(self.p50_us),
            json_f64(self.p99_us),
            json_f64(self.p999_us),
            json_f64(self.mean_us),
            json_f64(self.max_us),
        )
    }
}

impl BenchReport {
    /// Serialize the report; one result object per line so the committed
    /// trajectory file diffs cell-by-cell.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        out.push_str(&format!("  \"commit\": {},\n", json_string(&self.commit)));
        out.push_str("  \"config\": {\n");
        out.push_str(&format!("    \"keys\": {},\n", self.config.keys));
        out.push_str(&format!("    \"ops\": {},\n", self.config.ops));
        out.push_str(&format!("    \"threads\": {},\n", self.config.threads));
        out.push_str(&format!("    \"shards\": {},\n", self.config.shards));
        out.push_str(&format!("    \"seed\": {},\n", self.config.seed));
        out.push_str(&format!("    \"quick\": {},\n", self.config.quick));
        out.push_str("    \"batched_compare\": [\n");
        for (i, c) in self.config.batched_compare.iter().enumerate() {
            let sep = if i + 1 < self.config.batched_compare.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!("      {}{sep}\n", c.to_json()));
        }
        out.push_str("    ]\n");
        out.push_str("  },\n");
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let sep = if i + 1 < self.results.len() { "," } else { "" };
            out.push_str(&format!("    {}{sep}\n", r.to_json()));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// A parsed JSON value. Object member order is preserved (a `Vec`, not a
/// map) so round-tripping is exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a JSON document. Accepts exactly the grammar the writer above
    /// produces (standard JSON minus exotic number forms like `1e400`).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(String::from("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogates can't be built with from_u32; the
                            // writer never emits them, so map to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 scalar (input is a &str, so
                    // the boundary math is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| String::from("bad utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(String::from("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| String::from("bad \\u escape"))?;
        let code = u32::from_str_radix(s, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

// ---------------------------------------------------------------------------
// Report <- Json
// ---------------------------------------------------------------------------

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn str_field(obj: &Json, key: &str) -> Result<String, String> {
    field(obj, key)?
        .as_str()
        .map(String::from)
        .ok_or_else(|| format!("field `{key}` is not a string"))
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, String> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| format!("field `{key}` is not a non-negative integer"))
}

fn f64_field(obj: &Json, key: &str) -> Result<f64, String> {
    field(obj, key)?
        .as_f64()
        .ok_or_else(|| format!("field `{key}` is not a number"))
}

impl BenchReport {
    /// Parse a report back out of its JSON serialization.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let root = Json::parse(text)?;
        let config = field(&root, "config")?;
        let mut batched_compare = Vec::new();
        for c in field(config, "batched_compare")?
            .as_arr()
            .ok_or("`batched_compare` is not an array")?
        {
            batched_compare.push(BatchedCompare {
                backend: str_field(c, "backend")?,
                scalar_ops_s: f64_field(c, "scalar_ops_s")?,
                batched_ops_s: f64_field(c, "batched_ops_s")?,
                speedup: f64_field(c, "speedup")?,
            });
        }
        let mut results = Vec::new();
        for r in field(&root, "results")?
            .as_arr()
            .ok_or("`results` is not an array")?
        {
            results.push(BenchResult {
                backend: str_field(r, "backend")?,
                target: str_field(r, "target")?,
                mix: str_field(r, "mix")?,
                threads: u64_field(r, "threads")? as usize,
                ops: u64_field(r, "ops")?,
                throughput_ops_s: f64_field(r, "throughput_ops_s")?,
                p50_us: f64_field(r, "p50_us")?,
                p99_us: f64_field(r, "p99_us")?,
                p999_us: f64_field(r, "p999_us")?,
                mean_us: f64_field(r, "mean_us")?,
                max_us: f64_field(r, "max_us")?,
            });
        }
        Ok(BenchReport {
            schema_version: u64_field(&root, "schema_version")?,
            commit: str_field(&root, "commit")?,
            config: BenchConfig {
                keys: u64_field(config, "keys")? as usize,
                ops: u64_field(config, "ops")?,
                threads: u64_field(config, "threads")? as usize,
                shards: u64_field(config, "shards")? as usize,
                seed: u64_field(config, "seed")?,
                quick: field(config, "quick")?
                    .as_bool()
                    .ok_or("`quick` is not a bool")?,
                batched_compare,
            },
            results,
        })
    }
}

// ---------------------------------------------------------------------------
// Smoke check
// ---------------------------------------------------------------------------

/// Validate the invariants CI asserts on every emitted trajectory file:
/// the schema version matches, every serving path in [`REQUIRED_TARGETS`]
/// has at least one result, and every latency/throughput field is finite.
pub fn smoke_check(report: &BenchReport) -> Result<(), String> {
    if report.schema_version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {} != expected {SCHEMA_VERSION}",
            report.schema_version
        ));
    }
    if report.commit.is_empty() {
        return Err(String::from("empty commit"));
    }
    if report.results.is_empty() {
        return Err(String::from("no results"));
    }
    for target in REQUIRED_TARGETS {
        if !report.results.iter().any(|r| r.target == target) {
            return Err(format!("no result for target `{target}`"));
        }
    }
    for r in &report.results {
        let cell = format!("{}/{}/{}", r.backend, r.target, r.mix);
        if r.ops == 0 {
            return Err(format!("{cell}: zero completed ops"));
        }
        for (name, v) in [
            ("throughput_ops_s", r.throughput_ops_s),
            ("p50_us", r.p50_us),
            ("p99_us", r.p99_us),
            ("p999_us", r.p999_us),
            ("mean_us", r.mean_us),
            ("max_us", r.max_us),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!(
                    "{cell}: `{name}` = {v} is not a finite non-negative number"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            commit: String::from("abc1234"),
            config: BenchConfig {
                keys: 20_000,
                ops: 20_000,
                threads: 2,
                shards: 8,
                seed: 42,
                quick: true,
                batched_compare: vec![BatchedCompare {
                    backend: String::from("ALEX+"),
                    scalar_ops_s: 1.0e6,
                    batched_ops_s: 1.5e6,
                    speedup: 1.5,
                }],
            },
            results: vec![
                BenchResult {
                    backend: String::from("ALEX+"),
                    target: String::from("direct"),
                    mix: String::from("read_only"),
                    threads: 2,
                    ops: 20_000,
                    throughput_ops_s: 1.0e6,
                    p50_us: 0.5,
                    p99_us: 2.25,
                    p999_us: 4.0,
                    mean_us: 0.75,
                    max_us: 100.0,
                },
                BenchResult {
                    backend: String::from("ALEX+"),
                    target: String::from("pipeline"),
                    mix: String::from("read_only"),
                    threads: 2,
                    ops: 20_000,
                    throughput_ops_s: 2.0e6,
                    p50_us: 200.0,
                    p99_us: 400.0,
                    p999_us: 500.0,
                    mean_us: 220.0,
                    max_us: 900.0,
                },
                BenchResult {
                    backend: String::from("ALEX+"),
                    target: String::from("session"),
                    mix: String::from("ycsb_a"),
                    threads: 2,
                    ops: 20_000,
                    throughput_ops_s: 3.0e6,
                    p50_us: 150.0,
                    p99_us: 300.0,
                    p999_us: 450.0,
                    mean_us: 180.0,
                    max_us: 800.0,
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_through_the_parser() {
        let report = sample_report();
        let text = report.to_json();
        let back = BenchReport::from_json(&text).expect("parse emitted JSON");
        assert_eq!(back, report);
        // And the re-serialization is byte-identical.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn smoke_check_accepts_a_complete_report() {
        assert_eq!(smoke_check(&sample_report()), Ok(()));
    }

    #[test]
    fn smoke_check_rejects_broken_reports() {
        let mut r = sample_report();
        r.schema_version = 99;
        assert!(smoke_check(&r).unwrap_err().contains("schema_version"));

        let mut r = sample_report();
        r.results.retain(|x| x.target != "session");
        assert!(smoke_check(&r).unwrap_err().contains("session"));

        let mut r = sample_report();
        r.results[0].p99_us = f64::NAN;
        assert!(smoke_check(&r).unwrap_err().contains("p99_us"));

        let mut r = sample_report();
        r.results[1].ops = 0;
        assert!(smoke_check(&r).unwrap_err().contains("zero completed ops"));

        let mut r = sample_report();
        r.results.clear();
        assert!(smoke_check(&r).unwrap_err().contains("no results"));
    }

    #[test]
    fn parser_handles_escapes_and_structure() {
        let v = Json::parse(
            r#"{"a": "x\n\"y\\zA", "b": [1, -2.5, 3e2], "c": {"d": null, "e": true, "f": false}}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_str(), Some("x\n\"y\\zA"));
        let b = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(b[0].as_f64(), Some(1.0));
        assert_eq!(b[1].as_f64(), Some(-2.5));
        assert_eq!(b[2].as_f64(), Some(300.0));
        let c = v.get("c").unwrap();
        assert_eq!(c.get("d"), Some(&Json::Null));
        assert_eq!(c.get("e").unwrap().as_bool(), Some(true));
        assert_eq!(c.get("f").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn non_finite_latencies_serialize_as_null_and_fail_parsing_as_numbers() {
        let mut report = sample_report();
        report.results[0].max_us = f64::INFINITY;
        let text = report.to_json();
        assert!(text.contains("\"max_us\": null"));
        // `from_json` refuses the null where a number is required — a
        // report with non-finite latencies can't round-trip silently.
        assert!(BenchReport::from_json(&text)
            .unwrap_err()
            .contains("max_us"));
    }
}
