//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, API-compatible implementation: a deterministic xoshiro256**
//! generator behind [`rngs::StdRng`], the [`Rng`]/[`SeedableRng`] trait
//! surface (`gen`, `gen_range`, `gen_bool`), and Fisher–Yates shuffling via
//! [`seq::SliceRandom`]. It is statistically sound for benchmarking and
//! dataset synthesis but is **not** cryptographically secure.

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Low-level uniform random source. Mirrors `rand_core::RngCore` closely
/// enough for the call sites in this workspace.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators. Only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution (uniform over the
    /// full domain for integers, `[0, 1)` for floats, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
#[inline]
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types sampleable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over an arbitrary sub-range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`). Callers guarantee `low < high`
    /// (or `low <= high` for inclusive ranges).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as u64).wrapping_sub(low as u64);
                let span = if inclusive { span.wrapping_add(1) } else { span };
                if span == 0 {
                    // Inclusive range covering the full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                // Widening-multiply range reduction; the bias is far below
                // anything observable at benchmark sample counts.
                let reduced = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(reduced as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                low + (unit_f64(rng.next_u64()) as $t) * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range called with empty range");
        T::sample_between(rng, start, end, true)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(5..17);
            assert!((5..17).contains(&v));
            let v: usize = rng.gen_range(0..3);
            assert!(v < 3);
            let v: u64 = rng.gen_range(1..=8);
            assert!((1..=8).contains(&v));
            let f: f64 = rng.gen_range(2.0..6.0);
            assert!((2.0..6.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.02, "got {frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
