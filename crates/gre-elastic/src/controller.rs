//! The elasticity executor: live range-shard split / merge / migrate against
//! a running [`ShardPipeline`] via drain-and-handoff.
//!
//! ## Protocol
//!
//! Every topology change moves one contiguous key range `[lo, hi)` from a
//! source shard to a target shard through the same six steps:
//!
//! 1. **Freeze** — `ShardedIndex::freeze_range(lo, hi)` marks the window
//!    migrating under the routing write lock. New batches touching it are
//!    refused at submit (`BackpressureReason::Migrating`; blocking submits
//!    park, retry policies back off); everything else keeps flowing. Only
//!    one freeze may be active at a time, which serializes topology changes.
//! 2. **Drain** — a [`ShardPipeline::drain_barrier`] waits out every queue:
//!    FIFO order guarantees all work admitted *before* the freeze has
//!    executed once the barrier completes.
//! 3. **Seal** — `seal_frozen()` flips the window to sealed: from here until
//!    the swap, direct (non-pipeline) operations touching the window wait,
//!    because its entries are physically between backends.
//! 4. **Extract** — `extract_range` bulk-removes the window from the source
//!    backend.
//! 5. **Handoff (durable targets)** — the moved entries are written to the
//!    *target* shard's WAL as `In` records, synced, then a single `Out`
//!    record is synced to the *source* shard's WAL. The `Out` is the commit
//!    point: recovery applies an `In` exactly when its `Out` survived (or
//!    the source checkpointed past it), so a crash replays to the pre- or
//!    post-handoff topology, never a mix. A WAL failure here rolls back:
//!    the entries are re-inserted into the source and the freeze aborted.
//! 6. **Commit** — the entries are inserted into the target backend and
//!    `commit_routing` atomically installs the edited boundary table
//!    (epoch bump + `Arc` swap), clears the freeze, and wakes waiters.
//!
//! The pause is *per-range*: traffic outside `[lo, hi)` is served normally
//! through every step. [`BoundaryChange`] events record each committed
//! change; telemetry counts starts/completions, moved keys, and the summed
//! pause time.

use gre_core::elastic::{BoundaryChange, ElasticError, TopologyKind};
use gre_core::{ConcurrentIndex, RangeSpec};
use gre_durability::{TopologyDirection, TopologyRecord, TOPOLOGY_CHUNK};
use gre_shard::{Partitioner, ShardPipeline};
use gre_telemetry::CounterId;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::policy::{Action, ElasticPolicy, LoadWatcher};

/// Drives live topology changes against a serving pipeline.
///
/// The controller is safe to share across threads; the routing freeze
/// serializes concurrent topology attempts (the loser gets
/// [`ElasticError::AlreadyMigrating`]).
pub struct ElasticController<B: ConcurrentIndex<u64> + 'static> {
    pipeline: Arc<ShardPipeline<B>>,
    policy: ElasticPolicy,
    changes: Mutex<Vec<BoundaryChange>>,
    /// Handoff-id source for non-durable pipelines (durable ones derive the
    /// id from the source shard's WAL seq, which survives restarts).
    next_id: AtomicU64,
}

impl<B: ConcurrentIndex<u64> + 'static> ElasticController<B> {
    /// A controller over `pipeline` with the given policy knobs.
    pub fn new(pipeline: Arc<ShardPipeline<B>>, policy: ElasticPolicy) -> Self {
        ElasticController {
            pipeline,
            policy,
            changes: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// The policy this controller plans with.
    pub fn policy(&self) -> &ElasticPolicy {
        &self.policy
    }

    /// The pipeline this controller operates on.
    pub fn pipeline(&self) -> &Arc<ShardPipeline<B>> {
        &self.pipeline
    }

    /// Every topology change committed so far, in commit order.
    pub fn changes(&self) -> Vec<BoundaryChange> {
        self.changes.lock().expect("changes poisoned").clone()
    }

    /// Split segment `seg` at `mid`: `[mid, seg_hi)` moves to shard `to`,
    /// the lower half stays put. Only the moving half is frozen.
    pub fn split_segment(
        &self,
        seg: usize,
        mid: u64,
        to: usize,
    ) -> Result<BoundaryChange, ElasticError> {
        self.execute(TopologyKind::Split, move |rp| {
            if seg >= rp.segments() {
                return Err("segment id out of range");
            }
            let (lo, hi) = rp.segment_range(seg);
            if lo.is_some_and(|l| mid <= l) || hi.is_some_and(|h| mid >= h) {
                return Err("split key not strictly inside the segment");
            }
            let from = rp.segment_target(seg);
            Ok(Plan {
                lo: Some(mid),
                hi,
                from,
                to,
                edit: Edit::SplitAt { seg, mid, to },
            })
        })
    }

    /// Move the whole of segment `seg` to shard `to`. When `to` already
    /// serves an adjacent segment the boundary between them coalesces away —
    /// a merge; otherwise the segment just changes owner — a migrate.
    pub fn move_segment(&self, seg: usize, to: usize) -> Result<BoundaryChange, ElasticError> {
        let kind = {
            let p = self.pipeline.index().partitioner();
            let rp = p
                .as_range()
                .ok_or(ElasticError::UnsupportedScheme(p.scheme()))?;
            let adjacent = |other: usize| {
                other < rp.segments() && other != seg && rp.segment_target(other) == to
            };
            if (seg > 0 && adjacent(seg - 1)) || adjacent(seg + 1) {
                TopologyKind::Merge
            } else {
                TopologyKind::Migrate
            }
        };
        self.execute(kind, move |rp| {
            if seg >= rp.segments() {
                return Err("segment id out of range");
            }
            let (lo, hi) = rp.segment_range(seg);
            let from = rp.segment_target(seg);
            Ok(Plan {
                lo,
                hi,
                from,
                to,
                edit: Edit::Reassign { seg, to },
            })
        })
    }

    /// Policy-level split of a hot shard: pick its most populated segment,
    /// cut it at the median live key, and move the upper half to the
    /// least-loaded other shard (fewest stored keys). Prefer
    /// [`ElasticController::split_hot_to`] when a recent traffic picture is
    /// available — key counts see-saw with every move, so a keys-based
    /// target can ping-pong a hotspot between the two busiest shards.
    pub fn split_hot(&self, shard: usize) -> Result<BoundaryChange, ElasticError> {
        self.split_hot_to(shard, None)
    }

    /// Like [`ElasticController::split_hot`], moving the upper half to
    /// `target` when given (e.g. the traffic-coldest shard from
    /// [`LoadWatcher::coldest_recent`]).
    ///
    /// [`LoadWatcher::coldest_recent`]: crate::policy::LoadWatcher::coldest_recent
    pub fn split_hot_to(
        &self,
        shard: usize,
        target: Option<usize>,
    ) -> Result<BoundaryChange, ElasticError> {
        let index = self.pipeline.index();
        let p = index.partitioner();
        let rp = p
            .as_range()
            .ok_or(ElasticError::UnsupportedScheme(p.scheme()))?;
        let (seg, slice_keys) = self.segment_census(rp, shard, |counts| {
            counts.iter().cloned().enumerate().max_by_key(|&(_, n)| n)
        })?;
        if slice_keys.len() < self.policy.min_split_keys.max(2) {
            return Err(ElasticError::InvalidRange(format!(
                "segment {seg} holds {} keys, below the split floor",
                slice_keys.len()
            )));
        }
        let mid = slice_keys[slice_keys.len() / 2];
        let to = match target {
            Some(to) if to != shard => to,
            _ => {
                let lens = index.per_shard_lens();
                (0..lens.len())
                    .filter(|&s| s != shard)
                    .min_by_key(|&s| lens[s])
                    .ok_or(ElasticError::InvalidRange(
                        "a single-shard store cannot split".to_string(),
                    ))?
            }
        };
        self.split_segment(seg, mid, to)
    }

    /// Policy-level merge of a cold shard: fold its least populated segment
    /// into the shard serving an adjacent segment.
    pub fn merge_coldest(&self, shard: usize) -> Result<BoundaryChange, ElasticError> {
        let index = self.pipeline.index();
        let p = index.partitioner();
        let rp = p
            .as_range()
            .ok_or(ElasticError::UnsupportedScheme(p.scheme()))?;
        if rp.segments() <= 1 {
            return Err(ElasticError::InvalidRange(
                "a single-segment table has nothing to merge".to_string(),
            ));
        }
        let (seg, _) = self.segment_census(rp, shard, |counts| {
            counts.iter().cloned().enumerate().min_by_key(|&(_, n)| n)
        })?;
        // An adjacent segment always has a different target (equal-target
        // neighbours coalesce on every edit), so either side works; prefer
        // the right neighbour.
        let to = if seg + 1 < rp.segments() {
            rp.segment_target(seg + 1)
        } else {
            rp.segment_target(seg - 1)
        };
        self.move_segment(seg, to)
    }

    /// One policy tick: read the per-shard completed-op counters from the
    /// pipeline's telemetry, feed the watcher, and execute any recommended
    /// action. Returns `None` when no action was due (or the pipeline has
    /// no telemetry attached — the watcher is blind without it).
    pub fn tick(&self, watcher: &mut LoadWatcher) -> Option<Result<BoundaryChange, ElasticError>> {
        let telemetry = self.pipeline.telemetry()?;
        let m = telemetry.metrics();
        let ops: Vec<u64> = (0..m.shard_count())
            .map(|s| m.shard(s).ops_completed())
            .collect();
        match watcher.observe(&ops)? {
            Action::Split { shard } => {
                Some(self.split_hot_to(shard, watcher.coldest_recent(shard)))
            }
            Action::Merge { shard } => Some(self.merge_coldest(shard)),
        }
    }

    /// Run the watch-and-rebalance loop until `stop` is set (or the
    /// pipeline shuts down): observe every `interval`, act when an
    /// imbalance sustains. Failed actions (e.g. a segment below the split
    /// floor) are skipped; the next sustained imbalance retries.
    pub fn run(&self, stop: &AtomicBool, interval: Duration) {
        let shards = self.pipeline.index().num_shards();
        let mut watcher = LoadWatcher::new(self.policy, shards);
        while !stop.load(Ordering::Acquire) && !self.pipeline.is_shutting_down() {
            std::thread::sleep(interval);
            let _ = self.tick(&mut watcher);
        }
    }

    /// Count the live keys of each of `shard`'s segments (one ordered scan
    /// of the backend, split at the segment boundaries) and let `pick`
    /// choose among them. Returns the chosen segment's global id and its
    /// keys.
    fn segment_census(
        &self,
        rp: &gre_shard::RangePartitioner<u64>,
        shard: usize,
        pick: impl FnOnce(&[usize]) -> Option<(usize, usize)>,
    ) -> Result<(usize, Vec<u64>), ElasticError> {
        let segs = rp.segments_of_shard(shard);
        if segs.is_empty() {
            return Err(ElasticError::InvalidRange(format!(
                "shard {shard} serves no segment"
            )));
        }
        let backend = self.pipeline.index().backend(shard);
        let mut all = Vec::with_capacity(backend.len());
        backend.range(RangeSpec::new(u64::MIN, usize::MAX), &mut all);
        let keys: Vec<u64> = all.into_iter().map(|(k, _)| k).collect();
        let bounds: Vec<(usize, usize)> = segs
            .iter()
            .map(|&seg| {
                let (lo, hi) = rp.segment_range(seg);
                let a = lo.map_or(0, |l| keys.partition_point(|&k| k < l));
                let b = hi.map_or(keys.len(), |h| keys.partition_point(|&k| k < h));
                (a, b)
            })
            .collect();
        let counts: Vec<usize> = bounds.iter().map(|&(a, b)| b - a).collect();
        let (local, _) = pick(&counts).expect("segs is non-empty");
        let (a, b) = bounds[local];
        Ok((segs[local], keys[a..b].to_vec()))
    }

    /// The shared drain-and-handoff engine. `plan` inspects the live
    /// boundary table (under the active freeze) and names the moving range,
    /// the shards involved, and the table edit to commit.
    fn execute(
        &self,
        kind: TopologyKind,
        plan: impl FnOnce(&gre_shard::RangePartitioner<u64>) -> Result<Plan, &'static str>,
    ) -> Result<BoundaryChange, ElasticError> {
        let index = self.pipeline.index();
        {
            let p = index.partitioner();
            if p.as_range().is_none() {
                return Err(ElasticError::UnsupportedScheme(p.scheme()));
            }
        }
        let started = Instant::now();
        // Freeze the whole domain briefly to plan against a stable table,
        // then narrow: planning needs the table to not change under it, and
        // the freeze is the only mutual exclusion topology changes have.
        // Narrowing = abort + re-freeze of the actual window would open a
        // race window, so instead the plan is made first on a snapshot, the
        // snapshot's window frozen, and the plan re-validated against the
        // live table after the freeze (they can only differ if a change
        // committed in between, which the epoch check catches).
        let (plan, epoch_at_plan) = {
            let p = index.partitioner();
            let rp = p.as_range().expect("checked above");
            let plan = plan(rp).map_err(|m| ElasticError::InvalidRange(m.to_string()))?;
            (plan, index.routing_epoch())
        };
        if plan.from == plan.to {
            return Err(ElasticError::InvalidRange(
                "source and target shard are identical".to_string(),
            ));
        }
        if plan.to >= index.num_shards() {
            return Err(ElasticError::InvalidRange(format!(
                "target shard {} out of range",
                plan.to
            )));
        }
        let meta = index.backend(plan.from).meta();
        if !meta.supports_range {
            return Err(ElasticError::UnsupportedBackend(
                "range scans (bulk extraction)",
            ));
        }
        if !meta.supports_delete {
            return Err(ElasticError::UnsupportedBackend(
                "deletes (vacating the source shard)",
            ));
        }
        index.freeze_range(plan.lo, plan.hi)?;
        if index.routing_epoch() != epoch_at_plan {
            // A topology change committed between planning and freezing;
            // the plan's segment ids are stale.
            index.abort_freeze();
            return Err(ElasticError::Aborted("routing changed while planning"));
        }
        self.count(match kind {
            TopologyKind::Merge => CounterId::MergesStarted,
            TopologyKind::Split | TopologyKind::Migrate => CounterId::SplitsStarted,
        });

        // --- frozen: failures from here must abort the freeze ---
        self.pipeline.drain_barrier().wait();
        if let Err(e) = index.seal_frozen() {
            index.abort_freeze();
            return Err(e);
        }
        let mut moved: Vec<(u64, u64)> = Vec::new();
        index
            .backend(plan.from)
            .extract_range(plan.lo.unwrap_or(u64::MIN), plan.hi, &mut moved);

        // --- extracted: failures from here must also restore the entries ---
        let id = match self.log_handoff(&plan, &moved) {
            Ok(id) => id,
            Err(e) => {
                index.backend(plan.from).absorb_range(&moved);
                index.abort_freeze();
                return Err(e);
            }
        };
        index.backend(plan.to).absorb_range(&moved);
        let mut table = Partitioner::clone(&index.partitioner());
        let edited = {
            let rp = table.as_range_mut().expect("scheme checked above");
            match plan.edit {
                Edit::SplitAt { seg, mid, to } => rp.split_at(seg, mid, to),
                Edit::Reassign { seg, to } => rp.reassign(seg, to),
            }
        };
        if let Err(m) = edited {
            // Unreachable in practice (the plan was validated against the
            // same table, and the freeze blocked further edits), but never
            // strand the moved entries on a planning bug: pull them back.
            for &(k, v) in &moved {
                index.backend(plan.from).remove(k);
                index.backend(plan.from).insert(k, v);
            }
            for &(k, _) in &moved {
                index.backend(plan.to).remove(k);
            }
            index.abort_freeze();
            return Err(ElasticError::InvalidRange(m.to_string()));
        }
        // Infallible here: the table is a clone of the live one, so the
        // shard count matches by construction — and failing *after* the
        // entries landed in the target must not strand the freeze.
        let epoch = index
            .commit_routing(table)
            .expect("cloned table routes over the same shard count");
        let pause_micros = started.elapsed().as_micros() as u64;

        self.count(match kind {
            TopologyKind::Merge => CounterId::MergesCompleted,
            TopologyKind::Split | TopologyKind::Migrate => CounterId::SplitsCompleted,
        });
        self.add(CounterId::KeysMigrated, moved.len() as u64);
        self.add(CounterId::MigrationPauseMicros, pause_micros);
        let change = BoundaryChange {
            id,
            kind,
            lo: plan.lo,
            hi: plan.hi,
            from: plan.from,
            to: plan.to,
            keys_moved: moved.len(),
            epoch,
            pause_micros,
        };
        self.changes
            .lock()
            .expect("changes poisoned")
            .push(change.clone());
        Ok(change)
    }

    /// Write the WAL handoff for a durable pipeline: `In` record(s) with
    /// the moved entries to the target shard's log (each synced), then the
    /// `Out` record to the source's log (synced — the commit point). A
    /// non-durable pipeline just allocates an id.
    fn log_handoff(&self, plan: &Plan, moved: &[(u64, u64)]) -> Result<u64, ElasticError> {
        let Some(log) = self.pipeline.durability() else {
            return Ok(self.next_id.fetch_add(1, Ordering::Relaxed));
        };
        let id = ((plan.from as u64) << 48) | log.next_seq(plan.from);
        let lo = plan.lo.unwrap_or(u64::MIN);
        let mut chunks = moved.chunks(TOPOLOGY_CHUNK);
        loop {
            // At least one `In` even for an empty range, so recovery sees
            // the full pair.
            let entries = chunks.next().map(|c| c.to_vec()).unwrap_or_default();
            let last = entries.len() < TOPOLOGY_CHUNK;
            log.log_topology(
                plan.to,
                &TopologyRecord {
                    dir: TopologyDirection::In,
                    id,
                    lo,
                    hi: plan.hi,
                    peer: plan.from as u32,
                    entries,
                },
            )
            .map_err(|e| ElasticError::Wal(e.to_string()))?;
            if last {
                break;
            }
        }
        log.log_topology(
            plan.from,
            &TopologyRecord {
                dir: TopologyDirection::Out,
                id,
                lo,
                hi: plan.hi,
                peer: plan.to as u32,
                entries: Vec::new(),
            },
        )
        .map_err(|e| ElasticError::Wal(e.to_string()))?;
        Ok(id)
    }

    fn count(&self, id: CounterId) {
        self.add(id, 1);
    }

    fn add(&self, id: CounterId, n: u64) {
        if let Some(t) = self.pipeline.telemetry() {
            t.metrics().stripe(0).add(id, n);
        }
    }
}

/// A concrete topology change: the moving window, the shards, and the
/// boundary-table edit that commits it.
struct Plan {
    lo: Option<u64>,
    hi: Option<u64>,
    from: usize,
    to: usize,
    edit: Edit,
}

enum Edit {
    SplitAt { seg: usize, mid: u64, to: usize },
    Reassign { seg: usize, to: usize },
}
