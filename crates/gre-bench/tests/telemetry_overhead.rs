//! Telemetry overhead budget regression: the instrumented read-only
//! pipeline cell must stay close to the uninstrumented one. The documented
//! budget is 3% on an idle machine (see `docs/OBSERVABILITY.md`); this test
//! enforces a much looser bound so it stays meaningful-but-stable on noisy
//! shared CI runners — it exists to catch a *regression class* (an
//! accidental lock, syscall, or per-op clock read on the hot path), which
//! shows up as tens of percent, not single digits.

use gre_bench::trajectory::telemetry_overhead_probe;
use gre_bench::RunOpts;

#[test]
fn instrumented_throughput_stays_within_budget() {
    let opts = RunOpts::parse(
        ["--quick", "--threads", "4", "--shards", "4"]
            .iter()
            .map(|s| s.to_string()),
    );
    let probe = telemetry_overhead_probe(&opts, 2);
    assert!(
        probe.base_mops > 0.0 && probe.instrumented_mops > 0.0,
        "both runs must complete: {probe:?}"
    );
    let ratio = probe.ratio();
    assert!(
        ratio >= 0.70,
        "telemetry costs more than 30% on the read-only pipeline cell \
         (base {:.3} Mop/s, instrumented {:.3} Mop/s, ratio {ratio:.3}) — \
         something expensive crept onto the hot path",
        probe.base_mops,
        probe.instrumented_mops
    );
}
