//! Replica model equivalence: a seeded scenario driven through
//! [`ReplicatedTarget`] must leave every replica byte-identical to the
//! primary once shipping quiesces — across both a learned backend (ALEX+)
//! and a traditional one (B+treeOLC), and under every read policy.

use gre_core::{ConcurrentIndex, Payload, RangeSpec, ReadPolicy};
use gre_durability::util::TempDir;
use gre_learned::AlexPlus;
use gre_replica::ReplicatedTarget;
use gre_shard::{Partitioner, ShardedIndex};
use gre_traditional::btree_olc;
use gre_workloads::scenario::{KeyDist, Mix, Pacing, Phase, Scenario, Span};
use gre_workloads::Driver;

type DynBackend = Box<dyn ConcurrentIndex<u64>>;
type BackendFactory = fn() -> DynBackend;

fn backends() -> Vec<(&'static str, BackendFactory)> {
    vec![
        ("ALEX+", || Box::new(AlexPlus::<u64>::new())),
        ("B+treeOLC", || Box::new(btree_olc::<u64>())),
    ]
}

fn sharded(factory: BackendFactory) -> ShardedIndex<u64, DynBackend> {
    ShardedIndex::from_factory(Partitioner::range(4), |_| factory())
}

/// A two-phase mixed workload: point reads, inserts, updates, removes, and
/// cross-shard scans. Removes are fine here (unlike the cross-*target*
/// equivalence suite): replicas apply the per-shard WAL order, which is by
/// construction the order the primary executed, so replica state must equal
/// primary state whatever the interleaving was.
fn scenario() -> Scenario {
    let keys: Vec<u64> = (1..=5_000u64).map(|i| i * 64).collect();
    Scenario::new("replication", 0xFEED5EED, &keys)
        .phase(Phase::new(
            "mixed",
            Mix::points(5, 2, 1, 1).with_range(1, 16),
            KeyDist::Uniform,
            Span::Ops(8_000),
            Pacing::ClosedLoop { threads: 3 },
        ))
        .phase(Phase::new(
            "read-heavy",
            Mix::points(16, 1, 1, 0).with_range(1, 16),
            KeyDist::Hotspot {
                start: 0.4,
                span: 0.2,
                hot_access: 0.8,
            },
            Span::Ops(8_000),
            Pacing::ClosedLoop { threads: 3 },
        ))
}

/// Every key/payload pair stored, via a full cross-shard scan.
fn contents(index: &ShardedIndex<u64, DynBackend>, who: &str) -> Vec<(u64, Payload)> {
    let mut out = Vec::new();
    let got = index.range(RangeSpec::new(0, index.len() + 1_000), &mut out);
    assert_eq!(got, index.len(), "{who}: scan covers the whole store");
    out
}

#[test]
fn replicas_match_primary_exactly_after_quiesce_across_backends_and_policies() {
    let scenario = scenario();
    for (name, factory) in backends() {
        for policy in ReadPolicy::ALL {
            let tmp = TempDir::new("replication-equivalence");
            let mut target =
                ReplicatedTarget::new(sharded(factory), 2, 256, tmp.path(), move |_| factory())
                    .with_replicas(3)
                    .read_policy(policy);
            let result = Driver::new().run(&scenario, &mut target);
            assert_eq!(result.total_ops(), 16_000, "{name}/{policy}");
            for phase in &result.phases {
                assert_eq!(phase.tally.errors, 0, "{name}/{policy}/{}", phase.phase);
                assert_eq!(phase.shed(), 0, "{name}/{policy}/{}", phase.phase);
            }

            target.quiesce();
            let primary = contents(target.primary().index(), name);
            assert!(!primary.is_empty(), "{name}/{policy}: primary holds data");
            let committed = target.committed();
            assert!(
                committed.iter().any(|&s| s > 0),
                "{name}/{policy}: writes were logged"
            );
            for node in target.nodes() {
                assert!(
                    node.applied_records() > 0,
                    "{name}/{policy}: replica {} shipped records",
                    node.id()
                );
                assert_eq!(
                    node.watermark().snapshot(),
                    committed,
                    "{name}/{policy}: replica {} caught up",
                    node.id()
                );
                let replica = contents(node.index(), name);
                assert_eq!(
                    replica,
                    primary,
                    "{name}/{policy}: replica {} state equals primary",
                    node.id()
                );
            }
        }
    }
}

#[test]
fn all_replicas_apply_the_same_stream() {
    // Every replica consumes the same WAL, so their apply counters must
    // agree exactly with each other once quiesced.
    let scenario = scenario();
    let (_, factory) = backends()[0];
    let tmp = TempDir::new("replication-counters");
    let mut target =
        ReplicatedTarget::new(sharded(factory), 2, 128, tmp.path(), move |_| factory())
            .with_replicas(2);
    Driver::new().run(&scenario, &mut target);
    target.quiesce();
    let nodes = target.nodes();
    assert_eq!(nodes[0].applied_records(), nodes[1].applied_records());
    assert_eq!(nodes[0].applied_ops(), nodes[1].applied_ops());
    assert!(nodes[0].applied_ops() > 0);
}
