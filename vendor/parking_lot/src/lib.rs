//! Offline stand-in for the subset of `parking_lot` 0.12 this workspace uses:
//! [`Mutex`] and [`RwLock`] with infallible, poison-free guard APIs, backed
//! by `std::sync`. A thread that panics while holding a std lock poisons it;
//! to preserve parking_lot's semantics (later threads proceed), the wrappers
//! recover the inner guard from a poisoned lock instead of panicking.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion backed by [`std::sync::Mutex`].
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Reader–writer lock backed by [`std::sync::RwLock`].
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let mut m = m;
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 3);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 5);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        let mut l = l;
        l.get_mut().push(4);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: the lock remains usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
