//! Figure 3: time breakdown of insert operations (lookup vs remaining steps,
//! and the split of the remaining steps into insert/smo/stat/shift/chain).
use gre_bench::{registry::single_thread_indexes, RunOpts};
use gre_datasets::Dataset;
use gre_workloads::{run_single, WorkloadBuilder, WriteRatio};

fn main() {
    let opts = RunOpts::from_env();
    let builder = WorkloadBuilder::new(opts.seed);
    println!("# Figure 3: insert time breakdown (write-only workload, ns per insert)");
    println!(
        "{:<10} {:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "dataset", "index", "lookup", "insert", "smo", "stat", "shift", "chain", "total"
    );
    for ds in Dataset::DRILLDOWN_DATASETS {
        let keys = ds.generate(opts.keys, opts.seed);
        let workload = builder.insert_workload(&ds.name(), &keys, WriteRatio::WriteOnly);
        for entry in single_thread_indexes() {
            if !matches!(entry.name, "ALEX" | "LIPP" | "ART" | "B+tree") {
                continue;
            }
            let mut index = entry.index;
            run_single(index.as_mut(), &workload);
            let b = index.stats().mean_insert_breakdown();
            println!(
                "{:<10} {:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
                ds.name(),
                entry.name,
                b.lookup_ns,
                b.insert_ns,
                b.smo_ns,
                b.stat_ns,
                b.shift_ns,
                b.chain_ns,
                b.total_ns()
            );
        }
    }
}
