//! The perf-trajectory sweep behind the `bench_trajectory` binary: drive a
//! backend × target × mix matrix through the scenario [`Driver`] and
//! collect one [`BenchResult`] per cell, plus scalar-vs-batched lookup
//! comparisons on the read-only mix.
//!
//! The sweep lives in the library (rather than the binary) so the
//! determinism regression test can run the exact code path twice on a
//! small matrix and compare reports.

use crate::perfjson::{BatchedCompare, BenchConfig, BenchReport, BenchResult, SCHEMA_VERSION};
use crate::registry::IndexBuilder;
use gre_core::ops::RequestKind;
use gre_core::{ConcurrentIndex, IndexMeta, Payload, Response};
use gre_shard::{PipelineTarget, SessionTarget, DEFAULT_DRIVER_BATCH, DEFAULT_MAX_INFLIGHT};
use gre_workloads::driver::{Connection, PhaseRecorder, PhaseResult, ServeTarget};
use gre_workloads::scenario::{KeyDist, Mix, Pacing, Phase, Scenario, Span};
use gre_workloads::{Driver, Op};
use std::time::Instant;

/// How many buffered point lookups the batched-gets target hands to one
/// [`get_batch`](ConcurrentIndex::get_batch) call. Wide enough that a
/// partitioned backend sees multi-key groups per partition (amortizing its
/// per-partition locking) and the interleaved prefetch stage has real work.
pub const BATCHED_GET_FLUSH: usize = 256;

/// One serving path of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// Driver threads call the index synchronously, one op at a time.
    Direct,
    /// Submit-then-wait batches through the `ShardPipeline`.
    Pipeline,
    /// Pipelined `Session` connections with an in-flight window.
    Session,
}

impl TargetKind {
    /// The `target` label recorded in the report.
    pub fn label(self) -> &'static str {
        match self {
            TargetKind::Direct => "direct",
            TargetKind::Pipeline => "pipeline",
            TargetKind::Session => "session",
        }
    }
}

/// One workload mix of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct MixSpec {
    /// The `mix` label recorded in the report.
    pub name: &'static str,
    pub mix: Mix,
    pub dist: KeyDist,
}

/// The standard mix set: uniform read-only, zipfian YCSB-A (50/50
/// read/update, the paper's default skewed mix), and a uniform 95/5
/// read/insert mix that grows the key space.
pub fn standard_mixes() -> Vec<MixSpec> {
    vec![
        MixSpec {
            name: "read_only",
            mix: Mix::read_only(),
            dist: KeyDist::Uniform,
        },
        MixSpec {
            name: "ycsb_a",
            mix: Mix::ycsb_a(),
            dist: KeyDist::Zipf { theta: 0.99 },
        },
        MixSpec {
            name: "read_mostly",
            mix: Mix::read_mostly(5),
            dist: KeyDist::Uniform,
        },
    ]
}

/// Full sweep configuration.
#[derive(Debug, Clone)]
pub struct TrajectoryOpts {
    /// Backend specs, in [`IndexBuilder::parse`] syntax (`alex+`,
    /// `alex+:8`, `b+treeolc`, …).
    pub backends: Vec<String>,
    pub targets: Vec<TargetKind>,
    pub mixes: Vec<MixSpec>,
    /// Backends (same spec syntax) to additionally run through the
    /// `direct_batched` target on the read-only mix, recording a
    /// [`BatchedCompare`] against their scalar `direct` run.
    pub compare_backends: Vec<String>,
    /// Bulk-loaded keys.
    pub keys: usize,
    /// Operations per phase.
    pub ops: u64,
    /// Closed-loop client threads.
    pub threads: usize,
    /// Shard count for pipeline/session targets.
    pub shards: usize,
    pub seed: u64,
    pub quick: bool,
    /// Print one line per completed cell to stderr.
    pub verbose: bool,
}

impl TrajectoryOpts {
    /// The standard matrix of the committed trajectory file: every
    /// concurrent backend of the registry plus the sharded ALEX+ composite,
    /// through all three serving paths, over the standard mixes, with
    /// scalar-vs-batched comparisons on the learned hot paths.
    pub fn standard(opts: &crate::RunOpts) -> TrajectoryOpts {
        TrajectoryOpts {
            backends: vec![
                String::from("alex+"),
                String::from("lipp+"),
                String::from("xindex"),
                String::from("finedex"),
                String::from("b+treeolc"),
                String::from("artolc"),
                format!("alex+:{}", opts.shards),
            ],
            targets: vec![
                TargetKind::Direct,
                TargetKind::Pipeline,
                TargetKind::Session,
            ],
            mixes: standard_mixes(),
            compare_backends: vec![String::from("alex+"), format!("alex+:{}", opts.shards)],
            keys: opts.keys,
            ops: opts.keys as u64,
            threads: opts.threads,
            shards: opts.shards,
            seed: opts.seed,
            quick: opts.quick,
            verbose: opts.verbose,
        }
    }
}

/// The deterministic key set every sweep loads: a dense, gapped sequence
/// (stride 16) so inserts land between loaded keys.
pub fn trajectory_keys(n: usize) -> Vec<u64> {
    (1..=n as u64).map(|i| i * 16).collect()
}

fn scenario_for(mix: &MixSpec, keys: &[u64], opts: &TrajectoryOpts) -> Scenario {
    Scenario::new(mix.name, opts.seed, keys).phase(Phase::new(
        mix.name,
        mix.mix,
        mix.dist,
        Span::Ops(opts.ops),
        Pacing::ClosedLoop {
            threads: opts.threads,
        },
    ))
}

/// Every cell uses the same latency sampling stride so per-target numbers
/// stay comparable: 1 in 8 closed-loop ops is timed from its intended send
/// time (dense enough for stable tails on `--quick` op counts, sparse
/// enough that `Instant::now()` stays out of the measured hot path).
const SAMPLE_STRIDE: usize = 8;

fn run_cell(
    builder: &IndexBuilder,
    target: TargetKind,
    mix: &MixSpec,
    keys: &[u64],
    opts: &TrajectoryOpts,
) -> PhaseResult {
    let scenario = scenario_for(mix, keys, opts);
    let driver = Driver::new().sample_stride(SAMPLE_STRIDE);
    let workers = opts.threads.max(1);
    let mut result = match target {
        TargetKind::Direct => {
            let mut index = builder.build();
            driver.run(&scenario, &mut *index)
        }
        TargetKind::Pipeline => {
            let mut t = PipelineTarget::new(builder.build_sharded(), workers, DEFAULT_DRIVER_BATCH);
            driver.run(&scenario, &mut t)
        }
        TargetKind::Session => {
            let mut t = SessionTarget::new(
                builder.build_sharded(),
                workers,
                DEFAULT_DRIVER_BATCH,
                DEFAULT_MAX_INFLIGHT,
            );
            driver.run(&scenario, &mut t)
        }
    };
    result.phases.remove(0)
}

/// Run the full sweep and assemble the report (the `commit` field is
/// stamped by the caller, so the library stays free of process spawning).
pub fn run_trajectory(opts: &TrajectoryOpts, commit: String) -> BenchReport {
    let keys = trajectory_keys(opts.keys);
    let mut results = Vec::new();
    for spec in &opts.backends {
        let builder =
            IndexBuilder::parse(spec).unwrap_or_else(|e| panic!("bad backend spec `{spec}`: {e}"));
        let name = builder.display_name();
        for &target in &opts.targets {
            for mix in &opts.mixes {
                let phase = run_cell(&builder, target, mix, &keys, opts);
                let row = BenchResult::from_phase(&name, target.label(), mix.name, &phase);
                if opts.verbose {
                    eprintln!(
                        "  {:<18} {:<10} {:<12} {:>10.0} ops/s  p99 {:>8.1}us",
                        row.backend, row.target, row.mix, row.throughput_ops_s, row.p99_us
                    );
                }
                results.push(row);
            }
        }
    }

    let mut batched_compare = Vec::new();
    let read_only = standard_mixes()[0];
    for spec in &opts.compare_backends {
        let builder =
            IndexBuilder::parse(spec).unwrap_or_else(|e| panic!("bad backend spec `{spec}`: {e}"));
        let name = builder.display_name();
        let scalar = match results
            .iter()
            .find(|r| r.backend == name && r.target == "direct" && r.mix == "read_only")
        {
            Some(row) => row.clone(),
            None => {
                let phase = run_cell(&builder, TargetKind::Direct, &read_only, &keys, opts);
                let row = BenchResult::from_phase(&name, "direct", "read_only", &phase);
                results.push(row.clone());
                row
            }
        };
        let phase = run_batched_cell(&builder, &read_only, &keys, opts);
        let batched = BenchResult::from_phase(&name, "direct_batched", "read_only", &phase);
        let speedup = if scalar.throughput_ops_s > 0.0 {
            batched.throughput_ops_s / scalar.throughput_ops_s
        } else {
            0.0
        };
        if opts.verbose {
            eprintln!(
                "  {:<18} batched gets {:>10.0} ops/s vs scalar {:>10.0} ops/s ({speedup:.2}x)",
                name, batched.throughput_ops_s, scalar.throughput_ops_s
            );
        }
        batched_compare.push(BatchedCompare {
            backend: name,
            scalar_ops_s: scalar.throughput_ops_s,
            batched_ops_s: batched.throughput_ops_s,
            speedup,
        });
        results.push(batched);
    }

    BenchReport {
        schema_version: SCHEMA_VERSION,
        commit,
        config: BenchConfig {
            keys: opts.keys,
            ops: opts.ops,
            threads: opts.threads,
            shards: opts.shards,
            seed: opts.seed,
            quick: opts.quick,
            batched_compare,
        },
        results,
    }
}

/// Throughput of the telemetry overhead probe's two runs.
#[derive(Debug, Clone, Copy)]
pub struct OverheadProbe {
    /// Read-only pipeline throughput without telemetry, Mop/s.
    pub base_mops: f64,
    /// Same cell with full telemetry (metrics + default trace sampling).
    pub instrumented_mops: f64,
}

impl OverheadProbe {
    /// Instrumented over base throughput: 1.0 means telemetry was free,
    /// 0.97 means a 3% overhead.
    pub fn ratio(&self) -> f64 {
        if self.base_mops > 0.0 {
            self.instrumented_mops / self.base_mops
        } else {
            0.0
        }
    }
}

/// Measure the telemetry overhead budget on the read-only trajectory mix
/// served through the pipeline target: after one warm-up run, alternate
/// `trials` telemetry-off and telemetry-on runs of the same cell (sharded
/// ALEX+, closed loop) and keep each side's best throughput — back-to-back
/// best-of runs cancel most scheduler noise.
pub fn telemetry_overhead_probe(opts: &crate::RunOpts, trials: usize) -> OverheadProbe {
    let keys = trajectory_keys(opts.keys);
    let mix = standard_mixes().remove(0);
    let builder = IndexBuilder::backend("alex+")
        .expect("alex+ registered")
        .shards(opts.shards.max(1));
    let workers = opts.threads.max(1);
    let scenario = Scenario::new(mix.name, opts.seed, &keys).phase(Phase::new(
        mix.name,
        mix.mix,
        mix.dist,
        Span::Ops(opts.keys as u64),
        Pacing::ClosedLoop {
            threads: opts.threads.max(1),
        },
    ));

    let run = |instrument: bool| -> f64 {
        let driver = Driver::new().sample_stride(SAMPLE_STRIDE);
        let mut target =
            PipelineTarget::new(builder.build_sharded(), workers, DEFAULT_DRIVER_BATCH);
        if instrument {
            target = target.instrumented();
        }
        let result = driver.run(&scenario, &mut target);
        result.phases[0].throughput_mops()
    };

    let _ = run(false);
    let mut probe = OverheadProbe {
        base_mops: 0.0,
        instrumented_mops: 0.0,
    };
    for _ in 0..trials.max(1) {
        probe.base_mops = probe.base_mops.max(run(false));
        probe.instrumented_mops = probe.instrumented_mops.max(run(true));
    }
    probe
}

fn run_batched_cell(
    builder: &IndexBuilder,
    mix: &MixSpec,
    keys: &[u64],
    opts: &TrajectoryOpts,
) -> PhaseResult {
    let scenario = scenario_for(mix, keys, opts);
    let driver = Driver::new().sample_stride(SAMPLE_STRIDE);
    let mut target = BatchedGetTarget::new(builder.build(), BATCHED_GET_FLUSH);
    let mut result = driver.run(&scenario, &mut target);
    result.phases.remove(0)
}

/// A serving target that funnels point lookups through
/// [`ConcurrentIndex::get_batch`]: each connection buffers up to `width`
/// consecutive `Get` ops and flushes them as one interleaved batch. Any
/// non-`Get` op first flushes the buffer (preserving the connection's
/// program order, and with it read-your-write) and then executes through
/// the scalar typed-request path. Like the pipeline/session targets,
/// latency of a buffered lookup is measured from its intended send time to
/// its *batch's* completion.
pub struct BatchedGetTarget {
    index: Box<dyn ConcurrentIndex<u64>>,
    width: usize,
}

impl BatchedGetTarget {
    pub fn new(index: Box<dyn ConcurrentIndex<u64>>, width: usize) -> BatchedGetTarget {
        BatchedGetTarget {
            index,
            width: width.max(1),
        }
    }
}

impl ServeTarget for BatchedGetTarget {
    fn describe(&self) -> String {
        format!("{} [batched gets x{}]", self.index.meta().name, self.width)
    }

    fn load(&mut self, entries: &[(u64, Payload)]) {
        self.index.bulk_load(entries);
    }

    fn connect(&self) -> Box<dyn Connection + '_> {
        Box::new(BatchedGetConn {
            index: &*self.index,
            meta: self.index.meta(),
            width: self.width,
            keys: Vec::with_capacity(self.width),
            intended: Vec::with_capacity(self.width),
            results: Vec::with_capacity(self.width),
        })
    }

    fn stored_len(&self) -> usize {
        self.index.len()
    }

    fn memory_bytes(&self) -> usize {
        self.index.memory_usage()
    }
}

struct BatchedGetConn<'a> {
    index: &'a dyn ConcurrentIndex<u64>,
    meta: IndexMeta,
    width: usize,
    keys: Vec<u64>,
    intended: Vec<Option<Instant>>,
    results: Vec<Option<Payload>>,
}

impl BatchedGetConn<'_> {
    fn flush_gets(&mut self, rec: &mut PhaseRecorder) {
        if self.keys.is_empty() {
            return;
        }
        self.index.get_batch(&self.keys, &mut self.results);
        debug_assert_eq!(self.results.len(), self.keys.len());
        let now = Instant::now();
        for (intended, result) in self.intended.drain(..).zip(self.results.drain(..)) {
            let response = Response::Get(result);
            match intended {
                Some(t0) => rec.complete_timed(RequestKind::Get, t0, now, &response),
                None => rec.complete_untimed(&response),
            }
        }
        self.keys.clear();
    }
}

impl Connection for BatchedGetConn<'_> {
    fn submit(&mut self, op: Op, intended: Option<Instant>, rec: &mut PhaseRecorder) {
        match op {
            Op::Get(key) => {
                self.keys.push(key);
                self.intended.push(intended);
                if self.keys.len() >= self.width {
                    self.flush_gets(rec);
                }
            }
            other => {
                self.flush_gets(rec);
                let response = other.execute(self.index, &self.meta);
                match intended {
                    Some(t0) => rec.complete_timed(other.kind(), t0, Instant::now(), &response),
                    None => rec.complete_untimed(&response),
                }
            }
        }
    }

    fn flush(&mut self, rec: &mut PhaseRecorder) {
        self.flush_gets(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfjson::{smoke_check, BenchReport};

    fn tiny_opts() -> TrajectoryOpts {
        TrajectoryOpts {
            backends: vec![String::from("alex+"), String::from("b+treeolc")],
            targets: vec![
                TargetKind::Direct,
                TargetKind::Pipeline,
                TargetKind::Session,
            ],
            mixes: vec![standard_mixes()[0], standard_mixes()[1]],
            compare_backends: vec![String::from("alex+")],
            keys: 4_000,
            ops: 4_000,
            threads: 2,
            shards: 2,
            seed: 42,
            quick: true,
            verbose: false,
        }
    }

    #[test]
    fn two_runs_with_the_same_seed_are_identical_modulo_timing() {
        let opts = tiny_opts();
        let a = run_trajectory(&opts, String::from("test"));
        let b = run_trajectory(&opts, String::from("test"));
        let ids_a: Vec<_> = a.results.iter().map(|r| r.identity()).collect();
        let ids_b: Vec<_> = b.results.iter().map(|r| r.identity()).collect();
        assert_eq!(ids_a, ids_b, "same seed must enumerate identical cells");
        assert_eq!(
            a.config.batched_compare.len(),
            b.config.batched_compare.len()
        );
        for (x, y) in a
            .config
            .batched_compare
            .iter()
            .zip(&b.config.batched_compare)
        {
            assert_eq!(x.backend, y.backend);
        }
        smoke_check(&a).expect("run A passes the smoke check");
        smoke_check(&b).expect("run B passes the smoke check");
    }

    #[test]
    fn emitted_report_round_trips_through_the_parser() {
        let mut opts = tiny_opts();
        opts.backends = vec![String::from("alex+")];
        opts.mixes = vec![standard_mixes()[0]];
        let report = run_trajectory(&opts, String::from("roundtrip"));
        let text = report.to_json();
        let back = BenchReport::from_json(&text).expect("parse emitted report");
        assert_eq!(back, report);
        assert_eq!(back.to_json(), text);
    }

    /// The `fix` satellite's regression: the batched-gets serving path must
    /// be model-equivalent to the scalar per-op path — same per-connection
    /// response ordering and the same capability gating — for a learned and
    /// a traditional backend.
    #[test]
    fn batched_target_matches_scalar_responses_in_order() {
        use gre_core::ops::Request;

        for spec in ["alex+", "b+treeolc"] {
            let builder = IndexBuilder::parse(spec).unwrap();
            let keys = trajectory_keys(2_000);
            let entries: Vec<(u64, Payload)> =
                keys.iter().map(|&k| (k, k.wrapping_mul(3))).collect();

            // A deterministic op tape mixing batched-path and scalar-path
            // ops, including unsupported ones (Remove on backends that
            // gate it) and read/write hazards in both directions. The keys
            // `k` are distinct across iterations, so each hazard is
            // independent: a connection that reorders a buffered Get past
            // a write (or a write past a buffered Get) flips that Get
            // between hit and miss and diverges from the scalar tally.
            let mut tape: Vec<Op> = Vec::new();
            for i in 0..600u64 {
                let k = keys[(i as usize * 7) % keys.len()];
                tape.push(Request::Get(k));
                if i % 5 == 0 {
                    tape.push(Request::Get(k + 1)); // gap key: miss
                }
                if i % 97 == 0 {
                    tape.push(Request::Insert(k + 3, i));
                    tape.push(Request::Get(k + 3)); // read-your-write: hit
                }
                if i % 89 == 0 {
                    tape.push(Request::Get(k + 5)); // must flush BEFORE...
                    tape.push(Request::Insert(k + 5, i)); // ...this write: miss
                }
                if i % 113 == 0 {
                    tape.push(Request::Remove(k)); // capability-gated on some
                }
            }

            // Scalar reference: the typed-request path, one op at a time.
            let mut scalar_index = builder.build();
            scalar_index.bulk_load(&entries);
            let meta = scalar_index.meta();
            let scalar: Vec<Response<u64>> = tape
                .iter()
                .map(|&op| op.execute(&*scalar_index, &meta))
                .collect();

            // Batched path: same tape through one BatchedGetTarget
            // connection, collecting responses via the recorder-visible
            // tally AND a response log captured by re-executing through
            // the connection's own order.
            let mut target = BatchedGetTarget::new(builder.build(), 16);
            target.load(&entries);
            let mut rec = PhaseRecorder::new(Instant::now(), std::time::Duration::from_millis(100));
            let mut conn = target.connect();
            for &op in &tape {
                conn.submit(op, None, &mut rec);
            }
            conn.flush(&mut rec);
            drop(conn);

            // Both executions start from identical bulk loads and replay
            // the identical single-connection tape, so the typed-response
            // tallies must agree exactly — hazard Gets pin the ordering,
            // and `errors` pins the Unsupported gating of Remove.
            let mut want = gre_workloads::driver::Tally::default();
            for r in &scalar {
                want.record(r);
            }
            assert_eq!(
                *rec.tally(),
                want,
                "{spec}: batched path diverged from scalar"
            );
            assert_eq!(rec.tally().ops, tape.len() as u64);
        }
    }
}
