//! # gre-workloads
//!
//! Workload generation and execution, mirroring §3.3 of the paper:
//!
//! * [`spec`] — operation and workload types (read-only … write-only,
//!   deletion mixes, range scans, YCSB, distribution shift).
//! * [`generate`] — builders that turn a dataset into a concrete operation
//!   sequence (bulk-load set plus request stream).
//! * [`zipf`] — the Zipfian request-key sampler used by the YCSB workloads.
//! * [`batch`] — per-shard splitting of op streams for partitioned serving
//!   layers (the `gre-shard` crate's batched request pipeline).
//! * [`runner`] — single- and multi-threaded execution with throughput and
//!   tail-latency measurement (1% latency sampling, as in §6.1).

pub mod batch;
pub mod generate;
pub mod runner;
pub mod spec;
pub mod zipf;

pub use batch::{route_key, split_indexed_ops_by_shard, split_ops_by_shard};
pub use generate::WorkloadBuilder;
pub use runner::{run_concurrent, run_single, LatencySummary, RunResult};
pub use spec::{Op, OpKind, Workload, WriteRatio};
