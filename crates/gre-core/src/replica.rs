//! Shared vocabulary of the replication tier (`gre-replica`): per-shard
//! applied-sequence [`Watermark`]s published by replicas, and the
//! [`ReadPolicy`] a replicated serving target uses to place reads.
//!
//! The types live in `gre-core` (rather than in `gre-replica` itself) for
//! the same reason [`crate::elastic`] does: they are *protocol* vocabulary.
//! Replicas publish watermarks, the serving target and its admission layer
//! consume them, and tests reason about them — none of those parties should
//! need the replication mechanism crate to talk about the contract.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-shard applied-sequence watermark published by one replica.
///
/// Slot `s` holds the highest WAL sequence number the replica has fully
/// applied for shard `s` (sequences are per-shard and start at 1, so `0`
/// means "nothing applied yet"). Writers advance it with [`Watermark::advance`]
/// *after* the corresponding record's ops are visible in the replica's
/// backend; readers use [`Watermark::covers`] to decide whether the replica
/// is fresh enough for a session's read-your-writes requirement.
///
/// Advancing uses a `fetch_max` so concurrent appliers (or a re-joining
/// replica replaying a prefix it already holds) can never move a watermark
/// backwards.
#[derive(Debug)]
pub struct Watermark {
    applied: Vec<AtomicU64>,
}

impl Watermark {
    /// A watermark for `shards` shards, all at sequence 0 (nothing applied).
    pub fn new(shards: usize) -> Self {
        Watermark {
            applied: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of shards this watermark tracks.
    pub fn shards(&self) -> usize {
        self.applied.len()
    }

    /// The highest applied sequence for `shard`.
    pub fn get(&self, shard: usize) -> u64 {
        self.applied[shard].load(Ordering::Acquire)
    }

    /// Publish that `shard` has applied everything up to and including
    /// `seq`. Monotone: a stale publish (lower than the current value) is a
    /// no-op. Returns the watermark value after the call.
    pub fn advance(&self, shard: usize, seq: u64) -> u64 {
        let prev = self.applied[shard].fetch_max(seq, Ordering::AcqRel);
        prev.max(seq)
    }

    /// Whether this watermark has applied at least `seq` on `shard` — i.e.
    /// a read that must observe the write committed at `seq` may be served
    /// here.
    pub fn covers(&self, shard: usize, seq: u64) -> bool {
        self.get(shard) >= seq
    }

    /// How far behind `target` this watermark is on `shard`, in sequence
    /// numbers (saturating; 0 when caught up or ahead).
    pub fn lag_behind(&self, shard: usize, target: u64) -> u64 {
        target.saturating_sub(self.get(shard))
    }

    /// Total lag across all shards against a per-shard `targets` slice
    /// (saturating per shard). Used by least-lagged read placement.
    pub fn total_lag(&self, targets: &[u64]) -> u64 {
        targets
            .iter()
            .enumerate()
            .map(|(s, &t)| self.lag_behind(s, t))
            .sum()
    }

    /// Snapshot of every shard's applied sequence.
    pub fn snapshot(&self) -> Vec<u64> {
        (0..self.shards()).map(|s| self.get(s)).collect()
    }
}

/// How a replicated serving target places reads across its replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPolicy {
    /// Rotate reads across replicas regardless of lag. Maximum fan-out,
    /// no staleness bound: a read may observe a state arbitrarily far
    /// behind the primary.
    RoundRobin,
    /// Send each read to the replica with the smallest total shipping lag
    /// at dispatch time. Still unbounded staleness, but keeps reads off a
    /// replica that has fallen behind (e.g. one that is re-joining).
    LeastLagged,
    /// Read-your-writes: a read is only placed on a replica whose
    /// [`Watermark`] covers the session's last acknowledged write on every
    /// shard the read touches; if no replica qualifies, the read falls
    /// back to the primary (which is trivially current).
    WatermarkBound,
}

impl ReadPolicy {
    /// Stable lowercase name, for CLI flags and report labels.
    pub fn name(&self) -> &'static str {
        match self {
            ReadPolicy::RoundRobin => "round-robin",
            ReadPolicy::LeastLagged => "least-lagged",
            ReadPolicy::WatermarkBound => "watermark-bound",
        }
    }

    /// All policies, for sweeps and exhaustive tests.
    pub const ALL: [ReadPolicy; 3] = [
        ReadPolicy::RoundRobin,
        ReadPolicy::LeastLagged,
        ReadPolicy::WatermarkBound,
    ];
}

impl std::fmt::Display for ReadPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_starts_at_zero_and_advances_monotonically() {
        let w = Watermark::new(3);
        assert_eq!(w.shards(), 3);
        for s in 0..3 {
            assert_eq!(w.get(s), 0);
        }
        assert_eq!(w.advance(1, 5), 5);
        assert_eq!(w.get(1), 5);
        // Stale publish does not regress.
        assert_eq!(w.advance(1, 3), 5);
        assert_eq!(w.get(1), 5);
        assert_eq!(w.advance(1, 9), 9);
        assert_eq!(w.snapshot(), vec![0, 9, 0]);
    }

    #[test]
    fn covers_and_lag() {
        let w = Watermark::new(2);
        w.advance(0, 4);
        assert!(w.covers(0, 4));
        assert!(w.covers(0, 0));
        assert!(!w.covers(0, 5));
        assert_eq!(w.lag_behind(0, 10), 6);
        assert_eq!(w.lag_behind(0, 2), 0);
        assert_eq!(w.total_lag(&[10, 7]), 6 + 7);
    }

    #[test]
    fn policy_names_are_stable() {
        let names: Vec<&str> = ReadPolicy::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["round-robin", "least-lagged", "watermark-bound"]);
        assert_eq!(ReadPolicy::WatermarkBound.to_string(), "watermark-bound");
    }
}
