//! Property-based tests: every index must behave exactly like a `BTreeMap`
//! under arbitrary operation sequences (the core correctness invariant of the
//! whole suite).

use gre::learned::{Alex, DynamicPgm, Lipp};
use gre::traditional::{Art, BPlusTree, Hot, Wormhole};
use gre_core::{Index, RangeSpec};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    Range(u64, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..2_000, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0u64..2_000).prop_map(Op::Remove),
        (0u64..2_000).prop_map(Op::Get),
        ((0u64..2_000), (0usize..64)).prop_map(|(k, c)| Op::Range(k, c)),
    ]
}

fn check_against_model<I: Index<u64>>(mut index: I, ops: &[Op], bulk: &[(u64, u64)]) {
    let mut model: BTreeMap<u64, u64> = bulk.iter().copied().collect();
    index.bulk_load(bulk);
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                assert_eq!(index.insert(k, v), model.insert(k, v).is_none(), "insert {k}");
            }
            Op::Remove(k) => {
                assert_eq!(index.remove(k), model.remove(&k), "remove {k}");
            }
            Op::Get(k) => {
                assert_eq!(index.get(k), model.get(&k).copied(), "get {k}");
            }
            Op::Range(k, c) => {
                let mut out = Vec::new();
                index.range(RangeSpec::new(k, c), &mut out);
                let expected: Vec<(u64, u64)> =
                    model.range(k..).take(c).map(|(a, b)| (*a, *b)).collect();
                assert_eq!(out, expected, "range from {k} count {c}");
            }
        }
    }
    assert_eq!(index.len(), model.len());
}

fn bulk_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::btree_map(0u64..2_000, any::<u64>(), 0..400)
        .prop_map(|m| m.into_iter().collect())
}

macro_rules! model_test {
    ($name:ident, $ctor:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn $name(bulk in bulk_strategy(), ops in proptest::collection::vec(op_strategy(), 1..300)) {
                check_against_model($ctor, &ops, &bulk);
            }
        }
    };
}

model_test!(alex_matches_btreemap, Alex::<u64>::new());
model_test!(lipp_matches_btreemap, Lipp::<u64>::new());
model_test!(pgm_matches_btreemap, DynamicPgm::<u64>::new());
model_test!(btree_matches_btreemap, BPlusTree::<u64>::new());
model_test!(art_matches_btreemap, Art::<u64>::new());
model_test!(hot_matches_btreemap, Hot::<u64>::new());
model_test!(wormhole_matches_btreemap, Wormhole::<u64>::new());
