//! Streaming ε-approximate piecewise linear approximation.
//!
//! Definition (ε-approximate, §3.2): a model `F` for an array `D = [k₁ … kₙ]`
//! with ranks `rᵢ` is ε-approximate iff `|F(kᵢ) − rᵢ| ≤ ε` for all `i`. The
//! PLA of `D` is the minimal sequence of segments such that each segment
//! admits an ε-approximate linear model. The number of segments is the data
//! hardness `H`.
//!
//! We use the classical on-line segmentation of O'Rourke (1981), also used by
//! the PGM-Index: while scanning keys in order, maintain the feasible cone of
//! slopes through the segment's origin that keeps every seen rank within ±ε;
//! when a new point empties the cone, close the segment and start a new one
//! at that point. The algorithm runs in `O(n)` time and `O(1)` working space
//! per segment and produces the minimum number of segments among all
//! partitions whose segments start at data points, which is the quantity the
//! paper uses as hardness.

use crate::model::LinearModel;
use gre_core::Key;

/// One segment of a piecewise linear approximation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaSegment {
    /// Index (rank) of the first key covered by this segment.
    pub start_rank: usize,
    /// Number of keys covered.
    pub len: usize,
    /// First key covered (model-space value).
    pub first_key: f64,
    /// The ε-approximate model for this segment, expressed over model-space
    /// keys and *global* ranks (i.e. `model.predict(key) ≈ rank`).
    pub model: LinearModel,
}

impl PlaSegment {
    /// Rank one past the last key covered.
    pub fn end_rank(&self) -> usize {
        self.start_rank + self.len
    }
}

/// Internal builder maintaining the feasible slope cone for one segment.
struct ConeBuilder {
    origin_x: f64,
    origin_y: f64,
    start_rank: usize,
    len: usize,
    slope_low: f64,
    slope_high: f64,
}

impl ConeBuilder {
    fn new(x: f64, rank: usize) -> Self {
        ConeBuilder {
            origin_x: x,
            origin_y: rank as f64,
            start_rank: rank,
            len: 1,
            slope_low: f64::NEG_INFINITY,
            slope_high: f64::INFINITY,
        }
    }

    /// Try to extend with the next point `(x, rank)`. Returns `false` if the
    /// feasible cone would become empty (the caller must start a new
    /// segment at this point).
    fn try_add(&mut self, x: f64, rank: usize, eps: f64) -> bool {
        let dx = x - self.origin_x;
        let dy = rank as f64 - self.origin_y;
        if dx <= 0.0 {
            // Duplicate key in model space: representable as long as the rank
            // difference stays within 2ε of something the cone can absorb at
            // dx = 0, which only holds when dy ≤ ε (a vertical jump cannot be
            // fit by any finite-slope line beyond the error bound).
            if dy.abs() <= eps {
                self.len += 1;
                return true;
            }
            return false;
        }
        let lo = (dy - eps) / dx;
        let hi = (dy + eps) / dx;
        let new_low = self.slope_low.max(lo);
        let new_high = self.slope_high.min(hi);
        if new_low > new_high {
            return false;
        }
        self.slope_low = new_low;
        self.slope_high = new_high;
        self.len += 1;
        true
    }

    fn finish(&self) -> PlaSegment {
        // Pick the midpoint of the final cone; any slope in the cone is
        // ε-approximate. For singleton segments fall back to slope 0.
        let slope = if self.slope_low.is_finite() && self.slope_high.is_finite() {
            0.5 * (self.slope_low + self.slope_high)
        } else if self.slope_high.is_finite() {
            self.slope_high
        } else if self.slope_low.is_finite() {
            self.slope_low
        } else {
            0.0
        };
        let intercept = self.origin_y - slope * self.origin_x;
        PlaSegment {
            start_rank: self.start_rank,
            len: self.len,
            first_key: self.origin_x,
            model: LinearModel::new(slope, intercept),
        }
    }
}

/// Compute the ε-approximate PLA of `keys` (which must be sorted ascending).
///
/// Returns the segment list; `segments.len()` is the hardness `H(ε)`.
pub fn optimal_pla<K: Key>(keys: &[K], eps: u64) -> Vec<PlaSegment> {
    optimal_pla_f64(keys.iter().map(|k| k.to_model_input()), eps as f64)
}

/// PLA over already-converted model-space key values.
pub fn optimal_pla_f64<I: IntoIterator<Item = f64>>(keys: I, eps: f64) -> Vec<PlaSegment> {
    let mut segments = Vec::new();
    let mut builder: Option<ConeBuilder> = None;
    for (rank, x) in keys.into_iter().enumerate() {
        match builder.as_mut() {
            None => builder = Some(ConeBuilder::new(x, rank)),
            Some(b) => {
                if !b.try_add(x, rank, eps) {
                    segments.push(b.finish());
                    builder = Some(ConeBuilder::new(x, rank));
                }
            }
        }
    }
    if let Some(b) = builder {
        segments.push(b.finish());
    }
    segments
}

/// Number of ε-approximate segments (the hardness value `H_PLA(ε)`).
pub fn segment_count<K: Key>(keys: &[K], eps: u64) -> usize {
    optimal_pla(keys, eps).len()
}

/// Verify that a segmentation is ε-approximate for the given keys.
/// Used by tests and by the PGM-Index build path as a debug assertion.
pub fn validate_pla<K: Key>(keys: &[K], segments: &[PlaSegment], eps: u64) -> bool {
    let eps = eps as f64;
    let mut covered = 0usize;
    for seg in segments {
        if seg.start_rank != covered {
            return false;
        }
        for rank in seg.start_rank..seg.end_rank() {
            let Some(k) = keys.get(rank) else {
                return false;
            };
            let predicted = seg.model.predict(*k);
            // Allow a whisker of floating-point slack on top of ε.
            if (predicted - rank as f64).abs() > eps + 1e-6 {
                return false;
            }
        }
        covered = seg.end_rank();
    }
    covered == keys.len()
}

/// Locate the segment covering `key` via binary search on `first_key`.
/// Returns the index of the last segment whose first key is `<= key`
/// (or 0 when `key` precedes every segment).
pub fn locate_segment(segments: &[PlaSegment], key: f64) -> usize {
    if segments.is_empty() {
        return 0;
    }
    match segments.binary_search_by(|s| {
        s.first_key
            .partial_cmp(&key)
            .unwrap_or(std::cmp::Ordering::Less)
    }) {
        Ok(i) => i,
        Err(0) => 0,
        Err(i) => i - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranks_within_eps(keys: &[u64], eps: u64) {
        let segs = optimal_pla(keys, eps);
        assert!(validate_pla(keys, &segs, eps), "PLA violates ε = {eps}");
    }

    #[test]
    fn linear_data_needs_one_segment() {
        let keys: Vec<u64> = (0..10_000).map(|i| i * 7 + 3).collect();
        let segs = optimal_pla(&keys, 8);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len, keys.len());
        ranks_within_eps(&keys, 8);
    }

    #[test]
    fn piecewise_data_needs_multiple_segments() {
        // Two regimes with very different densities force at least 2 segments
        // at a tight epsilon.
        let mut keys: Vec<u64> = (0..5_000u64).collect();
        keys.extend((0..5_000u64).map(|i| 1_000_000 + i * 10_000));
        let tight = optimal_pla(&keys, 2);
        let loose = optimal_pla(&keys, 4096);
        assert!(tight.len() >= 2);
        assert!(loose.len() <= tight.len());
        ranks_within_eps(&keys, 2);
        ranks_within_eps(&keys, 4096);
    }

    #[test]
    fn hardness_decreases_with_epsilon() {
        // A bumpy quadratic-ish distribution.
        let keys: Vec<u64> = (0..20_000u64)
            .map(|i| i * 100 + (i % 37) * (i % 53))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let h8 = segment_count(&sorted, 8);
        let h32 = segment_count(&sorted, 32);
        let h4096 = segment_count(&sorted, 4096);
        assert!(h8 >= h32);
        assert!(h32 >= h4096);
        assert!(h4096 >= 1);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u64> = vec![];
        assert!(optimal_pla(&empty, 32).is_empty());
        let one = vec![5u64];
        let segs = optimal_pla(&one, 32);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len, 1);
        assert!(validate_pla(&one, &segs, 32));
        let two = vec![5u64, 1_000_000u64];
        let segs = optimal_pla(&two, 0);
        assert!(validate_pla(&two, &segs, 0));
    }

    #[test]
    fn duplicate_keys_are_absorbed_within_eps() {
        let mut keys = vec![10u64; 5];
        keys.extend([20u64; 5]);
        // With eps = 8 the 5 duplicates (rank spread 4) fit in one segment.
        let segs = optimal_pla(&keys, 8);
        assert!(validate_pla(&keys, &segs, 8));
        // With eps = 1 the duplicates force extra segments.
        let tight = optimal_pla(&keys, 1);
        assert!(tight.len() > segs.len());
    }

    #[test]
    fn locate_segment_finds_covering_segment() {
        let keys: Vec<u64> = (0..1000u64)
            .map(|i| {
                if i < 500 {
                    i
                } else {
                    1_000_000 + (i - 500) * 1000
                }
            })
            .collect();
        let segs = optimal_pla(&keys, 4);
        assert!(segs.len() >= 2);
        let idx = locate_segment(&segs, 0.0);
        assert_eq!(idx, 0);
        let idx = locate_segment(&segs, 1_200_000.0);
        assert!(segs[idx].first_key <= 1_200_000.0);
        // Keys before the first segment clamp to 0.
        assert_eq!(locate_segment(&segs, -5.0), 0);
        assert_eq!(locate_segment(&[], 3.0), 0);
    }

    #[test]
    fn segments_partition_the_input() {
        let keys: Vec<u64> = (0..3000u64).map(|i| i * i).collect();
        let segs = optimal_pla(&keys, 16);
        let total: usize = segs.iter().map(|s| s.len).sum();
        assert_eq!(total, keys.len());
        for w in segs.windows(2) {
            assert_eq!(w[0].end_rank(), w[1].start_rank);
            assert!(w[0].first_key <= w[1].first_key);
        }
    }
}
