//! Figure 13: range-query throughput (million keys scanned per second) under
//! varying scan sizes from 10 to 10,000.
use gre_bench::{registry::single_thread_indexes, RunOpts};
use gre_datasets::Dataset;
use gre_workloads::{run_single, WorkloadBuilder};

fn main() {
    let opts = RunOpts::from_env();
    let builder = WorkloadBuilder::new(opts.seed);
    let scan_sizes = [10usize, 100, 1_000, 10_000];
    println!("# Figure 13: range scan throughput (M keys/s)");
    print!("{:<10} {:<12}", "dataset", "index");
    for s in scan_sizes {
        print!(" {:>10}", s);
    }
    println!();
    for ds in Dataset::DRILLDOWN_DATASETS {
        let keys = ds.generate(opts.keys, opts.seed);
        for entry in single_thread_indexes() {
            if !entry.index.meta().supports_range {
                continue;
            }
            let mut row = format!("{:<10} {:<12}", ds.name(), entry.name);
            let mut index = entry.index;
            for &s in &scan_sizes {
                let queries = (opts.keys / s.max(10)).clamp(20, 2_000);
                let workload = builder.range_workload(&ds.name(), &keys, s, queries);
                let r = run_single(index.as_mut(), &workload);
                row.push_str(&format!(" {:>10.2}", r.scan_throughput_mkeys()));
            }
            println!("{row}");
        }
    }
}
