//! Scenario engine end to end: multi-phase workload scripts executed by the
//! typed `Scenario`/`Driver` API against the serving layer.
//!
//! Two scripts:
//!
//! * **shifting-hotspot** — three closed-loop phases whose hot key window
//!   drifts across the key space (start fraction 0.05 → 0.45 → 0.85) under
//!   a read-mostly mix, driven directly against the sharded composite. The
//!   per-phase throughput shows how the backend copes as the working set
//!   moves away from the regions it has adapted to.
//! * **read-mostly→write-burst** — two **open-loop** phases through
//!   pipelined `Session`s: a steady read-mostly phase at a fixed arrival
//!   rate, then a write-burst phase at a higher rate. Latency is measured
//!   from each op's *intended* send time (coordinated-omission-safe), so
//!   the burst's queueing delay is charged to the requests that suffered
//!   it. The binary asserts the achieved rate lands within 10% of the
//!   offered rate — the open-loop pacing contract.
//!
//! `--quick` shrinks spans and rates for a CI smoke run; `--verbose` prints
//! per-kind latency breakdowns.

use gre_bench::registry::IndexBuilder;
use gre_bench::report::{interval_series, print_phase_latency};
use gre_bench::RunOpts;
use gre_core::ops::RequestKind;
use gre_datasets::Dataset;
use gre_shard::SessionTarget;
use gre_workloads::driver::{Driver, PhaseResult, ScenarioResult};
use gre_workloads::scenario::{KeyDist, Mix, Pacing, Phase, Scenario, Span};

fn main() {
    let opts = RunOpts::from_env();
    let keys = Dataset::Covid.generate(opts.keys, opts.seed);
    let spec = IndexBuilder::backend("alex+")
        .expect("alex+ registered")
        .shards(opts.shards.min(8));

    println!(
        "# Scenario engine: phase scripts over {}",
        spec.display_name()
    );

    shifting_hotspot(&opts, &keys, &spec);
    read_mostly_then_write_burst(&opts, &keys, &spec);
}

/// Closed-loop script: the hot window drifts across the key space.
fn shifting_hotspot(opts: &RunOpts, keys: &[u64], spec: &IndexBuilder) {
    let phase_ops = if opts.quick { 40_000 } else { 400_000 } as u64;
    let threads = opts.threads.clamp(1, 8);
    let hotspot = |start: f64| KeyDist::Hotspot {
        start,
        span: 0.05,
        hot_access: 0.9,
    };
    let mix = Mix::read_mostly(10);
    let scenario = Scenario::new("shifting-hotspot", opts.seed, keys)
        .phase(Phase::new(
            "hot@0.05",
            mix,
            hotspot(0.05),
            Span::Ops(phase_ops),
            Pacing::ClosedLoop { threads },
        ))
        .phase(Phase::new(
            "hot@0.45",
            mix,
            hotspot(0.45),
            Span::Ops(phase_ops),
            Pacing::ClosedLoop { threads },
        ))
        .phase(Phase::new(
            "hot@0.85",
            mix,
            hotspot(0.85),
            Span::Ops(phase_ops),
            Pacing::ClosedLoop { threads },
        ));

    let mut index = spec.build_sharded();
    let result = Driver::new().run(&scenario, &mut index);
    print_scenario(opts, &result);
    let total: u64 = result.total_ops();
    assert_eq!(
        total,
        3 * phase_ops,
        "every phase must run its full op budget"
    );
}

/// Open-loop script through pipelined sessions: steady read-mostly, then a
/// write burst at a higher arrival rate.
fn read_mostly_then_write_burst(opts: &RunOpts, keys: &[u64], spec: &IndexBuilder) {
    let (steady_rate, burst_rate) = if opts.quick {
        (20_000.0, 40_000.0)
    } else {
        (100_000.0, 200_000.0)
    };
    // ~1.5s of steady traffic, ~1s of burst.
    let steady_ops = (steady_rate * 1.5) as u64;
    let burst_ops = burst_rate as u64;
    let scenario = Scenario::new("read-mostly->write-burst", opts.seed, keys)
        .phase(Phase::new(
            "steady",
            Mix::read_mostly(5),
            KeyDist::Zipf { theta: 0.99 },
            Span::Ops(steady_ops),
            Pacing::OpenLoop {
                rate_ops_s: steady_rate,
            },
        ))
        .phase(Phase::new(
            "burst",
            Mix::read_mostly(80),
            KeyDist::Uniform,
            Span::Ops(burst_ops),
            Pacing::OpenLoop {
                rate_ops_s: burst_rate,
            },
        ));

    let mut target = SessionTarget::new(spec.build_sharded(), opts.threads.clamp(1, 8), 64, 8);
    let result = Driver::new()
        .open_loop_senders(opts.threads.clamp(1, 4))
        .run(&scenario, &mut target);
    print_scenario(opts, &result);

    for phase in &result.phases {
        let offered = phase.offered_rate.expect("both phases are open-loop");
        let achieved = phase.achieved_rate();
        let deviation = (achieved - offered).abs() / offered;
        println!(
            "  {}: offered {:.0} ops/s, achieved {:.0} ops/s (deviation {:.1}%), \
             p99 from intended send: get={:.1}us insert={:.1}us",
            phase.phase,
            offered,
            achieved,
            deviation * 100.0,
            phase.kind_summary(RequestKind::Get).p99_ns as f64 / 1e3,
            phase.kind_summary(RequestKind::Insert).p99_ns as f64 / 1e3,
        );
        assert!(
            deviation < 0.10,
            "{}: achieved rate {achieved:.0} deviates more than 10% from the \
             offered {offered:.0} ops/s",
            phase.phase
        );
        // Open loop times every completed op from its intended send time.
        assert_eq!(phase.latency.total_count(), phase.ops());
    }
    println!(
        "  burst interval series: {}",
        interval_series(result.phase("burst").expect("burst phase ran"), 8)
    );
}

fn print_scenario(opts: &RunOpts, result: &ScenarioResult) {
    println!("\n## {} on {}", result.scenario, result.target);
    println!(
        "{:<22} {:>8} {:>10} {:>9} {:>12} {:>12}",
        "phase", "threads", "ops", "Mop/s", "read p99 us", "write p99 us"
    );
    for phase in &result.phases {
        print_phase_row(phase);
        if opts.verbose {
            print_phase_latency("      ", phase);
        }
    }
}

fn print_phase_row(phase: &PhaseResult) {
    println!(
        "{:<22} {:>8} {:>10} {:>9.3} {:>12.1} {:>12.1}",
        phase.phase,
        phase.threads,
        phase.ops(),
        phase.throughput_mops(),
        phase.read_summary().p99_ns as f64 / 1e3,
        phase.write_summary().p99_ns as f64 / 1e3,
    );
}
