//! Live topology-change tests for the elasticity controller: split, merge,
//! and migrate against a running pipeline — quiesced exactness, concurrent
//! traffic, WAL handoff durability, and the rollback paths.

use gre_core::{ConcurrentIndex, IndexMeta, Payload, RangeSpec};
use gre_durability::util::TempDir;
use gre_durability::{DurableLog, FailAction, FailpointRegistry, Recovery, SyncPolicy, Trigger};
use gre_elastic::{ElasticController, ElasticError, ElasticPolicy, TopologyKind};
use gre_shard::{OpBatch, Partitioner, ShardPipeline, ShardedIndex, DEFAULT_QUEUE_CAPACITY};
use gre_telemetry::{CounterId, Telemetry};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

type Op = gre_core::ops::Request<u64>;

/// Minimal concurrent backend: a BTreeMap behind a lock.
#[derive(Default)]
struct MapBackend {
    map: RwLock<BTreeMap<u64, Payload>>,
}

impl ConcurrentIndex<u64> for MapBackend {
    fn bulk_load(&mut self, entries: &[(u64, Payload)]) {
        *self.map.get_mut() = entries.iter().copied().collect();
    }
    fn get(&self, key: u64) -> Option<Payload> {
        self.map.read().get(&key).copied()
    }
    fn insert(&self, key: u64, value: Payload) -> bool {
        self.map.write().insert(key, value).is_none()
    }
    fn update(&self, key: u64, value: Payload) -> bool {
        match self.map.write().get_mut(&key) {
            Some(v) => {
                *v = value;
                true
            }
            None => false,
        }
    }
    fn remove(&self, key: u64) -> Option<Payload> {
        self.map.write().remove(&key)
    }
    fn range(&self, spec: RangeSpec<u64>, out: &mut Vec<(u64, Payload)>) -> usize {
        let map = self.map.read();
        let before = out.len();
        out.extend(
            map.range(spec.start..)
                .take_while(|(k, _)| spec.end.map_or(true, |e| **k <= e))
                .take(spec.count)
                .map(|(k, v)| (*k, *v)),
        );
        out.len() - before
    }
    fn len(&self) -> usize {
        self.map.read().len()
    }
    fn memory_usage(&self) -> usize {
        self.map.read().len() * 48
    }
    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: "map-backend",
            learned: false,
            concurrent: true,
            supports_delete: true,
            supports_range: true,
        }
    }
}

fn entries(n: u64) -> Vec<(u64, Payload)> {
    (0..n).map(|i| (i * 7, i)).collect()
}

fn pipeline(
    shards: usize,
    n: u64,
    durability: Option<Arc<DurableLog>>,
) -> Arc<ShardPipeline<MapBackend>> {
    let mut idx = ShardedIndex::from_factory(Partitioner::range(shards), |_| MapBackend::default());
    idx.bulk_load(&entries(n));
    let telemetry = Telemetry::shared(shards, 3);
    Arc::new(ShardPipeline::with_services(
        Arc::new(idx),
        2,
        DEFAULT_QUEUE_CAPACITY,
        Some(telemetry),
        durability,
    ))
}

fn controller(p: &Arc<ShardPipeline<MapBackend>>) -> ElasticController<MapBackend> {
    ElasticController::new(Arc::clone(p), ElasticPolicy::default())
}

/// Every (key, value) the composite currently holds, via a full scan.
fn contents(index: &ShardedIndex<u64, MapBackend>) -> Vec<(u64, Payload)> {
    let mut out = Vec::new();
    index.range(RangeSpec::new(0, usize::MAX), &mut out);
    out
}

#[test]
fn split_moves_the_upper_half_and_stays_exact_when_quiesced() {
    const N: u64 = 8_000;
    let p = pipeline(4, N, None);
    let ctl = controller(&p);
    let before = contents(p.index());
    let lens_before = p.index().per_shard_lens();

    let change = ctl.split_hot(0).expect("split must succeed");
    assert_eq!(change.kind, TopologyKind::Split);
    assert_eq!(change.from, 0);
    assert_ne!(change.to, 0);
    assert_eq!(change.epoch, 1);
    assert_eq!(p.index().routing_epoch(), 1);
    assert!(change.keys_moved > 0);
    assert!(p.index().frozen_range().is_none(), "freeze must clear");

    // Quiesced exactness: the non-atomic per-shard len sum is exact once no
    // migration or writer is in flight (the documented len()/memory caveat).
    assert_eq!(p.index().len(), N as usize);
    assert_eq!(p.index().per_shard_lens().iter().sum::<usize>(), N as usize);
    assert!(p.index().memory_usage() >= N as usize * 48);
    assert_eq!(contents(p.index()), before, "no key lost or duplicated");

    // The moved range physically changed shards.
    let lens_after = p.index().per_shard_lens();
    assert_eq!(lens_after[0], lens_before[0] - change.keys_moved);
    assert_eq!(
        lens_after[change.to],
        lens_before[change.to] + change.keys_moved
    );

    // Telemetry observed the change.
    let snap = p.telemetry().expect("instrumented").snapshot();
    assert_eq!(snap.counter(CounterId::SplitsStarted), 1);
    assert_eq!(snap.counter(CounterId::SplitsCompleted), 1);
    assert_eq!(
        snap.counter(CounterId::KeysMigrated),
        change.keys_moved as u64
    );
    assert!(snap.counter(CounterId::MigrationPauseMicros) >= change.pause_micros);
    assert_eq!(ctl.changes(), vec![change]);
}

#[test]
fn merge_folds_a_segment_into_its_neighbour_and_stays_exact() {
    const N: u64 = 6_000;
    let p = pipeline(3, N, None);
    let ctl = controller(&p);
    let before = contents(p.index());
    let segments_before = p
        .index()
        .partitioner()
        .as_range()
        .expect("range scheme")
        .segments();

    let change = ctl.merge_coldest(1).expect("merge must succeed");
    assert_eq!(change.kind, TopologyKind::Merge);
    assert_eq!(change.from, 1);

    let after = p.index().partitioner();
    let rp = after.as_range().expect("range scheme");
    assert_eq!(
        rp.segments(),
        segments_before - 1,
        "coalescing removes the shared boundary"
    );
    assert!(
        rp.segments_of_shard(1).is_empty(),
        "shard 1's only segment was folded away"
    );
    // Post-merge quiesced exactness.
    assert_eq!(p.index().len(), N as usize);
    assert_eq!(contents(p.index()), before);
    let snap = p.telemetry().expect("instrumented").snapshot();
    assert_eq!(snap.counter(CounterId::MergesStarted), 1);
    assert_eq!(snap.counter(CounterId::MergesCompleted), 1);
}

#[test]
fn migrate_reassigns_a_segment_without_coalescing() {
    const N: u64 = 8_000;
    let p = pipeline(4, N, None);
    let ctl = controller(&p);
    // Segment 1 (shard 1) to shard 3: not adjacent to any shard-3 segment's
    // neighbour? Segment 2 is shard 2, segment 3 is shard 3 — segment 1 is
    // not adjacent to segment 3, so this is a migrate, not a merge.
    let change = ctl.move_segment(1, 3).expect("migrate must succeed");
    assert_eq!(change.kind, TopologyKind::Migrate);
    let after = p.index().partitioner();
    let rp = after.as_range().expect("range scheme");
    assert_eq!(rp.segments_of_shard(3).len(), 2);
    assert!(rp.segments_of_shard(1).is_empty());
    assert_eq!(p.index().len(), N as usize);
}

#[test]
fn split_under_live_traffic_loses_no_accepted_write() {
    const N: u64 = 8_000;
    const WRITERS: u64 = 3;
    const BATCHES: u64 = 40;
    const PER_BATCH: u64 = 32;
    let p = pipeline(4, N, None);
    let ctl = controller(&p);

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let p = Arc::clone(&p);
            s.spawn(move || {
                for b in 0..BATCHES {
                    // Fresh odd keys (bulk keys are multiples of 7 × even).
                    let ops: Vec<Op> = (0..PER_BATCH)
                        .map(|i| {
                            let k =
                                1_000_000 + (w * BATCHES * PER_BATCH + b * PER_BATCH + i) * 2 + 1;
                            Op::Insert(k, k ^ 0xabcd)
                        })
                        .collect();
                    // submit() parks on Migrating and retries after the
                    // swap, so every batch is eventually accepted.
                    let responses = p.submit(OpBatch::new(ops)).wait();
                    assert_eq!(responses.len(), PER_BATCH as usize);
                }
            });
        }
        // Concurrent topology changes while the writers run.
        let mut committed = 0;
        for round in 0..6 {
            match ctl.split_hot(round % 4) {
                Ok(_) => committed += 1,
                Err(ElasticError::InvalidRange(_)) | Err(ElasticError::AlreadyMigrating) => {}
                Err(e) => panic!("unexpected elastic error: {e}"),
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(committed > 0, "at least one split must land mid-traffic");
    });

    // Quiesced: every bulk key and every accepted insert must be present.
    let expected = N + WRITERS * BATCHES * PER_BATCH;
    assert_eq!(p.index().len() as u64, expected);
    for i in (0..N).step_by(97) {
        assert_eq!(p.index().get(i * 7), Some(i), "bulk key {i}");
    }
    for w in 0..WRITERS {
        for j in (0..BATCHES * PER_BATCH).step_by(53) {
            let k = 1_000_000 + (w * BATCHES * PER_BATCH + j) * 2 + 1;
            assert_eq!(p.index().get(k), Some(k ^ 0xabcd), "inserted key {k}");
        }
    }
}

#[test]
fn durable_split_survives_recovery_with_the_post_handoff_topology() {
    const N: u64 = 4_000;
    let dir = TempDir::new("elastic-durable-split");
    let log = DurableLog::create(dir.path(), 4, SyncPolicy::EveryGroup).unwrap();
    let p = pipeline(4, N, Some(Arc::clone(&log)));
    // Snapshot the bulk load per shard, as a durable serve target would.
    let partitioner = p.index().partitioner();
    let mut per_shard: Vec<Vec<(u64, u64)>> = vec![Vec::new(); 4];
    for (k, v) in entries(N) {
        per_shard[partitioner.shard_of(k)].push((k, v));
    }
    for (shard, chunk) in per_shard.iter().enumerate() {
        log.checkpoint(shard, chunk).unwrap();
    }

    let ctl = controller(&p);
    let change = ctl.split_hot(2).expect("split must succeed");
    // A couple of post-split writes into the moved range route to the new
    // owner and land in its WAL.
    let probe = change.lo.expect("split window has a lower bound") + 1;
    let responses = p.submit(OpBatch::new(vec![Op::Insert(probe, 777)])).wait();
    assert_eq!(responses.len(), 1);
    drop(p); // workers join; the log is released

    // Recovery must see a completed handoff and rebuild the exact state.
    drop(log);
    let rec = Recovery::recover(dir.path()).unwrap();
    assert!(rec.has_topology());
    let mut recovered: ShardedIndex<u64, MapBackend> =
        ShardedIndex::from_factory(Partitioner::range(4), |_| MapBackend::default());
    rec.replay_into(&mut recovered);
    assert_eq!(recovered.len(), N as usize + 1);
    assert_eq!(recovered.get(probe), Some(777));
    for i in (0..N).step_by(71) {
        assert_eq!(recovered.get(i * 7), Some(i));
    }
}

#[test]
fn wal_failure_rolls_back_and_the_source_keeps_the_range() {
    const N: u64 = 4_000;
    let dir = TempDir::new("elastic-wal-abort");
    let registry = FailpointRegistry::new();
    let log =
        DurableLog::create_injected(dir.path(), 4, SyncPolicy::EveryGroup, Arc::clone(&registry))
            .unwrap();
    let p = pipeline(4, N, Some(log));
    let ctl = controller(&p);
    let lens_before = p.index().per_shard_lens();
    let epoch_before = p.index().routing_epoch();

    // Shard 2 is the least-loaded target candidate? Target choice is
    // data-dependent; fail *every* shard's next append so whichever target
    // the controller picks, its `In` record errors.
    for shard in 0..4 {
        registry.script(
            &format!("wal/{shard}/append"),
            Trigger::OnHit(1),
            FailAction::Error,
        );
    }
    match ctl.split_hot(0) {
        Err(ElasticError::Wal(_)) => {}
        other => panic!("expected a WAL handoff failure, got {other:?}"),
    }
    // Rolled back: routing untouched, freeze cleared, every entry home.
    assert_eq!(p.index().routing_epoch(), epoch_before);
    assert!(p.index().frozen_range().is_none());
    assert_eq!(p.index().per_shard_lens(), lens_before);
    assert_eq!(p.index().len(), N as usize);
    let snap = p.telemetry().expect("instrumented").snapshot();
    assert_eq!(snap.counter(CounterId::SplitsStarted), 1);
    assert_eq!(snap.counter(CounterId::SplitsCompleted), 0);
    assert_eq!(snap.counter(CounterId::KeysMigrated), 0);
}

#[test]
fn hash_partitioning_is_rejected_as_unsupported() {
    let mut idx = ShardedIndex::from_factory(Partitioner::hash(4), |_| MapBackend::default());
    idx.bulk_load(&entries(1_000));
    let p = Arc::new(ShardPipeline::new(Arc::new(idx), 2));
    let ctl = controller(&p);
    match ctl.split_hot(0) {
        Err(ElasticError::UnsupportedScheme(s)) => assert_eq!(s, "hash"),
        other => panic!("expected UnsupportedScheme, got {other:?}"),
    }
    match ctl.move_segment(0, 1) {
        Err(ElasticError::UnsupportedScheme(_)) => {}
        other => panic!("expected UnsupportedScheme, got {other:?}"),
    }
}

#[test]
fn invalid_plans_are_rejected_before_any_freeze() {
    const N: u64 = 4_000;
    let p = pipeline(4, N, None);
    let ctl = controller(&p);
    // Moving a segment onto its own shard is a no-op, not a migration.
    let seg_target = {
        let part = p.index().partitioner();
        part.as_range().expect("range scheme").segment_target(1)
    };
    match ctl.move_segment(1, seg_target) {
        Err(ElasticError::InvalidRange(_)) => {}
        other => panic!("expected InvalidRange, got {other:?}"),
    }
    // A split key outside the segment is refused.
    match ctl.split_segment(0, u64::MAX, 1) {
        Err(ElasticError::InvalidRange(_)) => {}
        other => panic!("expected InvalidRange, got {other:?}"),
    }
    // Nothing was frozen by the failed attempts.
    assert!(p.index().frozen_range().is_none());
    assert_eq!(p.index().routing_epoch(), 0);
}

#[test]
fn an_active_freeze_makes_concurrent_changes_wait_their_turn() {
    const N: u64 = 4_000;
    let p = pipeline(4, N, None);
    let ctl = controller(&p);
    // Simulate another in-flight migration by freezing a window directly.
    p.index().freeze_range(Some(1), Some(2)).unwrap();
    match ctl.split_hot(0) {
        Err(ElasticError::AlreadyMigrating) => {}
        other => panic!("expected AlreadyMigrating, got {other:?}"),
    }
    p.index().abort_freeze();
    ctl.split_hot(0)
        .expect("split proceeds once the freeze lifts");
}

/// Checkpoint the bulk load per shard, as a durable serve target would, so
/// recovery has a base snapshot to replay handoffs against.
fn checkpoint_bulk(log: &DurableLog, partitioner: &Partitioner<u64>, n: u64) {
    let mut per_shard: Vec<Vec<(u64, u64)>> = vec![Vec::new(); 4];
    for (k, v) in entries(n) {
        per_shard[partitioner.shard_of(k)].push((k, v));
    }
    for (shard, chunk) in per_shard.iter().enumerate() {
        log.checkpoint(shard, chunk).unwrap();
    }
}

/// Acceptance: kill-and-recover across a split boundary. The process dies
/// in the classic window — the target's `In` records are synced but the
/// source's `Out` commit record never persists. Recovery must come back
/// under the *pre*-handoff topology: the `In` records are discarded, the
/// source's replay keeps the whole range, and no key is lost or duplicated.
#[test]
fn a_crash_between_in_and_out_recovers_the_pre_handoff_topology() {
    const N: u64 = 4_000;
    let dir = TempDir::new("elastic-crash-window");
    let registry = FailpointRegistry::new();
    // split_hot(2) migrates *from* shard 2, and checkpoints bypass the
    // append point, so the first `wal/2/append` is the Out commit record.
    registry.script("wal/2/append", Trigger::OnHit(1), FailAction::Crash);
    let log =
        DurableLog::create_injected(dir.path(), 4, SyncPolicy::EveryGroup, Arc::clone(&registry))
            .unwrap();
    let p = pipeline(4, N, Some(Arc::clone(&log)));
    checkpoint_bulk(&log, &p.index().partitioner(), N);

    let ctl = controller(&p);
    match ctl.split_hot(2) {
        Err(ElasticError::Wal(_)) => {}
        other => panic!("expected the Out append to crash, got {other:?}"),
    }
    assert!(
        registry.fired("wal/2/append"),
        "the kill window was exercised"
    );
    drop(p);
    drop(log);

    let rec = Recovery::recover(dir.path()).unwrap();
    assert!(
        rec.has_topology(),
        "the orphaned In records survived the kill"
    );
    let mut recovered: ShardedIndex<u64, MapBackend> =
        ShardedIndex::from_factory(Partitioner::range(4), |_| MapBackend::default());
    rec.replay_into(&mut recovered);
    assert_eq!(
        contents(&recovered),
        entries(N),
        "pre-handoff topology, every key exactly once"
    );
}

/// Same kill window, uglier failure: the `Out` record is torn mid-write
/// (only its first bytes reach the disk). A torn commit point must read as
/// *absent*, not as garbage: recovery discards the tail and again lands on
/// the pre-handoff topology.
#[test]
fn a_torn_out_record_reads_as_absent_and_recovers_pre_handoff() {
    const N: u64 = 4_000;
    let dir = TempDir::new("elastic-torn-out");
    let registry = FailpointRegistry::new();
    registry.script(
        "wal/2/append",
        Trigger::OnHit(1),
        FailAction::ShortWrite { keep: 7 },
    );
    let log =
        DurableLog::create_injected(dir.path(), 4, SyncPolicy::EveryGroup, Arc::clone(&registry))
            .unwrap();
    let p = pipeline(4, N, Some(Arc::clone(&log)));
    checkpoint_bulk(&log, &p.index().partitioner(), N);

    let ctl = controller(&p);
    match ctl.split_hot(2) {
        Err(ElasticError::Wal(_)) => {}
        other => panic!("expected the torn Out to fail the handoff, got {other:?}"),
    }
    drop(p);
    drop(log);

    let rec = Recovery::recover(dir.path()).unwrap();
    rec.truncate_torn_tails().unwrap();
    let mut recovered: ShardedIndex<u64, MapBackend> =
        ShardedIndex::from_factory(Partitioner::range(4), |_| MapBackend::default());
    rec.replay_into(&mut recovered);
    assert_eq!(
        contents(&recovered),
        entries(N),
        "a torn commit point must not tip recovery into the post-handoff topology"
    );
}
