//! Per-shard write-ahead logs with group commit.
//!
//! [`DurableLog`] owns one append-only log per shard. The serving pipeline
//! already batches operations into per-shard sub-batches ("groups"), so the
//! natural group-commit unit falls out for free: **one WAL record per
//! group**, logged and synced *before* the group executes in memory
//! (log-then-execute). Because each shard's groups are processed FIFO by the
//! pipeline, each shard's log is a faithful serial history of that shard's
//! accepted writes — no cross-shard ordering is needed, since every key
//! routes to exactly one shard.
//!
//! ## Durability contract
//!
//! * Under [`SyncPolicy::EveryGroup`], a group's record is durable before
//!   [`DurableLog::log_group`] returns `Ok`. Combined with log-then-execute,
//!   every client-visible response corresponds to a durable record: recovery
//!   rebuilds **exactly** the acknowledged state.
//! * Under [`SyncPolicy::EveryN`], sync barriers are amortized over `n`
//!   groups. Recovery still rebuilds a *prefix-consistent* state (a clean
//!   per-shard prefix of accepted groups), but up to `n - 1` acknowledged
//!   groups per shard may be lost in a crash. This is the classic
//!   group-commit latency/durability dial; the recovery benchmark quantifies
//!   the throughput gap.
//! * Any sink failure **fail-stops the shard's log**: the failed group is
//!   reported as not-logged (the pipeline answers it with a shutdown error
//!   and executes nothing), and every later group on that shard fails too.
//!   In-memory state therefore never runs ahead of what the log accepted.
//!
//! ## Checkpoints
//!
//! [`DurableLog::checkpoint`] writes a CRC-trailed snapshot of a shard's
//! entries (tmp + rename), then truncates that shard's WAL. Sequence numbers
//! keep counting across checkpoints, so recovery can tell a stale WAL (crash
//! between the snapshot rename and the truncate) from fresh records by
//! comparing record seq against the snapshot's `last_seq`.

use crate::failpoint::{FailpointRegistry, InjectingSink};
use crate::snapshot;
use crate::storage::{FileSink, WalSink};
use gre_core::Request;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

/// How often group commits are made durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// A durability barrier after every group: `log_group` returning `Ok`
    /// means the group survives any crash.
    EveryGroup,
    /// A barrier every `n` groups per shard (and on checkpoint/shutdown).
    /// Up to `n - 1` acknowledged groups per shard may be lost in a crash.
    EveryN(u32),
    /// Time-based group commit: a shard's unsynced groups are made durable
    /// within `ms` milliseconds of the *first* unsynced append — by the
    /// append path once the interval has elapsed, and by a background
    /// flusher thread for idle shards. Acknowledged groups younger than the
    /// interval may be lost in a crash; nothing older can be.
    EveryMillis(u64),
}

/// Why a group could not be logged.
#[derive(Debug)]
pub enum WalError {
    /// The sink failed while logging this group. The shard's log is now
    /// fail-stopped; the group was not made durable and must not execute.
    Io(io::Error),
    /// The shard's log already fail-stopped on an earlier error.
    Failed,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal write failed: {e}"),
            WalError::Failed => write!(f, "wal already fail-stopped"),
        }
    }
}

impl std::error::Error for WalError {}

/// Receipt for one successfully logged group.
#[derive(Debug, Clone, Copy)]
pub struct GroupReceipt {
    /// The group sequence number the record carries.
    pub seq: u64,
    /// Framed record size in bytes.
    pub bytes: usize,
    /// Durability barriers issued while logging this group (0 or 1).
    pub fsyncs: u64,
}

/// Aggregate counters across all shards.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalStats {
    /// Records appended (one per logged group).
    pub appends: u64,
    /// Durability barriers issued.
    pub fsyncs: u64,
}

struct ShardWal {
    sink: Box<dyn WalSink>,
    /// Seq the *next* logged group will carry. Monotone across checkpoints.
    next_seq: u64,
    /// Groups appended since the last durability barrier.
    unsynced: u32,
    /// When the oldest unsynced append happened (drives `EveryMillis`).
    first_unsynced: Option<Instant>,
    failed: bool,
    /// Encode scratch, reused across groups.
    buf: Vec<u8>,
}

impl ShardWal {
    fn barrier(&mut self) -> io::Result<()> {
        self.sink.sync()?;
        self.unsynced = 0;
        self.first_unsynced = None;
        Ok(())
    }
}

/// The durability tier: one WAL per shard, group commit, checkpoints.
pub struct DurableLog {
    dir: PathBuf,
    shards: Vec<Mutex<ShardWal>>,
    policy: SyncPolicy,
    registry: Option<Arc<FailpointRegistry>>,
    appends: AtomicU64,
    fsyncs: AtomicU64,
}

/// File name of the per-directory manifest recording the log layout.
pub const MANIFEST: &str = "MANIFEST";

pub(crate) fn wal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.wal"))
}

fn write_manifest(dir: &Path, shards: usize) -> io::Result<()> {
    let body = format!("gre-wal v1\nshards {shards}\n");
    std::fs::write(dir.join(MANIFEST), body)
}

/// Parse the manifest in `dir`; returns the shard count.
pub fn read_manifest(dir: &Path) -> io::Result<usize> {
    let body = std::fs::read_to_string(dir.join(MANIFEST))?;
    let mut lines = body.lines();
    if lines.next() != Some("gre-wal v1") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unrecognized wal manifest header",
        ));
    }
    lines
        .next()
        .and_then(|l| l.strip_prefix("shards "))
        .and_then(|n| n.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad wal manifest shard count"))
}

impl DurableLog {
    /// Create (or re-open empty) per-shard logs under `dir`. For resuming
    /// after recovery, use [`crate::recover::Recovery::resume`], which seeds
    /// sequence numbers past the recovered history.
    pub fn create(dir: &Path, shards: usize, policy: SyncPolicy) -> io::Result<Arc<DurableLog>> {
        Self::build(dir, shards, policy, None, None)
    }

    /// As [`DurableLog::create`], but every sink is wrapped in a fault
    /// injector consulting `registry` at points `wal/{shard}/{op}` (and
    /// snapshots at `snapshot/{shard}/commit`).
    pub fn create_injected(
        dir: &Path,
        shards: usize,
        policy: SyncPolicy,
        registry: Arc<FailpointRegistry>,
    ) -> io::Result<Arc<DurableLog>> {
        Self::build(dir, shards, policy, Some(registry), None)
    }

    pub(crate) fn build(
        dir: &Path,
        shards: usize,
        policy: SyncPolicy,
        registry: Option<Arc<FailpointRegistry>>,
        next_seqs: Option<&[u64]>,
    ) -> io::Result<Arc<DurableLog>> {
        assert!(shards > 0, "a durable log needs at least one shard");
        match policy {
            SyncPolicy::EveryN(n) => assert!(n > 0, "SyncPolicy::EveryN(0) would never sync"),
            SyncPolicy::EveryMillis(ms) => {
                assert!(ms > 0, "SyncPolicy::EveryMillis(0) is EveryGroup, use that")
            }
            SyncPolicy::EveryGroup => {}
        }
        std::fs::create_dir_all(dir)?;
        write_manifest(dir, shards)?;
        let mut shard_wals = Vec::with_capacity(shards);
        for shard in 0..shards {
            let file = FileSink::open(&wal_path(dir, shard))?;
            let sink: Box<dyn WalSink> = match &registry {
                Some(reg) => Box::new(InjectingSink::new(
                    file,
                    Arc::clone(reg),
                    format!("wal/{shard}"),
                )),
                None => Box::new(file),
            };
            shard_wals.push(Mutex::new(ShardWal {
                sink,
                next_seq: next_seqs.map_or(1, |s| s[shard]),
                unsynced: 0,
                first_unsynced: None,
                failed: false,
                buf: Vec::new(),
            }));
        }
        let log = Arc::new(DurableLog {
            dir: dir.to_path_buf(),
            shards: shard_wals,
            policy,
            registry,
            appends: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
        });
        if let SyncPolicy::EveryMillis(ms) = policy {
            // Detached flusher holding only a Weak: it syncs idle shards on
            // a tick no longer than the interval (so the loss window stays
            // bounded by it) and exits once the log is dropped. The append
            // path handles busy shards itself, so a tick usually finds
            // nothing pending.
            let weak: Weak<DurableLog> = Arc::downgrade(&log);
            let tick = Duration::from_millis(ms.clamp(1, 50));
            std::thread::spawn(move || loop {
                std::thread::sleep(tick);
                match weak.upgrade() {
                    Some(log) => {
                        let _ = log.sync_all();
                    }
                    None => break,
                }
            });
        }
        Ok(log)
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    fn shard(&self, shard: usize) -> std::sync::MutexGuard<'_, ShardWal> {
        self.shards[shard].lock().expect("shard wal poisoned")
    }

    /// Log one group of write operations for `shard`. Must be called
    /// *before* the group executes in memory; an `Err` means the group was
    /// **not** made durable and must not execute (the shard's log is now
    /// fail-stopped).
    pub fn log_group(&self, shard: usize, ops: &[Request<u64>]) -> Result<GroupReceipt, WalError> {
        let mut wal = self.shard(shard);
        if wal.failed {
            return Err(WalError::Failed);
        }
        let seq = wal.next_seq;
        let mut buf = std::mem::take(&mut wal.buf);
        buf.clear();
        let bytes = crate::record::encode_record(seq, ops, &mut buf);
        let appended = wal.sink.append(&buf);
        wal.buf = buf;
        if let Err(e) = appended {
            wal.failed = true;
            return Err(WalError::Io(e));
        }
        wal.unsynced += 1;
        if wal.first_unsynced.is_none() {
            wal.first_unsynced = Some(Instant::now());
        }
        let must_sync = match self.policy {
            SyncPolicy::EveryGroup => true,
            SyncPolicy::EveryN(n) => wal.unsynced >= n,
            SyncPolicy::EveryMillis(ms) => wal
                .first_unsynced
                .is_some_and(|t| t.elapsed() >= Duration::from_millis(ms)),
        };
        let mut fsyncs = 0;
        if must_sync {
            if let Err(e) = wal.barrier() {
                wal.failed = true;
                return Err(WalError::Io(e));
            }
            fsyncs = 1;
        }
        wal.next_seq = seq + 1;
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.fsyncs.fetch_add(fsyncs, Ordering::Relaxed);
        Ok(GroupReceipt { seq, bytes, fsyncs })
    }

    /// Log one topology (range-handoff) record for `shard` and sync it
    /// **unconditionally**, whatever the sync policy: handoff records are
    /// the migration's commit point, so they are never allowed to sit in an
    /// unsynced window. The elasticity controller writes the target's `In`
    /// record(s) first, then the source's `Out` — an `Out` on disk therefore
    /// proves the whole handoff is durable.
    pub fn log_topology(
        &self,
        shard: usize,
        topo: &crate::record::TopologyRecord,
    ) -> Result<GroupReceipt, WalError> {
        let mut wal = self.shard(shard);
        if wal.failed {
            return Err(WalError::Failed);
        }
        let seq = wal.next_seq;
        let mut buf = std::mem::take(&mut wal.buf);
        buf.clear();
        let bytes = crate::record::encode_topology(seq, topo, &mut buf);
        let appended = wal.sink.append(&buf);
        wal.buf = buf;
        if let Err(e) = appended {
            wal.failed = true;
            return Err(WalError::Io(e));
        }
        if let Err(e) = wal.barrier() {
            wal.failed = true;
            return Err(WalError::Io(e));
        }
        wal.next_seq = seq + 1;
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(GroupReceipt {
            seq,
            bytes,
            fsyncs: 1,
        })
    }

    /// Issue a durability barrier on every healthy shard (shutdown path and
    /// pre-checkpoint). Returns the first error; failed shards are skipped.
    pub fn sync_all(&self) -> Result<(), WalError> {
        let mut first_err = None;
        for shard in 0..self.shards.len() {
            let mut wal = self.shard(shard);
            if wal.failed {
                continue;
            }
            if wal.unsynced > 0 {
                if let Err(e) = wal.barrier() {
                    wal.failed = true;
                    if first_err.is_none() {
                        first_err = Some(WalError::Io(e));
                    }
                    continue;
                }
                self.fsyncs.fetch_add(1, Ordering::Relaxed);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Snapshot `entries` as shard `shard`'s full state and truncate its
    /// WAL. The caller must guarantee the shard is **quiesced**: `entries`
    /// reflects exactly the state after the last logged group, and no group
    /// is logged concurrently. A crash between the snapshot rename and the
    /// WAL truncate leaves both on disk; recovery reconciles them by seq.
    pub fn checkpoint(&self, shard: usize, entries: &[(u64, u64)]) -> Result<(), WalError> {
        let mut wal = self.shard(shard);
        if wal.failed {
            return Err(WalError::Failed);
        }
        // Everything the snapshot covers must be durable before the rename
        // publishes a snapshot claiming to cover it.
        if wal.unsynced > 0 {
            if let Err(e) = wal.barrier() {
                wal.failed = true;
                return Err(WalError::Io(e));
            }
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        let last_seq = wal.next_seq - 1;
        if let Err(e) = snapshot::write_snapshot(
            &self.dir,
            shard,
            last_seq,
            entries,
            self.registry.as_deref(),
        ) {
            wal.failed = true;
            return Err(WalError::Io(e));
        }
        if let Err(e) = wal.sink.truncate() {
            wal.failed = true;
            return Err(WalError::Io(e));
        }
        Ok(())
    }

    /// Whether `shard`'s log has fail-stopped.
    pub fn is_failed(&self, shard: usize) -> bool {
        self.shard(shard).failed
    }

    /// The seq the next group on `shard` would carry.
    pub fn next_seq(&self, shard: usize) -> u64 {
        self.shard(shard).next_seq
    }

    pub fn stats(&self) -> WalStats {
        WalStats {
            appends: self.appends.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failpoint::{FailAction, Trigger};
    use crate::record::decode_record;
    use crate::util::TempDir;

    fn ops(base: u64) -> Vec<Request<u64>> {
        vec![Request::Insert(base, base * 10), Request::Remove(base + 1)]
    }

    #[test]
    fn logged_groups_are_readable_framed_records() {
        let dir = TempDir::new("wal-basic");
        let log = DurableLog::create(dir.path(), 2, SyncPolicy::EveryGroup).unwrap();
        let r1 = log.log_group(0, &ops(1)).unwrap();
        let r2 = log.log_group(0, &ops(2)).unwrap();
        let other = log.log_group(1, &ops(9)).unwrap();
        assert_eq!((r1.seq, r2.seq), (1, 2), "per-shard monotone seqs");
        assert_eq!(other.seq, 1, "shards number independently");
        assert_eq!(r1.fsyncs, 1, "EveryGroup syncs each group");

        let bytes = std::fs::read(wal_path(dir.path(), 0)).unwrap();
        let first = decode_record(&bytes, 0).unwrap();
        assert_eq!((first.seq, first.ops.clone()), (1, ops(1)));
        let second = decode_record(&bytes, first.frame_len).unwrap();
        assert_eq!((second.seq, second.ops.clone()), (2, ops(2)));
        assert_eq!(first.frame_len + second.frame_len, bytes.len());

        let stats = log.stats();
        assert_eq!((stats.appends, stats.fsyncs), (3, 3));
    }

    #[test]
    fn every_n_amortizes_barriers() {
        let dir = TempDir::new("wal-everyn");
        let log = DurableLog::create(dir.path(), 1, SyncPolicy::EveryN(3)).unwrap();
        assert_eq!(log.log_group(0, &ops(1)).unwrap().fsyncs, 0);
        assert_eq!(log.log_group(0, &ops(2)).unwrap().fsyncs, 0);
        assert_eq!(log.log_group(0, &ops(3)).unwrap().fsyncs, 1);
        assert_eq!(log.log_group(0, &ops(4)).unwrap().fsyncs, 0);
        assert_eq!(log.stats().fsyncs, 1);
        log.sync_all().unwrap();
        assert_eq!(log.stats().fsyncs, 2);
        log.sync_all().unwrap();
        assert_eq!(log.stats().fsyncs, 2, "no pending bytes, no barrier");
    }

    #[test]
    fn sink_failure_fail_stops_the_shard_only() {
        let dir = TempDir::new("wal-failstop");
        let registry = FailpointRegistry::new();
        registry.script("wal/0/sync", Trigger::OnHit(2), FailAction::Crash);
        let log = DurableLog::create_injected(
            dir.path(),
            2,
            SyncPolicy::EveryGroup,
            Arc::clone(&registry),
        )
        .unwrap();
        log.log_group(0, &ops(1)).unwrap();
        assert!(matches!(log.log_group(0, &ops(2)), Err(WalError::Io(_))));
        assert!(log.is_failed(0));
        assert!(matches!(log.log_group(0, &ops(3)), Err(WalError::Failed)));
        // The sibling shard is unaffected.
        assert!(!log.is_failed(1));
        log.log_group(1, &ops(4)).unwrap();
        // Only the synced first group reached disk.
        let bytes = std::fs::read(wal_path(dir.path(), 0)).unwrap();
        let first = decode_record(&bytes, 0).unwrap();
        assert_eq!(first.seq, 1);
        assert_eq!(first.frame_len, bytes.len());
    }

    #[test]
    fn checkpoint_truncates_and_seqs_keep_counting() {
        let dir = TempDir::new("wal-checkpoint");
        let log = DurableLog::create(dir.path(), 1, SyncPolicy::EveryGroup).unwrap();
        log.log_group(0, &ops(1)).unwrap();
        log.log_group(0, &ops(2)).unwrap();
        log.checkpoint(0, &[(1, 10), (7, 70)]).unwrap();
        assert_eq!(
            std::fs::read(wal_path(dir.path(), 0)).unwrap().len(),
            0,
            "checkpoint truncates the wal"
        );
        let receipt = log.log_group(0, &ops(3)).unwrap();
        assert_eq!(receipt.seq, 3, "seq survives the checkpoint");
        let snap = snapshot::read_snapshot(&snapshot::snapshot_path(dir.path(), 0))
            .expect("snapshot readable");
        assert_eq!(snap.last_seq, 2);
        assert_eq!(snap.entries, vec![(1, 10), (7, 70)]);
    }

    #[test]
    fn every_millis_bounds_the_loss_window_by_the_interval() {
        let dir = TempDir::new("wal-everymillis");
        const INTERVAL_MS: u64 = 40;
        let log = DurableLog::create(dir.path(), 1, SyncPolicy::EveryMillis(INTERVAL_MS)).unwrap();
        // Within the interval nothing syncs: the append path issues no
        // barrier and the sink buffers in-process, so a crash right now
        // would lose the group — that loss is the policy's contract.
        let receipt = log.log_group(0, &ops(1)).unwrap();
        assert_eq!(receipt.fsyncs, 0, "no barrier inside the interval");
        // With no further appends, the background flusher must make the
        // group durable within the interval (plus scheduling slack): poll
        // the on-disk log until the record shows up.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let bytes = std::fs::read(wal_path(dir.path(), 0)).unwrap();
            if !bytes.is_empty() {
                let rec = decode_record(&bytes, 0).unwrap();
                assert_eq!((rec.seq, rec.ops.clone()), (1, ops(1)));
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "flusher never synced an idle shard"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        // The stats counter ticks just after the barrier itself; give it
        // the same deadline.
        while log.stats().fsyncs == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "flusher sync never reached the stats counter"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // Same bound for later windows: a second group is durable within
        // the interval of its append, whichever path (inline or flusher)
        // issues the barrier.
        log.log_group(0, &ops(2)).unwrap(); // fresh window opens here
        std::thread::sleep(Duration::from_millis(INTERVAL_MS + 10));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let bytes = std::fs::read(wal_path(dir.path(), 0)).unwrap();
            let first = decode_record(&bytes, 0).unwrap();
            if first.frame_len < bytes.len() {
                let second = decode_record(&bytes, first.frame_len).unwrap();
                assert_eq!((second.seq, second.ops.clone()), (2, ops(2)));
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "second window never became durable"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn topology_records_always_sync_and_share_the_seq_chain() {
        use crate::record::{TopologyDirection, TopologyRecord};
        let dir = TempDir::new("wal-topology");
        // Deliberately a lazy policy: the topology record must sync anyway.
        let log = DurableLog::create(dir.path(), 2, SyncPolicy::EveryN(100)).unwrap();
        assert_eq!(log.log_group(0, &ops(1)).unwrap().fsyncs, 0);
        let topo = TopologyRecord {
            dir: TopologyDirection::Out,
            id: 7,
            lo: 100,
            hi: Some(200),
            peer: 1,
            entries: Vec::new(),
        };
        let receipt = log.log_topology(0, &topo).unwrap();
        assert_eq!(receipt.seq, 2, "topology records continue the seq chain");
        assert_eq!(receipt.fsyncs, 1, "handoffs sync unconditionally");
        // The preceding lazy group rode the same barrier: both records are
        // on disk now.
        let bytes = std::fs::read(wal_path(dir.path(), 0)).unwrap();
        let first = decode_record(&bytes, 0).unwrap();
        assert!(first.topology.is_none());
        let second = decode_record(&bytes, first.frame_len).unwrap();
        assert_eq!(second.topology, Some(topo));
        assert_eq!(log.log_group(0, &ops(2)).unwrap().seq, 3);
    }

    #[test]
    fn manifest_round_trips() {
        let dir = TempDir::new("wal-manifest");
        let _ = DurableLog::create(dir.path(), 5, SyncPolicy::EveryGroup).unwrap();
        assert_eq!(read_manifest(dir.path()).unwrap(), 5);
        assert!(read_manifest(&dir.path().join("nope")).is_err());
    }
}
