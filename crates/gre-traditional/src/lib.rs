//! # gre-traditional
//!
//! From-scratch Rust implementations of the traditional in-memory indexes
//! the paper compares against (§3.1):
//!
//! * [`btree`] — STX-style B+-tree with leaf side-links.
//! * [`art`] — Adaptive Radix Tree with the four adaptive node types.
//! * [`hot`] — simplified height-optimised trie (compact nibble trie).
//! * [`masstree`] — simplified Masstree (single-layer trie of B+-trees).
//! * [`wormhole`] — simplified hash-accelerated ordered index.
//! * [`concurrent`] — the concurrent derivatives used by the multi-threaded
//!   experiments (B+TreeOLC, ART-OLC, HOT-ROWEX, Masstree, Wormhole).

pub mod art;
pub mod btree;
pub mod concurrent;
pub mod hot;
pub mod masstree;
pub mod wormhole;

pub use art::Art;
pub use btree::{BPlusTree, BPlusTreeConfig};
pub use concurrent::{
    art_olc, btree_olc, hot_rowex, masstree_concurrent, wormhole_concurrent, ArtOlc, BPlusTreeOlc,
    HotRowex, InnerLockIndex, MasstreeConcurrent, Sharded, WormholeConcurrent,
};
pub use hot::Hot;
pub use masstree::Masstree;
pub use wormhole::Wormhole;
