//! Workload execution and measurement.
//!
//! The harness executes a [`Workload`] against an index and reports
//! throughput plus tail latency. Latencies are sampled from 1% of the
//! operations (as in §6.1) to keep the measurement overhead negligible.
//! Multi-threaded runs split the request stream evenly across threads, which
//! matches the paper's setup of independent client threads hammering the
//! index.

use crate::spec::{Op, OpKind, Workload};
use gre_core::{ConcurrentIndex, Index};
use std::time::Instant;

/// Fraction of operations whose latency is sampled: one in every N ops.
/// An odd prime stride avoids aliasing with the read/write interleaving
/// pattern of the generated request streams.
pub const LATENCY_SAMPLE_RATE: usize = 101;

/// Summary statistics over a set of sampled latencies (nanoseconds).
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    pub samples: usize,
    pub mean_ns: f64,
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    pub max_ns: u64,
    pub std_ns: f64,
}

impl LatencySummary {
    /// Build a summary from raw samples (order irrelevant).
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let sum: u128 = samples.iter().map(|&v| v as u128).sum();
        let mean = sum as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        LatencySummary {
            samples: n,
            mean_ns: mean,
            p50_ns: percentile(&samples, 0.50),
            p99_ns: percentile(&samples, 0.99),
            p999_ns: percentile(&samples, 0.999),
            max_ns: samples[n - 1],
            std_ns: var.sqrt(),
        }
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The result of executing one workload on one index.
#[derive(Debug, Clone, Default)]
pub struct RunResult {
    /// Index name.
    pub index: String,
    /// Workload name.
    pub workload: String,
    /// Threads used.
    pub threads: usize,
    /// Number of timed operations executed.
    pub ops: usize,
    /// Wall-clock time of the timed phase in nanoseconds.
    pub elapsed_ns: u64,
    /// Bulk-load time in nanoseconds.
    pub bulk_load_ns: u64,
    /// Lookup hits observed (sanity check that the workload makes sense).
    pub hits: usize,
    /// Keys returned by range scans.
    pub scanned_keys: usize,
    /// Lookup latency summary (sampled).
    pub read_latency: LatencySummary,
    /// Write (insert/update/remove) latency summary (sampled).
    pub write_latency: LatencySummary,
    /// End-to-end index memory after the run, in bytes.
    pub memory_bytes: usize,
}

impl RunResult {
    /// Throughput in million operations per second.
    pub fn throughput_mops(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.ops as f64 / (self.elapsed_ns as f64 / 1e9) / 1e6
    }

    /// Throughput in keys scanned per second (for range workloads, which the
    /// paper reports as "M keys/s").
    pub fn scan_throughput_mkeys(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.scanned_keys as f64 / (self.elapsed_ns as f64 / 1e9) / 1e6
    }
}

/// Execute a workload on a single-threaded index.
pub fn run_single<I: Index<u64> + ?Sized>(index: &mut I, workload: &Workload) -> RunResult {
    let bulk_timer = Instant::now();
    index.bulk_load(&workload.bulk);
    let bulk_load_ns = bulk_timer.elapsed().as_nanos() as u64;

    let mut hits = 0usize;
    let mut scanned = 0usize;
    let mut read_samples = Vec::new();
    let mut write_samples = Vec::new();
    let mut scan_buf: Vec<(u64, u64)> = Vec::new();

    let timer = Instant::now();
    for (i, op) in workload.ops.iter().enumerate() {
        let sample = i % LATENCY_SAMPLE_RATE == 0;
        let start = if sample { Some(Instant::now()) } else { None };
        match *op {
            Op::Get(k) => {
                if index.get(k).is_some() {
                    hits += 1;
                }
            }
            Op::Insert(k, v) => {
                index.insert(k, v);
            }
            Op::Update(k, v) => {
                index.update(k, v);
            }
            Op::Remove(k) => {
                index.remove(k);
            }
            Op::Range(spec) => {
                scan_buf.clear();
                scanned += index.range(spec, &mut scan_buf);
            }
        }
        if let Some(start) = start {
            let ns = start.elapsed().as_nanos() as u64;
            match op.kind() {
                OpKind::Get | OpKind::Range => read_samples.push(ns),
                _ => write_samples.push(ns),
            }
        }
    }
    let elapsed_ns = timer.elapsed().as_nanos() as u64;

    RunResult {
        index: index.meta().name.to_string(),
        workload: workload.name.clone(),
        threads: 1,
        ops: workload.ops.len(),
        elapsed_ns,
        bulk_load_ns,
        hits,
        scanned_keys: scanned,
        read_latency: LatencySummary::from_samples(read_samples),
        write_latency: LatencySummary::from_samples(write_samples),
        memory_bytes: index.memory_usage(),
    }
}

/// Execute a workload on a concurrent index with `threads` worker threads.
///
/// The request stream is split into `threads` contiguous chunks; each thread
/// executes its chunk independently (the paper's client threads likewise
/// issue independent request streams).
pub fn run_concurrent<I: ConcurrentIndex<u64> + ?Sized>(
    index: &mut I,
    workload: &Workload,
    threads: usize,
) -> RunResult {
    let threads = threads.max(1);
    let bulk_timer = Instant::now();
    index.bulk_load(&workload.bulk);
    let bulk_load_ns = bulk_timer.elapsed().as_nanos() as u64;

    let chunk_size = workload.ops.len().div_ceil(threads).max(1);
    let chunks: Vec<&[Op]> = workload.ops.chunks(chunk_size).collect();

    struct ThreadOutcome {
        hits: usize,
        scanned: usize,
        read_samples: Vec<u64>,
        write_samples: Vec<u64>,
    }

    let shared: &I = index;
    let timer = Instant::now();
    let outcomes: Vec<ThreadOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let mut hits = 0usize;
                    let mut scanned = 0usize;
                    let mut read_samples = Vec::new();
                    let mut write_samples = Vec::new();
                    let mut scan_buf: Vec<(u64, u64)> = Vec::new();
                    for (i, op) in chunk.iter().enumerate() {
                        let sample = i % LATENCY_SAMPLE_RATE == 0;
                        let start = if sample { Some(Instant::now()) } else { None };
                        match *op {
                            Op::Get(k) => {
                                if shared.get(k).is_some() {
                                    hits += 1;
                                }
                            }
                            Op::Insert(k, v) => {
                                shared.insert(k, v);
                            }
                            Op::Update(k, v) => {
                                shared.update(k, v);
                            }
                            Op::Remove(k) => {
                                shared.remove(k);
                            }
                            Op::Range(spec) => {
                                scan_buf.clear();
                                scanned += shared.range(spec, &mut scan_buf);
                            }
                        }
                        if let Some(start) = start {
                            let ns = start.elapsed().as_nanos() as u64;
                            match op.kind() {
                                OpKind::Get | OpKind::Range => read_samples.push(ns),
                                _ => write_samples.push(ns),
                            }
                        }
                    }
                    ThreadOutcome {
                        hits,
                        scanned,
                        read_samples,
                        write_samples,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    let elapsed_ns = timer.elapsed().as_nanos() as u64;

    let mut hits = 0;
    let mut scanned = 0;
    let mut read_samples = Vec::new();
    let mut write_samples = Vec::new();
    for o in outcomes {
        hits += o.hits;
        scanned += o.scanned;
        read_samples.extend(o.read_samples);
        write_samples.extend(o.write_samples);
    }

    RunResult {
        index: index.meta().name.to_string(),
        workload: workload.name.clone(),
        threads,
        ops: workload.ops.len(),
        elapsed_ns,
        bulk_load_ns,
        hits,
        scanned_keys: scanned,
        read_latency: LatencySummary::from_samples(read_samples),
        write_latency: LatencySummary::from_samples(write_samples),
        memory_bytes: index.memory_usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::WorkloadBuilder;
    use crate::spec::WriteRatio;
    use gre_core::index::MutexIndex;
    use gre_core::{IndexMeta, Payload, RangeSpec};
    use std::collections::BTreeMap;

    /// Reference index used to exercise the runner.
    #[derive(Default)]
    struct MapIndex {
        map: BTreeMap<u64, Payload>,
    }

    impl Index<u64> for MapIndex {
        fn bulk_load(&mut self, entries: &[(u64, Payload)]) {
            self.map = entries.iter().copied().collect();
        }
        fn get(&self, key: u64) -> Option<Payload> {
            self.map.get(&key).copied()
        }
        fn insert(&mut self, key: u64, value: Payload) -> bool {
            self.map.insert(key, value).is_none()
        }
        fn remove(&mut self, key: u64) -> Option<Payload> {
            self.map.remove(&key)
        }
        fn range(&self, spec: RangeSpec<u64>, out: &mut Vec<(u64, Payload)>) -> usize {
            let before = out.len();
            out.extend(
                self.map
                    .range(spec.start..)
                    .take(spec.count)
                    .map(|(k, v)| (*k, *v)),
            );
            out.len() - before
        }
        fn len(&self) -> usize {
            self.map.len()
        }
        fn memory_usage(&self) -> usize {
            self.map.len() * 48
        }
        fn meta(&self) -> IndexMeta {
            IndexMeta {
                name: "map",
                learned: false,
                concurrent: false,
                supports_delete: true,
                supports_range: true,
            }
        }
    }

    fn keys(n: u64) -> Vec<u64> {
        (1..=n).map(|i| i * 13).collect()
    }

    #[test]
    fn single_threaded_run_counts_hits() {
        let b = WorkloadBuilder::new(1);
        let w = b.insert_workload("test", &keys(2000), WriteRatio::ReadOnly);
        let mut idx = MapIndex::default();
        let r = run_single(&mut idx, &w);
        assert_eq!(r.ops, w.ops.len());
        assert_eq!(r.hits, w.ops.len(), "all read-only lookups must hit");
        assert!(r.throughput_mops() > 0.0);
        assert!(r.memory_bytes > 0);
        assert_eq!(r.threads, 1);
    }

    #[test]
    fn balanced_run_ends_with_all_keys_present() {
        let b = WorkloadBuilder::new(2);
        let all = keys(2000);
        let w = b.insert_workload("test", &all, WriteRatio::Balanced);
        let mut idx = MapIndex::default();
        run_single(&mut idx, &w);
        assert_eq!(idx.len(), all.len());
    }

    #[test]
    fn scan_workload_counts_keys() {
        let b = WorkloadBuilder::new(3);
        let w = b.range_workload("test", &keys(1000), 50, 20);
        let mut idx = MapIndex::default();
        let r = run_single(&mut idx, &w);
        assert!(r.scanned_keys > 0);
        assert!(r.scan_throughput_mkeys() > 0.0);
    }

    #[test]
    fn concurrent_run_matches_single_thread_outcome() {
        let b = WorkloadBuilder::new(4);
        let all = keys(4000);
        let w = b.insert_workload("test", &all, WriteRatio::Balanced);
        let mut conc = MutexIndex::new(MapIndex::default(), "map-mutex");
        let r = run_concurrent(&mut conc, &w, 4);
        assert_eq!(r.threads, 4);
        assert_eq!(ConcurrentIndex::len(&conc), all.len());
        assert!(r.read_latency.samples > 0);
        assert!(r.write_latency.samples > 0);
    }

    #[test]
    fn latency_summary_statistics() {
        let s = LatencySummary::from_samples(vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 1000]);
        assert_eq!(s.samples, 10);
        assert_eq!(s.max_ns, 1000);
        assert!(s.p999_ns >= s.p99_ns && s.p99_ns >= s.p50_ns);
        assert!(s.std_ns > 0.0);
        assert!(s.mean_ns > 0.0);
        let empty = LatencySummary::from_samples(vec![]);
        assert_eq!(empty.samples, 0);
        assert_eq!(empty.p999_ns, 0);
    }

    #[test]
    fn delete_workload_shrinks_the_index() {
        let b = WorkloadBuilder::new(5);
        let all = keys(2000);
        let w = b.delete_workload("test", &all, 0.5);
        let mut idx = MapIndex::default();
        run_single(&mut idx, &w);
        assert_eq!(idx.len(), all.len() - all.len() / 2);
    }
}
