//! Cross-target model equivalence for the scenario engine: the same seeded
//! [`Scenario`] driven through all three [`ServeTarget`] implementations —
//! the bare sharded composite, the batched [`PipelineTarget`], and the
//! pipelined [`SessionTarget`] — must leave identical final index contents,
//! and those contents must match a `BTreeMap` model fed the same generated
//! op streams.
//!
//! The scenario's writes are *commutative by construction* (inserts and
//! updates both store the canonical `payload_for(key)`, and no phase
//! removes), so the final contents are independent of cross-thread
//! interleaving: any divergence between targets is a real serving-layer
//! bug, not scheduling noise.

use gre_core::{ConcurrentIndex, Payload, RangeSpec};
use gre_learned::AlexPlus;
use gre_shard::{Partitioner, PipelineTarget, SessionTarget, ShardedIndex};
use gre_traditional::btree_olc;
use gre_workloads::scenario::{phase_stream, KeyDist, Mix, Pacing, Phase, Scenario, Span};
use gre_workloads::spec::payload_for;
use gre_workloads::{Driver, Op};
use std::collections::BTreeMap;
use std::sync::Arc;

type DynBackend = Box<dyn ConcurrentIndex<u64>>;
type BackendFactory = fn() -> DynBackend;

fn backends() -> Vec<(&'static str, BackendFactory)> {
    vec![
        ("ALEX+", || Box::new(AlexPlus::<u64>::new())),
        ("B+treeOLC", || Box::new(btree_olc::<u64>())),
    ]
}

fn sharded(factory: BackendFactory) -> ShardedIndex<u64, DynBackend> {
    ShardedIndex::from_factory(Partitioner::range(4), |_| factory())
}

/// A two-phase script mixing lookups, commutative writes, and cross-shard
/// scans, with the hotspot drifting between phases.
fn scenario() -> Scenario {
    let keys: Vec<u64> = (1..=6_000u64).map(|i| i * 32).collect();
    Scenario::new("equivalence", 0xC0FFEE, &keys)
        .phase(Phase::new(
            "warm",
            Mix::points(4, 2, 1, 0).with_range(1, 24),
            KeyDist::Hotspot {
                start: 0.1,
                span: 0.1,
                hot_access: 0.8,
            },
            Span::Ops(8_000),
            Pacing::ClosedLoop { threads: 3 },
        ))
        .phase(Phase::new(
            "shifted",
            Mix::points(2, 3, 1, 0).with_range(1, 24),
            KeyDist::Hotspot {
                start: 0.6,
                span: 0.1,
                hot_access: 0.8,
            },
            Span::Ops(8_000),
            Pacing::ClosedLoop { threads: 3 },
        ))
}

/// Every key/payload pair stored by a target, via a full cross-shard scan.
fn contents(index: &ShardedIndex<u64, DynBackend>, name: &str) -> Vec<(u64, Payload)> {
    let mut out = Vec::new();
    let got = index.range(RangeSpec::new(0, index.len() + 1_000), &mut out);
    assert_eq!(got, index.len(), "{name}: scan covers the whole store");
    out
}

/// The model: apply every generated write, order-free (the scenario's
/// writes commute), replicating the driver's per-thread budget split.
fn model_contents(scenario: &Scenario) -> Vec<(u64, Payload)> {
    let mut model: BTreeMap<u64, Payload> = scenario.bulk.iter().copied().collect();
    let keys = Arc::new(scenario.loaded_keys());
    for (pi, phase) in scenario.phases.iter().enumerate() {
        let Pacing::ClosedLoop { threads } = phase.pacing else {
            panic!("model replay only supports closed-loop op budgets")
        };
        let Span::Ops(total) = phase.span else {
            panic!("model replay only supports op-count spans")
        };
        let base = total / threads as u64;
        let extra = (total % threads as u64) as usize;
        for t in 0..threads {
            let budget = base + u64::from(t < extra);
            let mut stream = phase_stream(scenario, &keys, pi, phase, t, threads);
            for _ in 0..budget {
                match stream.next_op().expect("synthetic streams are infinite") {
                    Op::Insert(k, v) => {
                        model.insert(k, v);
                    }
                    Op::Update(k, v) => {
                        if let Some(slot) = model.get_mut(&k) {
                            *slot = v;
                        }
                    }
                    Op::Remove(_) => panic!("equivalence scenario must not remove"),
                    Op::Get(_) | Op::Range(_) => {}
                }
            }
        }
    }
    model.into_iter().collect()
}

#[test]
fn same_scenario_yields_identical_contents_across_all_three_targets() {
    let scenario = scenario();
    let expected = model_contents(&scenario);
    let total_ops: u64 = 16_000;

    for (name, factory) in backends() {
        // Bare composite: driver threads hit the ConcurrentIndex directly.
        let mut bare = sharded(factory);
        let bare_result = Driver::new().run(&scenario, &mut bare);
        assert_eq!(bare_result.total_ops(), total_ops, "{name}/bare");
        let bare_contents = contents(&bare, name);

        // Batched pipeline: one batch in flight per driver thread.
        let mut pipeline = PipelineTarget::new(sharded(factory), 2, 256);
        let pipeline_result = Driver::new().run(&scenario, &mut pipeline);
        assert_eq!(pipeline_result.total_ops(), total_ops, "{name}/pipeline");
        let pipeline_contents = contents(pipeline.index(), name);

        // Pipelined sessions: up to 8 batches in flight per driver thread.
        let mut session = SessionTarget::new(sharded(factory), 2, 256, 8);
        let session_result = Driver::new().run(&scenario, &mut session);
        assert_eq!(session_result.total_ops(), total_ops, "{name}/session");
        let session_contents = contents(session.index(), name);

        assert_eq!(bare_contents, expected, "{name}: bare vs model");
        assert_eq!(pipeline_contents, expected, "{name}: pipeline vs model");
        assert_eq!(session_contents, expected, "{name}: session vs model");

        // All per-phase tallies agree across targets: the same offered
        // traffic produced the same typed outcomes everywhere.
        for (pb, (pp, ps)) in bare_result.phases.iter().zip(
            pipeline_result
                .phases
                .iter()
                .zip(session_result.phases.iter()),
        ) {
            assert_eq!(pb.tally.new_keys, pp.tally.new_keys, "{name}/{}", pb.phase);
            assert_eq!(pb.tally.new_keys, ps.tally.new_keys, "{name}/{}", pb.phase);
            assert_eq!(pb.tally.errors, 0, "{name}/{}", pb.phase);
            assert_eq!(pp.tally.errors, 0, "{name}/{}", pb.phase);
            assert_eq!(ps.tally.errors, 0, "{name}/{}", pb.phase);
        }
    }
}

#[test]
fn payloads_are_canonical_after_any_interleaving() {
    // Spot-check the commutativity premise itself: every stored payload is
    // the canonical function of its key, whichever write landed last.
    let scenario = scenario();
    let mut target = SessionTarget::new(sharded(backends()[0].1), 2, 128, 4);
    Driver::new().run(&scenario, &mut target);
    for (k, v) in contents(target.index(), "ALEX+") {
        assert_eq!(v, payload_for(k), "key {k}");
    }
}
