//! Figures 14/15: synthetic hardness-driven datasets and their heatmap.
use gre_bench::heatmap::{single_thread_heatmap, HeatmapMode};
use gre_bench::RunOpts;
use gre_datasets::Dataset;
use gre_pla::{DataHardness, HardnessConfig, SynthCorner};

fn main() {
    let opts = RunOpts::from_env();
    println!("# Figure 15: synthetic corner datasets");
    let datasets: Vec<Dataset> = SynthCorner::ALL
        .iter()
        .map(|c| Dataset::Synthetic(*c))
        .collect();
    for ds in &datasets {
        let keys = ds.generate(opts.keys, opts.seed);
        let h = DataHardness::compute_sampled(&keys, HardnessConfig::default(), 100_000);
        println!(
            "{:<20} H(eps=32) = {:<8} H(eps=4096) = {}",
            ds.name(),
            h.local,
            h.global
        );
    }
    let hm = single_thread_heatmap(
        "Figure 14: single-thread heatmap on synthetic datasets",
        &datasets,
        &opts,
        HeatmapMode::Inserts,
    );
    print!("{}", hm.render());
}
