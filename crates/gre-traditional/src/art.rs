//! Adaptive Radix Tree (ART).
//!
//! A radix tree over the big-endian byte representation of keys with the
//! four adaptive node types of the original paper (Node4 / Node16 / Node48 /
//! Node256) and path compression. ART is the strongest traditional baseline
//! of the study on integer keys ("because of its cache friendliness",
//! Message 2/§4.1).

use gre_core::{Index, IndexMeta, InsertStats, Key, OpCounters, Payload, RangeSpec, StatsSnapshot};

const KEY_BYTES: usize = 8;
const EMPTY48: u8 = 255;

#[derive(Debug)]
enum Node<K> {
    /// A single key/value pair. ART stores values in leaves; with fixed
    /// 8-byte keys we keep the full key for final comparison.
    Leaf { key: K, value: Payload },
    Node4 {
        prefix: Vec<u8>,
        keys: [u8; 4],
        children: [Option<Box<Node<K>>>; 4],
        count: u8,
    },
    Node16 {
        prefix: Vec<u8>,
        keys: [u8; 16],
        children: [Option<Box<Node<K>>>; 16],
        count: u8,
    },
    Node48 {
        prefix: Vec<u8>,
        child_index: [u8; 256],
        children: Vec<Option<Box<Node<K>>>>,
        count: u8,
    },
    Node256 {
        prefix: Vec<u8>,
        children: Vec<Option<Box<Node<K>>>>,
        count: u16,
    },
}

impl<K: Key> Node<K> {
    fn new_node4(prefix: Vec<u8>) -> Self {
        Node::Node4 {
            prefix,
            keys: [0; 4],
            children: [None, None, None, None],
            count: 0,
        }
    }

    fn prefix(&self) -> &[u8] {
        match self {
            Node::Leaf { .. } => &[],
            Node::Node4 { prefix, .. }
            | Node::Node16 { prefix, .. }
            | Node::Node48 { prefix, .. }
            | Node::Node256 { prefix, .. } => prefix,
        }
    }

    fn set_prefix(&mut self, new_prefix: Vec<u8>) {
        match self {
            Node::Leaf { .. } => {}
            Node::Node4 { prefix, .. }
            | Node::Node16 { prefix, .. }
            | Node::Node48 { prefix, .. }
            | Node::Node256 { prefix, .. } => *prefix = new_prefix,
        }
    }

    fn is_full(&self) -> bool {
        match self {
            Node::Leaf { .. } => true,
            Node::Node4 { count, .. } => *count as usize >= 4,
            Node::Node16 { count, .. } => *count as usize >= 16,
            Node::Node48 { count, .. } => *count as usize >= 48,
            Node::Node256 { .. } => false,
        }
    }

    fn child_count(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Node4 { count, .. } | Node::Node16 { count, .. } | Node::Node48 { count, .. } => {
                *count as usize
            }
            Node::Node256 { count, .. } => *count as usize,
        }
    }

    fn find_child(&self, byte: u8) -> Option<&Node<K>> {
        match self {
            Node::Leaf { .. } => None,
            Node::Node4 {
                keys,
                children,
                count,
                ..
            } => (0..*count as usize)
                .find(|&i| keys[i] == byte)
                .and_then(|i| children[i].as_deref()),
            Node::Node16 {
                keys,
                children,
                count,
                ..
            } => (0..*count as usize)
                .find(|&i| keys[i] == byte)
                .and_then(|i| children[i].as_deref()),
            Node::Node48 {
                child_index,
                children,
                ..
            } => {
                let idx = child_index[byte as usize];
                if idx == EMPTY48 {
                    None
                } else {
                    children[idx as usize].as_deref()
                }
            }
            Node::Node256 { children, .. } => children[byte as usize].as_deref(),
        }
    }

    fn find_child_mut(&mut self, byte: u8) -> Option<&mut Box<Node<K>>> {
        match self {
            Node::Leaf { .. } => None,
            Node::Node4 {
                keys,
                children,
                count,
                ..
            } => {
                let c = *count as usize;
                (0..c)
                    .find(|&i| keys[i] == byte)
                    .and_then(move |i| children[i].as_mut())
            }
            Node::Node16 {
                keys,
                children,
                count,
                ..
            } => {
                let c = *count as usize;
                (0..c)
                    .find(|&i| keys[i] == byte)
                    .and_then(move |i| children[i].as_mut())
            }
            Node::Node48 {
                child_index,
                children,
                ..
            } => {
                let idx = child_index[byte as usize];
                if idx == EMPTY48 {
                    None
                } else {
                    children[idx as usize].as_mut()
                }
            }
            Node::Node256 { children, .. } => children[byte as usize].as_mut(),
        }
    }

    /// Add a child; the caller must have grown the node if it was full.
    fn add_child(&mut self, byte: u8, child: Box<Node<K>>) {
        match self {
            Node::Leaf { .. } => unreachable!("cannot add child to leaf"),
            Node::Node4 {
                keys,
                children,
                count,
                ..
            } => {
                let c = *count as usize;
                debug_assert!(c < 4);
                // Keep keys sorted for ordered iteration.
                let pos = keys[..c].iter().position(|&k| k > byte).unwrap_or(c);
                for i in (pos..c).rev() {
                    keys[i + 1] = keys[i];
                    children[i + 1] = children[i].take();
                }
                keys[pos] = byte;
                children[pos] = Some(child);
                *count += 1;
            }
            Node::Node16 {
                keys,
                children,
                count,
                ..
            } => {
                let c = *count as usize;
                debug_assert!(c < 16);
                let pos = keys[..c].iter().position(|&k| k > byte).unwrap_or(c);
                for i in (pos..c).rev() {
                    keys[i + 1] = keys[i];
                    children[i + 1] = children[i].take();
                }
                keys[pos] = byte;
                children[pos] = Some(child);
                *count += 1;
            }
            Node::Node48 {
                child_index,
                children,
                count,
                ..
            } => {
                debug_assert!((*count as usize) < 48);
                let slot = children
                    .iter()
                    .position(Option::is_none)
                    .unwrap_or_else(|| {
                        children.push(None);
                        children.len() - 1
                    });
                children[slot] = Some(child);
                child_index[byte as usize] = slot as u8;
                *count += 1;
            }
            Node::Node256 {
                children, count, ..
            } => {
                if children[byte as usize].is_none() {
                    *count += 1;
                }
                children[byte as usize] = Some(child);
            }
        }
    }

    /// Remove the child for `byte`, returning it.
    fn remove_child(&mut self, byte: u8) -> Option<Box<Node<K>>> {
        match self {
            Node::Leaf { .. } => None,
            Node::Node4 {
                keys,
                children,
                count,
                ..
            } => {
                let c = *count as usize;
                let pos = keys[..c].iter().position(|&k| k == byte)?;
                let removed = children[pos].take();
                for i in pos..c - 1 {
                    keys[i] = keys[i + 1];
                    children[i] = children[i + 1].take();
                }
                *count -= 1;
                removed
            }
            Node::Node16 {
                keys,
                children,
                count,
                ..
            } => {
                let c = *count as usize;
                let pos = keys[..c].iter().position(|&k| k == byte)?;
                let removed = children[pos].take();
                for i in pos..c - 1 {
                    keys[i] = keys[i + 1];
                    children[i] = children[i + 1].take();
                }
                *count -= 1;
                removed
            }
            Node::Node48 {
                child_index,
                children,
                count,
                ..
            } => {
                let idx = child_index[byte as usize];
                if idx == EMPTY48 {
                    return None;
                }
                child_index[byte as usize] = EMPTY48;
                *count -= 1;
                children[idx as usize].take()
            }
            Node::Node256 {
                children, count, ..
            } => {
                let removed = children[byte as usize].take();
                if removed.is_some() {
                    *count -= 1;
                }
                removed
            }
        }
    }

    /// Grow to the next larger node type, preserving children.
    fn grow(&mut self) {
        let prefix = self.prefix().to_vec();
        let old = std::mem::replace(self, Node::new_node4(Vec::new()));
        *self = match old {
            Node::Node4 {
                keys,
                mut children,
                count,
                ..
            } => {
                let mut n = Node::Node16 {
                    prefix,
                    keys: [0; 16],
                    children: Default::default(),
                    count: 0,
                };
                for i in 0..count as usize {
                    n.add_child(keys[i], children[i].take().expect("present child"));
                }
                n
            }
            Node::Node16 {
                keys,
                mut children,
                count,
                ..
            } => {
                let mut n = Node::Node48 {
                    prefix,
                    child_index: [EMPTY48; 256],
                    children: Vec::with_capacity(48),
                    count: 0,
                };
                for i in 0..count as usize {
                    n.add_child(keys[i], children[i].take().expect("present child"));
                }
                n
            }
            Node::Node48 {
                child_index,
                mut children,
                ..
            } => {
                let mut n = Node::Node256 {
                    prefix,
                    children: (0..256).map(|_| None).collect(),
                    count: 0,
                };
                for (byte, &idx) in child_index.iter().enumerate() {
                    if idx != EMPTY48 {
                        n.add_child(byte as u8, children[idx as usize].take().expect("present"));
                    }
                }
                n
            }
            other => other,
        };
    }

    /// Children in ascending byte order (for ordered scans).
    fn ordered_children(&self) -> Vec<(u8, &Node<K>)> {
        match self {
            Node::Leaf { .. } => Vec::new(),
            Node::Node4 {
                keys,
                children,
                count,
                ..
            } => (0..*count as usize)
                .map(|i| (keys[i], children[i].as_deref().expect("present")))
                .collect(),
            Node::Node16 {
                keys,
                children,
                count,
                ..
            } => (0..*count as usize)
                .map(|i| (keys[i], children[i].as_deref().expect("present")))
                .collect(),
            Node::Node48 {
                child_index,
                children,
                ..
            } => (0..256usize)
                .filter_map(|b| {
                    let idx = child_index[b];
                    if idx == EMPTY48 {
                        None
                    } else {
                        Some((b as u8, children[idx as usize].as_deref().expect("present")))
                    }
                })
                .collect(),
            Node::Node256 { children, .. } => (0..256usize)
                .filter_map(|b| children[b].as_deref().map(|c| (b as u8, c)))
                .collect(),
        }
    }

    /// The only remaining child (used to collapse one-child Node4s on delete).
    fn take_single_child(&mut self) -> Option<(u8, Box<Node<K>>)> {
        match self {
            Node::Node4 {
                keys,
                children,
                count,
                ..
            } if *count == 1 => Some((keys[0], children[0].take().expect("present"))),
            _ => None,
        }
    }

    fn memory(&self) -> usize {
        let base = std::mem::size_of::<Self>();
        match self {
            Node::Leaf { .. } => base,
            Node::Node4 { prefix, .. } | Node::Node16 { prefix, .. } => base + prefix.capacity(),
            Node::Node48 {
                prefix, children, ..
            } => {
                base + prefix.capacity()
                    + children.capacity() * std::mem::size_of::<Option<Box<Node<K>>>>()
            }
            Node::Node256 {
                prefix, children, ..
            } => {
                base + prefix.capacity()
                    + children.capacity() * std::mem::size_of::<Option<Box<Node<K>>>>()
            }
        }
    }

    /// Total memory of this subtree.
    fn subtree_memory(&self) -> usize {
        let mut total = self.memory();
        for (_, child) in self.ordered_children() {
            total += child.subtree_memory();
        }
        total
    }
}

/// The Adaptive Radix Tree.
#[derive(Debug)]
pub struct Art<K> {
    root: Option<Box<Node<K>>>,
    len: usize,
    counters: OpCounters,
    last_insert: InsertStats,
}

impl<K: Key> Default for Art<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key> Art<K> {
    pub fn new() -> Self {
        Art {
            root: None,
            len: 0,
            counters: OpCounters::default(),
            last_insert: InsertStats::default(),
        }
    }

    fn key_bytes(key: K) -> [u8; KEY_BYTES] {
        key.to_radix_bytes()
    }

    /// Length of the common prefix of `a` and `b`.
    fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
        a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
    }

    fn get_inner(&self, key: K) -> (Option<Payload>, u64) {
        let bytes = Self::key_bytes(key);
        let mut node = match &self.root {
            Some(n) => n.as_ref(),
            None => return (None, 0),
        };
        let mut depth = 0usize;
        let mut traversed = 1u64;
        loop {
            match node {
                Node::Leaf {
                    key: leaf_key,
                    value,
                } => {
                    return if *leaf_key == key {
                        (Some(*value), traversed)
                    } else {
                        (None, traversed)
                    };
                }
                _ => {
                    let prefix = node.prefix();
                    if Self::common_prefix_len(prefix, &bytes[depth..]) < prefix.len() {
                        return (None, traversed);
                    }
                    depth += prefix.len();
                    if depth >= KEY_BYTES {
                        return (None, traversed);
                    }
                    match node.find_child(bytes[depth]) {
                        Some(child) => {
                            node = child;
                            depth += 1;
                            traversed += 1;
                        }
                        None => return (None, traversed),
                    }
                }
            }
        }
    }

    fn insert_recursive(
        node: &mut Box<Node<K>>,
        key: K,
        bytes: &[u8; KEY_BYTES],
        value: Payload,
        depth: usize,
        stats: &mut InsertStats,
    ) -> bool {
        stats.nodes_traversed += 1;
        match node.as_mut() {
            Node::Leaf {
                key: leaf_key,
                value: leaf_value,
            } => {
                if *leaf_key == key {
                    *leaf_value = value;
                    return false;
                }
                // Split: replace this leaf with a Node4 holding both leaves
                // under their first diverging byte.
                let existing_bytes = Self::key_bytes(*leaf_key);
                let common = Self::common_prefix_len(&existing_bytes[depth..], &bytes[depth..]);
                let split_depth = depth + common;
                let prefix = bytes[depth..split_depth].to_vec();
                let old_leaf = std::mem::replace(node.as_mut(), Node::new_node4(prefix));
                node.add_child(existing_bytes[split_depth], Box::new(old_leaf));
                node.add_child(bytes[split_depth], Box::new(Node::Leaf { key, value }));
                stats.nodes_created += 2;
                stats.triggered_smo = true;
                true
            }
            _ => {
                let prefix = node.prefix().to_vec();
                let common = Self::common_prefix_len(&prefix, &bytes[depth..]);
                if common < prefix.len() {
                    // Prefix mismatch: split the prefix into a new parent.
                    let child_byte_existing = prefix[common];
                    let remaining_prefix = prefix[common + 1..].to_vec();
                    let old = std::mem::replace(
                        node.as_mut(),
                        Node::new_node4(bytes[depth..depth + common].to_vec()),
                    );
                    let mut old_boxed = Box::new(old);
                    old_boxed.set_prefix(remaining_prefix);
                    node.add_child(child_byte_existing, old_boxed);
                    node.add_child(bytes[depth + common], Box::new(Node::Leaf { key, value }));
                    stats.nodes_created += 2;
                    stats.triggered_smo = true;
                    return true;
                }
                let next_depth = depth + prefix.len();
                let byte = bytes[next_depth];
                if node.find_child_mut(byte).is_some() {
                    let child = node.find_child_mut(byte).expect("checked above");
                    return Self::insert_recursive(child, key, bytes, value, next_depth + 1, stats);
                }
                if node.is_full() {
                    node.grow();
                    stats.triggered_smo = true;
                }
                node.add_child(byte, Box::new(Node::Leaf { key, value }));
                stats.nodes_created += 1;
                true
            }
        }
    }

    fn remove_recursive(
        node: &mut Box<Node<K>>,
        key: K,
        bytes: &[u8; KEY_BYTES],
        depth: usize,
    ) -> (Option<Payload>, bool) {
        match node.as_mut() {
            Node::Leaf {
                key: leaf_key,
                value,
            } => {
                if *leaf_key == key {
                    (Some(*value), true) // caller removes this node
                } else {
                    (None, false)
                }
            }
            _ => {
                let prefix = node.prefix().to_vec();
                let common = Self::common_prefix_len(&prefix, &bytes[depth..]);
                if common < prefix.len() {
                    return (None, false);
                }
                let next_depth = depth + prefix.len();
                let byte = bytes[next_depth];
                let Some(child) = node.find_child_mut(byte) else {
                    return (None, false);
                };
                let (removed, remove_child) =
                    Self::remove_recursive(child, key, bytes, next_depth + 1);
                if remove_child {
                    node.remove_child(byte);
                    // Collapse a Node4 with a single remaining child into that
                    // child (path compression on the way back up).
                    if node.child_count() == 1 {
                        if let Some((b, mut only)) = node.take_single_child() {
                            let mut merged_prefix = prefix.clone();
                            merged_prefix.push(b);
                            merged_prefix.extend_from_slice(only.prefix());
                            only.set_prefix(merged_prefix);
                            **node = *only;
                        }
                    }
                }
                (removed, false)
            }
        }
    }

    /// Ordered DFS collecting entries with key >= `start`.
    fn collect_from(node: &Node<K>, start: K, count: usize, out: &mut Vec<(K, Payload)>) {
        if out.len() >= count {
            return;
        }
        match node {
            Node::Leaf { key, value } => {
                if *key >= start {
                    out.push((*key, *value));
                }
            }
            _ => {
                for (_, child) in node.ordered_children() {
                    if out.len() >= count {
                        return;
                    }
                    // Prune subtrees entirely below `start`: the maximum key in
                    // a subtree is bounded by its byte path; a cheap
                    // conservative check is to recurse only when the subtree
                    // could contain keys >= start, which we determine from the
                    // subtree's maximum leaf. To avoid extra bookkeeping we
                    // simply recurse; pruning happens at the leaf comparison.
                    Self::collect_from(child, start, count, out);
                }
            }
        }
    }
}

impl<K: Key> Index<K> for Art<K> {
    fn bulk_load(&mut self, entries: &[(K, Payload)]) {
        self.root = None;
        self.len = 0;
        for &(k, v) in entries {
            self.insert(k, v);
        }
        // Bulk loading is untimed in the harness; reset the counters so the
        // measured phase starts clean.
        self.counters = OpCounters::default();
    }

    fn get(&self, key: K) -> Option<Payload> {
        let (result, _) = self.get_inner(key);
        result
    }

    fn insert(&mut self, key: K, value: Payload) -> bool {
        let bytes = Self::key_bytes(key);
        let mut stats = InsertStats::default();
        let inserted = match &mut self.root {
            None => {
                self.root = Some(Box::new(Node::Leaf { key, value }));
                stats.nodes_created = 1;
                true
            }
            Some(root) => Self::insert_recursive(root, key, &bytes, value, 0, &mut stats),
        };
        if inserted {
            self.len += 1;
        }
        self.last_insert = stats;
        self.counters.record_insert(&stats);
        inserted
    }

    fn remove(&mut self, key: K) -> Option<Payload> {
        let bytes = Self::key_bytes(key);
        let result = match &mut self.root {
            None => None,
            Some(root) => {
                let (removed, remove_root) = Self::remove_recursive(root, key, &bytes, 0);
                if remove_root {
                    self.root = None;
                }
                removed
            }
        };
        if result.is_some() {
            self.len -= 1;
        }
        self.counters.record_remove(1);
        result
    }

    fn range(&self, spec: RangeSpec<K>, out: &mut Vec<(K, Payload)>) -> usize {
        let before = out.len();
        if let Some(root) = &self.root {
            let mut collected = Vec::new();
            Self::collect_from(root, spec.start, spec.count, &mut collected);
            out.extend(collected);
        }
        out.len() - before
    }

    fn len(&self) -> usize {
        self.len
    }

    fn memory_usage(&self) -> usize {
        std::mem::size_of::<Self>() + self.root.as_ref().map_or(0, |r| r.subtree_memory())
    }

    fn stats(&self) -> StatsSnapshot {
        StatsSnapshot::new(self.counters)
    }

    fn reset_stats(&mut self) {
        self.counters = OpCounters::default();
    }

    fn last_insert_stats(&self) -> InsertStats {
        self.last_insert
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: "ART",
            learned: false,
            concurrent: false,
            supports_delete: true,
            supports_range: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut art = Art::new();
        let keys: Vec<u64> = (0..10_000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            assert!(art.insert(k, i as u64), "insert {k}");
        }
        assert_eq!(art.len(), keys.len());
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(art.get(k), Some(i as u64), "get {k}");
        }
        assert_eq!(art.get(12345), None);
        for &k in keys.iter().take(5_000) {
            assert!(art.remove(k).is_some());
            assert_eq!(art.get(k), None);
        }
        assert_eq!(art.len(), 5_000);
        for &k in keys.iter().skip(5_000) {
            assert!(art.get(k).is_some());
        }
    }

    #[test]
    fn dense_keys_grow_through_all_node_types() {
        let mut art = Art::new();
        // 300 dense keys under the same 7-byte prefix force Node4 -> Node16
        // -> Node48 -> Node256 growth at the last level.
        for i in 0..300u64 {
            art.insert(i, i);
        }
        for i in 0..300u64 {
            assert_eq!(art.get(i), Some(i));
        }
        assert_eq!(art.len(), 300);
        // And deleting most of them collapses paths without losing the rest.
        for i in 0..295u64 {
            assert_eq!(art.remove(i), Some(i));
        }
        for i in 295..300u64 {
            assert_eq!(art.get(i), Some(i));
        }
    }

    #[test]
    fn update_in_place() {
        let mut art: Art<u64> = Art::new();
        assert!(art.insert(42, 1));
        assert!(!art.insert(42, 2));
        assert_eq!(art.get(42), Some(2));
        assert_eq!(art.len(), 1);
    }

    #[test]
    fn range_scan_is_sorted_and_bounded() {
        let mut art = Art::new();
        let entries: Vec<(u64, u64)> = (0..2_000u64).map(|i| (i * 31, i)).collect();
        art.bulk_load(&entries);
        let mut out = Vec::new();
        let n = art.range(RangeSpec::new(500, 100), &mut out);
        assert_eq!(n, 100);
        assert!(out[0].0 >= 500);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        // Compare against the model.
        let model: BTreeMap<u64, u64> = entries.iter().copied().collect();
        let expected: Vec<(u64, u64)> = model
            .range(500..)
            .take(100)
            .map(|(k, v)| (*k, *v))
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn matches_model_under_random_ops() {
        let mut art = Art::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut x: u64 = 0xdeadbeef;
        for i in 0..30_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 8192;
            match x % 3 {
                0 => assert_eq!(art.insert(key, i), model.insert(key, i).is_none()),
                1 => assert_eq!(art.remove(key), model.remove(&key)),
                _ => assert_eq!(art.get(key), model.get(&key).copied()),
            }
        }
        assert_eq!(art.len(), model.len());
    }

    #[test]
    fn sparse_high_bit_keys_use_path_compression() {
        let mut art = Art::new();
        // Keys differing only in the last byte but with a long shared prefix.
        let base = 0xABCD_EF01_2345_6700u64;
        for i in 0..200u64 {
            art.insert(base + i, i);
        }
        // Another cluster far away.
        for i in 0..200u64 {
            art.insert(i << 56, i + 1000);
        }
        for i in 0..200u64 {
            assert_eq!(art.get(base + i), Some(i));
            assert_eq!(art.get(i << 56), Some(i + 1000));
        }
        assert!(art.memory_usage() > 0);
        assert_eq!(art.meta().name, "ART");
    }

    #[test]
    fn empty_and_stats() {
        let mut art: Art<u64> = Art::new();
        assert!(art.is_empty());
        assert_eq!(art.get(1), None);
        assert_eq!(art.remove(1), None);
        art.insert(1, 1);
        assert!(art.stats().counters.inserts >= 1);
        art.reset_stats();
        assert_eq!(art.stats().counters.inserts, 0);
        assert!(art.last_insert_stats().nodes_created <= 2);
    }
}
