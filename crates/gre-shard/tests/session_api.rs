//! Typed client-API tests for the serving layer: per-op [`Response`]
//! equivalence against a `BTreeMap` model through [`Session`], backpressure
//! semantics of bounded shard queues, and drop-mid-flight draining — all
//! over real backends (a learned and a traditional one), seeded so failures
//! reproduce deterministically.

use gre_core::{ConcurrentIndex, IndexError, Payload, RangeSpec, Response};
use gre_learned::AlexPlus;
use gre_shard::{OpBatch, Partitioner, Session, SessionTarget, ShardPipeline, ShardedIndex};
use gre_traditional::btree_olc;
use gre_workloads::scenario::{KeyDist, Mix, Pacing, Phase, Scenario, Span};
use gre_workloads::{Driver, Op};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

type DynBackend = Box<dyn ConcurrentIndex<u64>>;
type DynSharded = ShardedIndex<u64, DynBackend>;
type BackendFactory = fn() -> DynBackend;

/// Backends under test: one learned, one traditional (the acceptance bar).
fn backends() -> Vec<(&'static str, BackendFactory)> {
    vec![
        ("ALEX+", || Box::new(AlexPlus::<u64>::new())),
        ("B+treeOLC", || Box::new(btree_olc::<u64>())),
    ]
}

fn build(partitioner: Partitioner<u64>, factory: fn() -> DynBackend) -> DynSharded {
    ShardedIndex::from_factory(partitioner, |_| factory())
}

/// Apply one op to the model and produce the response the index must give.
fn model_response(model: &mut BTreeMap<u64, Payload>, op: Op) -> Response<u64> {
    match op {
        Op::Get(k) => Response::Get(model.get(&k).copied()),
        Op::Insert(k, v) => Response::Insert(model.insert(k, v).is_none()),
        Op::Update(k, v) => Response::Update(match model.get_mut(&k) {
            Some(slot) => {
                *slot = v;
                true
            }
            None => false,
        }),
        Op::Remove(k) => Response::Remove(model.remove(&k)),
        Op::Range(spec) => Response::Range(
            model
                .range(spec.start..)
                .take_while(|(k, _)| spec.end.map_or(true, |e| **k <= e))
                .take(spec.count)
                .map(|(k, v)| (*k, *v))
                .collect(),
        ),
    }
}

fn random_point_op(rng: &mut StdRng) -> Op {
    let key = rng.gen_range(0..40_000u64);
    match rng.gen_range(0..8u32) {
        0..=2 => Op::Get(key),
        3..=4 => Op::Insert(key, rng.gen()),
        5..=6 => Op::Update(key, rng.gen()),
        _ => Op::Remove(key),
    }
}

/// A mixed stream — including bounded and unbounded ranges — through a
/// `Session`, one batch in flight, checked response-by-response against the
/// model. This is the strictest equivalence: every typed `Response` value
/// must match, not just the merged counters.
///
/// Writes and cross-shard ranges are split into separate batches: inside
/// one batch, ops on *different* shards legitimately run concurrently, so a
/// range stitching across shards mid-batch may observe a same-batch write
/// half-applied — deterministic per-op results are only promised across
/// batch boundaries (per-shard FIFO), which is what the stream exercises.
#[test]
fn session_responses_match_btreemap_model_on_mixed_stream() {
    for (name, factory) in backends() {
        for partitioner in [Partitioner::range(5), Partitioner::hash(5)] {
            let scheme = partitioner.scheme();
            let mut idx = build(partitioner, factory);
            let mut model: BTreeMap<u64, Payload> = BTreeMap::new();
            let bulk: Vec<(u64, Payload)> = (0..3_000u64).map(|i| (i * 11, i)).collect();
            idx.bulk_load(&bulk);
            model.extend(bulk.iter().copied());

            let pipeline = ShardPipeline::new(Arc::new(idx), 4);
            let mut session = Session::new(&pipeline);
            let mut rng = StdRng::seed_from_u64(0x5e55);
            for round in 0..60 {
                let ops: Vec<Op> = if round % 3 == 2 {
                    // A scan batch: bounded and unbounded cross-shard ranges.
                    (0..20)
                        .map(|_| {
                            let start = rng.gen_range(0..40_000u64);
                            let count = rng.gen_range(1..150usize);
                            if rng.gen_bool(0.5) {
                                Op::Range(RangeSpec::new(start, count))
                            } else {
                                let end = start + rng.gen_range(0..2_000u64);
                                Op::Range(RangeSpec::bounded(start, end, count))
                            }
                        })
                        .collect()
                } else {
                    // A point batch: mixed get/insert/update/remove.
                    (0..100).map(|_| random_point_op(&mut rng)).collect()
                };
                let expected: Vec<Response<u64>> = {
                    let mut m = Vec::with_capacity(ops.len());
                    for &op in &ops {
                        m.push(model_response(&mut model, op));
                    }
                    m
                };
                session.submit(OpBatch::new(ops));
                let got = session.recv().expect("one batch pending");
                assert_eq!(got, expected, "{name}/{scheme} round {round}");
            }
            assert_eq!(session.pending(), 0);
            assert_eq!(pipeline.index().len(), model.len(), "{name}/{scheme}");
        }
    }
}

/// Point-op streams stay exactly model-equivalent even when fully
/// pipelined: with a single submitter, per-key program order is preserved
/// by per-shard FIFO, so each op's typed response is deterministic although
/// many batches are in flight at once.
#[test]
fn pipelined_point_ops_stay_model_equivalent() {
    for (name, factory) in backends() {
        let mut idx = build(Partitioner::range(8), factory);
        let mut model: BTreeMap<u64, Payload> = BTreeMap::new();
        let bulk: Vec<(u64, Payload)> = (0..3_000u64).map(|i| (i * 11, i)).collect();
        idx.bulk_load(&bulk);
        model.extend(bulk.iter().copied());

        let pipeline = ShardPipeline::new(Arc::new(idx), 4);
        let mut session = Session::with_max_inflight(&pipeline, 8);
        let mut rng = StdRng::seed_from_u64(0x9193);
        let mut expected: Vec<Vec<Response<u64>>> = Vec::new();
        for _ in 0..50 {
            let ops: Vec<Op> = (0..80).map(|_| random_point_op(&mut rng)).collect();
            expected.push(
                ops.iter()
                    .map(|&op| model_response(&mut model, op))
                    .collect(),
            );
            session.submit(OpBatch::new(ops));
        }
        let got = session.drain();
        assert_eq!(got.len(), expected.len(), "{name}");
        for (b, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(g, e, "{name} batch {b}");
        }
        assert_eq!(pipeline.index().len(), model.len(), "{name}");
    }
}

/// Saturate tiny bounded queues with `try_submit`: rejected batches come
/// back intact, and every *accepted* op executes exactly once — no accepted
/// work is lost under backpressure.
#[test]
fn backpressure_loses_no_accepted_ops() {
    for (name, factory) in backends() {
        let mut idx = build(Partitioner::range(2), factory);
        let bulk: Vec<(u64, Payload)> = (0..1_000u64).map(|i| (i * 2, i)).collect();
        idx.bulk_load(&bulk);
        let pipeline = ShardPipeline::with_queue_capacity(Arc::new(idx), 1, 2);

        let mut handles = Vec::new();
        let mut accepted_keys = Vec::new();
        let mut rejected = 0usize;
        for i in 0..3_000u64 {
            let key = 1_000_000 + i; // fresh keys, outside the bulk domain
            match pipeline.try_submit(OpBatch::new(vec![Op::Insert(key, i)])) {
                Ok(handle) => {
                    accepted_keys.push(key);
                    handles.push(handle);
                }
                Err(bp) => {
                    assert_eq!(bp.batch.ops, vec![Op::Insert(key, i)], "{name}: intact");
                    rejected += 1;
                }
            }
        }
        for handle in handles {
            assert_eq!(handle.wait(), vec![Response::Insert(true)], "{name}");
        }
        assert_eq!(
            pipeline.index().len(),
            bulk.len() + accepted_keys.len(),
            "{name}: accepted ops must all land, rejected ones must not"
        );
        for &key in accepted_keys.iter().step_by(17) {
            assert!(pipeline.index().get(key).is_some(), "{name} key {key}");
        }
        assert!(rejected > 0, "{name}: 2-deep queues must reject a 3k flood");
    }
}

/// An open-loop scenario driver shut down mid-phase (stop flag flipped
/// while batches are in flight through pipelined `Session`s) must lose no
/// accepted op — everything submitted executes and lands in the store — and
/// must report only completed ops: the reported tally accounts for the
/// store's growth exactly, with every completion latency-recorded.
#[test]
fn open_loop_shutdown_mid_phase_loses_no_accepted_ops() {
    for (name, factory) in backends() {
        let mut idx = build(Partitioner::range(4), factory);
        let bulk: Vec<(u64, Payload)> = (0..4_000u64).map(|i| (i * 16, i)).collect();
        idx.bulk_load(&bulk);
        let bulk_len = idx.len();
        let mut target = SessionTarget::new(idx, 2, 64, 8);

        // Insert-heavy open-loop phase with a budget far beyond what can
        // complete before the shutdown, so the stop really cuts it short.
        let keys: Vec<u64> = (0..4_000u64).map(|i| i * 16).collect();
        let scenario = Scenario::new("shutdown", 0xD1E, &keys).phase(Phase::new(
            "cut-short",
            Mix::points(1, 3, 0, 0),
            KeyDist::Uniform,
            Span::Ops(50_000_000),
            Pacing::OpenLoop {
                rate_ops_s: 40_000.0,
            },
        ));

        let stop = Arc::new(AtomicBool::new(false));
        let driver = Driver::new()
            .open_loop_senders(2)
            .with_stop(Arc::clone(&stop));
        let flag = Arc::clone(&stop);
        let killer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            flag.store(true, Ordering::Relaxed);
        });
        let result = driver.run(&scenario, &mut target);
        killer.join().expect("killer thread");

        let p = &result.phases[0];
        assert!(p.ops() > 0, "{name}: some ops completed before shutdown");
        assert!(
            p.ops() < 50_000_000,
            "{name}: the stop flag must cut the phase short"
        );
        // Reports only completed ops: every reported op carries a recorded
        // latency (open loop times everything)…
        assert_eq!(p.latency.total_count(), p.ops(), "{name}");
        // …and loses no accepted ops: each reported new key landed, and
        // nothing landed unreported (the flush drained all in-flight
        // batches before the phase was declared over).
        assert_eq!(
            target.index().len() as u64,
            bulk_len as u64 + p.tally.new_keys,
            "{name}: store growth must match the reported new keys exactly"
        );
        assert_eq!(p.tally.errors, 0, "{name}");
    }
}

/// Shutdown is terminal and exact: every submitted op answers either its
/// real typed response (it executed before the shutdown) or
/// `Response::Error(IndexError::Shutdown)` (it was refused) — never
/// silence, never a half-applied write. A submitter can therefore
/// distinguish "drained and completed" from "refused" per operation, and
/// the store grows by exactly the executed inserts.
#[test]
fn shutdown_answers_are_terminal_and_exactly_accounted() {
    for (name, factory) in backends() {
        let mut idx = build(Partitioner::range(4), factory);
        let bulk: Vec<(u64, Payload)> = (0..2_000u64).map(|i| (i * 2, i)).collect();
        idx.bulk_load(&bulk);
        let bulk_len = idx.len();
        let pipeline = ShardPipeline::new(Arc::new(idx), 2);

        let mut handles = Vec::new();
        for i in 0..200u64 {
            if i == 100 {
                pipeline.shutdown();
            }
            handles.push(pipeline.submit(OpBatch::new(vec![Op::Insert(1_000_000 + i, i)])));
        }
        let mut executed = Vec::new();
        let mut refused = 0u64;
        for (i, handle) in handles.into_iter().enumerate() {
            match handle.wait().as_slice() {
                [Response::Insert(true)] => executed.push(1_000_000 + i as u64),
                [Response::Error(IndexError::Shutdown)] => refused += 1,
                other => panic!("{name}: unexpected batch outcome {other:?}"),
            }
        }
        assert_eq!(executed.len() as u64 + refused, 200, "{name}");
        assert!(
            refused >= 100,
            "{name}: every submission after shutdown() must be refused \
             (and queued-but-unexecuted ones may be too)"
        );
        assert_eq!(
            pipeline.index().len(),
            bulk_len + executed.len(),
            "{name}: the store grows by exactly the executed inserts"
        );
        for &key in &executed {
            assert!(pipeline.index().get(key).is_some(), "{name} key {key}");
        }
    }
}

/// Dropping handles, sessions and the pipeline itself mid-flight must drain
/// cleanly: queued work still executes, nothing deadlocks, no op is lost.
#[test]
fn drop_mid_flight_drains_cleanly() {
    for (name, factory) in backends() {
        let mut idx = build(Partitioner::range(4), factory);
        let bulk: Vec<(u64, Payload)> = (0..2_000u64).map(|i| (i * 2, i)).collect();
        idx.bulk_load(&bulk);
        let store;
        {
            let pipeline = ShardPipeline::new(Arc::new(idx), 2);
            // Fire-and-forget handles (blocking submit: acceptance is
            // guaranteed, only the results are discarded)…
            for i in 0..100u64 {
                drop(pipeline.submit(OpBatch::new(vec![Op::Insert(2_000_000 + i, i)])));
            }
            // …and a session dropped with batches still in flight.
            let mut session = Session::with_max_inflight(&pipeline, 16);
            for i in 0..100u64 {
                session.submit(OpBatch::new(vec![Op::Insert(3_000_000 + i, i)]));
            }
            drop(session);
            store = Arc::clone(pipeline.index());
            // The pipeline drops here with jobs still queued.
        }
        assert_eq!(store.len(), 2_000 + 200, "{name}: drop must drain");
        for i in (0..100u64).step_by(7) {
            assert_eq!(store.get(2_000_000 + i), Some(i), "{name}");
            assert_eq!(store.get(3_000_000 + i), Some(i), "{name}");
        }
    }
}
