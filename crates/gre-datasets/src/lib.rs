//! # gre-datasets
//!
//! Synthetic emulations of the datasets of Table 2.
//!
//! The paper benchmarks ten real datasets (plus four more "easy" ones that
//! are omitted from the heatmaps). The original data files are hundreds of
//! millions of keys downloaded from SOSD and other archives; this crate
//! substitutes *shape-faithful synthetic emulations*: each generator
//! reproduces the published CDF characteristics that matter to the paper's
//! analysis (local and global PLA hardness, duplicate structure, outliers)
//! so the relative hardness ordering of the datasets — and therefore which
//! index wins where — is preserved. See DESIGN.md §4 for the substitution
//! rationale.
//!
//! ```
//! use gre_datasets::Dataset;
//!
//! let keys = Dataset::Covid.generate(10_000, 42);
//! assert_eq!(keys.len(), 10_000);
//! assert!(keys.windows(2).all(|w| w[0] < w[1]));
//! ```

pub mod registry;
pub mod shapes;

pub use registry::{Dataset, DatasetProfile};
