//! Crash recovery: scan snapshots + WALs back into an exact index state.
//!
//! [`Recovery::recover`] reads a log directory (manifest, per-shard
//! snapshot, per-shard WAL) and classifies, per shard, exactly where and why
//! the valid history ends:
//!
//! * **clean end** — the log ends on a record boundary;
//! * **torn tail** — the last record is incomplete (crash mid-append); the
//!   torn bytes are dropped, everything before them is kept;
//! * **corrupt record** — checksum/length/payload failure (bit rot, or a
//!   duplicate/rewritten region); the scan stops at the last valid record;
//! * **sequence break** — a record decodes but its seq is not the successor
//!   of the previous one (e.g. a duplicate tail record left by a torn
//!   rewrite); the scan stops before it.
//!
//! Recovery never panics on any byte sequence and never reads past a file.
//!
//! Records whose seq is ≤ the shard snapshot's `last_seq` are *covered*: the
//! snapshot already folds in their effects (this happens when a crash lands
//! between a checkpoint's snapshot rename and its WAL truncate). They are
//! counted but not replayed.
//!
//! [`Recovery::replay_into`] rebuilds any [`ConcurrentIndex`] backend:
//! snapshot entries are bulk-loaded (shards partition the key space, so the
//! per-shard entry sets are disjoint and can be merged by sort), then each
//! shard's surviving groups are re-executed in seq order. Replayed execution
//! is deterministic, so the rebuilt state equals the state at the moment the
//! last surviving group originally executed.

use crate::record::{decode_record, Record, RecordError};
use crate::snapshot::{read_snapshot, snapshot_path, Snapshot};
use crate::wal::{read_manifest, DurableLog, SyncPolicy};
use gre_core::ConcurrentIndex;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Why a shard's WAL scan stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The log ended exactly on a record boundary.
    CleanEnd,
    /// The final record was incomplete — the normal crash signature.
    TornTail {
        /// Torn bytes dropped from the tail.
        dropped: u64,
    },
    /// A record failed validation; the scan stopped at the last valid one.
    Corrupt(RecordError),
    /// A record decoded but broke seq continuity (duplicate or gap).
    SeqBreak { expected: u64, found: u64 },
}

/// One shard's recovered history.
#[derive(Debug)]
pub struct ShardRecovery {
    pub shard: usize,
    /// Validated snapshot, if one exists.
    pub snapshot: Option<Snapshot>,
    /// Surviving WAL groups **not** covered by the snapshot, in seq order.
    pub groups: Vec<Record>,
    /// WAL records skipped because the snapshot already covers their seq.
    pub covered_groups: u64,
    /// Byte length of the valid WAL prefix (where a resume may append).
    pub valid_len: u64,
    /// Total bytes found in the WAL file.
    pub wal_len: u64,
    pub stop: StopReason,
}

impl ShardRecovery {
    /// Seq of the last group whose effects the recovered state includes
    /// (0 = empty history).
    pub fn last_seq(&self) -> u64 {
        self.groups
            .last()
            .map(|r| r.seq)
            .or(self.snapshot.as_ref().map(|s| s.last_seq))
            .unwrap_or(0)
    }

    /// Operations this shard will replay.
    pub fn op_count(&self) -> u64 {
        self.groups.iter().map(|r| r.ops.len() as u64).sum()
    }
}

/// The full recovered image of a log directory.
#[derive(Debug)]
pub struct Recovery {
    dir: PathBuf,
    pub shards: Vec<ShardRecovery>,
}

fn scan_shard(dir: &Path, shard: usize) -> io::Result<ShardRecovery> {
    let snapshot = read_snapshot(&snapshot_path(dir, shard));
    let snap_seq = snapshot.as_ref().map(|s| s.last_seq);
    let wal = match std::fs::read(dir.join(format!("shard-{shard}.wal"))) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut groups = Vec::new();
    let mut covered_groups = 0u64;
    let mut at = 0usize;
    // The first record's seq is accepted as-is (checkpoints truncate the log
    // without resetting seqs); every later record must be its predecessor's
    // successor.
    let mut expected: Option<u64> = None;
    let stop = loop {
        if at == wal.len() {
            break StopReason::CleanEnd;
        }
        match decode_record(&wal, at) {
            Ok(rec) => {
                if let Some(exp) = expected {
                    if rec.seq != exp {
                        break StopReason::SeqBreak {
                            expected: exp,
                            found: rec.seq,
                        };
                    }
                }
                expected = Some(rec.seq + 1);
                at += rec.frame_len;
                if snap_seq.is_some_and(|s| rec.seq <= s) {
                    covered_groups += 1;
                } else {
                    groups.push(rec);
                }
            }
            Err(RecordError::TornTail { remaining }) => {
                break StopReason::TornTail {
                    dropped: remaining as u64,
                }
            }
            Err(e) => break StopReason::Corrupt(e),
        }
    };
    Ok(ShardRecovery {
        shard,
        snapshot,
        groups,
        covered_groups,
        valid_len: at as u64,
        wal_len: wal.len() as u64,
        stop,
    })
}

impl Recovery {
    /// Scan the log directory at `dir` (as laid out by
    /// [`DurableLog::create`]) into a recovery image.
    pub fn recover(dir: &Path) -> io::Result<Recovery> {
        let shards = read_manifest(dir)?;
        let mut recovered = Vec::with_capacity(shards);
        for shard in 0..shards {
            recovered.push(scan_shard(dir, shard)?);
        }
        Ok(Recovery {
            dir: dir.to_path_buf(),
            shards: recovered,
        })
    }

    /// Total operations replay will apply (snapshot entries not included).
    pub fn replayed_ops(&self) -> u64 {
        self.shards.iter().map(|s| s.op_count()).sum()
    }

    /// Whether every shard's WAL ended cleanly on a record boundary.
    pub fn is_clean(&self) -> bool {
        self.shards
            .iter()
            .all(|s| matches!(s.stop, StopReason::CleanEnd))
    }

    /// Rebuild `index` (which must be empty) to the recovered state:
    /// bulk-load the union of shard snapshots, then re-execute each shard's
    /// surviving groups in seq order. Returns the number of replayed
    /// operations.
    pub fn replay_into<I: ConcurrentIndex<u64> + ?Sized>(&self, index: &mut I) -> u64 {
        let mut base: Vec<(u64, u64)> = self
            .shards
            .iter()
            .filter_map(|s| s.snapshot.as_ref())
            .flat_map(|s| s.entries.iter().copied())
            .collect();
        if !base.is_empty() {
            // Shards partition the key space, so the merged set is
            // duplicate-free; bulk_load only needs it sorted.
            base.sort_unstable_by_key(|&(k, _)| k);
            index.bulk_load(&base);
        }
        let meta = index.meta();
        let mut replayed = 0u64;
        for shard in &self.shards {
            for rec in &shard.groups {
                for &op in &rec.ops {
                    op.execute(&*index, &meta);
                    replayed += 1;
                }
            }
        }
        replayed
    }

    /// Physically truncate each shard's WAL to its valid prefix, removing
    /// torn or corrupt tails so a resumed writer appends on a clean
    /// boundary.
    pub fn truncate_torn_tails(&self) -> io::Result<()> {
        for shard in &self.shards {
            if shard.valid_len < shard.wal_len {
                let path = self.dir.join(format!("shard-{}.wal", shard.shard));
                let file = std::fs::OpenOptions::new().write(true).open(&path)?;
                file.set_len(shard.valid_len)?;
                file.sync_data()?;
            }
        }
        Ok(())
    }

    /// Truncate torn tails and re-open the directory for writing, with each
    /// shard's sequence numbering continuing after its recovered history.
    pub fn resume(&self, policy: SyncPolicy) -> io::Result<Arc<DurableLog>> {
        self.truncate_torn_tails()?;
        let next_seqs: Vec<u64> = self.shards.iter().map(|s| s.last_seq() + 1).collect();
        DurableLog::build(&self.dir, self.shards.len(), policy, None, Some(&next_seqs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failpoint::{FailAction, FailpointRegistry, Trigger};
    use crate::util::TempDir;
    use gre_core::index::MutexIndex;
    use gre_core::{Index, IndexMeta, Payload, RangeSpec, Request, StatsSnapshot};
    use std::collections::BTreeMap;

    /// A minimal reference backend for replay tests.
    #[derive(Default)]
    struct MapIndex(BTreeMap<u64, u64>);

    impl Index<u64> for MapIndex {
        fn bulk_load(&mut self, entries: &[(u64, Payload)]) {
            for &(k, v) in entries {
                self.0.insert(k, v);
            }
        }
        fn get(&self, key: u64) -> Option<Payload> {
            self.0.get(&key).copied()
        }
        fn insert(&mut self, key: u64, value: Payload) -> bool {
            self.0.insert(key, value).is_none()
        }
        fn remove(&mut self, key: u64) -> Option<Payload> {
            self.0.remove(&key)
        }
        fn range(&self, spec: RangeSpec<u64>, out: &mut Vec<(u64, Payload)>) -> usize {
            out.extend(
                self.0
                    .range(spec.start..)
                    .take(spec.count)
                    .map(|(&k, &v)| (k, v)),
            );
            out.len()
        }
        fn len(&self) -> usize {
            self.0.len()
        }
        fn memory_usage(&self) -> usize {
            0
        }
        fn stats(&self) -> StatsSnapshot {
            StatsSnapshot::default()
        }
        fn meta(&self) -> IndexMeta {
            IndexMeta {
                name: "map",
                learned: false,
                concurrent: false,
                supports_delete: true,
                supports_range: true,
            }
        }
    }

    fn map_backend() -> MutexIndex<MapIndex> {
        MutexIndex::new(MapIndex::default(), "map")
    }

    fn entries_of(index: &MutexIndex<MapIndex>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        index.range(RangeSpec::new(0, usize::MAX), &mut out);
        out
    }

    fn write_history(dir: &Path) -> Vec<(u64, u64)> {
        // Shard 0: insert/overwrite/remove churn. Shard 1: checkpointed base
        // plus post-checkpoint records.
        let log = DurableLog::create(dir, 2, SyncPolicy::EveryGroup).unwrap();
        log.log_group(0, &[Request::Insert(1, 10), Request::Insert(3, 30)])
            .unwrap();
        log.log_group(0, &[Request::Update(3, 31), Request::Remove(1)])
            .unwrap();
        log.log_group(1, &[Request::Insert(100, 1000), Request::Insert(101, 1010)])
            .unwrap();
        log.checkpoint(1, &[(100, 1000), (101, 1010)]).unwrap();
        log.log_group(1, &[Request::Remove(101), Request::Insert(102, 1020)])
            .unwrap();
        vec![(3, 31), (100, 1000), (102, 1020)]
    }

    #[test]
    fn clean_recovery_rebuilds_exact_state() {
        let dir = TempDir::new("rec-clean");
        let expect = write_history(dir.path());
        let rec = Recovery::recover(dir.path()).unwrap();
        assert!(rec.is_clean());
        assert_eq!(rec.shards[1].snapshot.as_ref().unwrap().last_seq, 1);
        let mut index = map_backend();
        let replayed = rec.replay_into(&mut index);
        assert_eq!(replayed, rec.replayed_ops());
        assert_eq!(entries_of(&index), expect);
    }

    #[test]
    fn torn_tail_is_dropped_and_prefix_replays() {
        let dir = TempDir::new("rec-torn");
        write_history(dir.path());
        // Tear the last record of shard 0's WAL mid-frame.
        let path = dir.path().join("shard-0.wal");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let rec = Recovery::recover(dir.path()).unwrap();
        let shard0 = &rec.shards[0];
        assert!(matches!(shard0.stop, StopReason::TornTail { dropped } if dropped > 0));
        assert_eq!(shard0.groups.len(), 1, "only the first group survives");
        let mut index = map_backend();
        rec.replay_into(&mut index);
        // State as of the surviving prefix: group 2 (update/remove) is gone.
        assert_eq!(
            entries_of(&index),
            vec![(1, 10), (3, 30), (100, 1000), (102, 1020)]
        );
        // Repair then resume: the tail is gone and seqs continue.
        let resumed = rec.resume(SyncPolicy::EveryGroup).unwrap();
        assert_eq!(resumed.next_seq(0), 2);
        assert_eq!(resumed.next_seq(1), 3);
        resumed.log_group(0, &[Request::Insert(5, 50)]).unwrap();
        let again = Recovery::recover(dir.path()).unwrap();
        assert!(again.is_clean());
        assert_eq!(again.shards[0].groups.last().unwrap().seq, 2);
    }

    #[test]
    fn crash_between_snapshot_and_truncate_skips_covered_records() {
        let dir = TempDir::new("rec-covered");
        let registry = FailpointRegistry::new();
        // The checkpoint publishes its snapshot, then the WAL truncate
        // "crashes": both snapshot and full WAL remain on disk.
        registry.script("wal/0/truncate", Trigger::OnHit(1), FailAction::Crash);
        let log = DurableLog::create_injected(
            dir.path(),
            1,
            SyncPolicy::EveryGroup,
            Arc::clone(&registry),
        )
        .unwrap();
        log.log_group(0, &[Request::Insert(1, 10)]).unwrap();
        log.log_group(0, &[Request::Insert(2, 20)]).unwrap();
        assert!(log.checkpoint(0, &[(1, 10), (2, 20)]).is_err());
        drop(log);

        let rec = Recovery::recover(dir.path()).unwrap();
        let shard = &rec.shards[0];
        assert_eq!(shard.covered_groups, 2, "wal fully covered by snapshot");
        assert!(shard.groups.is_empty());
        assert_eq!(shard.last_seq(), 2);
        let mut index = map_backend();
        assert_eq!(rec.replay_into(&mut index), 0);
        assert_eq!(entries_of(&index), vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_full_wal_replay() {
        let dir = TempDir::new("rec-badsnap");
        let registry = FailpointRegistry::new();
        registry.script("wal/0/truncate", Trigger::OnHit(1), FailAction::Crash);
        let log = DurableLog::create_injected(
            dir.path(),
            1,
            SyncPolicy::EveryGroup,
            Arc::clone(&registry),
        )
        .unwrap();
        log.log_group(0, &[Request::Insert(1, 10)]).unwrap();
        assert!(log.checkpoint(0, &[(1, 10)]).is_err());
        drop(log);
        // Rot the snapshot; the un-truncated WAL carries the same history.
        let snap = snapshot_path(dir.path(), 0);
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&snap, &bytes).unwrap();

        let rec = Recovery::recover(dir.path()).unwrap();
        assert!(
            rec.shards[0].snapshot.is_none(),
            "corrupt snapshot = absent"
        );
        assert_eq!(rec.shards[0].groups.len(), 1);
        let mut index = map_backend();
        assert_eq!(rec.replay_into(&mut index), 1);
        assert_eq!(entries_of(&index), vec![(1, 10)]);
    }

    #[test]
    fn seq_break_stops_the_scan() {
        let dir = TempDir::new("rec-seqbreak");
        let log = DurableLog::create(dir.path(), 1, SyncPolicy::EveryGroup).unwrap();
        log.log_group(0, &[Request::Insert(1, 10)]).unwrap();
        log.log_group(0, &[Request::Insert(2, 20)]).unwrap();
        drop(log);
        // Duplicate the final record — the torn-rewrite signature.
        let path = dir.path().join("shard-0.wal");
        let bytes = std::fs::read(&path).unwrap();
        let first = decode_record(&bytes, 0).unwrap();
        let mut doubled = bytes.clone();
        doubled.extend_from_slice(&bytes[first.frame_len..]);
        std::fs::write(&path, &doubled).unwrap();

        let rec = Recovery::recover(dir.path()).unwrap();
        let shard = &rec.shards[0];
        assert_eq!(
            shard.stop,
            StopReason::SeqBreak {
                expected: 3,
                found: 2
            }
        );
        assert_eq!(shard.groups.len(), 2, "history before the break survives");
        assert_eq!(shard.valid_len, bytes.len() as u64);
    }

    #[test]
    fn missing_directory_is_an_error_not_a_panic() {
        let dir = TempDir::new("rec-missing");
        assert!(Recovery::recover(&dir.path().join("never-created")).is_err());
    }
}
