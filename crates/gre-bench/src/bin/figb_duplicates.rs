//! Figure B (appendix): handling duplicate keys — inlining vs linked lists —
//! on a wiki-like dataset with duplicates, using ALEX+ as the base index.
//!
//! Inlining stores every occurrence in the index (duplicates become adjacent
//! slots keyed by a composite of the key and a per-duplicate sequence
//! number); the linked-list variant stores one index entry per distinct key
//! and chains the remaining payloads in an out-of-place overflow list.
use gre_bench::RunOpts;
use gre_core::ConcurrentIndex;
use gre_datasets::Dataset;
use gre_learned::AlexPlus;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Instant;

fn main() {
    let opts = RunOpts::from_env();
    let keys = Dataset::Wiki.generate(opts.keys, opts.seed);
    println!(
        "# Figure B: duplicate handling on wiki ({} keys, duplicates included)",
        keys.len()
    );

    // Inline: composite key = (key << 8) | occurrence (wiki timestamps fit).
    let mut inline: AlexPlus<u64> = AlexPlus::new();
    ConcurrentIndex::bulk_load(&mut inline, &[]);
    let start = Instant::now();
    let mut occurrence: HashMap<u64, u8> = HashMap::new();
    for &k in &keys {
        let occ = occurrence.entry(k).or_insert(0);
        inline.insert((k << 8) | *occ as u64, k);
        *occ = occ.wrapping_add(1);
    }
    let inline_insert = start.elapsed();
    let start = Instant::now();
    let mut hits = 0usize;
    for &k in keys.iter().step_by(3) {
        if inline.get(k << 8).is_some() {
            hits += 1;
        }
    }
    let inline_lookup = start.elapsed();

    // Linked list: one entry per distinct key + overflow chains.
    let mut ll: AlexPlus<u64> = AlexPlus::new();
    ConcurrentIndex::bulk_load(&mut ll, &[]);
    let overflow: Mutex<HashMap<u64, Vec<u64>>> = Mutex::new(HashMap::new());
    let start = Instant::now();
    for &k in &keys {
        if !ll.insert(k, k) {
            overflow.lock().entry(k).or_default().push(k);
        }
    }
    let ll_insert = start.elapsed();
    let start = Instant::now();
    let mut ll_hits = 0usize;
    for &k in keys.iter().step_by(3) {
        if ll.get(k).is_some() {
            let guard = overflow.lock();
            ll_hits += 1 + guard.get(&k).map_or(0, Vec::len);
        }
    }
    let ll_lookup = start.elapsed();

    let mops = |n: usize, d: std::time::Duration| n as f64 / d.as_secs_f64() / 1e6;
    println!(
        "{:<22} {:>16} {:>16}",
        "variant", "insert Mop/s", "lookup Mop/s"
    );
    println!(
        "{:<22} {:>16.3} {:>16.3}",
        "ALEX+ (inline)",
        mops(keys.len(), inline_insert),
        mops(keys.len() / 3, inline_lookup)
    );
    println!(
        "{:<22} {:>16.3} {:>16.3}",
        "ALEX+-LL (linked list)",
        mops(keys.len(), ll_insert),
        mops(keys.len() / 3, ll_lookup)
    );
    let _ = (hits, ll_hits);
}
