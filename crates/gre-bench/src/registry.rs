//! Index registries: every evaluated index behind a uniform constructor so
//! the per-figure binaries can iterate over them.
//!
//! Three layers:
//!
//! * The **typed builder** ([`IndexBuilder`]) is the canonical configuration
//!   surface: `IndexBuilder::backend("alex+")?.shards(8)
//!   .partitioner(Scheme::Hash).build()` resolves a backend by name and
//!   wraps it in the `gre-shard` serving layer. Everything else is sugar
//!   over it.
//! * The **string layer** ([`concurrent_backend`], [`backend`],
//!   [`sharded_index`], [`IndexBuilder::parse`]) is a thin CLI parser on
//!   top of the builder, for binaries and scripts that take index specs as
//!   text (`"alex+"`, `"alex+:8"`, `"alex+:8:hash"`).
//! * The **list registries** ([`single_thread_indexes`],
//!   [`concurrent_indexes`], [`sharded_concurrent_indexes`]) return fresh
//!   instances of whole index families for figure sweeps.

use gre_core::{ConcurrentIndex, Index};
use gre_learned::{
    Alex, AlexConfig, AlexPlus, DynamicPgm, Finedex, Lipp, LippPlus, LockGranularity, XIndex,
};
use gre_shard::{Partitioner, Scheme, ShardedIndex};
use gre_traditional::{
    art_olc, btree_olc, hot_rowex, masstree_concurrent, wormhole_concurrent, Art, BPlusTree, Hot,
    Masstree, Wormhole,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

/// Whether an index is learned or traditional (heatmap colouring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    Learned,
    Traditional,
}

/// A named single-threaded index instance.
pub struct SingleEntry {
    pub name: &'static str,
    pub kind: IndexKind,
    pub index: Box<dyn Index<u64>>,
}

/// A named concurrent index instance. The name is owned because sharded
/// variants carry computed names like `sharded(ALEX+,8)`.
pub struct ConcurrentEntry {
    pub name: String,
    pub kind: IndexKind,
    pub index: Box<dyn ConcurrentIndex<u64>>,
}

/// Canonical names of every concurrent backend, paired with its kind and in
/// the paper's presentation order. ALEX+ and LIPP+ (the parallelized
/// derivatives this study contributes) lead so Figure 16's "world without
/// this study" can drop a prefix.
pub const CONCURRENT_BACKENDS: [(&str, IndexKind); 9] = [
    ("ALEX+", IndexKind::Learned),
    ("LIPP+", IndexKind::Learned),
    ("XIndex", IndexKind::Learned),
    ("FINEdex", IndexKind::Learned),
    ("ART-OLC", IndexKind::Traditional),
    ("B+treeOLC", IndexKind::Traditional),
    ("HOT-ROWEX", IndexKind::Traditional),
    ("Masstree", IndexKind::Traditional),
    ("Wormhole", IndexKind::Traditional),
];

/// Fresh instances of every single-threaded index of the study
/// (the Table 1 learned indexes plus STX B+-tree, ART and HOT, §3.1).
pub fn single_thread_indexes() -> Vec<SingleEntry> {
    vec![
        SingleEntry {
            name: "ALEX",
            kind: IndexKind::Learned,
            index: Box::new(Alex::<u64>::new()),
        },
        SingleEntry {
            name: "LIPP",
            kind: IndexKind::Learned,
            index: Box::new(Lipp::<u64>::new()),
        },
        SingleEntry {
            name: "PGM-Index",
            kind: IndexKind::Learned,
            index: Box::new(DynamicPgm::<u64>::new()),
        },
        SingleEntry {
            name: "B+tree",
            kind: IndexKind::Traditional,
            index: Box::new(BPlusTree::<u64>::new()),
        },
        SingleEntry {
            name: "ART",
            kind: IndexKind::Traditional,
            index: Box::new(Art::<u64>::new()),
        },
        SingleEntry {
            name: "HOT",
            kind: IndexKind::Traditional,
            index: Box::new(Hot::<u64>::new()),
        },
        SingleEntry {
            name: "Masstree",
            kind: IndexKind::Traditional,
            index: Box::new(Masstree::<u64>::new()),
        },
        SingleEntry {
            name: "Wormhole",
            kind: IndexKind::Traditional,
            index: Box::new(Wormhole::<u64>::new()),
        },
    ]
}

/// Constructor of a boxed concurrent backend.
type BackendCtor = fn() -> Box<dyn ConcurrentIndex<u64>>;

/// The requested backend name did not resolve against the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBackend(pub String);

impl fmt::Display for UnknownBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown index backend: {:?}", self.0)
    }
}

impl std::error::Error for UnknownBackend {}

/// Typed configuration surface for serving-layer indexes.
///
/// A builder resolves a backend family by name, then layers serving options
/// on top before constructing instances:
///
/// ```
/// use gre_bench::registry::IndexBuilder;
/// use gre_shard::Scheme;
///
/// # fn main() -> Result<(), gre_bench::registry::UnknownBackend> {
/// let index = IndexBuilder::backend("alex+")?
///     .shards(8)
///     .partitioner(Scheme::Hash)
///     .build();
/// assert_eq!(index.meta().name, "sharded(ALEX+,8,hash)");
/// # Ok(())
/// # }
/// ```
///
/// The builder is `Clone + Copy`-free but cheap; call
/// [`build`](IndexBuilder::build) repeatedly to mint fresh instances of the
/// same configuration.
#[derive(Debug, Clone)]
pub struct IndexBuilder {
    canonical: &'static str,
    kind: IndexKind,
    ctor: BackendCtor,
    shards: usize,
    scheme: Scheme,
}

impl IndexBuilder {
    /// Start a builder for the named backend (case-insensitive; `+`, `-`
    /// and spaces are cosmetic: `"alex+"`, `"ALEX+"` and `"alexplus"` all
    /// resolve to ALEX+).
    pub fn backend(name: &str) -> Result<IndexBuilder, UnknownBackend> {
        let canon: String = name
            .chars()
            .filter(|c| c.is_ascii_alphanumeric() || *c == '+')
            .collect::<String>()
            .to_ascii_lowercase();
        let (canonical, kind, ctor): (&'static str, IndexKind, BackendCtor) = match canon.as_str() {
            "alex+" | "alexplus" => ("ALEX+", IndexKind::Learned, || {
                Box::new(AlexPlus::<u64>::with_config(
                    AlexConfig::default(),
                    LockGranularity::PerNode,
                ))
            }),
            "lipp+" | "lippplus" => ("LIPP+", IndexKind::Learned, || {
                Box::new(LippPlus::<u64>::new())
            }),
            "xindex" => ("XIndex", IndexKind::Learned, || {
                Box::new(XIndex::<u64>::new())
            }),
            "finedex" => ("FINEdex", IndexKind::Learned, || {
                Box::new(Finedex::<u64>::new())
            }),
            "artolc" => ("ART-OLC", IndexKind::Traditional, || {
                Box::new(art_olc::<u64>())
            }),
            "b+treeolc" | "btreeolc" => ("B+treeOLC", IndexKind::Traditional, || {
                Box::new(btree_olc::<u64>())
            }),
            "hotrowex" => ("HOT-ROWEX", IndexKind::Traditional, || {
                Box::new(hot_rowex::<u64>())
            }),
            "masstree" => ("Masstree", IndexKind::Traditional, || {
                Box::new(masstree_concurrent::<u64>())
            }),
            "wormhole" => ("Wormhole", IndexKind::Traditional, || {
                Box::new(wormhole_concurrent::<u64>())
            }),
            _ => return Err(UnknownBackend(name.to_string())),
        };
        Ok(IndexBuilder {
            canonical,
            kind,
            ctor,
            shards: 1,
            scheme: Scheme::Range,
        })
    }

    /// Parse a textual index spec: `"backend"`, `"backend:shards"` or
    /// `"backend:shards:scheme"` (e.g. `"alex+:8:hash"`). This is the CLI
    /// form of the builder; flags parse into the same struct.
    pub fn parse(spec: &str) -> Result<IndexBuilder, UnknownBackend> {
        let mut parts = spec.splitn(3, ':');
        let name = parts.next().unwrap_or_default();
        let mut builder = IndexBuilder::backend(name)?;
        if let Some(shards) = parts.next() {
            let shards = shards
                .trim()
                .parse::<usize>()
                .map_err(|_| UnknownBackend(spec.to_string()))?;
            builder = builder.shards(shards);
        }
        if let Some(scheme) = parts.next() {
            let scheme = Scheme::parse(scheme).ok_or_else(|| UnknownBackend(spec.to_string()))?;
            builder = builder.partitioner(scheme);
        }
        Ok(builder)
    }

    /// Serve the backend behind `n` shards (clamped to at least 1; `1`
    /// means the bare backend from [`build`](IndexBuilder::build)).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Partitioning scheme for the sharded serving layer (default
    /// [`Scheme::Range`]).
    pub fn partitioner(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// The canonical backend name (`"ALEX+"`, `"B+treeOLC"`, …).
    pub fn backend_name(&self) -> &'static str {
        self.canonical
    }

    /// Whether the configured backend is learned or traditional.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Configured shard count.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Configured partitioning scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The display name this configuration reports through `meta()`:
    /// the bare backend name for 1 shard, `sharded(NAME,N)` /
    /// `sharded(NAME,N,hash)` otherwise.
    pub fn display_name(&self) -> String {
        if self.shards <= 1 {
            self.canonical.to_string()
        } else {
            sharded_name(self.canonical, &self.scheme.partitioner::<u64>(self.shards))
        }
    }

    /// Build the configured index: the bare backend for `shards == 1`, the
    /// sharded composite otherwise.
    pub fn build(&self) -> Box<dyn ConcurrentIndex<u64>> {
        if self.shards <= 1 {
            (self.ctor)()
        } else {
            Box::new(self.build_sharded())
        }
    }

    /// Build the sharded composite regardless of shard count (a 1-shard
    /// composite still exercises the routing layer). Use this when the
    /// concrete [`ShardedIndex`] type is needed — e.g. to construct a
    /// `ShardPipeline` or `Session` on top.
    pub fn build_sharded(&self) -> ShardedIndex<u64, Box<dyn ConcurrentIndex<u64>>> {
        let partitioner = self.scheme.partitioner::<u64>(self.shards);
        let display = sharded_name(self.canonical, &partitioner);
        ShardedIndex::from_factory(partitioner, |_| (self.ctor)()).with_name(intern(display))
    }
}

/// Resolve a concurrent backend by name. Returns `None` for unknown names.
/// (String sugar over [`IndexBuilder::backend`].)
pub fn concurrent_backend(name: &str) -> Option<Box<dyn ConcurrentIndex<u64>>> {
    IndexBuilder::backend(name).ok().map(|b| b.build())
}

/// Build a [`ShardedIndex`] of `partitioner.shards()` instances of the named
/// backend. The composite reports itself as `sharded(NAME,N)` (range
/// partitioning) or `sharded(NAME,N,hash)`.
pub fn sharded_index(
    name: &str,
    partitioner: Partitioner<u64>,
) -> Option<ShardedIndex<u64, Box<dyn ConcurrentIndex<u64>>>> {
    let builder = IndexBuilder::backend(name).ok()?;
    let display = sharded_name(builder.canonical, &partitioner);
    Some(ShardedIndex::from_factory(partitioner, |_| (builder.ctor)()).with_name(intern(display)))
}

/// The display name of a sharded composite, e.g. `sharded(ALEX+,8)`.
pub fn sharded_name(backend: &str, partitioner: &Partitioner<u64>) -> String {
    if partitioner.is_ordered() {
        format!("sharded({backend},{})", partitioner.shards())
    } else {
        format!(
            "sharded({backend},{},{})",
            partitioner.shards(),
            partitioner.scheme()
        )
    }
}

/// The string-keyed factory: the named backend behind `shards` range
/// partitions (`shards <= 1` returns the bare backend). String sugar over
/// [`IndexBuilder`]; binaries taking `backend:shards:scheme` specs should
/// prefer [`IndexBuilder::parse`].
pub fn backend(name: &str, shards: usize) -> Option<Box<dyn ConcurrentIndex<u64>>> {
    IndexBuilder::backend(name)
        .ok()
        .map(|b| b.shards(shards).build())
}

/// Intern a computed index name: `IndexMeta::name` is `&'static str` (every
/// figure binary formats it by value), so computed sharded names are leaked
/// once per distinct name and reused afterwards.
fn intern(name: String) -> &'static str {
    static INTERNED: Mutex<Option<HashMap<String, &'static str>>> = Mutex::new(None);
    let mut guard = INTERNED.lock().expect("intern table poisoned");
    let table = guard.get_or_insert_with(HashMap::new);
    if let Some(&s) = table.get(&name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.clone().into_boxed_str());
    table.insert(name, leaked);
    leaked
}

/// Fresh instances of every concurrent index (§4.2). Set `include_parallelized`
/// to `false` to reproduce "the world without this study" (Figure 16), which
/// drops ALEX+ and LIPP+ and keeps only the natively concurrent indexes.
pub fn concurrent_indexes(include_parallelized: bool) -> Vec<ConcurrentEntry> {
    CONCURRENT_BACKENDS
        .iter()
        .skip(if include_parallelized { 0 } else { 2 })
        .map(|&(name, kind)| ConcurrentEntry {
            name: name.to_string(),
            kind,
            index: concurrent_backend(name).expect("registry name resolves"),
        })
        .collect()
}

/// `sharded(X, shards)` variants of every concurrent backend: the serving
/// layer over the full §4.2 index set, for shard-scalability sweeps.
pub fn sharded_concurrent_indexes(shards: usize) -> Vec<ConcurrentEntry> {
    CONCURRENT_BACKENDS
        .iter()
        .map(|&(name, kind)| {
            let builder = IndexBuilder::backend(name)
                .expect("registry name resolves")
                .shards(shards);
            ConcurrentEntry {
                name: builder.display_name(),
                kind,
                index: builder.build(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_cover_the_papers_index_set() {
        let single = single_thread_indexes();
        assert_eq!(single.len(), 8);
        assert!(single.iter().any(|e| e.name == "ALEX"));
        assert!(single.iter().any(|e| e.name == "ART"));
        let learned = single
            .iter()
            .filter(|e| e.kind == IndexKind::Learned)
            .count();
        assert_eq!(learned, 3);

        let conc = concurrent_indexes(true);
        assert_eq!(conc.len(), 9);
        assert!(conc.iter().any(|e| e.name == "ALEX+"));
        let without = concurrent_indexes(false);
        assert_eq!(without.len(), 7);
        assert!(!without.iter().any(|e| e.name == "ALEX+"));
    }

    #[test]
    fn every_registered_index_supports_basic_ops() {
        let entries: Vec<(u64, u64)> = (0..1_000u64).map(|i| (i * 5 + 1, i)).collect();
        for mut e in single_thread_indexes() {
            e.index.bulk_load(&entries);
            assert_eq!(e.index.len(), 1_000, "{}", e.name);
            assert_eq!(e.index.get(6), Some(1), "{}", e.name);
            e.index.insert(2, 22);
            assert_eq!(e.index.get(2), Some(22), "{}", e.name);
            assert!(e.index.memory_usage() > 0, "{}", e.name);
        }
        for mut e in concurrent_indexes(true) {
            e.index.bulk_load(&entries);
            assert_eq!(e.index.len(), 1_000, "{}", e.name);
            assert_eq!(e.index.get(6), Some(1), "{}", e.name);
            e.index.insert(2, 22);
            assert_eq!(e.index.get(2), Some(22), "{}", e.name);
            // update is now a required, atomic operation on every backend.
            assert!(e.index.update(2, 23), "{}", e.name);
            assert_eq!(e.index.get(2), Some(23), "{}", e.name);
            assert!(!e.index.update(3, 1), "{}: absent key must miss", e.name);
            assert_eq!(e.index.get(3), None, "{}: update must not insert", e.name);
        }
    }

    #[test]
    fn builder_resolves_names_case_and_punctuation_insensitively() {
        for spec in ["alex+", "ALEX+", "AlexPlus", "alex plus"] {
            let b = IndexBuilder::backend(spec).unwrap_or_else(|_| panic!("{spec} must resolve"));
            assert_eq!(b.backend_name(), "ALEX+");
            assert_eq!(b.build().meta().name, "ALEX+");
        }
        assert_eq!(
            IndexBuilder::backend("b+tree-olc").unwrap().backend_name(),
            "B+treeOLC"
        );
        assert_eq!(
            IndexBuilder::backend("hot-rowex").unwrap().backend_name(),
            "HOT-ROWEX"
        );
        let err = IndexBuilder::backend("no-such-index").unwrap_err();
        assert!(err.to_string().contains("no-such-index"));
        assert!(IndexBuilder::backend("").is_err());
        // The string layer mirrors the builder.
        assert!(concurrent_backend("no-such-index").is_none());
        assert_eq!(
            concurrent_backend("wormhole").unwrap().meta().name,
            "Wormhole"
        );
    }

    #[test]
    fn builder_composes_shards_and_scheme() {
        let b = IndexBuilder::backend("lipp+").unwrap().shards(4);
        assert_eq!(b.shard_count(), 4);
        assert_eq!(b.scheme(), Scheme::Range);
        assert_eq!(b.display_name(), "sharded(LIPP+,4)");
        assert_eq!(b.build().meta().name, "sharded(LIPP+,4)");

        let b = IndexBuilder::backend("xindex")
            .unwrap()
            .shards(2)
            .partitioner(Scheme::Hash);
        assert_eq!(b.display_name(), "sharded(XIndex,2,hash)");
        assert_eq!(b.build().meta().name, "sharded(XIndex,2,hash)");

        // shards <= 1 builds the bare backend…
        let b = IndexBuilder::backend("lipp+").unwrap().shards(1);
        assert_eq!(b.build().meta().name, "LIPP+");
        assert_eq!(b.shards(0).shard_count(), 1);
        // …but build_sharded still yields the routing composite.
        let composite = IndexBuilder::backend("lipp+").unwrap().build_sharded();
        assert_eq!(composite.num_shards(), 1);
        assert_eq!(composite.meta().name, "sharded(LIPP+,1)");
    }

    #[test]
    fn spec_strings_parse_into_builders() {
        let b = IndexBuilder::parse("alex+").unwrap();
        assert_eq!(b.shard_count(), 1);
        let b = IndexBuilder::parse("alex+:8").unwrap();
        assert_eq!((b.backend_name(), b.shard_count()), ("ALEX+", 8));
        assert_eq!(b.scheme(), Scheme::Range);
        let b = IndexBuilder::parse("b+treeolc:4:hash").unwrap();
        assert_eq!(b.backend_name(), "B+treeOLC");
        assert_eq!((b.shard_count(), b.scheme()), (4, Scheme::Hash));
        assert!(IndexBuilder::parse("alex+:eight").is_err());
        assert!(IndexBuilder::parse("alex+:8:spiral").is_err());
        assert!(IndexBuilder::parse("nope:8").is_err());
    }

    #[test]
    fn string_factory_builds_sharded_composites() {
        let idx = backend("lipp+", 4).expect("sharded lipp+");
        assert_eq!(idx.meta().name, "sharded(LIPP+,4)");
        assert!(idx.meta().concurrent);
        // shards <= 1 yields the bare backend.
        let idx = backend("lipp+", 1).expect("bare lipp+");
        assert_eq!(idx.meta().name, "LIPP+");
        assert!(backend("nope", 4).is_none());
        // Hash scheme shows in the name.
        let idx = sharded_index("xindex", Partitioner::hash(2)).expect("hash-sharded");
        assert_eq!(idx.meta().name, "sharded(XIndex,2,hash)");
    }

    #[test]
    fn interned_names_are_stable() {
        let a = backend("alex+", 2).unwrap().meta().name;
        let b = backend("alex+", 2).unwrap().meta().name;
        assert!(
            std::ptr::eq(a, b),
            "same name must intern to one allocation"
        );
    }
}
