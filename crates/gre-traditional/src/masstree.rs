//! Masstree-like trie of B+-trees (simplified).
//!
//! Masstree (Mao et al., EuroSys'12) indexes variable-length keys as a trie
//! whose layers are B+-trees over consecutive 8-byte key slices. For the
//! fixed 8-byte integer keys of this study the trie degenerates to a single
//! B+-tree layer with Masstree's small node fanout (15 keys per node), which
//! is the simplification we implement (see DESIGN.md §4). The behaviours the
//! paper attributes to Masstree in this setting — B-tree-like write
//! amplification and heavier per-key overhead than ART — are preserved.

use crate::btree::{BPlusTree, BPlusTreeConfig};
use gre_core::{Index, IndexMeta, InsertStats, Key, Payload, RangeSpec, StatsSnapshot};

/// Masstree's per-node key fanout.
pub const MASSTREE_FANOUT: usize = 15;

/// A Masstree-like index over 8-byte keys.
#[derive(Debug)]
pub struct Masstree<K> {
    layer0: BPlusTree<K>,
}

impl<K: Key> Default for Masstree<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key> Masstree<K> {
    pub fn new() -> Self {
        Masstree {
            layer0: BPlusTree::with_config(BPlusTreeConfig {
                leaf_capacity: MASSTREE_FANOUT,
                inner_capacity: MASSTREE_FANOUT,
            }),
        }
    }

    /// Height of the (single) B+-tree layer.
    pub fn height(&self) -> usize {
        self.layer0.height()
    }
}

impl<K: Key> Index<K> for Masstree<K> {
    fn bulk_load(&mut self, entries: &[(K, Payload)]) {
        self.layer0.bulk_load(entries);
    }

    fn get(&self, key: K) -> Option<Payload> {
        self.layer0.get(key)
    }

    fn insert(&mut self, key: K, value: Payload) -> bool {
        self.layer0.insert(key, value)
    }

    fn remove(&mut self, key: K) -> Option<Payload> {
        // The paper notes Masstree does not cover deletions in its
        // evaluation; the underlying structure supports them, so we do too.
        self.layer0.remove(key)
    }

    fn range(&self, spec: RangeSpec<K>, out: &mut Vec<(K, Payload)>) -> usize {
        self.layer0.range(spec, out)
    }

    fn len(&self) -> usize {
        self.layer0.len()
    }

    fn memory_usage(&self) -> usize {
        self.layer0.memory_usage()
    }

    fn stats(&self) -> StatsSnapshot {
        self.layer0.stats()
    }

    fn reset_stats(&mut self) {
        self.layer0.reset_stats();
    }

    fn last_insert_stats(&self) -> InsertStats {
        self.layer0.last_insert_stats()
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: "Masstree",
            learned: false,
            concurrent: false,
            supports_delete: false,
            supports_range: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_operations() {
        let mut m = Masstree::new();
        let entries: Vec<(u64, u64)> = (0..3_000u64).map(|i| (i * 5, i)).collect();
        m.bulk_load(&entries);
        assert_eq!(m.len(), 3_000);
        assert_eq!(m.get(10), Some(2));
        assert!(m.insert(3, 33));
        assert_eq!(m.get(3), Some(33));
        assert_eq!(m.remove(3), Some(33));
        let mut out = Vec::new();
        assert_eq!(m.range(RangeSpec::new(0, 10), &mut out), 10);
        assert_eq!(m.meta().name, "Masstree");
        assert!(!m.meta().supports_delete);
    }

    #[test]
    fn small_fanout_produces_taller_trees_than_default_btree() {
        let entries: Vec<(u64, u64)> = (0..20_000u64).map(|i| (i, i)).collect();
        let mut m = Masstree::new();
        m.bulk_load(&entries);
        let mut b = BPlusTree::new();
        b.bulk_load(&entries);
        assert!(m.height() > b.height());
        // Smaller nodes also mean more per-node overhead.
        assert!(m.memory_usage() > 0);
    }
}
