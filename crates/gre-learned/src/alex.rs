//! ALEX — an updatable adaptive learned index (Ding et al., SIGMOD'20).
//!
//! ALEX combines *ML for subspace lookup* in its inner level with
//! *gapped-array* data nodes: each data node stores its entries spread over a
//! larger array according to a per-node linear model, leaving gaps that
//! absorb inserts. Lookups predict a slot and run an exponential "last-mile"
//! search around it; inserts either land in a nearby gap or shift existing
//! keys toward the closest gap (the write amplification the paper analyses in
//! Figure 3 / Table 3). When a node becomes too dense a structural
//! modification operation (SMO) expands or splits it, driven by a simple
//! cost model on the node's runtime statistics (performance-driven design,
//! §2.1).
//!
//! Our implementation keeps ALEX's two defining choices — model-predicted
//! positions in gapped arrays, and a model-routed inner level — with one
//! structural simplification: a single inner level routes directly to data
//! nodes (with the paper's default 16 MB node budget, two levels are what
//! ALEX itself builds at the scales we benchmark).

use gre_core::stats::PhaseTimer;
use gre_core::{Index, IndexMeta, InsertStats, Key, OpCounters, Payload, RangeSpec, StatsSnapshot};
use gre_pla::LinearModel;

/// Configuration of ALEX (Table 1).
#[derive(Debug, Clone, Copy)]
pub struct AlexConfig {
    /// Maximum number of entries per data node (the paper's 16 MB node
    /// budget equals ~1M 16-byte entries; scaled-down runs use less).
    pub max_node_entries: usize,
    /// Lower density bound: a node whose density falls below this after
    /// deletions is repacked.
    pub min_density: f64,
    /// Initial density used when (re)building a node.
    pub init_density: f64,
    /// Upper density bound: exceeding it triggers an SMO.
    pub max_density: f64,
}

impl Default for AlexConfig {
    fn default() -> Self {
        AlexConfig {
            max_node_entries: 1 << 20,
            min_density: 0.6,
            init_density: 0.7,
            max_density: 0.8,
        }
    }
}

impl AlexConfig {
    /// The memory-constrained configuration of Figure 9 (ALEX-M): the fill
    /// factor is lowered so the index occupies roughly the same space as
    /// LIPP (resulting density 0.2–0.25 in the paper).
    pub fn memory_matched() -> Self {
        AlexConfig {
            init_density: 0.22,
            min_density: 0.1,
            max_density: 0.5,
            ..Default::default()
        }
    }
}

/// A gapped-array data node.
#[derive(Debug)]
pub struct DataNode<K> {
    model: LinearModel,
    keys: Vec<K>,
    values: Vec<Payload>,
    occupied: Vec<bool>,
    num_keys: usize,
    /// Runtime statistics feeding the cost model.
    num_shifts: u64,
    num_search_iterations: u64,
    num_inserts: u64,
}

impl<K: Key> DataNode<K> {
    /// Build a node from sorted entries at the given density.
    fn build(entries: &[(K, Payload)], density: f64) -> Self {
        let n = entries.len();
        let capacity = ((n as f64 / density.max(0.05)).ceil() as usize).max(n.max(4));
        let keys_only: Vec<K> = entries.iter().map(|e| e.0).collect();
        let expansion = if n > 1 {
            (capacity - 1) as f64 / (n - 1) as f64
        } else {
            1.0
        };
        let model = LinearModel::fit_keys_with_expansion(&keys_only, expansion);
        let mut node = DataNode {
            model,
            keys: vec![K::MIN; capacity],
            values: vec![0; capacity],
            occupied: vec![false; capacity],
            num_keys: 0,
            num_shifts: 0,
            num_search_iterations: 0,
            num_inserts: 0,
        };
        // Model-based placement: put each entry at its predicted slot, pushed
        // right past already-filled slots and pulled left just enough to
        // guarantee the remaining entries still fit.
        let mut next_free = 0usize;
        for (i, &(k, v)) in entries.iter().enumerate() {
            let predicted = node.model.predict_clamped(k, capacity);
            let upper = capacity - (n - i);
            let pos = predicted.max(next_free).min(upper);
            debug_assert!(!node.occupied[pos]);
            node.keys[pos] = k;
            node.values[pos] = v;
            node.occupied[pos] = true;
            node.num_keys += 1;
            next_free = pos + 1;
        }
        node
    }

    fn capacity(&self) -> usize {
        self.keys.len()
    }

    fn density(&self) -> f64 {
        if self.capacity() == 0 {
            1.0
        } else {
            self.num_keys as f64 / self.capacity() as f64
        }
    }

    /// Key of the nearest occupied slot at or before `i`.
    fn effective_key(&self, i: usize) -> Option<K> {
        let mut p = i;
        loop {
            if self.occupied[p] {
                return Some(self.keys[p]);
            }
            if p == 0 {
                return None;
            }
            p -= 1;
        }
    }

    /// Position of the first occupied slot with key `>= key`
    /// (or `capacity()` if none), found by exponential search around the
    /// model prediction — ALEX's "last-mile" search.
    fn lower_bound(&mut self, key: K) -> usize {
        let cap = self.capacity();
        if cap == 0 || self.num_keys == 0 {
            return cap;
        }
        let pred = self.model.predict_clamped(key, cap);
        // Predicate: effective_key(i) >= key, monotone in i.
        let above = |node: &Self, i: usize| match node.effective_key(i) {
            Some(k) => k >= key,
            None => false,
        };
        let mut iters = 1u64;
        let (mut lo, mut hi);
        if above(self, pred) {
            // Answer is at or before pred: grow a bracket to the left.
            let mut step = 1usize;
            let mut left = pred;
            while left > 0 && above(self, left.saturating_sub(step)) {
                left = left.saturating_sub(step);
                step *= 2;
                iters += 1;
            }
            lo = left.saturating_sub(step);
            hi = pred;
        } else {
            // Answer is after pred: grow a bracket to the right.
            let mut step = 1usize;
            let mut right = pred;
            while right < cap - 1 && !above(self, (right + step).min(cap - 1)) {
                right = (right + step).min(cap - 1);
                step *= 2;
                iters += 1;
            }
            lo = right;
            hi = (right + step).min(cap - 1);
            if !above(self, hi) {
                self.num_search_iterations += iters;
                return cap;
            }
        }
        // Binary search for the smallest i in (lo, hi] with above(i).
        while lo < hi {
            let mid = (lo + hi) / 2;
            iters += 1;
            if above(self, mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        self.num_search_iterations += iters;
        // `lo` satisfies the predicate; move to the occupied slot itself.
        let mut p = lo;
        while !self.occupied[p] {
            p -= 1;
        }
        p
    }

    /// Insert. Returns `(newly_inserted, keys_shifted)` or `Err(())` if the
    /// node has no room and needs an SMO first.
    fn insert(&mut self, key: K, value: Payload) -> Result<(bool, u64), ()> {
        let cap = self.capacity();
        if self.num_keys == 0 {
            if cap == 0 {
                return Err(());
            }
            let pos = self.model.predict_clamped(key, cap);
            self.keys[pos] = key;
            self.values[pos] = value;
            self.occupied[pos] = true;
            self.num_keys += 1;
            self.num_inserts += 1;
            return Ok((true, 0));
        }
        let lb = self.lower_bound(key);
        if lb < cap && self.occupied[lb] && self.keys[lb] == key {
            self.values[lb] = value;
            return Ok((false, 0));
        }
        if self.num_keys >= cap {
            return Err(());
        }
        self.num_inserts += 1;
        // The legal insertion region is the run of gaps immediately before
        // `lb` (all of which sit between the previous occupied key < `key`
        // and the next occupied key >= `key`).
        let mut g = lb;
        while g > 0 && !self.occupied[g - 1] {
            g -= 1;
        }
        if g < lb {
            // A gap is available without shifting: use the one closest to
            // the model's prediction.
            let pred = self.model.predict_clamped(key, cap).clamp(g, lb - 1);
            self.keys[pred] = key;
            self.values[pred] = value;
            self.occupied[pred] = true;
            self.num_keys += 1;
            return Ok((true, 0));
        }
        // No adjacent gap: shift towards the nearest gap.
        if let Some(gap) = (lb..cap).find(|&p| !self.occupied[p]) {
            // Shift [lb, gap) one slot to the right.
            let shifted = (gap - lb) as u64;
            for p in (lb..gap).rev() {
                self.keys[p + 1] = self.keys[p];
                self.values[p + 1] = self.values[p];
                self.occupied[p + 1] = true;
            }
            self.keys[lb] = key;
            self.values[lb] = value;
            self.occupied[lb] = true;
            self.num_keys += 1;
            self.num_shifts += shifted;
            return Ok((true, shifted));
        }
        if let Some(gap) = (0..lb).rev().find(|&p| !self.occupied[p]) {
            // Shift (gap, lb) one slot to the left and insert at lb - 1.
            let shifted = (lb - 1 - gap) as u64;
            for p in gap..lb - 1 {
                self.keys[p] = self.keys[p + 1];
                self.values[p] = self.values[p + 1];
                self.occupied[p] = true;
            }
            self.keys[lb - 1] = key;
            self.values[lb - 1] = value;
            self.occupied[lb - 1] = true;
            self.num_keys += 1;
            self.num_shifts += shifted;
            return Ok((true, shifted));
        }
        Err(())
    }

    fn remove(&mut self, key: K) -> Option<Payload> {
        let lb = self.lower_bound(key);
        if lb < self.capacity() && self.occupied[lb] && self.keys[lb] == key {
            self.occupied[lb] = false;
            self.num_keys -= 1;
            Some(self.values[lb])
        } else {
            None
        }
    }

    /// All live entries in key order.
    fn entries(&self) -> Vec<(K, Payload)> {
        (0..self.capacity())
            .filter(|&i| self.occupied[i])
            .map(|i| (self.keys[i], self.values[i]))
            .collect()
    }

    /// Append live entries with key >= start until `count` collected.
    fn scan_into(&self, start: K, count: usize, out: &mut Vec<(K, Payload)>) {
        for i in 0..self.capacity() {
            if out.len() >= count {
                return;
            }
            if self.occupied[i] && self.keys[i] >= start {
                out.push((self.keys[i], self.values[i]));
            }
        }
    }

    fn memory(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.keys.capacity() * std::mem::size_of::<K>()
            + self.values.capacity() * std::mem::size_of::<Payload>()
            + self.occupied.capacity()
    }

    /// Stats-free point probe from a precomputed model prediction: the same
    /// exponential "last-mile" search as [`DataNode::lower_bound`], without
    /// the `&mut` statistics updates, shared by the scalar and batched read
    /// paths. `pred` must be `< capacity()`.
    fn probe(&self, key: K, pred: usize) -> Option<Payload> {
        let cap = self.capacity();
        if cap == 0 || self.num_keys == 0 {
            return None;
        }
        let above = |i: usize| match self.effective_key(i) {
            Some(k) => k >= key,
            None => false,
        };
        let (mut lo, mut hi);
        if above(pred) {
            let mut step = 1usize;
            let mut left = pred;
            while left > 0 && above(left.saturating_sub(step)) {
                left = left.saturating_sub(step);
                step *= 2;
            }
            lo = left.saturating_sub(step);
            hi = pred;
        } else {
            let mut step = 1usize;
            let mut right = pred;
            while right < cap - 1 && !above((right + step).min(cap - 1)) {
                right = (right + step).min(cap - 1);
                step *= 2;
            }
            lo = right;
            hi = (right + step).min(cap - 1);
            if !above(hi) {
                return None;
            }
        }
        while lo < hi {
            let mid = (lo + hi) / 2;
            if above(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let mut p = lo;
        while !self.occupied[p] {
            p -= 1;
        }
        (self.keys[p] == key).then_some(self.values[p])
    }
}

/// Group width of the software-pipelined batched lookup: wide enough to
/// cover DRAM latency with independent work, small enough that the staged
/// `(node, prediction)` state stays in registers/L1.
pub const BATCH_WIDTH: usize = 8;

/// Best-effort read prefetch of the cache line holding `*ptr`. No-op on
/// architectures without an exposed prefetch intrinsic.
#[inline(always)]
fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch never faults, even on invalid addresses.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(ptr as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}

/// ALEX: a model-routed collection of gapped-array data nodes.
#[derive(Debug)]
pub struct Alex<K> {
    config: AlexConfig,
    /// Inner-level model routing keys to data nodes ("ML for subspace lookup").
    inner_model: LinearModel,
    /// First key of each data node (used to correct the model's routing).
    boundaries: Vec<K>,
    nodes: Vec<DataNode<K>>,
    len: usize,
    counters: OpCounters,
    last_insert: InsertStats,
}

impl<K: Key> Default for Alex<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key> Alex<K> {
    pub fn new() -> Self {
        Self::with_config(AlexConfig::default())
    }

    pub fn with_config(config: AlexConfig) -> Self {
        Alex {
            config,
            inner_model: LinearModel::default(),
            boundaries: vec![K::MIN],
            nodes: vec![DataNode::build(&[], config.init_density)],
            len: 0,
            counters: OpCounters::default(),
            last_insert: InsertStats::default(),
        }
    }

    /// The configuration in use (for Table 1 reporting).
    pub fn config(&self) -> AlexConfig {
        self.config
    }

    /// Number of data nodes.
    pub fn data_node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Average data-node density (used by the ALEX-M experiment).
    pub fn average_density(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().map(|n| n.density()).sum::<f64>() / self.nodes.len() as f64
    }

    /// Retrain the inner routing model from the current node boundaries.
    fn retrain_inner(&mut self) {
        self.inner_model = LinearModel::fit_points(
            self.boundaries
                .iter()
                .enumerate()
                .map(|(i, k)| (k.to_model_input(), i as f64)),
        );
    }

    /// Route a key to its data node: model prediction plus local correction.
    /// Returns `(node_index, nodes_traversed)`.
    fn locate(&self, key: K) -> (usize, u64) {
        let n = self.nodes.len();
        let mut idx = self.inner_model.predict_clamped(key, n);
        let mut traversed = 1u64;
        while idx + 1 < n && self.boundaries[idx + 1] <= key {
            idx += 1;
            traversed += 1;
        }
        while idx > 0 && self.boundaries[idx] > key {
            idx -= 1;
            traversed += 1;
        }
        (idx, traversed.max(1))
    }

    /// Batched point lookups, software-pipelined [`BATCH_WIDTH`] keys at a
    /// time: stage 1 routes every key of the group through the inner model,
    /// computes its data-node slot prediction, and issues a prefetch for the
    /// predicted position; stage 2 finishes the bounded "last-mile" searches
    /// against (now likely cache-resident) lines. Appends one `Option` per
    /// key to `out` in input order — semantically identical to a scalar
    /// `get` per key, only faster, because the `BATCH_WIDTH` independent
    /// memory accesses overlap instead of serializing on DRAM latency.
    pub fn get_batch_into(&self, keys: &[K], out: &mut Vec<Option<Payload>>) {
        out.reserve(keys.len());
        let mut staged = [(0usize, 0usize); BATCH_WIDTH];
        for group in keys.chunks(BATCH_WIDTH) {
            // Stage 1: route + predict + prefetch for the whole group.
            for (j, &key) in group.iter().enumerate() {
                let (idx, _) = self.locate(key);
                let node = &self.nodes[idx];
                let cap = node.capacity();
                let pred = if cap == 0 {
                    0
                } else {
                    node.model.predict_clamped(key, cap)
                };
                staged[j] = (idx, pred);
                if cap != 0 {
                    prefetch_read(node.keys.as_ptr().wrapping_add(pred));
                    prefetch_read(node.occupied.as_ptr().wrapping_add(pred));
                }
            }
            // Stage 2: bounded local searches on the prefetched positions.
            for (j, &key) in group.iter().enumerate() {
                let (idx, pred) = staged[j];
                out.push(self.nodes[idx].probe(key, pred));
            }
        }
    }

    /// Rebuild or split node `idx` after its insert failed or its density
    /// exceeded the budget. The cost-model decision is the paper's: expand
    /// and retrain while the node is under the size budget, split otherwise.
    fn smo(&mut self, idx: usize) {
        let entries = self.nodes[idx].entries();
        if entries.len() < self.config.max_node_entries {
            // Expand & retrain in place.
            self.nodes[idx] = DataNode::build(&entries, self.config.init_density);
            return;
        }
        // Split into two nodes at the median key.
        let mid = entries.len() / 2;
        let left = DataNode::build(&entries[..mid], self.config.init_density);
        let right = DataNode::build(&entries[mid..], self.config.init_density);
        let right_first = entries[mid].0;
        self.nodes[idx] = left;
        self.nodes.insert(idx + 1, right);
        self.boundaries.insert(idx + 1, right_first);
        self.retrain_inner();
    }
}

impl<K: Key> Index<K> for Alex<K> {
    fn bulk_load(&mut self, entries: &[(K, Payload)]) {
        self.len = entries.len();
        self.nodes.clear();
        self.boundaries.clear();
        if entries.is_empty() {
            self.boundaries.push(K::MIN);
            self.nodes
                .push(DataNode::build(&[], self.config.init_density));
            self.retrain_inner();
            return;
        }
        // Partition into data nodes of at most max_node_entries * density.
        let per_node = ((self.config.max_node_entries as f64 * self.config.init_density) as usize)
            .clamp(64, self.config.max_node_entries)
            .min(entries.len().max(1));
        for chunk in entries.chunks(per_node) {
            self.boundaries.push(chunk[0].0);
            self.nodes
                .push(DataNode::build(chunk, self.config.init_density));
        }
        self.boundaries[0] = K::MIN;
        self.retrain_inner();
        self.counters = OpCounters::default();
    }

    fn get(&self, key: K) -> Option<Payload> {
        let (idx, _) = self.locate(key);
        // `lower_bound` updates search statistics, which needs `&mut`; the
        // read path runs the stats-free probe on the const node.
        let node = &self.nodes[idx];
        let cap = node.capacity();
        if cap == 0 || node.num_keys == 0 {
            return None;
        }
        node.probe(key, node.model.predict_clamped(key, cap))
    }

    fn insert(&mut self, key: K, value: Payload) -> bool {
        let mut stats = InsertStats::default();
        let mut timer = PhaseTimer::start();

        let (idx, traversed) = self.locate(key);
        stats.nodes_traversed = traversed;
        stats.breakdown.lookup_ns = timer.lap_ns();

        let result = self.nodes[idx].insert(key, value);
        let (inserted, shifted) = match result {
            Ok(pair) => pair,
            Err(()) => {
                // SMO, then retry (the retry cannot fail: the rebuilt node has
                // gaps again).
                let smo_timer = PhaseTimer::start();
                self.smo(idx);
                stats.breakdown.smo_ns = smo_timer.elapsed_ns();
                stats.triggered_smo = true;
                stats.nodes_created += 1;
                let (idx2, _) = self.locate(key);
                self.nodes[idx2]
                    .insert(key, value)
                    .expect("insert after SMO must succeed")
            }
        };
        stats.keys_shifted = shifted;
        let work_ns = timer.lap_ns();
        // Attribute post-lookup time: shifting dominates when keys moved.
        if shifted > 0 {
            stats.breakdown.shift_ns = work_ns;
        } else {
            stats.breakdown.insert_ns = work_ns;
        }

        if inserted {
            self.len += 1;
        }
        // Density-triggered proactive SMO (performance-driven design).
        if self.nodes[idx.min(self.nodes.len() - 1)].density() > self.config.max_density {
            let smo_timer = PhaseTimer::start();
            self.smo(idx.min(self.nodes.len() - 1));
            stats.breakdown.smo_ns += smo_timer.elapsed_ns();
            stats.triggered_smo = true;
            stats.nodes_created += 1;
        }
        stats.breakdown.stat_ns = 0;
        self.last_insert = stats;
        self.counters.record_insert(&stats);
        inserted
    }

    fn remove(&mut self, key: K) -> Option<Payload> {
        let (idx, traversed) = self.locate(key);
        self.counters.record_remove(traversed);
        let removed = self.nodes[idx].remove(key);
        if removed.is_some() {
            self.len -= 1;
            // Deleting keys does not pollute the model (Message 8); we only
            // repack when density drops far below the minimum.
            if self.nodes[idx].density() < self.config.min_density / 4.0
                && self.nodes[idx].num_keys > 0
                && self.nodes[idx].capacity() > 64
            {
                let entries = self.nodes[idx].entries();
                self.nodes[idx] = DataNode::build(&entries, self.config.init_density);
                self.counters.smo_count += 1;
            }
        }
        removed
    }

    fn range(&self, spec: RangeSpec<K>, out: &mut Vec<(K, Payload)>) -> usize {
        let before = out.len();
        let (mut idx, _) = self.locate(spec.start);
        let target = before + spec.count;
        while idx < self.nodes.len() && out.len() < target {
            self.nodes[idx].scan_into(spec.start, target, out);
            idx += 1;
        }
        out.len() - before
    }

    fn len(&self) -> usize {
        self.len
    }

    fn memory_usage(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.boundaries.capacity() * std::mem::size_of::<K>()
            + self.nodes.iter().map(DataNode::memory).sum::<usize>()
    }

    fn stats(&self) -> StatsSnapshot {
        StatsSnapshot::new(self.counters)
    }

    fn reset_stats(&mut self) {
        self.counters = OpCounters::default();
    }

    fn last_insert_stats(&self) -> InsertStats {
        self.last_insert
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: "ALEX",
            learned: true,
            concurrent: false,
            supports_delete: true,
            supports_range: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn entries(n: u64) -> Vec<(u64, Payload)> {
        (0..n).map(|i| (i * 13 + 7, i)).collect()
    }

    #[test]
    fn bulk_load_and_lookup() {
        let mut alex = Alex::new();
        alex.bulk_load(&entries(20_000));
        assert_eq!(alex.len(), 20_000);
        for i in (0..20_000).step_by(173) {
            assert_eq!(alex.get(i * 13 + 7), Some(i), "key {}", i * 13 + 7);
            assert_eq!(alex.get(i * 13 + 8), None);
        }
    }

    #[test]
    fn inserts_fill_gaps_and_shift() {
        let mut alex = Alex::new();
        alex.bulk_load(&entries(5_000));
        for i in 0..5_000u64 {
            assert!(
                alex.insert(i * 13 + 8, i + 100_000),
                "insert {}",
                i * 13 + 8
            );
        }
        assert_eq!(alex.len(), 10_000);
        for i in (0..5_000).step_by(97) {
            assert_eq!(alex.get(i * 13 + 7), Some(i));
            assert_eq!(alex.get(i * 13 + 8), Some(i + 100_000));
        }
        let stats = alex.stats();
        assert_eq!(stats.counters.inserts, 5_000);
        // Some inserts needed shifting, some landed in gaps.
        assert!(stats.counters.keys_shifted > 0);
    }

    #[test]
    fn update_in_place_returns_false() {
        let mut alex = Alex::new();
        alex.bulk_load(&entries(100));
        assert!(!alex.insert(7, 999));
        assert_eq!(alex.get(7), Some(999));
        assert_eq!(alex.len(), 100);
    }

    #[test]
    fn empty_index_inserts_from_scratch() {
        let mut alex: Alex<u64> = Alex::new();
        assert!(alex.is_empty());
        for i in 0..2_000u64 {
            assert!(alex.insert(i * 3, i));
        }
        assert_eq!(alex.len(), 2_000);
        for i in 0..2_000u64 {
            assert_eq!(alex.get(i * 3), Some(i));
        }
    }

    #[test]
    fn remove_and_range() {
        let mut alex = Alex::new();
        alex.bulk_load(&entries(3_000));
        for i in 0..1_000u64 {
            assert_eq!(alex.remove(i * 13 + 7), Some(i));
            assert_eq!(alex.get(i * 13 + 7), None);
        }
        assert_eq!(alex.len(), 2_000);
        assert_eq!(alex.remove(4), None);
        let mut out = Vec::new();
        let got = alex.range(RangeSpec::new(0, 100), &mut out);
        assert_eq!(got, 100);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(out[0].0, 1_000 * 13 + 7);
    }

    #[test]
    fn matches_model_under_random_ops() {
        let mut alex = Alex::with_config(AlexConfig {
            max_node_entries: 1 << 12,
            ..Default::default()
        });
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut x: u64 = 0x5a5a5a;
        for i in 0..30_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 10_000;
            match x % 3 {
                0 => assert_eq!(
                    alex.insert(key, i),
                    model.insert(key, i).is_none(),
                    "insert {key}"
                ),
                1 => assert_eq!(alex.remove(key), model.remove(&key), "remove {key}"),
                _ => assert_eq!(alex.get(key), model.get(&key).copied(), "get {key}"),
            }
        }
        assert_eq!(alex.len(), model.len());
        let mut out = Vec::new();
        alex.range(RangeSpec::new(0, usize::MAX), &mut out);
        let expected: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn node_splits_bound_node_size() {
        let mut alex = Alex::with_config(AlexConfig {
            max_node_entries: 1024,
            ..Default::default()
        });
        for i in 0..10_000u64 {
            alex.insert(i, i);
        }
        assert!(alex.data_node_count() > 4);
        for i in (0..10_000).step_by(487) {
            assert_eq!(alex.get(i), Some(i));
        }
        assert!(alex.stats().counters.smo_count > 0);
    }

    #[test]
    fn memory_matched_config_lowers_density() {
        let mut normal = Alex::new();
        let mut matched = Alex::with_config(AlexConfig::memory_matched());
        normal.bulk_load(&entries(20_000));
        matched.bulk_load(&entries(20_000));
        assert!(matched.average_density() < normal.average_density());
        assert!(matched.memory_usage() > normal.memory_usage());
        assert_eq!(matched.get(7), Some(0));
    }

    #[test]
    fn batched_lookup_matches_scalar_gets() {
        let mut alex = Alex::with_config(AlexConfig {
            max_node_entries: 1 << 12,
            ..Default::default()
        });
        alex.bulk_load(&entries(20_000));
        // Mixed hits and misses, shuffled order, length not a multiple of
        // the batch width, duplicates included.
        let mut keys: Vec<u64> = (0..1_003u64)
            .map(|i| (i.wrapping_mul(0x9e37_79b9) % 25_000) * 13 + 7 - (i % 2))
            .collect();
        keys.push(keys[0]);
        let mut batched = Vec::new();
        alex.get_batch_into(&keys, &mut batched);
        let scalar: Vec<_> = keys.iter().map(|&k| alex.get(k)).collect();
        assert_eq!(batched, scalar);
        assert!(batched.iter().any(|r| r.is_some()));
        assert!(batched.iter().any(|r| r.is_none()));

        // Empty index and empty batch are both fine.
        let empty: Alex<u64> = Alex::new();
        let mut out = Vec::new();
        empty.get_batch_into(&[1, 2, 3], &mut out);
        assert_eq!(out, vec![None, None, None]);
        out.clear();
        empty.get_batch_into(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn insert_stats_report_breakdown() {
        let mut alex = Alex::new();
        alex.bulk_load(&entries(1_000));
        alex.insert(5, 5);
        let s = alex.last_insert_stats();
        assert!(s.nodes_traversed >= 1);
        assert!(s.breakdown.total_ns() >= s.breakdown.lookup_ns);
        assert_eq!(alex.meta().name, "ALEX");
        assert!(alex.meta().learned);
    }
}
