//! LIPP — an updatable learned index with precise positions (Wu et al., VLDB'21).
//!
//! LIPP eliminates the last-mile search entirely: every node holds a linear
//! model and an array of slots, and a key lives *exactly* at its predicted
//! slot. When two keys collide on the same slot, LIPP creates a new child
//! node holding both (collision-driven chaining, §2.1), so the structure is
//! an unbalanced tree whose nodes interleave data entries and child pointers
//! (the *unified node layout* whose consequences — scalability and range-scan
//! branching — the paper analyses). Every node maintains statistics
//! (inserts and conflicts since it was built); when the conflict ratio of a
//! subtree exceeds a threshold the subtree is rebuilt from scratch.

use gre_core::stats::PhaseTimer;
use gre_core::{Index, IndexMeta, InsertStats, Key, OpCounters, Payload, RangeSpec, StatsSnapshot};
use gre_pla::LinearModel;

/// Configuration of LIPP (Table 1).
#[derive(Debug, Clone, Copy)]
pub struct LippConfig {
    /// Node density: slots per node = keys / density (paper: 0.5).
    pub density: f64,
    /// Maximum number of slots in one node (paper: 16 MB ≈ 0.7M slots;
    /// scaled down by default for laptop-sized runs).
    pub max_node_slots: usize,
    /// Rebuild a subtree once `inserts >= inserted_ratio * build_size`
    /// *and* `conflicts >= conflict_ratio * inserts` (paper: 2 / 0.1).
    pub inserted_ratio: f64,
    /// See `inserted_ratio`.
    pub conflict_ratio: f64,
}

impl Default for LippConfig {
    fn default() -> Self {
        LippConfig {
            density: 0.5,
            max_node_slots: 1 << 20,
            inserted_ratio: 2.0,
            conflict_ratio: 0.1,
        }
    }
}

/// One slot of a LIPP node: empty, a data entry, or a pointer to a child
/// subtree (the unified layout). `Bucket` is a correctness escape hatch this
/// reproduction adds: models are trained on `f64` projections of the keys, so
/// distinct `u64` keys closer than one f64 ulp (~2^11 apart near 2^63) can
/// never be separated by any linear model — chaining such a group would
/// recurse forever. Those groups are stored as a small sorted bucket instead.
#[derive(Debug)]
enum Slot<K> {
    Empty,
    Data(K, Payload),
    Child(Box<LippNode<K>>),
    Bucket(Vec<(K, Payload)>),
}

#[derive(Debug)]
struct LippNode<K> {
    model: LinearModel,
    slots: Vec<Slot<K>>,
    /// Number of data entries in this subtree.
    subtree_keys: usize,
    /// Keys in the node when it was (re)built.
    build_size: usize,
    /// Statistics updated on every insert that passes through this node —
    /// the per-node bookkeeping whose cost the paper highlights (Figure 3's
    /// "stat" component and LIPP+'s scalability collapse).
    stat_inserts: u64,
    stat_conflicts: u64,
}

impl<K: Key> LippNode<K> {
    /// Build a node over sorted entries. Collisions during the build are
    /// resolved by recursively building child nodes, exactly as inserts do.
    fn build(entries: &[(K, Payload)], config: &LippConfig) -> Box<Self> {
        let n = entries.len();
        let slots_len = ((n as f64 / config.density.max(0.05)).ceil() as usize)
            .clamp(8, config.max_node_slots.max(8));
        let keys: Vec<K> = entries.iter().map(|e| e.0).collect();
        let expansion = if n > 1 {
            (slots_len - 1) as f64 / (n - 1) as f64
        } else {
            1.0
        };
        let mut model = LinearModel::fit_keys_with_expansion(&keys, expansion);
        // Defensive: the model must separate the group's first and last keys
        // or collision chaining could recurse without making progress; fall
        // back to exact two-point interpolation if floating-point precision
        // collapsed the fitted slope.
        if n >= 2 {
            let first = keys[0].to_model_input();
            let last = keys[n - 1].to_model_input();
            if first < last
                && model.predict_clamped(keys[0], slots_len)
                    == model.predict_clamped(keys[n - 1], slots_len)
            {
                let slope = (slots_len - 1) as f64 / (last - first);
                model = LinearModel::new(slope, -slope * first);
            }
        }
        let mut node = Box::new(LippNode {
            model,
            slots: (0..slots_len).map(|_| Slot::Empty).collect(),
            subtree_keys: 0,
            build_size: n,
            stat_inserts: 0,
            stat_conflicts: 0,
        });
        if n == 0 {
            return node;
        }
        // Group consecutive entries that collide on the same predicted slot.
        let mut duplicates_collapsed = 0usize;
        let mut group_start = 0usize;
        while group_start < n {
            let pos = node
                .model
                .predict_clamped(entries[group_start].0, slots_len);
            let mut group_end = group_start + 1;
            while group_end < n
                && node.model.predict_clamped(entries[group_end].0, slots_len) == pos
            {
                group_end += 1;
            }
            let group = &entries[group_start..group_end];
            if group.len() == 1 || group.iter().all(|e| e.0 == group[0].0) {
                // A single entry — or duplicate keys, which a map-semantics
                // index collapses to the most recent payload.
                let last = group[group.len() - 1];
                node.slots[pos] = Slot::Data(last.0, last.1);
                duplicates_collapsed += group.len() - 1;
            } else if group.len() == n
                || group[0].0.to_model_input() == group[group.len() - 1].0.to_model_input()
            {
                // The model failed to separate this group at all: either the
                // keys collapse to identical model inputs (distinct u64 keys
                // within one f64 ulp), or `slope * key + intercept` lost the
                // separation to catastrophic cancellation (both terms ~1e17
                // for keys near 2^62, where the f64 ulp exceeds the slot
                // span). Recursing would rebuild the same single group
                // forever, so store the group as a sorted overflow bucket.
                let mut bucket: Vec<(K, Payload)> = group.to_vec();
                bucket.dedup_by(|b, a| {
                    if a.0 == b.0 {
                        a.1 = b.1;
                        true
                    } else {
                        false
                    }
                });
                duplicates_collapsed += group.len() - bucket.len();
                node.slots[pos] = Slot::Bucket(bucket);
            } else {
                node.slots[pos] = Slot::Child(Self::build(group, config));
            }
            group_start = group_end;
        }
        node.subtree_keys = n - duplicates_collapsed;
        node
    }

    /// Collect all entries of the subtree in key order.
    fn collect(&self, out: &mut Vec<(K, Payload)>) {
        for slot in &self.slots {
            match slot {
                Slot::Empty => {}
                Slot::Data(k, v) => out.push((*k, *v)),
                Slot::Child(child) => child.collect(out),
                Slot::Bucket(bucket) => out.extend_from_slice(bucket),
            }
        }
    }

    /// Collect entries with key >= start, stopping once `count` collected.
    fn collect_from(&self, start: K, count: usize, out: &mut Vec<(K, Payload)>) {
        for slot in &self.slots {
            if out.len() >= count {
                return;
            }
            // The unified layout makes this scan branch on every slot: data
            // entry or child pointer (Message 12).
            match slot {
                Slot::Empty => {}
                Slot::Data(k, v) => {
                    if *k >= start {
                        out.push((*k, *v));
                    }
                }
                Slot::Child(child) => child.collect_from(start, count, out),
                Slot::Bucket(bucket) => {
                    for &(k, v) in bucket {
                        if out.len() >= count {
                            return;
                        }
                        if k >= start {
                            out.push((k, v));
                        }
                    }
                }
            }
        }
    }

    fn memory(&self) -> usize {
        let mut total =
            std::mem::size_of::<Self>() + self.slots.capacity() * std::mem::size_of::<Slot<K>>();
        for slot in &self.slots {
            match slot {
                Slot::Child(child) => total += child.memory(),
                Slot::Bucket(bucket) => {
                    total += bucket.capacity() * std::mem::size_of::<(K, Payload)>()
                }
                _ => {}
            }
        }
        total
    }

    fn should_rebuild(&self, config: &LippConfig) -> bool {
        self.stat_inserts as f64 >= config.inserted_ratio * self.build_size.max(8) as f64
            && self.stat_conflicts as f64 >= config.conflict_ratio * self.stat_inserts as f64
    }
}

/// LIPP: collision-chained tree of model-addressed nodes.
#[derive(Debug)]
pub struct Lipp<K> {
    root: Box<LippNode<K>>,
    config: LippConfig,
    len: usize,
    counters: OpCounters,
    last_insert: InsertStats,
}

impl<K: Key> Default for Lipp<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key> Lipp<K> {
    pub fn new() -> Self {
        Self::with_config(LippConfig::default())
    }

    pub fn with_config(config: LippConfig) -> Self {
        Lipp {
            root: LippNode::build(&[], &config),
            config,
            len: 0,
            counters: OpCounters::default(),
            last_insert: InsertStats::default(),
        }
    }

    pub fn config(&self) -> LippConfig {
        self.config
    }

    /// Height of the tree (for diagnostics).
    pub fn height(&self) -> usize {
        fn depth<K: Key>(node: &LippNode<K>) -> usize {
            1 + node
                .slots
                .iter()
                .filter_map(|s| match s {
                    Slot::Child(c) => Some(depth(c)),
                    _ => None,
                })
                .max()
                .unwrap_or(0)
        }
        depth(&self.root)
    }

    /// Insert recursively; returns (newly_inserted, nodes_created, conflict).
    fn insert_rec(
        node: &mut LippNode<K>,
        key: K,
        value: Payload,
        config: &LippConfig,
        stats: &mut InsertStats,
    ) -> bool {
        stats.nodes_traversed += 1;
        // Per-node statistics are updated on every node of the insertion
        // path (the cost the paper singles out for LIPP).
        node.stat_inserts += 1;
        let pos = node.model.predict_clamped(key, node.slots.len());
        let inserted = match &mut node.slots[pos] {
            slot @ Slot::Empty => {
                *slot = Slot::Data(key, value);
                true
            }
            Slot::Data(existing_key, existing_value) => {
                if *existing_key == key {
                    *existing_value = value;
                    false
                } else {
                    // Collision: chain a new child node holding both entries.
                    node.stat_conflicts += 1;
                    let mut pair = [(*existing_key, *existing_value), (key, value)];
                    pair.sort_by_key(|e| e.0);
                    let child = LippNode::build(&pair, config);
                    node.slots[pos] = Slot::Child(child);
                    stats.nodes_created += 1;
                    true
                }
            }
            Slot::Bucket(bucket) => {
                // Precision-collapsed keys: maintain the sorted bucket.
                node.stat_conflicts += 1;
                match bucket.binary_search_by_key(&key, |e| e.0) {
                    Ok(i) => {
                        bucket[i].1 = value;
                        false
                    }
                    Err(i) => {
                        bucket.insert(i, (key, value));
                        true
                    }
                }
            }
            Slot::Child(child) => {
                let created_before = stats.nodes_created;
                let inserted = Self::insert_rec(child, key, value, config, stats);
                // Conflicts anywhere in the subtree count against this node
                // too, so the rebuild trigger sees the whole subtree's
                // collision rate (as LIPP's per-node statistics do).
                if stats.nodes_created > created_before {
                    node.stat_conflicts += 1;
                }
                inserted
            }
        };
        if inserted {
            node.subtree_keys += 1;
        }
        // Subtree adjustment (SMO-like rebuild) when the conflict ratio is
        // exceeded, bounding the tree height.
        if node.should_rebuild(config) {
            let mut entries = Vec::with_capacity(node.subtree_keys);
            node.collect(&mut entries);
            *node = *LippNode::build(&entries, config);
            stats.triggered_smo = true;
        }
        inserted
    }

    fn remove_rec(node: &mut LippNode<K>, key: K) -> Option<Payload> {
        let pos = node.model.predict_clamped(key, node.slots.len());
        let removed = match &mut node.slots[pos] {
            Slot::Empty => None,
            Slot::Data(existing_key, existing_value) => {
                if *existing_key == key {
                    let v = *existing_value;
                    node.slots[pos] = Slot::Empty;
                    Some(v)
                } else {
                    None
                }
            }
            Slot::Child(child) => Self::remove_rec(child, key),
            Slot::Bucket(bucket) => match bucket.binary_search_by_key(&key, |e| e.0) {
                Ok(i) => {
                    let v = bucket.remove(i).1;
                    // Collapse a drained bucket so the slot returns to
                    // model-addressed placement for future inserts.
                    if bucket.is_empty() {
                        node.slots[pos] = Slot::Empty;
                    }
                    Some(v)
                }
                Err(_) => None,
            },
        };
        if removed.is_some() {
            node.subtree_keys -= 1;
        }
        removed
    }
}

impl<K: Key> Index<K> for Lipp<K> {
    fn bulk_load(&mut self, entries: &[(K, Payload)]) {
        self.root = LippNode::build(entries, &self.config);
        self.len = self.root.subtree_keys;
        self.counters = OpCounters::default();
    }

    fn get(&self, key: K) -> Option<Payload> {
        let mut node = self.root.as_ref();
        loop {
            let pos = node.model.predict_clamped(key, node.slots.len());
            match &node.slots[pos] {
                Slot::Empty => return None,
                Slot::Data(k, v) => return (*k == key).then_some(*v),
                Slot::Child(child) => node = child,
                Slot::Bucket(bucket) => {
                    return bucket
                        .binary_search_by_key(&key, |e| e.0)
                        .ok()
                        .map(|i| bucket[i].1)
                }
            }
        }
    }

    fn insert(&mut self, key: K, value: Payload) -> bool {
        let mut stats = InsertStats::default();
        let mut timer = PhaseTimer::start();
        // LIPP has no separate pre-insertion lookup: locating the slot is the
        // traversal itself, so the lookup share is measured as the traversal
        // to the target node performed by `get`.
        let _ = self.get(key);
        stats.breakdown.lookup_ns = timer.lap_ns();

        let inserted = Self::insert_rec(&mut self.root, key, value, &self.config, &mut stats);
        let work = timer.lap_ns();
        if stats.nodes_created > 0 {
            stats.breakdown.chain_ns = work / 2;
            stats.breakdown.stat_ns = work - work / 2;
        } else if stats.triggered_smo {
            stats.breakdown.smo_ns = work;
        } else {
            stats.breakdown.insert_ns = work / 2;
            stats.breakdown.stat_ns = work - work / 2;
        }

        if inserted {
            self.len += 1;
        }
        self.last_insert = stats;
        self.counters.record_insert(&stats);
        inserted
    }

    fn remove(&mut self, key: K) -> Option<Payload> {
        let removed = Self::remove_rec(&mut self.root, key);
        if removed.is_some() {
            self.len -= 1;
        }
        self.counters.record_remove(1);
        removed
    }

    fn range(&self, spec: RangeSpec<K>, out: &mut Vec<(K, Payload)>) -> usize {
        let before = out.len();
        self.root.collect_from(spec.start, before + spec.count, out);
        out.len() - before
    }

    fn len(&self) -> usize {
        self.len
    }

    fn memory_usage(&self) -> usize {
        std::mem::size_of::<Self>() + self.root.memory()
    }

    fn stats(&self) -> StatsSnapshot {
        StatsSnapshot::new(self.counters)
    }

    fn reset_stats(&mut self) {
        self.counters = OpCounters::default();
    }

    fn last_insert_stats(&self) -> InsertStats {
        self.last_insert
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: "LIPP",
            learned: true,
            concurrent: false,
            supports_delete: true,
            supports_range: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn entries(n: u64) -> Vec<(u64, Payload)> {
        (0..n).map(|i| (i * 11 + 3, i)).collect()
    }

    #[test]
    fn bulk_load_and_lookup() {
        let mut lipp = Lipp::new();
        lipp.bulk_load(&entries(20_000));
        assert_eq!(lipp.len(), 20_000);
        for i in (0..20_000).step_by(211) {
            assert_eq!(lipp.get(i * 11 + 3), Some(i));
            assert_eq!(lipp.get(i * 11 + 4), None);
        }
    }

    #[test]
    fn inserts_chain_new_nodes_on_collisions() {
        let mut lipp = Lipp::new();
        lipp.bulk_load(&entries(2_000));
        for i in 0..2_000u64 {
            assert!(lipp.insert(i * 11 + 4, i + 50_000));
        }
        assert_eq!(lipp.len(), 4_000);
        for i in (0..2_000).step_by(37) {
            assert_eq!(lipp.get(i * 11 + 3), Some(i));
            assert_eq!(lipp.get(i * 11 + 4), Some(i + 50_000));
        }
        let stats = lipp.stats();
        assert_eq!(stats.counters.inserts, 2_000);
        // LIPP resolves collisions by creating nodes, never by shifting keys.
        assert!(stats.counters.nodes_created > 0);
        assert_eq!(stats.counters.keys_shifted, 0);
        // Write amplification is bounded: at most one node per collision.
        assert!(stats.avg_nodes_created_per_insert() <= 1.0);
    }

    #[test]
    fn update_in_place() {
        let mut lipp = Lipp::new();
        lipp.bulk_load(&entries(100));
        assert!(!lipp.insert(3, 777));
        assert_eq!(lipp.get(3), Some(777));
        assert_eq!(lipp.len(), 100);
    }

    #[test]
    fn delete_does_not_pollute_the_model() {
        let mut lipp = Lipp::new();
        lipp.bulk_load(&entries(5_000));
        let height_before = lipp.height();
        for i in 0..2_500u64 {
            assert_eq!(lipp.remove(i * 11 + 3), Some(i));
        }
        assert_eq!(lipp.len(), 2_500);
        // Deletions only empty slots; the structure does not grow.
        assert!(lipp.height() <= height_before);
        for i in 2_500..5_000u64 {
            assert_eq!(lipp.get(i * 11 + 3), Some(i));
        }
        assert_eq!(lipp.remove(1), None);
    }

    #[test]
    fn matches_model_under_random_ops() {
        let mut lipp = Lipp::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut x: u64 = 0xfeed;
        for i in 0..30_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 12_000;
            match x % 3 {
                0 => assert_eq!(lipp.insert(key, i), model.insert(key, i).is_none()),
                1 => assert_eq!(lipp.remove(key), model.remove(&key)),
                _ => assert_eq!(lipp.get(key), model.get(&key).copied()),
            }
        }
        assert_eq!(lipp.len(), model.len());
        let mut out = Vec::new();
        lipp.range(RangeSpec::new(0, usize::MAX), &mut out);
        let expected: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn range_scan_is_sorted() {
        let mut lipp = Lipp::new();
        lipp.bulk_load(&entries(5_000));
        let mut out = Vec::new();
        let got = lipp.range(RangeSpec::new(1_000, 200), &mut out);
        assert_eq!(got, 200);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(out[0].0 >= 1_000);
    }

    #[test]
    fn memory_is_larger_than_alex() {
        use crate::alex::Alex;
        let data = entries(20_000);
        let mut lipp = Lipp::new();
        let mut alex = Alex::new();
        lipp.bulk_load(&data);
        alex.bulk_load(&data);
        // LIPP trades space for speed: lower node density plus chained
        // subtrees make it the most memory-hungry index (Figure 8).
        assert!(lipp.memory_usage() > alex.memory_usage());
    }

    #[test]
    fn subtree_rebuild_bounds_height() {
        let mut lipp = Lipp::with_config(LippConfig {
            max_node_slots: 256,
            ..Default::default()
        });
        // Adversarial inserts: monotone keys repeatedly collide at the top.
        for i in 0..20_000u64 {
            lipp.insert(i, i);
        }
        for i in (0..20_000).step_by(991) {
            assert_eq!(lipp.get(i), Some(i));
        }
        // Without the rebuild mechanism the chain would approach the number
        // of inserts; with it the height stays very small.
        assert!(lipp.height() < 64, "height = {}", lipp.height());
    }

    #[test]
    fn precision_collapsed_keys_do_not_recurse_forever() {
        // Distinct u64 keys within one f64 ulp of each other (near 2^62 the
        // ulp is 512): no linear model can separate them, so they must land
        // in an overflow bucket instead of chaining unboundedly.
        let base = 1u64 << 62;
        let data: Vec<(u64, u64)> = (0..64).map(|i| (base + i, i)).collect();
        let mut lipp = Lipp::new();
        lipp.bulk_load(&data);
        assert_eq!(lipp.len(), 64);
        for &(k, v) in &data {
            assert_eq!(lipp.get(k), Some(v), "bulk-loaded {k}");
        }
        // Same collapse via the insert path.
        let mut lipp = Lipp::new();
        for &(k, v) in &data {
            assert!(lipp.insert(k, v));
        }
        for &(k, v) in &data {
            assert_eq!(lipp.get(k), Some(v), "inserted {k}");
        }
        assert_eq!(lipp.remove(base + 1), Some(1));
        assert_eq!(lipp.get(base + 1), None);
        assert_eq!(lipp.len(), 63);
        let mut out = Vec::new();
        lipp.range(RangeSpec::new(base, 10), &mut out);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(out.len(), 10);
        assert!(lipp.height() < 16, "height = {}", lipp.height());
        // Draining a bucket collapses its slot back to Empty; reinserting
        // afterwards must still round-trip.
        for &(k, _) in &data {
            lipp.remove(k);
        }
        assert!(lipp.is_empty());
        for &(k, v) in &data {
            assert!(lipp.insert(k, v));
            assert_eq!(lipp.get(k), Some(v), "reinserted {k}");
        }
        assert_eq!(lipp.len(), 64);
    }

    #[test]
    fn empty_behaviour() {
        let mut lipp: Lipp<u64> = Lipp::new();
        assert!(lipp.is_empty());
        assert_eq!(lipp.get(9), None);
        assert_eq!(lipp.remove(9), None);
        assert!(lipp.insert(9, 1));
        assert_eq!(lipp.get(9), Some(1));
        assert_eq!(lipp.meta().name, "LIPP");
    }
}
