//! Latency-vs-offered-rate knee sweep: where does the serving path
//! saturate, and what does the latency curve look like on the way there?
//!
//! For each target — the bare batched pipeline and a 2-replica
//! [`ReplicatedTarget`] — the sweep first calibrates capacity with a short
//! closed-loop burst, then offers open-loop traffic at a ladder of
//! fractions of that capacity. Open-loop latency is measured from each
//! op's *intended* send time (coordinated-omission-safe), so as the
//! offered rate crosses capacity the per-interval p99 series explodes:
//! that inflection is the knee. A point is saturated when its achieved
//! rate falls below 90% of the offered rate; the knee estimate is the
//! first saturated rung of the ladder.
//!
//! Results (per-point achieved rate, merged and per-interval p99s, knee
//! estimates) land in `figs_knee.json`, round-tripped through the repo's
//! JSON parser. `--quick` shrinks spans for a CI smoke run.

use gre_bench::registry::IndexBuilder;
use gre_bench::{perfjson, RunOpts};
use gre_core::RequestKind;
use gre_datasets::Dataset;
use gre_durability::util::TempDir;
use gre_replica::ReplicatedTarget;
use gre_workloads::driver::{Driver, PhaseResult, ServeTarget};
use gre_workloads::scenario::{KeyDist, Mix, Pacing, Phase, Scenario, Span};
use std::time::Duration;

const REPORT_OUT: &str = "figs_knee.json";
const SHARDS: usize = 4;
/// Offered-rate ladder, as fractions of the calibrated capacity.
const LADDER: [f64; 6] = [0.25, 0.5, 0.75, 1.0, 1.25, 1.5];
/// A rung is saturated when achieved < this fraction of offered.
const SATURATION: f64 = 0.9;
/// Open-loop sender threads.
const SENDERS: usize = 4;

struct KneePoint {
    offered: f64,
    achieved: f64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
    /// Per-interval p99 series, µs (0 for intervals with no completion).
    interval_p99_us: Vec<f64>,
    saturated: bool,
}

struct KneeCurve {
    target: &'static str,
    capacity_ops_s: f64,
    points: Vec<KneePoint>,
    /// First saturated offered rate, if the ladder reached saturation.
    knee_ops_s: Option<f64>,
}

fn main() {
    let opts = RunOpts::from_env();
    let keys = Dataset::Covid.generate(opts.keys, opts.seed);
    let span = if opts.quick {
        Duration::from_millis(250)
    } else {
        Duration::from_millis(1_500)
    };

    println!(
        "# Knee sweep: open-loop offered-rate ladder {LADDER:?} x capacity, \
         {}ms spans, {SENDERS} senders",
        span.as_millis()
    );

    let curves = vec![
        sweep("pipeline", &opts, &keys, span),
        sweep("replicated", &opts, &keys, span),
    ];

    for curve in &curves {
        match curve.knee_ops_s {
            Some(knee) => println!(
                "{}: capacity {:.0} ops/s, knee at {:.0} ops/s offered",
                curve.target, curve.capacity_ops_s, knee
            ),
            None => println!(
                "{}: capacity {:.0} ops/s, no saturation within the ladder",
                curve.target, curve.capacity_ops_s
            ),
        }
    }

    let json = report_json(&opts, span, &curves);
    perfjson::Json::parse(&json).expect("knee report must round-trip the JSON parser");
    std::fs::write(REPORT_OUT, &json).expect("write knee report");
    println!("\nreport -> {REPORT_OUT} ({} bytes)", json.len());
}

/// Build a fresh serving target of the named flavor, bulk-loaded with
/// `keys`. A fresh instance per measurement keeps the rungs independent.
/// The target is returned before its WAL TempDir so it drops (joining
/// shipper threads) while the directory still exists.
fn build_target(target: &'static str, keys: &[u64]) -> (Box<dyn ServeTarget>, Option<TempDir>) {
    let spec = IndexBuilder::backend("alex+")
        .expect("alex+ registered")
        .shards(SHARDS);
    let bulk: Vec<(u64, u64)> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u64))
        .collect();
    match target {
        "pipeline" => {
            let mut t = gre_shard::PipelineTarget::new(spec.build_sharded(), 2, 256);
            t.load(&bulk);
            (Box::new(t), None)
        }
        "replicated" => {
            let tmp = TempDir::new("figs-knee");
            let factory_spec = IndexBuilder::backend("alex+")
                .expect("alex+ registered")
                .shards(SHARDS);
            let mut t =
                ReplicatedTarget::new(spec.build_sharded(), 2, 256, tmp.path(), move |_| {
                    factory_spec.build()
                })
                .with_replicas(2)
                .replica_workers(2);
            t.load(&bulk);
            (Box::new(t), Some(tmp))
        }
        other => unreachable!("unknown target {other}"),
    }
}

fn sweep(target: &'static str, opts: &RunOpts, keys: &[u64], span: Duration) -> KneeCurve {
    // Calibrate: a short closed-loop burst measures what the target can
    // actually deliver on this machine; the ladder is relative to that.
    let cal_ops: u64 = if opts.quick { 20_000 } else { 80_000 };
    let cal = Scenario::new("knee-calibrate", opts.seed, keys).phase(Phase::new(
        "calibrate",
        Mix::read_mostly(5),
        KeyDist::Uniform,
        Span::Ops(cal_ops),
        Pacing::ClosedLoop { threads: SENDERS },
    ));
    let capacity = {
        let (mut t, _tmp) = build_target(target, keys);
        let result = Driver::new().run(&cal, t.as_mut());
        result.phases[0].achieved_rate()
    };
    assert!(capacity > 0.0, "{target}: calibration measured a rate");
    println!("\n## {target} (calibrated capacity {capacity:.0} ops/s)");
    println!(
        "{:>14} {:>14} {:>10} {:>10} {:>14}",
        "offered/s", "achieved/s", "p50 us", "p99 us", "max intvl p99"
    );

    let mut points = Vec::new();
    for fraction in LADDER {
        let offered = capacity * fraction;
        let scenario = Scenario::new("knee", opts.seed, keys).phase(Phase::new(
            "paced",
            Mix::read_mostly(5),
            KeyDist::Uniform,
            Span::Time(span),
            Pacing::OpenLoop {
                rate_ops_s: offered,
            },
        ));
        let (mut t, _tmp) = build_target(target, keys);
        let result = Driver::new()
            .interval(Duration::from_millis(50))
            .open_loop_senders(SENDERS)
            .run(&scenario, t.as_mut());
        let point = knee_point(offered, &result.phases[0]);
        println!(
            "{:>14.0} {:>14.0} {:>10.1} {:>10.1} {:>14.1}{}",
            point.offered,
            point.achieved,
            point.p50_us,
            point.p99_us,
            point.interval_p99_us.iter().cloned().fold(0.0f64, f64::max),
            if point.saturated { "  SATURATED" } else { "" }
        );
        points.push(point);
    }

    // Structural sanity: every rung completed work, and the lightest rung
    // was comfortably delivered (it offers a quarter of measured capacity).
    assert!(
        points.iter().all(|p| p.achieved > 0.0),
        "{target}: rungs ran"
    );
    assert!(
        points[0].achieved > points[0].offered * 0.5,
        "{target}: the 0.25x rung is deliverable ({:.0} of {:.0} ops/s)",
        points[0].achieved,
        points[0].offered
    );

    let knee_ops_s = points.iter().find(|p| p.saturated).map(|p| p.offered);
    KneeCurve {
        target,
        capacity_ops_s: capacity,
        points,
        knee_ops_s,
    }
}

fn knee_point(offered: f64, phase: &PhaseResult) -> KneePoint {
    let hist = phase.latency.merged(&RequestKind::ALL);
    let achieved = phase.achieved_rate();
    KneePoint {
        offered,
        achieved,
        p50_us: hist.percentile(0.50) as f64 / 1e3,
        p99_us: hist.percentile(0.99) as f64 / 1e3,
        max_us: hist.max() as f64 / 1e3,
        interval_p99_us: phase
            .interval_percentiles(0.99)
            .iter()
            .map(|&ns| ns as f64 / 1e3)
            .collect(),
        saturated: achieved < offered * SATURATION,
    }
}

fn report_json(opts: &RunOpts, span: Duration, curves: &[KneeCurve]) -> String {
    let f = |v: f64| {
        if v.is_finite() {
            format!("{v:.3}")
        } else {
            String::from("null")
        }
    };
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"quick\": {},\n", opts.quick));
    out.push_str(&format!("  \"seed\": {},\n", opts.seed));
    out.push_str(&format!("  \"span_ms\": {},\n", span.as_millis()));
    out.push_str(&format!("  \"saturation_fraction\": {SATURATION},\n"));
    out.push_str("  \"targets\": [\n");
    for (i, curve) in curves.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"target\": \"{}\", \"capacity_ops_s\": {}, \"knee_ops_s\": {},\n",
            curve.target,
            f(curve.capacity_ops_s),
            curve
                .knee_ops_s
                .map(f)
                .unwrap_or_else(|| String::from("null")),
        ));
        out.push_str("     \"points\": [\n");
        for (j, p) in curve.points.iter().enumerate() {
            let series: Vec<String> = p.interval_p99_us.iter().map(|&v| f(v)).collect();
            out.push_str(&format!(
                "       {{\"offered_ops_s\": {}, \"achieved_ops_s\": {}, \"p50_us\": {}, \
                 \"p99_us\": {}, \"max_us\": {}, \"saturated\": {}, \
                 \"interval_p99_us\": [{}]}}{}\n",
                f(p.offered),
                f(p.achieved),
                f(p.p50_us),
                f(p.p99_us),
                f(p.max_us),
                p.saturated,
                series.join(", "),
                if j + 1 < curve.points.len() { "," } else { "" }
            ));
        }
        out.push_str("     ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < curves.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
