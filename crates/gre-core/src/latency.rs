//! Kind-indexed latency recording.
//!
//! The scenario driver in `gre-workloads` measures every operation's latency
//! from its *intended* send time (coordinated-omission-safe under open-loop
//! pacing), which means recording potentially millions of samples per phase.
//! Storing raw samples would dominate the driver's memory traffic, so
//! latencies land in a fixed-size log-linear [`LatencyHistogram`] instead:
//! constant-time recording, ~3% relative value resolution, lossless merging
//! across threads, and percentile queries with linear interpolation inside a
//! bucket.
//!
//! [`KindLatency`] bundles one histogram per [`RequestKind`] so read and
//! write tails stay separable all the way to the report.

use crate::ops::RequestKind;

/// Sub-bucket resolution: each power-of-two range is split into
/// `2^SUB_BITS` linear sub-buckets, bounding relative error by
/// `2^-SUB_BITS` (~3%).
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
/// Bucket count covering the full `u64` range.
///
/// Public so concurrent recorders (e.g. the atomic histograms in
/// `gre-telemetry`) can mirror the same bucket layout and later rebuild a
/// [`LatencyHistogram`] from their bucket counts.
pub const BUCKET_COUNT: usize = (64 - SUB_BITS as usize + 1) * SUB;
const BUCKETS: usize = BUCKET_COUNT;

/// A fixed-size log-linear histogram of nanosecond latencies.
///
/// Values below `2^SUB_BITS` are recorded exactly; above that, each
/// power-of-two range is split into 32 linear sub-buckets. Recording is
/// constant-time and allocation-free after construction; histograms merge
/// losslessly (bucket-wise addition), so per-thread recorders can be summed
/// into a per-phase report.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    sum_sq: f64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            sum_sq: 0.0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one latency value (nanoseconds).
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.counts[bucket_of(ns)] += 1;
        self.count += 1;
        self.sum += ns as u128;
        let v = ns as f64;
        self.sum_sq += v * v;
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of the recorded values (the sum is tracked exactly).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Population standard deviation of the recorded values.
    pub fn std_dev(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mean = self.mean();
        let var = (self.sum_sq / self.count as f64 - mean * mean).max(0.0);
        var.sqrt()
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `p`-quantile (`0.0 ..= 1.0`) with linear interpolation inside the
    /// containing bucket, clamped to the observed min/max so bucket edges
    /// never report values outside the recorded range.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        // Fractional rank over count-1 gaps, matching the interpolated
        // sample-percentile convention used by `LatencySummary`.
        let rank = p * (self.count - 1) as f64;
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let last_in_bucket = (seen + c - 1) as f64;
            if rank <= last_in_bucket {
                let (low, width) = bucket_bounds(b);
                // Position of the target rank inside this bucket's values.
                let into = (rank - seen as f64).max(0.0) / c as f64;
                let v = low as f64 + into * width as f64;
                return (v.round() as u64).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Record the same value `n` times in one constant-time step.
    ///
    /// This is how concurrent bucket recorders (which only keep per-bucket
    /// counts) rebuild a `LatencyHistogram` snapshot: replay each occupied
    /// bucket as `n` observations of a representative value. Percentiles of
    /// the rebuilt histogram are exact to bucket resolution; mean/min/max
    /// carry the representative-value approximation (~3%).
    #[inline]
    pub fn record_n(&mut self, ns: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_of(ns)] += n;
        self.count += n;
        self.sum += ns as u128 * n as u128;
        let v = ns as f64;
        self.sum_sq += v * v * n as f64;
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
    }

    /// Bucket-wise accumulation of another histogram.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The bucket index holding value `v` under the shared log-linear layout.
///
/// Exposed so lock-free recorders can bucket values with the exact same
/// mapping as [`LatencyHistogram`] and hand snapshots back losslessly.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    bucket_of(v)
}

/// Lowest value and width of bucket `b` (companion to [`bucket_index`]).
pub fn bucket_span(b: usize) -> (u64, u64) {
    bucket_bounds(b)
}

/// The bucket index holding value `v`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let top = 63 - v.leading_zeros();
    let shift = top - SUB_BITS;
    let sub = ((v >> shift) & (SUB as u64 - 1)) as usize;
    ((top - SUB_BITS + 1) as usize) * SUB + sub
}

/// Lowest value and width of bucket `b`.
#[inline]
fn bucket_bounds(b: usize) -> (u64, u64) {
    let block = b / SUB;
    let sub = (b % SUB) as u64;
    if block == 0 {
        return (sub, 1);
    }
    let shift = (block - 1) as u32;
    ((SUB as u64 + sub) << shift, 1u64 << shift)
}

/// One [`LatencyHistogram`] per [`RequestKind`]: the kind-indexed recorder
/// used for per-phase latency reporting.
#[derive(Debug, Clone, Default)]
pub struct KindLatency {
    hists: [LatencyHistogram; RequestKind::COUNT],
}

impl KindLatency {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency for an operation of `kind`.
    #[inline]
    pub fn record(&mut self, kind: RequestKind, ns: u64) {
        self.hists[kind.index()].record(ns);
    }

    /// The histogram for one kind.
    pub fn get(&self, kind: RequestKind) -> &LatencyHistogram {
        &self.hists[kind.index()]
    }

    /// Total recorded values across all kinds.
    pub fn total_count(&self) -> u64 {
        self.hists.iter().map(LatencyHistogram::count).sum()
    }

    /// Kind-wise accumulation of another recorder.
    pub fn merge(&mut self, other: &KindLatency) {
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
    }

    /// One merged histogram over the given kinds (e.g. the read-side
    /// `[Get, Range]` or write-side `[Insert, Update, Remove]` view).
    pub fn merged(&self, kinds: &[RequestKind]) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        for &k in kinds {
            out.merge(self.get(k));
        }
        out
    }

    /// Iterate `(kind, histogram)` pairs in [`RequestKind::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (RequestKind, &LatencyHistogram)> {
        RequestKind::ALL.iter().map(|&k| (k, self.get(k)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_value_space() {
        // Every bucket's bounds invert bucket_of at both edges.
        for b in 0..BUCKETS - SUB {
            let (low, width) = bucket_bounds(b);
            assert_eq!(bucket_of(low), b, "low edge of bucket {b}");
            assert_eq!(bucket_of(low + width - 1), b, "high edge of bucket {b}");
            let (next_low, _) = bucket_bounds(b + 1);
            assert_eq!(next_low, low + width, "buckets {b},{} contiguous", b + 1);
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 2, 3, 30, 31] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 31);
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(1.0), 31);
        assert_eq!(h.percentile(0.5), 3);
        assert!((h.mean() - 67.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_stay_within_resolution() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (p, expect) in [(0.5, 50_000.0), (0.99, 99_000.0), (0.999, 99_900.0)] {
            let got = h.percentile(p) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.05, "p{p}: got {got}, want ~{expect} (rel {rel:.4})");
        }
        assert!((h.mean() - 50_000.5).abs() / 50_000.5 < 1e-9, "mean exact");
        assert!(h.std_dev() > 0.0);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in 0..1_000u64 {
            let v = v * 997;
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for p in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.percentile(p), whole.percentile(p), "p{p}");
        }
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut one = LatencyHistogram::new();
        let mut bulk = LatencyHistogram::new();
        for v in [7u64, 550, 9_999, 1 << 40] {
            for _ in 0..13 {
                one.record(v);
            }
            bulk.record_n(v, 13);
        }
        bulk.record_n(123, 0); // no-op
        assert_eq!(one.count(), bulk.count());
        assert_eq!(one.min(), bulk.min());
        assert_eq!(one.max(), bulk.max());
        assert!((one.mean() - bulk.mean()).abs() < 1e-6);
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(one.percentile(p), bulk.percentile(p), "p{p}");
        }
    }

    #[test]
    fn public_bucket_api_matches_private_layout() {
        for v in [0u64, 1, 31, 32, 1_000, u64::MAX] {
            let b = bucket_index(v);
            assert_eq!(b, bucket_of(v));
            let (low, width) = bucket_span(b);
            assert!(low <= v && (v - low) < width || v < SUB as u64 && width == 1);
        }
        assert_eq!(BUCKET_COUNT, BUCKETS);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.std_dev(), 0.0);
    }

    #[test]
    fn kind_latency_separates_kinds() {
        let mut kl = KindLatency::new();
        kl.record(RequestKind::Get, 100);
        kl.record(RequestKind::Get, 200);
        kl.record(RequestKind::Insert, 9_000);
        assert_eq!(kl.get(RequestKind::Get).count(), 2);
        assert_eq!(kl.get(RequestKind::Insert).count(), 1);
        assert_eq!(kl.get(RequestKind::Remove).count(), 0);
        assert_eq!(kl.total_count(), 3);

        let reads = kl.merged(&[RequestKind::Get, RequestKind::Range]);
        assert_eq!(reads.count(), 2);
        let writes = kl.merged(&[
            RequestKind::Insert,
            RequestKind::Update,
            RequestKind::Remove,
        ]);
        assert_eq!(writes.count(), 1);
        assert!(writes.mean() > reads.mean());

        let mut other = KindLatency::new();
        other.record(RequestKind::Get, 300);
        kl.merge(&other);
        assert_eq!(kl.get(RequestKind::Get).count(), 3);
        assert_eq!(kl.iter().count(), RequestKind::COUNT);
    }
}
