//! HOT-like height-optimised trie (simplified).
//!
//! The original HOT (Binna et al., SIGMOD'18) combines multiple radix levels
//! into compound nodes selected by discriminative bits and navigated with
//! SIMD masks. We implement the simplification described in DESIGN.md §4: a
//! nibble-span (4-bit) trie with path compression and *compact* child
//! storage (children are kept in a sorted, exactly-sized vector rather than a
//! fixed 16-slot array). This preserves the two properties the paper relies
//! on — a very small memory footprint (Figure 8 shows HOT as the most
//! space-efficient index) and robust lookup performance — while omitting the
//! SIMD machinery.

use gre_core::{Index, IndexMeta, InsertStats, Key, OpCounters, Payload, RangeSpec, StatsSnapshot};

const NIBBLES: usize = 16; // 64-bit keys / 4 bits

#[inline]
fn nibble_of<K: Key>(key: K, i: usize) -> u8 {
    let bytes = key.to_radix_bytes();
    let b = bytes[i / 2];
    if i % 2 == 0 {
        b >> 4
    } else {
        b & 0x0f
    }
}

#[derive(Debug)]
enum Node<K> {
    Leaf {
        key: K,
        value: Payload,
    },
    Inner {
        /// Number of leading nibbles (starting at this node's depth) shared
        /// by every key in the subtree (path compression).
        prefix: Vec<u8>,
        /// Children sorted by nibble, stored compactly.
        children: Vec<(u8, Box<Node<K>>)>,
    },
}

impl<K: Key> Node<K> {
    fn memory(&self) -> usize {
        match self {
            Node::Leaf { .. } => std::mem::size_of::<Self>(),
            Node::Inner { prefix, children } => {
                std::mem::size_of::<Self>()
                    + prefix.capacity()
                    + children.capacity() * std::mem::size_of::<(u8, Box<Node<K>>)>()
                    + children.iter().map(|(_, c)| c.memory()).sum::<usize>()
            }
        }
    }
}

/// The height-optimised trie.
#[derive(Debug)]
pub struct Hot<K> {
    root: Option<Box<Node<K>>>,
    len: usize,
    counters: OpCounters,
    last_insert: InsertStats,
}

impl<K: Key> Default for Hot<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key> Hot<K> {
    pub fn new() -> Self {
        Hot {
            root: None,
            len: 0,
            counters: OpCounters::default(),
            last_insert: InsertStats::default(),
        }
    }

    fn nibbles(key: K) -> [u8; NIBBLES] {
        let mut out = [0u8; NIBBLES];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = nibble_of(key, i);
        }
        out
    }

    fn common_prefix(a: &[u8], b: &[u8]) -> usize {
        a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
    }

    fn insert_rec(
        node: &mut Box<Node<K>>,
        key: K,
        nibbles: &[u8; NIBBLES],
        value: Payload,
        depth: usize,
        stats: &mut InsertStats,
    ) -> bool {
        stats.nodes_traversed += 1;
        match node.as_mut() {
            Node::Leaf { key: lk, value: lv } => {
                if *lk == key {
                    *lv = value;
                    return false;
                }
                let existing = Self::nibbles(*lk);
                let common = Self::common_prefix(&existing[depth..], &nibbles[depth..]);
                let split = depth + common;
                let prefix = nibbles[depth..split].to_vec();
                let old = std::mem::replace(
                    node.as_mut(),
                    Node::Inner {
                        prefix,
                        children: Vec::with_capacity(2),
                    },
                );
                let Node::Inner { children, .. } = node.as_mut() else {
                    unreachable!()
                };
                let mut pair = vec![
                    (existing[split], Box::new(old)),
                    (nibbles[split], Box::new(Node::Leaf { key, value })),
                ];
                pair.sort_by_key(|(n, _)| *n);
                *children = pair;
                stats.nodes_created += 2;
                stats.triggered_smo = true;
                true
            }
            Node::Inner { prefix, children } => {
                let common = Self::common_prefix(prefix, &nibbles[depth..]);
                if common < prefix.len() {
                    // Split the compressed path.
                    let existing_nibble = prefix[common];
                    let rest = prefix[common + 1..].to_vec();
                    let new_prefix = nibbles[depth..depth + common].to_vec();
                    *prefix = rest;
                    let old = std::mem::replace(
                        node.as_mut(),
                        Node::Inner {
                            prefix: new_prefix,
                            children: Vec::with_capacity(2),
                        },
                    );
                    let Node::Inner { children, .. } = node.as_mut() else {
                        unreachable!()
                    };
                    let mut pair = vec![
                        (existing_nibble, Box::new(old)),
                        (nibbles[depth + common], Box::new(Node::Leaf { key, value })),
                    ];
                    pair.sort_by_key(|(n, _)| *n);
                    *children = pair;
                    stats.nodes_created += 2;
                    stats.triggered_smo = true;
                    return true;
                }
                let next_depth = depth + prefix.len();
                let nib = nibbles[next_depth];
                match children.binary_search_by_key(&nib, |(n, _)| *n) {
                    Ok(i) => Self::insert_rec(
                        &mut children[i].1,
                        key,
                        nibbles,
                        value,
                        next_depth + 1,
                        stats,
                    ),
                    Err(i) => {
                        children.insert(i, (nib, Box::new(Node::Leaf { key, value })));
                        stats.nodes_created += 1;
                        stats.keys_shifted += (children.len() - i) as u64;
                        true
                    }
                }
            }
        }
    }

    fn get_rec(node: &Node<K>, key: K, nibbles: &[u8; NIBBLES], depth: usize) -> Option<Payload> {
        match node {
            Node::Leaf { key: lk, value } => (*lk == key).then_some(*value),
            Node::Inner { prefix, children } => {
                if Self::common_prefix(prefix, &nibbles[depth..]) < prefix.len() {
                    return None;
                }
                let next_depth = depth + prefix.len();
                let nib = nibbles[next_depth];
                children
                    .binary_search_by_key(&nib, |(n, _)| *n)
                    .ok()
                    .and_then(|i| Self::get_rec(&children[i].1, key, nibbles, next_depth + 1))
            }
        }
    }

    /// Returns (removed payload, whether the child should be removed).
    fn remove_rec(
        node: &mut Box<Node<K>>,
        key: K,
        nibbles: &[u8; NIBBLES],
        depth: usize,
    ) -> (Option<Payload>, bool) {
        match node.as_mut() {
            Node::Leaf { key: lk, value } => {
                if *lk == key {
                    (Some(*value), true)
                } else {
                    (None, false)
                }
            }
            Node::Inner { prefix, children } => {
                if Self::common_prefix(prefix, &nibbles[depth..]) < prefix.len() {
                    return (None, false);
                }
                let next_depth = depth + prefix.len();
                let nib = nibbles[next_depth];
                let Ok(i) = children.binary_search_by_key(&nib, |(n, _)| *n) else {
                    return (None, false);
                };
                let (removed, drop_child) =
                    Self::remove_rec(&mut children[i].1, key, nibbles, next_depth + 1);
                if drop_child {
                    children.remove(i);
                    if children.len() == 1 {
                        // Collapse: merge the compressed path with the single child.
                        let (nib, mut only) = children.pop().expect("one child");
                        if let Node::Inner {
                            prefix: child_prefix,
                            ..
                        } = only.as_mut()
                        {
                            let mut merged = prefix.clone();
                            merged.push(nib);
                            merged.append(child_prefix);
                            *child_prefix = merged;
                        }
                        **node = *only;
                    }
                }
                (removed, false)
            }
        }
    }

    fn collect_from(node: &Node<K>, start: K, count: usize, out: &mut Vec<(K, Payload)>) {
        if out.len() >= count {
            return;
        }
        match node {
            Node::Leaf { key, value } => {
                if *key >= start {
                    out.push((*key, *value));
                }
            }
            Node::Inner { children, .. } => {
                for (_, child) in children {
                    if out.len() >= count {
                        return;
                    }
                    Self::collect_from(child, start, count, out);
                }
            }
        }
    }
}

impl<K: Key> Index<K> for Hot<K> {
    fn bulk_load(&mut self, entries: &[(K, Payload)]) {
        self.root = None;
        self.len = 0;
        for &(k, v) in entries {
            self.insert(k, v);
        }
        self.counters = OpCounters::default();
    }

    fn get(&self, key: K) -> Option<Payload> {
        let nibbles = Self::nibbles(key);
        self.root
            .as_ref()
            .and_then(|r| Self::get_rec(r, key, &nibbles, 0))
    }

    fn insert(&mut self, key: K, value: Payload) -> bool {
        let nibbles = Self::nibbles(key);
        let mut stats = InsertStats::default();
        let inserted = match &mut self.root {
            None => {
                self.root = Some(Box::new(Node::Leaf { key, value }));
                stats.nodes_created = 1;
                true
            }
            Some(root) => Self::insert_rec(root, key, &nibbles, value, 0, &mut stats),
        };
        if inserted {
            self.len += 1;
        }
        self.last_insert = stats;
        self.counters.record_insert(&stats);
        inserted
    }

    fn remove(&mut self, key: K) -> Option<Payload> {
        let nibbles = Self::nibbles(key);
        let result = match &mut self.root {
            None => None,
            Some(root) => {
                let (removed, drop_root) = Self::remove_rec(root, key, &nibbles, 0);
                if drop_root {
                    self.root = None;
                }
                removed
            }
        };
        if result.is_some() {
            self.len -= 1;
        }
        self.counters.record_remove(1);
        result
    }

    fn range(&self, spec: RangeSpec<K>, out: &mut Vec<(K, Payload)>) -> usize {
        let before = out.len();
        if let Some(root) = &self.root {
            Self::collect_from(root, spec.start, spec.count, out);
        }
        out.len() - before
    }

    fn len(&self) -> usize {
        self.len
    }

    fn memory_usage(&self) -> usize {
        std::mem::size_of::<Self>() + self.root.as_ref().map_or(0, |r| r.memory())
    }

    fn stats(&self) -> StatsSnapshot {
        StatsSnapshot::new(self.counters)
    }

    fn reset_stats(&mut self) {
        self.counters = OpCounters::default();
    }

    fn last_insert_stats(&self) -> InsertStats {
        self.last_insert
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: "HOT",
            learned: false,
            concurrent: false,
            supports_delete: true,
            supports_range: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn basic_roundtrip() {
        let mut hot = Hot::new();
        for i in 0..5_000u64 {
            assert!(hot.insert(i * 17, i));
        }
        for i in 0..5_000u64 {
            assert_eq!(hot.get(i * 17), Some(i));
            assert_eq!(hot.get(i * 17 + 1), None);
        }
        assert_eq!(hot.len(), 5_000);
        assert!(!hot.insert(17, 1234));
        assert_eq!(hot.get(17), Some(1234));
    }

    #[test]
    fn remove_collapses_paths() {
        let mut hot = Hot::new();
        for i in 0..2_000u64 {
            hot.insert(i, i);
        }
        for i in 0..1_000u64 {
            assert_eq!(hot.remove(i), Some(i));
        }
        for i in 1_000..2_000u64 {
            assert_eq!(hot.get(i), Some(i));
        }
        assert_eq!(hot.len(), 1_000);
        assert_eq!(hot.remove(5_000), None);
    }

    #[test]
    fn matches_model_under_random_ops() {
        let mut hot = Hot::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut x: u64 = 0xabcdef;
        for i in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 10_000;
            match x % 3 {
                0 => assert_eq!(hot.insert(key, i), model.insert(key, i).is_none()),
                1 => assert_eq!(hot.remove(key), model.remove(&key)),
                _ => assert_eq!(hot.get(key), model.get(&key).copied()),
            }
        }
        assert_eq!(hot.len(), model.len());
    }

    #[test]
    fn range_scan_sorted() {
        let mut hot = Hot::new();
        let entries: Vec<(u64, u64)> = (0..1_000u64).map(|i| (i * 11, i)).collect();
        hot.bulk_load(&entries);
        let mut out = Vec::new();
        let n = hot.range(RangeSpec::new(110, 50), &mut out);
        assert_eq!(n, 50);
        assert_eq!(out[0].0, 110);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn memory_is_compact_relative_to_sparse_array_designs() {
        let mut hot = Hot::new();
        for i in 0..10_000u64 {
            hot.insert(i.wrapping_mul(0x9E3779B97F4A7C15), i);
        }
        // Well under 200 bytes per key for random keys (HOT's selling point
        // is compactness; exact numbers depend on the key distribution).
        assert!(hot.memory_usage() < 10_000 * 200);
        assert_eq!(hot.meta().name, "HOT");
    }

    #[test]
    fn empty_behaviour() {
        let mut hot: Hot<u64> = Hot::new();
        assert_eq!(hot.get(1), None);
        assert_eq!(hot.remove(1), None);
        assert!(hot.is_empty());
        let mut out = Vec::new();
        assert_eq!(hot.range(RangeSpec::new(0, 10), &mut out), 0);
    }
}
