//! Workload and operation types.
//!
//! The operation vocabulary itself is the canonical typed request enum from
//! `gre-core` ([`gre_core::ops::Request`]); this module pins it to the
//! benchmark's `u64` key type as [`Op`] and adds the workload-level types
//! built on top of it (write-ratio axis, materialized workloads).

use gre_core::Payload;

/// A single request issued against an index: the canonical
/// [`Request`](gre_core::ops::Request) over the benchmark's `u64` keys.
/// Range scans are expressed as `Op::Range(RangeSpec::new(start, count))`.
pub type Op = gre_core::ops::Request<u64>;

/// Operation kinds (used for per-kind latency sampling).
pub use gre_core::ops::RequestKind as OpKind;

/// The five write-ratio points of the paper's workload axis (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteRatio {
    /// Read-Only (0% writes): bulk load everything, lookups only.
    ReadOnly,
    /// Read-Intensive (20% writes).
    ReadIntensive,
    /// Balanced (50% writes).
    Balanced,
    /// Write-Heavy (80% writes).
    WriteHeavy,
    /// Write-Only (100% writes).
    WriteOnly,
}

impl WriteRatio {
    /// All five points, in heatmap row order.
    pub const ALL: [WriteRatio; 5] = [
        WriteRatio::ReadOnly,
        WriteRatio::ReadIntensive,
        WriteRatio::Balanced,
        WriteRatio::WriteHeavy,
        WriteRatio::WriteOnly,
    ];

    /// Fraction of write operations in the request stream.
    pub fn write_fraction(&self) -> f64 {
        match self {
            WriteRatio::ReadOnly => 0.0,
            WriteRatio::ReadIntensive => 0.2,
            WriteRatio::Balanced => 0.5,
            WriteRatio::WriteHeavy => 0.8,
            WriteRatio::WriteOnly => 1.0,
        }
    }

    /// Display label ("0%", "20%", …).
    pub fn label(&self) -> &'static str {
        match self {
            WriteRatio::ReadOnly => "0%",
            WriteRatio::ReadIntensive => "20%",
            WriteRatio::Balanced => "50%",
            WriteRatio::WriteHeavy => "80%",
            WriteRatio::WriteOnly => "100%",
        }
    }
}

/// A fully materialized workload: the entries to bulk load plus the request
/// stream to execute (and time) afterwards.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable name, e.g. `"osm/balanced"`.
    pub name: String,
    /// Entries bulk-loaded before the timed phase, sorted by key.
    pub bulk: Vec<(u64, Payload)>,
    /// The timed request stream.
    pub ops: Vec<Op>,
}

impl Workload {
    /// Number of write operations in the request stream.
    pub fn write_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.is_write()).count()
    }

    /// Number of read operations (lookups + scans) in the request stream.
    pub fn read_ops(&self) -> usize {
        self.ops.len() - self.write_ops()
    }

    /// The observed write fraction of the request stream.
    pub fn write_fraction(&self) -> f64 {
        if self.ops.is_empty() {
            0.0
        } else {
            self.write_ops() as f64 / self.ops.len() as f64
        }
    }
}

/// The payload stored for a key in all generated workloads: a cheap,
/// deterministic function of the key so correctness checks can recompute it.
#[inline]
pub fn payload_for(key: u64) -> Payload {
    key ^ 0x5bd1_e995_9e37_79b9
}

#[cfg(test)]
mod tests {
    use super::*;

    use gre_core::RangeSpec;

    #[test]
    fn op_kinds_and_write_classification() {
        assert_eq!(Op::Get(1).kind(), OpKind::Get);
        assert_eq!(Op::Insert(1, 2).kind(), OpKind::Insert);
        assert_eq!(Op::Update(1, 2).kind(), OpKind::Update);
        assert_eq!(Op::Remove(1).kind(), OpKind::Remove);
        assert_eq!(Op::Range(RangeSpec::new(1, 10)).kind(), OpKind::Range);
        assert!(!Op::Get(1).is_write());
        assert!(!Op::Range(RangeSpec::new(1, 10)).is_write());
        assert!(Op::Insert(1, 2).is_write());
        assert!(Op::Update(1, 2).is_write());
        assert!(Op::Remove(1).is_write());
    }

    #[test]
    fn write_ratio_fractions_match_labels() {
        assert_eq!(WriteRatio::ALL.len(), 5);
        for wr in WriteRatio::ALL {
            let f = wr.write_fraction();
            assert!((0.0..=1.0).contains(&f));
        }
        assert_eq!(WriteRatio::Balanced.write_fraction(), 0.5);
        assert_eq!(WriteRatio::WriteOnly.label(), "100%");
    }

    #[test]
    fn workload_counts() {
        let w = Workload {
            name: "t".into(),
            bulk: vec![(1, 1)],
            ops: vec![
                Op::Get(1),
                Op::Insert(2, 2),
                Op::Remove(1),
                Op::Range(RangeSpec::new(0, 5)),
            ],
        };
        assert_eq!(w.write_ops(), 2);
        assert_eq!(w.read_ops(), 2);
        assert!((w.write_fraction() - 0.5).abs() < 1e-9);
        let empty = Workload {
            name: "e".into(),
            bulk: vec![],
            ops: vec![],
        };
        assert_eq!(empty.write_fraction(), 0.0);
    }

    #[test]
    fn payload_is_deterministic_and_key_dependent() {
        assert_eq!(payload_for(5), payload_for(5));
        assert_ne!(payload_for(5), payload_for(6));
    }
}
