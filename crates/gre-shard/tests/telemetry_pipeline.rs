//! Telemetry/driver reconciliation: the worker-side outcome counters and
//! the driver-side [`Tally`] classify the same responses from opposite ends
//! of the pipeline, so after a drained run every pair must match *exactly*
//! — for every backend and both serving paths.

use gre_core::ConcurrentIndex;
use gre_learned::AlexPlus;
use gre_shard::{reconcile_tally, Partitioner, PipelineTarget, SessionTarget, ShardedIndex};
use gre_telemetry::{CounterId, GaugeId, GlobalHistId, ShardHistId};
use gre_traditional::btree_olc;
use gre_workloads::driver::Tally;
use gre_workloads::scenario::{KeyDist, Mix, Pacing, Phase, Scenario, Span};
use gre_workloads::Driver;

type DynBackend = Box<dyn ConcurrentIndex<u64>>;
type BackendFactory = fn() -> DynBackend;

fn backends() -> Vec<(&'static str, BackendFactory)> {
    vec![
        ("ALEX+", || Box::new(AlexPlus::<u64>::new())),
        ("B+treeOLC", || Box::new(btree_olc::<u64>())),
    ]
}

fn sharded(factory: BackendFactory) -> ShardedIndex<u64, DynBackend> {
    ShardedIndex::from_factory(Partitioner::range(4), |_| factory())
}

/// A seeded two-phase mixed scenario exercising every counter: hits and
/// misses, fresh inserts, updates, removes, and cross-shard scans.
fn scenario() -> Scenario {
    let keys: Vec<u64> = (1..=5_000u64).map(|i| i * 32).collect();
    let mix = Mix::points(4, 2, 1, 1).with_range(1, 16);
    Scenario::new("telemetry-reconcile", 0x7E1E, &keys)
        .phase(Phase::new(
            "hot",
            mix,
            KeyDist::Hotspot {
                start: 0.2,
                span: 0.1,
                hot_access: 0.8,
            },
            Span::Ops(6_000),
            Pacing::ClosedLoop { threads: 3 },
        ))
        .phase(Phase::new(
            "uniform",
            mix,
            KeyDist::Uniform,
            Span::Ops(6_000),
            Pacing::ClosedLoop { threads: 2 },
        ))
}

fn merged_tally(phases: &[gre_workloads::driver::PhaseResult]) -> Tally {
    let mut tally = Tally::default();
    for p in phases {
        tally.merge(&p.tally);
    }
    tally
}

#[test]
fn pipeline_counters_reconcile_with_driver_tally() {
    for (name, factory) in backends() {
        let mut target =
            PipelineTarget::new(sharded(factory), 2, 128).instrumented_with(|c| c.trace_sample(32));
        let result = Driver::new().run(&scenario(), &mut target);
        let tally = merged_tally(&result.phases);
        assert_eq!(tally.ops, 12_000, "{name}: every op completes");

        let snap = target.telemetry().expect("instrumented").snapshot();
        reconcile_tally(&snap, &tally).unwrap_or_else(|e| panic!("{name}: {e}"));

        // Structural counters: batches were split into per-shard sub-batches
        // and nothing is left in flight after the drain.
        assert!(snap.counter(CounterId::BatchesSubmitted) > 0, "{name}");
        assert!(
            snap.counter(CounterId::SubBatchesExecuted)
                >= snap.counter(CounterId::BatchesSubmitted),
            "{name}: each batch yields at least one sub-batch"
        );
        assert!(snap.counter(CounterId::RangeScans) > 0, "{name}");
        for (s, shard) in snap.shards.iter().enumerate() {
            assert_eq!(shard.gauge(GaugeId::QueueDepth), 0, "{name} shard {s}");
            assert_eq!(shard.gauge(GaugeId::InFlightOps), 0, "{name} shard {s}");
            assert_eq!(
                shard.hist(ShardHistId::SubBatchSize).count(),
                shard.hist(ShardHistId::ServiceNs).count(),
                "{name} shard {s}: one size and one service sample per sub-batch"
            );
        }
        let sub_batches: u64 = snap
            .shards
            .iter()
            .map(|s| s.hist(ShardHistId::SubBatchSize).count())
            .sum();
        assert_eq!(
            sub_batches,
            snap.counter(CounterId::SubBatchesExecuted),
            "{name}"
        );
    }
}

#[test]
fn session_counters_reconcile_and_record_the_window() {
    for (name, factory) in backends() {
        let mut target =
            SessionTarget::new(sharded(factory), 2, 96, 4).instrumented_with(|c| c.without_trace());
        let result = Driver::new().run(&scenario(), &mut target);
        let tally = merged_tally(&result.phases);

        let t = target.telemetry().expect("instrumented");
        let snap = t.snapshot();
        reconcile_tally(&snap, &tally).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(t.trace().is_none(), "{name}: tracer disabled");
        assert_eq!(snap.counter(CounterId::TraceSpans), 0, "{name}");

        // Every submitted batch records the session's in-flight occupancy.
        let window = snap.global(GlobalHistId::SessionWindow);
        assert_eq!(
            window.count(),
            snap.counter(CounterId::BatchesSubmitted),
            "{name}"
        );
        assert!(
            window.max() <= 4,
            "{name}: occupancy {} exceeds the window of 4",
            window.max()
        );
    }
}
