//! Offline stand-in for the subset of `criterion` 0.5 this workspace uses.
//!
//! Implements enough of the API — [`Criterion`], benchmark groups,
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`BenchmarkId`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — for the `microbench`
//! target to compile and produce wall-clock timings. There is no statistical
//! analysis, HTML reporting, or outlier rejection: each benchmark is warmed
//! up and then timed for the configured measurement window, and the mean
//! iteration time is printed.
//!
//! Under `cargo test` (or when invoked with `--test`) each benchmark body is
//! executed exactly once so test runs stay fast.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped; the stub times every batch identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    warm_up: Duration,
    measurement: Duration,
    /// Upper bound on timed iterations, mirroring criterion's sample budget.
    max_iters: u64,
    /// `--test` mode: run each body once, skip timing.
    test_mode: bool,
}

/// Benchmark driver and configuration builder.
#[derive(Debug, Clone, Copy)]
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            config: Config {
                warm_up: Duration::from_millis(300),
                measurement: Duration::from_millis(800),
                max_iters: 1_000_000,
                test_mode,
            },
        }
    }
}

impl Criterion {
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up = d;
        self
    }

    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement = d;
        self
    }

    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.max_iters = (n as u64).max(1) * 1_000;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.config;
        run_benchmark("", &id.into().id, config, f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.max_iters = (n as u64).max(1) * 1_000;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.name, &id.into().id, self.config, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&self.name, &id.into().id, self.config, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F>(group: &str, id: &str, config: Config, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        config,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if config.test_mode {
        println!("{label}: ok (test mode)");
    } else if bencher.iters > 0 {
        let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
        println!("{label}: {per_iter:.1} ns/iter ({} iters)", bencher.iters);
    } else {
        println!("{label}: no iterations recorded");
    }
}

/// Timing handle passed to each benchmark body.
pub struct Bencher {
    config: Config,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly until the measurement window closes.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.config.test_mode {
            black_box(routine());
            self.iters += 1;
            return;
        }
        let warm_end = Instant::now() + self.config.warm_up;
        while Instant::now() < warm_end {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.config.max_iters && start.elapsed() < self.config.measurement {
            black_box(routine());
            iters += 1;
        }
        self.iters += iters;
        self.elapsed += start.elapsed();
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.config.test_mode {
            black_box(routine(setup()));
            self.iters += 1;
            return;
        }
        let warm_end = Instant::now() + self.config.warm_up;
        while Instant::now() < warm_end {
            black_box(routine(setup()));
        }
        let mut iters = 0u64;
        let mut timed = Duration::ZERO;
        while iters < self.config.max_iters && timed < self.config.measurement {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed += start.elapsed();
            iters += 1;
        }
        self.iters += iters;
        self.elapsed += timed;
    }
}

/// Expands to a function running the listed benchmark targets with a shared
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Expands to `fn main` invoking each [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.config.max_iters = 100;
        c
    }

    #[test]
    fn iter_records_iterations() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut c = quick();
        let mut total = 0u64;
        c.bench_function(BenchmarkId::new("batched", 1), |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| {
                    total += 1;
                    v.into_iter().sum::<u64>()
                },
                BatchSize::SmallInput,
            )
        });
        assert!(total > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("lookup", "covid");
        assert_eq!(id.id, "lookup/covid");
        let from_str: BenchmarkId = "plain".into();
        assert_eq!(from_str.id, "plain");
    }
}
