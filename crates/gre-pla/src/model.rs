//! Linear models mapping key space to position space.
//!
//! Every learned index in the study is built from linear models of the form
//! `position ≈ slope * key + intercept`. This module provides the shared
//! model type plus least-squares fitting used by ALEX, LIPP, XIndex and
//! FINEdex when (re)training node models.

use gre_core::Key;

/// A linear model `y = slope * x + intercept` over model-space inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearModel {
    pub slope: f64,
    pub intercept: f64,
}

impl Default for LinearModel {
    fn default() -> Self {
        LinearModel {
            slope: 0.0,
            intercept: 0.0,
        }
    }
}

impl LinearModel {
    pub fn new(slope: f64, intercept: f64) -> Self {
        LinearModel { slope, intercept }
    }

    /// Predict a (real-valued) position for a key.
    #[inline]
    pub fn predict<K: Key>(&self, key: K) -> f64 {
        self.slope * key.to_model_input() + self.intercept
    }

    /// Predict a position clamped into `[0, upper)` and rounded down,
    /// which is how the learned indexes translate model output into slots.
    #[inline]
    pub fn predict_clamped<K: Key>(&self, key: K, upper: usize) -> usize {
        if upper == 0 {
            return 0;
        }
        let p = self.predict(key);
        if p <= 0.0 {
            0
        } else {
            (p as usize).min(upper - 1)
        }
    }

    /// Fit by ordinary least squares over `(key, position)` pairs where the
    /// position of `keys[i]` is `i`. Returns a flat model for empty input and
    /// an exact two-point model for single-key input.
    pub fn fit_keys<K: Key>(keys: &[K]) -> Self {
        Self::fit_points(
            keys.iter()
                .enumerate()
                .map(|(i, k)| (k.to_model_input(), i as f64)),
        )
    }

    /// Fit by ordinary least squares over arbitrary `(x, y)` pairs.
    ///
    /// The x values are centred on their mean before fitting: keys are often
    /// large in magnitude but close together (e.g. 44-bit identifiers a few
    /// units apart), and the naive normal-equation denominator
    /// `n·Σx² − (Σx)²` cancels catastrophically in that regime, collapsing
    /// the fitted slope to zero.
    pub fn fit_points<I: IntoIterator<Item = (f64, f64)>>(points: I) -> Self {
        let pts: Vec<(f64, f64)> = points.into_iter().collect();
        let n = pts.len() as f64;
        if pts.is_empty() {
            return LinearModel::default();
        }
        if pts.len() == 1 {
            return LinearModel::new(0.0, pts[0].1);
        }
        let mean_x = pts.iter().map(|p| p.0).sum::<f64>() / n;
        let mean_y = pts.iter().map(|p| p.1).sum::<f64>() / n;
        let mut sxx = 0.0f64;
        let mut sxy = 0.0f64;
        for &(x, y) in &pts {
            let dx = x - mean_x;
            sxx += dx * dx;
            sxy += dx * (y - mean_y);
        }
        if sxx.abs() < f64::EPSILON || !sxx.is_finite() {
            // Degenerate (all keys equal): map everything to the mean rank.
            return LinearModel::new(0.0, mean_y);
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        LinearModel::new(slope, intercept)
    }

    /// Fit a model that maps `keys[i]` to `i * expansion`, used when a
    /// learned index spreads entries over a gapped array larger than the
    /// number of keys (ALEX data nodes, LIPP nodes).
    pub fn fit_keys_with_expansion<K: Key>(keys: &[K], expansion: f64) -> Self {
        Self::fit_points(
            keys.iter()
                .enumerate()
                .map(|(i, k)| (k.to_model_input(), i as f64 * expansion)),
        )
    }

    /// Mean squared error of this model on `(key, rank)` pairs with ranks
    /// `0..keys.len()` (Appendix D's alternative hardness metric).
    pub fn mse_on_keys<K: Key>(&self, keys: &[K]) -> f64 {
        if keys.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0f64;
        for (i, k) in keys.iter().enumerate() {
            let err = self.predict(*k) - i as f64;
            acc += err * err;
        }
        acc / keys.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_perfectly_linear_keys() {
        // keys 10, 20, 30, ... map exactly to ranks 0, 1, 2 ...
        let keys: Vec<u64> = (1..=100).map(|i| i * 10).collect();
        let m = LinearModel::fit_keys(&keys);
        assert!((m.slope - 0.1).abs() < 1e-9, "slope = {}", m.slope);
        for (i, k) in keys.iter().enumerate() {
            assert!((m.predict(*k) - i as f64).abs() < 1e-6);
        }
        assert!(m.mse_on_keys(&keys) < 1e-9);
    }

    #[test]
    fn fit_empty_single_and_degenerate() {
        let empty: Vec<u64> = vec![];
        let m = LinearModel::fit_keys(&empty);
        assert_eq!(m.slope, 0.0);
        assert_eq!(m.mse_on_keys(&empty), 0.0);

        let single = vec![42u64];
        let m = LinearModel::fit_keys(&single);
        assert!((m.predict(42u64) - 0.0).abs() < 1e-9);

        // All-equal keys must not produce NaN.
        let equal = vec![7u64; 10];
        let m = LinearModel::fit_keys(&equal);
        assert!(m.slope.is_finite());
        assert!(m.intercept.is_finite());
    }

    #[test]
    fn predict_clamped_bounds() {
        let m = LinearModel::new(1.0, -5.0);
        assert_eq!(m.predict_clamped(0u64, 10), 0);
        assert_eq!(m.predict_clamped(100u64, 10), 9);
        assert_eq!(m.predict_clamped(7u64, 10), 2);
        assert_eq!(m.predict_clamped(7u64, 0), 0);
    }

    #[test]
    fn expansion_fit_spreads_positions() {
        let keys: Vec<u64> = (0..50).map(|i| i * 3).collect();
        let m = LinearModel::fit_keys_with_expansion(&keys, 2.0);
        // Last key should land near 2 * 49 = 98.
        assert!((m.predict(147u64) - 98.0).abs() < 1e-6);
    }

    #[test]
    fn mse_grows_with_nonlinearity() {
        let linear: Vec<u64> = (0..1000).map(|i| i * 5).collect();
        let curved: Vec<u64> = (0..1000u64).map(|i| i * i).collect();
        let ml = LinearModel::fit_keys(&linear);
        let mc = LinearModel::fit_keys(&curved);
        assert!(ml.mse_on_keys(&linear) < mc.mse_on_keys(&curved));
    }
}
