//! Concurrent derivatives of the traditional indexes.
//!
//! The paper evaluates B+TreeOLC, ART-OLC, HOT-ROWEX, Masstree and Wormhole
//! in its multi-threaded experiments (§4.2). The original C++ implementations
//! synchronize with optimistic lock coupling (OLC) or ROWEX protocols over
//! shared node memory. In safe Rust we substitute two schemes that preserve
//! the *observable* concurrency behaviour the paper analyses (see DESIGN.md
//! §4):
//!
//! * [`Sharded`] — the key space is range-partitioned into many shards, each
//!   an independent single-threaded index behind a reader-writer lock. Reads
//!   and writes to different regions proceed in parallel, which is the
//!   behaviour OLC/ROWEX deliver for tree indexes whose contention is spread
//!   across nodes. Used for B+TreeOLC, ART-OLC, HOT-ROWEX and Masstree.
//! * [`InnerLockIndex`] — a single reader-writer lock over the whole
//!   structure: reads scale, writes serialize. This models Wormhole's single
//!   inner-layer lock, whose write bottleneck the paper highlights
//!   (Figures 5 and 11).

use crate::art::Art;
use crate::btree::BPlusTree;
use crate::hot::Hot;
use crate::masstree::Masstree;
use crate::wormhole::Wormhole;
use gre_core::{ConcurrentIndex, Index, IndexMeta, Key, Payload, RangeSpec};
use parking_lot::RwLock;

/// Default shard count for the range-partitioned concurrent adapters.
pub const DEFAULT_SHARDS: usize = 64;

/// A range-partitioned concurrent adapter over a single-threaded index.
pub struct Sharded<K, I> {
    shards: Vec<RwLock<I>>,
    /// `boundaries[i]` is the smallest key of shard `i + 1`.
    boundaries: Vec<K>,
    name: &'static str,
}

impl<K: Key, I: Index<K> + Default> Sharded<K, I> {
    /// Create an adapter with `shards` empty shards.
    pub fn new(shards: usize, name: &'static str) -> Self {
        let shards = shards.max(1);
        Sharded {
            shards: (0..shards).map(|_| RwLock::new(I::default())).collect(),
            boundaries: Vec::new(),
            name,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_for(&self, key: K) -> usize {
        self.boundaries.partition_point(|b| *b <= key)
    }
}

impl<K: Key, I: Index<K> + Default + Sync> ConcurrentIndex<K> for Sharded<K, I> {
    fn bulk_load(&mut self, entries: &[(K, Payload)]) {
        let shard_count = self.shards.len();
        // Pick boundaries at the entry quantiles so bulk data spreads evenly.
        self.boundaries.clear();
        if entries.len() >= shard_count && shard_count > 1 {
            for s in 1..shard_count {
                let idx = s * entries.len() / shard_count;
                self.boundaries.push(entries[idx].0);
            }
            self.boundaries.dedup();
        }
        // Partition the (sorted) entries into per-shard slices and load each.
        let mut start = 0usize;
        for s in 0..self.shards.len() {
            let end = if s < self.boundaries.len() {
                entries.partition_point(|e| e.0 < self.boundaries[s])
            } else {
                entries.len()
            };
            self.shards[s].get_mut().bulk_load(&entries[start..end]);
            start = end;
        }
    }

    fn get(&self, key: K) -> Option<Payload> {
        self.shards[self.shard_for(key)].read().get(key)
    }

    fn insert(&self, key: K, value: Payload) -> bool {
        self.shards[self.shard_for(key)].write().insert(key, value)
    }

    /// Presence check and write run under one shard write lock, satisfying
    /// the trait's single-critical-section atomicity contract.
    fn update(&self, key: K, value: Payload) -> bool {
        self.shards[self.shard_for(key)].write().update(key, value)
    }

    fn remove(&self, key: K) -> Option<Payload> {
        self.shards[self.shard_for(key)].write().remove(key)
    }

    fn range(&self, spec: RangeSpec<K>, out: &mut Vec<(K, Payload)>) -> usize {
        let before = out.len();
        let mut shard = self.shard_for(spec.start);
        let mut remaining = spec.count;
        while shard < self.shards.len() && remaining > 0 {
            let got = self.shards[shard]
                .read()
                .range(RangeSpec::new(spec.start, remaining), out);
            remaining -= got;
            shard += 1;
        }
        out.len() - before
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    fn memory_usage(&self) -> usize {
        self.shards.iter().map(|s| s.read().memory_usage()).sum()
    }

    fn meta(&self) -> IndexMeta {
        let mut meta = self.shards[0].read().meta();
        meta.name = self.name;
        meta.concurrent = true;
        meta
    }
}

/// A concurrent adapter with a single structure-wide reader-writer lock:
/// lookups scale across threads while writers serialize (Wormhole's
/// inner-layer lock behaviour).
pub struct InnerLockIndex<I> {
    inner: RwLock<I>,
    name: &'static str,
    supports_delete: bool,
}

impl<I> InnerLockIndex<I> {
    pub fn new(inner: I, name: &'static str, supports_delete: bool) -> Self {
        InnerLockIndex {
            inner: RwLock::new(inner),
            name,
            supports_delete,
        }
    }
}

impl<K: Key, I: Index<K> + Sync> ConcurrentIndex<K> for InnerLockIndex<I> {
    fn bulk_load(&mut self, entries: &[(K, Payload)]) {
        self.inner.get_mut().bulk_load(entries);
    }

    fn get(&self, key: K) -> Option<Payload> {
        self.inner.read().get(key)
    }

    fn insert(&self, key: K, value: Payload) -> bool {
        self.inner.write().insert(key, value)
    }

    /// One structure-wide write lock covers the whole check-then-write.
    fn update(&self, key: K, value: Payload) -> bool {
        self.inner.write().update(key, value)
    }

    fn remove(&self, key: K) -> Option<Payload> {
        self.inner.write().remove(key)
    }

    fn range(&self, spec: RangeSpec<K>, out: &mut Vec<(K, Payload)>) -> usize {
        self.inner.read().range(spec, out)
    }

    fn len(&self) -> usize {
        self.inner.read().len()
    }

    fn memory_usage(&self) -> usize {
        self.inner.read().memory_usage()
    }

    fn meta(&self) -> IndexMeta {
        let mut meta = self.inner.read().meta();
        meta.name = self.name;
        meta.concurrent = true;
        meta.supports_delete = self.supports_delete;
        meta
    }
}

/// B+TreeOLC: the concurrent B+-tree with leaf side-links (§3.1).
pub type BPlusTreeOlc<K> = Sharded<K, BPlusTree<K>>;

/// ART-OLC: ART with optimistic lock coupling and epoch reclamation (§3.1).
pub type ArtOlc<K> = Sharded<K, Art<K>>;

/// HOT-ROWEX: HOT with read-optimised write exclusion (§3.1).
pub type HotRowex<K> = Sharded<K, Hot<K>>;

/// Concurrent Masstree.
pub type MasstreeConcurrent<K> = Sharded<K, Masstree<K>>;

/// Concurrent Wormhole with its single inner-layer lock.
pub type WormholeConcurrent<K> = InnerLockIndex<Wormhole<K>>;

/// Construct B+TreeOLC.
pub fn btree_olc<K: Key>() -> BPlusTreeOlc<K> {
    Sharded::new(DEFAULT_SHARDS, "B+treeOLC")
}

/// Construct ART-OLC.
pub fn art_olc<K: Key>() -> ArtOlc<K> {
    Sharded::new(DEFAULT_SHARDS, "ART-OLC")
}

/// Construct HOT-ROWEX.
pub fn hot_rowex<K: Key>() -> HotRowex<K> {
    Sharded::new(DEFAULT_SHARDS, "HOT-ROWEX")
}

/// Construct the concurrent Masstree.
pub fn masstree_concurrent<K: Key>() -> MasstreeConcurrent<K> {
    Sharded::new(DEFAULT_SHARDS, "Masstree")
}

/// Construct the concurrent Wormhole.
pub fn wormhole_concurrent<K: Key>() -> WormholeConcurrent<K> {
    InnerLockIndex::new(Wormhole::default(), "Wormhole", false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn entries(n: u64) -> Vec<(u64, Payload)> {
        (0..n).map(|i| (i * 10, i)).collect()
    }

    #[test]
    fn sharded_bulk_load_partitions_by_key_range() {
        let mut idx: BPlusTreeOlc<u64> = btree_olc();
        ConcurrentIndex::bulk_load(&mut idx, &entries(10_000));
        assert_eq!(idx.len(), 10_000);
        assert_eq!(idx.shard_count(), DEFAULT_SHARDS);
        for i in (0..10_000).step_by(101) {
            assert_eq!(idx.get(i * 10), Some(i));
        }
        assert_eq!(idx.meta().name, "B+treeOLC");
        assert!(idx.meta().concurrent);
    }

    #[test]
    fn sharded_concurrent_inserts_do_not_lose_keys() {
        let mut idx: ArtOlc<u64> = art_olc();
        ConcurrentIndex::bulk_load(&mut idx, &entries(1_000));
        let idx = Arc::new(idx);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let idx = Arc::clone(&idx);
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        idx.insert(1_000_000 + t * 1_000_000 + i, i);
                    }
                });
            }
        });
        assert_eq!(idx.len(), 1_000 + 4 * 2_000);
        for t in 0..4u64 {
            for i in (0..2_000u64).step_by(97) {
                assert_eq!(idx.get(1_000_000 + t * 1_000_000 + i), Some(i));
            }
        }
    }

    #[test]
    fn sharded_range_crosses_shard_boundaries() {
        let mut idx: BPlusTreeOlc<u64> = btree_olc();
        ConcurrentIndex::bulk_load(&mut idx, &entries(10_000));
        let mut out = Vec::new();
        let got = idx.range(RangeSpec::new(0, 5_000), &mut out);
        assert_eq!(got, 5_000);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(out[0].0, 0);
        assert_eq!(out.last().unwrap().0, 4_999 * 10);
    }

    #[test]
    fn sharded_removals() {
        let mut idx: HotRowex<u64> = hot_rowex();
        ConcurrentIndex::bulk_load(&mut idx, &entries(2_000));
        for i in 0..1_000u64 {
            assert_eq!(idx.remove(i * 10), Some(i));
        }
        assert_eq!(idx.len(), 1_000);
        assert!(idx.memory_usage() > 0);
    }

    #[test]
    fn inner_lock_wormhole_serializes_but_stays_correct() {
        let mut idx: WormholeConcurrent<u64> = wormhole_concurrent();
        ConcurrentIndex::bulk_load(&mut idx, &entries(1_000));
        let idx = Arc::new(idx);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let idx = Arc::clone(&idx);
                s.spawn(move || {
                    for i in 0..500u64 {
                        idx.insert(100_000 + t * 100_000 + i, i);
                        idx.get(i * 10);
                    }
                });
            }
        });
        assert_eq!(idx.len(), 1_000 + 4 * 500);
        assert_eq!(idx.meta().name, "Wormhole");
        assert!(!idx.meta().supports_delete);
    }

    #[test]
    fn masstree_concurrent_smoke() {
        let mut idx: MasstreeConcurrent<u64> = masstree_concurrent();
        ConcurrentIndex::bulk_load(&mut idx, &entries(5_000));
        assert_eq!(idx.get(40), Some(4));
        idx.insert(41, 99);
        assert_eq!(idx.get(41), Some(99));
        let mut out = Vec::new();
        assert_eq!(idx.range(RangeSpec::new(35, 3), &mut out), 3);
    }
}
