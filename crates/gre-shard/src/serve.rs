//! Scenario-driver targets for the serving layer: adapters that let the
//! `gre-workloads` [`Driver`](gre_workloads::Driver) execute a scenario
//! through the batched [`ShardPipeline`] or the pipelined [`Session`]
//! client path, completing the three-way target set next to the bare
//! [`ConcurrentIndex`] blanket impl:
//!
//! * **bare** — driver threads call the (possibly sharded) index directly;
//!   one routing decision per op, latency is pure service time.
//! * **[`PipelineTarget`]** — each driver thread buffers ops into
//!   fixed-size [`OpBatch`]es and submits them one at a time
//!   (submit-then-wait). Latency of an op is measured from its intended
//!   send time to its *batch's* completion, so buffering and queueing delay
//!   are charged to the request, not hidden.
//! * **[`SessionTarget`]** — each driver thread opens a [`Session`] and
//!   keeps up to `max_inflight` batches in flight, harvesting completions
//!   in FIFO order as they arrive; the shape a real pipelined client has.
//!
//! Both adapters bulk load through the composite before spawning the worker
//! pool, and their connections flush buffered and in-flight work when a
//! phase ends — the driver reports only completed operations, and no
//! accepted operation is lost when a phase (or the whole run) is cut short.
//!
//! Serving a closed-loop mixed phase through the batched pipeline path:
//!
//! ```
//! # use gre_core::{Index, IndexMeta, Payload, RangeSpec};
//! # use std::collections::BTreeMap;
//! # #[derive(Default)]
//! # struct Toy(BTreeMap<u64, Payload>);
//! # impl Index<u64> for Toy {
//! #     fn bulk_load(&mut self, entries: &[(u64, Payload)]) {
//! #         self.0 = entries.iter().copied().collect();
//! #     }
//! #     fn get(&self, key: u64) -> Option<Payload> { self.0.get(&key).copied() }
//! #     fn insert(&mut self, key: u64, value: Payload) -> bool {
//! #         self.0.insert(key, value).is_none()
//! #     }
//! #     fn remove(&mut self, key: u64) -> Option<Payload> { self.0.remove(&key) }
//! #     fn range(&self, spec: RangeSpec<u64>, out: &mut Vec<(u64, Payload)>) -> usize {
//! #         let before = out.len();
//! #         out.extend(self.0.range(spec.start..)
//! #             .take_while(|(k, _)| spec.end.map_or(true, |e| **k <= e))
//! #             .take(spec.count).map(|(k, v)| (*k, *v)));
//! #         out.len() - before
//! #     }
//! #     fn len(&self) -> usize { self.0.len() }
//! #     fn memory_usage(&self) -> usize { 0 }
//! #     fn meta(&self) -> IndexMeta {
//! #         IndexMeta { name: "toy", learned: false, concurrent: false,
//! #                     supports_delete: true, supports_range: true }
//! #     }
//! # }
//! use gre_core::index::MutexIndex;
//! use gre_shard::{Partitioner, PipelineTarget, ShardedIndex};
//! use gre_workloads::scenario::{KeyDist, Mix, Pacing, Phase, Scenario, Span};
//! use gre_workloads::Driver;
//!
//! // Four range shards, each its own backend instance.
//! let store = ShardedIndex::from_factory(Partitioner::range(4), |_| {
//!     MutexIndex::new(Toy::default(), "toy-shard")
//! });
//!
//! let keys: Vec<u64> = (1..=2_000u64).map(|i| i * 8).collect();
//! let scenario = Scenario::new("serve-doc", 7, &keys).phase(Phase::new(
//!     "mixed",
//!     Mix::points(8, 1, 1, 0), // 80% get / 10% insert / 10% update
//!     KeyDist::Uniform,
//!     Span::Ops(4_000),
//!     Pacing::ClosedLoop { threads: 2 },
//! ));
//!
//! // Two pipeline workers, 128-op batches, submit-then-wait per client.
//! let mut target = PipelineTarget::new(store, 2, 128);
//! let result = Driver::new().run(&scenario, &mut target);
//!
//! assert_eq!(result.phases[0].ops(), 4_000); // flush covers partial batches
//! assert_eq!(result.phases[0].tally.errors, 0);
//! assert!(result.target.contains("pipeline"));
//! ```

use crate::pipeline::{OpBatch, Session, ShardPipeline, DEFAULT_QUEUE_CAPACITY};
use crate::retry::RetryPolicy;
use crate::sharded::ShardedIndex;
use gre_core::ops::RequestKind;
use gre_core::{ConcurrentIndex, Payload};
use gre_durability::{DurableLog, Recovery, SyncPolicy};
use gre_telemetry::{CounterId, Telemetry, TelemetryConfig};
use gre_workloads::driver::{Connection, PhaseRecorder, ServeTarget};
use gre_workloads::Op;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default ops per submitted batch for both adapters.
pub const DEFAULT_DRIVER_BATCH: usize = 1024;

/// Per-op bookkeeping a connection keeps for one in-flight batch: the op's
/// kind and its intended send time (when the driver timed it).
type BatchMeta = Vec<(RequestKind, Option<Instant>)>;

/// Record one completed batch into the recorder, stamping every timed op
/// with the batch's completion time.
fn record_batch(rec: &mut PhaseRecorder, meta: &BatchMeta, responses: &[gre_core::Response<u64>]) {
    let now = Instant::now();
    for ((kind, intended), response) in meta.iter().zip(responses) {
        match intended {
            Some(t0) => rec.complete_timed(*kind, *t0, now, response),
            None => rec.complete_untimed(response),
        }
    }
}

/// Check that a telemetry snapshot agrees *exactly* with the driver-side
/// typed-response tally of the ops served through it: the two count the
/// same outcomes from opposite ends of the pipeline (workers classifying
/// responses vs. the recorder classifying the responses it hands back), so
/// on a drained pipeline every pair must match. Returns the first mismatch.
///
/// Used by the telemetry integration tests and as a debug assertion in the
/// observability binary; `tally` must cover every phase served since the
/// telemetry was attached.
pub fn reconcile_tally(
    snap: &gre_telemetry::MetricsSnapshot,
    tally: &gre_workloads::driver::Tally,
) -> Result<(), String> {
    use gre_telemetry::CounterId;
    let pairs = [
        (CounterId::OpsSubmitted, tally.ops),
        (CounterId::OpsCompleted, tally.ops),
        (CounterId::GetHits, tally.hits),
        (CounterId::InsertedNew, tally.new_keys),
        (CounterId::Updated, tally.updated),
        (CounterId::Removed, tally.removed),
        (CounterId::ScannedKeys, tally.scanned_keys),
        (CounterId::OpErrors, tally.errors),
    ];
    for (id, expected) in pairs {
        let got = snap.counter(id);
        if got != expected {
            return Err(format!(
                "counter {} = {got}, driver tally says {expected}",
                id.name()
            ));
        }
    }
    let per_shard: u64 = snap.shards.iter().map(|s| s.ops_completed).sum();
    if per_shard != tally.ops {
        return Err(format!(
            "per-shard ops_completed sum to {per_shard}, driver tally says {}",
            tally.ops
        ));
    }
    Ok(())
}

/// Durability settings for a serve target: where the per-shard WAL lives,
/// how often it syncs, and (after load) the live log.
struct DurabilityConfig {
    dir: PathBuf,
    policy: SyncPolicy,
    log: Option<Arc<DurableLog>>,
}

/// Seeds for the per-connection retry RNGs: deterministic per process, so
/// repeated runs back off identically while distinct connections still
/// jitter independently.
static CONN_SERIAL: AtomicU64 = AtomicU64::new(0);

fn conn_rng() -> StdRng {
    StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15 ^ CONN_SERIAL.fetch_add(1, Ordering::Relaxed))
}

/// The shared core of both adapters: the sharded composite plus the worker
/// pool serving it (created at [`ServeTarget::load`] time, after the bulk
/// load, because loading needs exclusive access to the composite).
struct PipelineCore<B: ConcurrentIndex<u64> + 'static> {
    index: Arc<ShardedIndex<u64, B>>,
    /// Shared so an elasticity controller can hold the pipeline alongside
    /// the target (see `gre-elastic`).
    pipeline: Option<Arc<ShardPipeline<B>>>,
    workers: usize,
    batch: usize,
    telemetry: Option<Arc<Telemetry>>,
    durability: Option<DurabilityConfig>,
    retry: Option<RetryPolicy>,
}

impl<B: ConcurrentIndex<u64> + 'static> PipelineCore<B> {
    fn new(index: ShardedIndex<u64, B>, workers: usize, batch: usize) -> Self {
        PipelineCore {
            index: Arc::new(index),
            pipeline: None,
            workers,
            batch: batch.max(1),
            telemetry: None,
            durability: None,
            retry: None,
        }
    }

    /// Attach a telemetry registry sized for this target's topology: one
    /// scope per shard, one counter stripe per worker plus a dedicated
    /// stripe for submitters. `configure` tweaks the trace options on top
    /// of the trace-enabled defaults.
    fn instrument(&mut self, configure: impl FnOnce(TelemetryConfig) -> TelemetryConfig) {
        let config = configure(TelemetryConfig::new(
            self.index.num_shards(),
            self.workers + 1,
        ));
        self.telemetry = Some(Arc::new(Telemetry::new(config)));
    }

    fn load(&mut self, entries: &[(u64, Payload)]) {
        // Idempotent: a target loaded ahead of the driver (e.g. so an
        // elasticity controller can attach to the pipeline before traffic
        // starts) ignores the driver's own load call.
        if self.pipeline.is_some() {
            return;
        }
        let index = Arc::get_mut(&mut self.index)
            .expect("load() must run before the worker pool is spawned");
        // Durable targets either restore a previous incarnation's on-disk
        // state (a restart: the durable history supersedes the bulk
        // entries) or open a fresh log and checkpoint the bulk load into
        // per-shard snapshots — the loaded keys never pass through the
        // pipeline, so without the checkpoint a recovery would replay an
        // empty store.
        let durability = if let Some(cfg) = self.durability.as_mut() {
            let log = match Recovery::recover(&cfg.dir) {
                Ok(rec) => {
                    let replayed = rec.replay_into(index);
                    if let Some(t) = &self.telemetry {
                        t.metrics()
                            .stripe(0)
                            .add(CounterId::RecoveryReplayedOps, replayed);
                    }
                    let log = rec
                        .resume(cfg.policy)
                        .expect("durable target: cannot resume the write-ahead log");
                    // A replayed history containing range handoffs gets
                    // checkpointed immediately: the bulk load above refit
                    // the routing from the recovered data, so the old
                    // In/Out records no longer describe this incarnation's
                    // topology and must not survive into a second crash.
                    if rec.has_topology() {
                        let partitioner = index.partitioner();
                        for shard in 0..index.num_shards() {
                            let backend = index.backend(shard);
                            let mut entries = Vec::with_capacity(backend.len());
                            backend.range(gre_core::RangeSpec::new(0, backend.len()), &mut entries);
                            // Defensive: only this shard's keys (a backend
                            // scan may overrun under exotic partitioners).
                            entries.retain(|&(k, _)| partitioner.shard_of(k) == shard);
                            log.checkpoint(shard, &entries)
                                .expect("durable target: cannot checkpoint the recovered topology");
                        }
                    }
                    log
                }
                Err(_) => {
                    index.bulk_load(entries);
                    let log = DurableLog::create(&cfg.dir, index.num_shards(), cfg.policy)
                        .expect("durable target: cannot create the write-ahead log");
                    let partitioner = index.partitioner();
                    let mut per_shard: Vec<Vec<(u64, Payload)>> =
                        vec![Vec::new(); index.num_shards()];
                    for &(k, v) in entries {
                        per_shard[partitioner.shard_of(k)].push((k, v));
                    }
                    for (shard, entries) in per_shard.iter().enumerate() {
                        log.checkpoint(shard, entries)
                            .expect("durable target: cannot checkpoint the bulk load");
                    }
                    log
                }
            };
            cfg.log = Some(Arc::clone(&log));
            Some(log)
        } else {
            index.bulk_load(entries);
            None
        };
        self.pipeline = Some(Arc::new(ShardPipeline::with_services(
            Arc::clone(&self.index),
            self.workers,
            DEFAULT_QUEUE_CAPACITY,
            self.telemetry.clone(),
            durability,
        )));
    }

    fn pipeline(&self) -> &ShardPipeline<B> {
        self.pipeline
            .as_deref()
            .expect("driver calls load() before connect()")
    }
}

/// Serve scenarios through the batched `ShardPipeline` path: each driver
/// thread submits one batch at a time and waits for its typed responses.
pub struct PipelineTarget<B: ConcurrentIndex<u64> + 'static> {
    core: PipelineCore<B>,
}

impl<B: ConcurrentIndex<u64> + 'static> PipelineTarget<B> {
    /// Target `index` with a `workers`-thread pool and `batch`-op batches.
    pub fn new(index: ShardedIndex<u64, B>, workers: usize, batch: usize) -> Self {
        PipelineTarget {
            core: PipelineCore::new(index, workers, batch),
        }
    }

    /// The served composite (for post-run verification).
    pub fn index(&self) -> &ShardedIndex<u64, B> {
        &self.core.index
    }

    /// Attach runtime telemetry with trace-enabled defaults; the registry
    /// is sized for this target's topology and shared with the pipeline
    /// built at load time. Retrieve it via [`PipelineTarget::telemetry`].
    pub fn instrumented(self) -> Self {
        self.instrumented_with(|c| c)
    }

    /// Like [`PipelineTarget::instrumented`], with `configure` applied to
    /// the default [`TelemetryConfig`] (e.g. to change the trace sampling
    /// period or disable the tracer).
    pub fn instrumented_with(
        mut self,
        configure: impl FnOnce(TelemetryConfig) -> TelemetryConfig,
    ) -> Self {
        self.core.instrument(configure);
        self
    }

    /// The attached telemetry, when [`PipelineTarget::instrumented`].
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.core.telemetry.as_ref()
    }

    /// Make this target durable: at load time, open a per-shard write-ahead
    /// log under `dir` (checkpointing the bulk load into snapshots) and
    /// attach it to the pipeline, so every served write is group-committed
    /// before it executes. If `dir` already holds a durable history from a
    /// previous incarnation, load restores it instead of the bulk entries
    /// (a restart) and resumes the log where it left off, recording the
    /// replayed op count as `recovery_replayed_ops` when instrumented. See
    /// `gre-durability` and `docs/DURABILITY.md`.
    pub fn durable(mut self, dir: impl AsRef<Path>, policy: SyncPolicy) -> Self {
        self.core.durability = Some(DurabilityConfig {
            dir: dir.as_ref().to_path_buf(),
            policy,
            log: None,
        });
        self
    }

    /// Retry rejected submissions per `policy` (jittered backoff on a full
    /// shard queue) instead of parking on the pipeline's capacity condvar.
    /// Exhausted retries fall back to the blocking submit, so the driver
    /// still loses no operations.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.core.retry = Some(policy);
        self
    }

    /// The live durable log, when [`PipelineTarget::durable`] and loaded.
    pub fn durability(&self) -> Option<&Arc<DurableLog>> {
        self.core.durability.as_ref()?.log.as_ref()
    }

    /// The shared serving pipeline, once loaded — the handle an elasticity
    /// controller attaches to. Loading is idempotent, so a caller may
    /// `load()` ahead of the driver, take this handle, and let the driver's
    /// own load call no-op.
    pub fn pipeline_handle(&self) -> Option<Arc<ShardPipeline<B>>> {
        self.core.pipeline.clone()
    }
}

impl<B: ConcurrentIndex<u64> + 'static> ServeTarget for PipelineTarget<B> {
    fn describe(&self) -> String {
        format!(
            "{} [pipeline batch={}{}]",
            self.core.index.meta().name,
            self.core.batch,
            if self.core.durability.is_some() {
                " wal"
            } else {
                ""
            }
        )
    }

    fn load(&mut self, entries: &[(u64, Payload)]) {
        self.core.load(entries);
    }

    fn connect(&self) -> Box<dyn Connection + '_> {
        Box::new(PipelineConn {
            pipeline: self.core.pipeline(),
            batch: self.core.batch,
            buf: Vec::with_capacity(self.core.batch),
            meta: Vec::with_capacity(self.core.batch),
            retry: self.core.retry,
            rng: conn_rng(),
        })
    }

    fn stored_len(&self) -> usize {
        self.core.index.len()
    }

    fn memory_bytes(&self) -> usize {
        self.core.index.memory_usage()
    }
}

struct PipelineConn<'a, B: ConcurrentIndex<u64> + 'static> {
    pipeline: &'a ShardPipeline<B>,
    batch: usize,
    buf: Vec<Op>,
    meta: BatchMeta,
    retry: Option<RetryPolicy>,
    rng: StdRng,
}

impl<B: ConcurrentIndex<u64> + 'static> PipelineConn<'_, B> {
    fn send(&mut self, rec: &mut PhaseRecorder) {
        if self.buf.is_empty() {
            return;
        }
        let ops = std::mem::take(&mut self.buf);
        let batch = OpBatch::new(ops);
        let handle = match self.retry {
            // Jittered retries first; a batch that exhausts its attempts
            // falls back to the blocking submit — the driver's accounting
            // requires that no accepted op vanish.
            Some(policy) => match self
                .pipeline
                .submit_with_retry(batch, &policy, &mut self.rng)
            {
                Ok(handle) => handle,
                Err(bp) => self.pipeline.submit(bp.batch),
            },
            None => self.pipeline.submit(batch),
        };
        let responses = handle.wait();
        record_batch(rec, &self.meta, &responses);
        self.meta.clear();
    }
}

impl<B: ConcurrentIndex<u64> + 'static> Connection for PipelineConn<'_, B> {
    fn submit(&mut self, op: Op, intended: Option<Instant>, rec: &mut PhaseRecorder) {
        self.buf.push(op);
        self.meta.push((op.kind(), intended));
        if self.buf.len() >= self.batch {
            self.send(rec);
        }
    }

    fn flush(&mut self, rec: &mut PhaseRecorder) {
        self.send(rec);
    }
}

/// Serve scenarios through pipelined [`Session`]s: each driver thread keeps
/// up to `max_inflight` batches in flight and consumes completions in FIFO
/// order without blocking the submission stream.
pub struct SessionTarget<B: ConcurrentIndex<u64> + 'static> {
    core: PipelineCore<B>,
    max_inflight: usize,
}

impl<B: ConcurrentIndex<u64> + 'static> SessionTarget<B> {
    /// Target `index` with a `workers`-thread pool, `batch`-op batches and
    /// a per-connection in-flight window of `max_inflight` batches.
    pub fn new(
        index: ShardedIndex<u64, B>,
        workers: usize,
        batch: usize,
        max_inflight: usize,
    ) -> Self {
        SessionTarget {
            core: PipelineCore::new(index, workers, batch),
            max_inflight: max_inflight.max(1),
        }
    }

    /// The served composite (for post-run verification).
    pub fn index(&self) -> &ShardedIndex<u64, B> {
        &self.core.index
    }

    /// Attach runtime telemetry with trace-enabled defaults; see
    /// [`PipelineTarget::instrumented`].
    pub fn instrumented(self) -> Self {
        self.instrumented_with(|c| c)
    }

    /// Like [`SessionTarget::instrumented`], with `configure` applied to
    /// the default [`TelemetryConfig`].
    pub fn instrumented_with(
        mut self,
        configure: impl FnOnce(TelemetryConfig) -> TelemetryConfig,
    ) -> Self {
        self.core.instrument(configure);
        self
    }

    /// The attached telemetry, when [`SessionTarget::instrumented`].
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.core.telemetry.as_ref()
    }

    /// Make this target durable; see [`PipelineTarget::durable`].
    pub fn durable(mut self, dir: impl AsRef<Path>, policy: SyncPolicy) -> Self {
        self.core.durability = Some(DurabilityConfig {
            dir: dir.as_ref().to_path_buf(),
            policy,
            log: None,
        });
        self
    }

    /// Retry rejected submissions per `policy`; see
    /// [`PipelineTarget::with_retry`].
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.core.retry = Some(policy);
        self
    }

    /// The live durable log, when [`SessionTarget::durable`] and loaded.
    pub fn durability(&self) -> Option<&Arc<DurableLog>> {
        self.core.durability.as_ref()?.log.as_ref()
    }

    /// The shared serving pipeline, once loaded; see
    /// [`PipelineTarget::pipeline_handle`].
    pub fn pipeline_handle(&self) -> Option<Arc<ShardPipeline<B>>> {
        self.core.pipeline.clone()
    }
}

impl<B: ConcurrentIndex<u64> + 'static> ServeTarget for SessionTarget<B> {
    fn describe(&self) -> String {
        format!(
            "{} [session batch={} inflight={}{}]",
            self.core.index.meta().name,
            self.core.batch,
            self.max_inflight,
            if self.core.durability.is_some() {
                " wal"
            } else {
                ""
            }
        )
    }

    fn load(&mut self, entries: &[(u64, Payload)]) {
        self.core.load(entries);
    }

    fn connect(&self) -> Box<dyn Connection + '_> {
        Box::new(SessionConn {
            session: Session::with_max_inflight(self.core.pipeline(), self.max_inflight),
            batch: self.core.batch,
            buf: Vec::with_capacity(self.core.batch),
            pending: VecDeque::new(),
            buf_meta: Vec::with_capacity(self.core.batch),
            retry: self.core.retry,
            rng: conn_rng(),
        })
    }

    fn stored_len(&self) -> usize {
        self.core.index.len()
    }

    fn memory_bytes(&self) -> usize {
        self.core.index.memory_usage()
    }
}

struct SessionConn<'a, B: ConcurrentIndex<u64> + 'static> {
    session: Session<'a, B>,
    batch: usize,
    buf: Vec<Op>,
    buf_meta: BatchMeta,
    /// Metadata of submitted-but-unharvested batches, in submission order
    /// (the session returns completions in the same FIFO order).
    pending: VecDeque<BatchMeta>,
    retry: Option<RetryPolicy>,
    rng: StdRng,
}

impl<B: ConcurrentIndex<u64> + 'static> SessionConn<'_, B> {
    fn send(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let ops = std::mem::take(&mut self.buf);
        self.pending.push_back(std::mem::take(&mut self.buf_meta));
        let batch = OpBatch::new(ops);
        match self.retry {
            Some(policy) => {
                // Jittered retries on queue saturation (a full window still
                // waits out the oldest batch — that's progress, not
                // contention); exhaustion falls back to the blocking submit
                // so no accepted op is lost.
                if let Err(bp) = self
                    .session
                    .submit_with_retry(batch, &policy, &mut self.rng)
                {
                    self.session.submit(bp.batch);
                }
            }
            // Blocking only when the in-flight window is full — the session
            // then waits out its *oldest* batch, preserving FIFO harvests.
            None => self.session.submit(batch),
        }
    }

    fn harvest_ready(&mut self, rec: &mut PhaseRecorder) {
        while let Some(responses) = self.session.try_recv() {
            let meta = self
                .pending
                .pop_front()
                .expect("every submitted batch has pending metadata");
            record_batch(rec, &meta, &responses);
        }
    }
}

impl<B: ConcurrentIndex<u64> + 'static> Connection for SessionConn<'_, B> {
    fn submit(&mut self, op: Op, intended: Option<Instant>, rec: &mut PhaseRecorder) {
        self.buf.push(op);
        self.buf_meta.push((op.kind(), intended));
        if self.buf.len() >= self.batch {
            self.send();
            self.harvest_ready(rec);
        }
    }

    fn flush(&mut self, rec: &mut PhaseRecorder) {
        self.send();
        for responses in self.session.drain() {
            let meta = self
                .pending
                .pop_front()
                .expect("every submitted batch has pending metadata");
            record_batch(rec, &meta, &responses);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partitioner;
    use gre_core::index::MutexIndex;
    use gre_core::{Index, IndexMeta, RangeSpec};
    use gre_workloads::scenario::{KeyDist, Mix, Pacing, Phase, Scenario, Span};
    use gre_workloads::Driver;
    use std::collections::BTreeMap;

    #[derive(Default)]
    struct MapIndex {
        map: BTreeMap<u64, Payload>,
    }

    impl Index<u64> for MapIndex {
        fn bulk_load(&mut self, entries: &[(u64, Payload)]) {
            self.map = entries.iter().copied().collect();
        }
        fn get(&self, key: u64) -> Option<Payload> {
            self.map.get(&key).copied()
        }
        fn insert(&mut self, key: u64, value: Payload) -> bool {
            self.map.insert(key, value).is_none()
        }
        fn update(&mut self, key: u64, value: Payload) -> bool {
            match self.map.get_mut(&key) {
                Some(v) => {
                    *v = value;
                    true
                }
                None => false,
            }
        }
        fn remove(&mut self, key: u64) -> Option<Payload> {
            self.map.remove(&key)
        }
        fn range(&self, spec: RangeSpec<u64>, out: &mut Vec<(u64, Payload)>) -> usize {
            let before = out.len();
            out.extend(
                self.map
                    .range(spec.start..)
                    .take_while(|(k, _)| spec.end.map_or(true, |e| **k <= e))
                    .take(spec.count)
                    .map(|(k, v)| (*k, *v)),
            );
            out.len() - before
        }
        fn len(&self) -> usize {
            self.map.len()
        }
        fn memory_usage(&self) -> usize {
            self.map.len() * 48
        }
        fn meta(&self) -> IndexMeta {
            IndexMeta {
                name: "map",
                learned: false,
                concurrent: false,
                supports_delete: true,
                supports_range: true,
            }
        }
    }

    fn sharded(shards: usize) -> ShardedIndex<u64, MutexIndex<MapIndex>> {
        ShardedIndex::from_factory(Partitioner::range(shards), |_| {
            MutexIndex::new(MapIndex::default(), "map-shard")
        })
    }

    fn scenario(ops: u64, threads: usize) -> Scenario {
        let keys: Vec<u64> = (1..=4_000u64).map(|i| i * 16).collect();
        Scenario::new("serve-test", 77, &keys).phase(Phase::new(
            "mixed",
            Mix::points(3, 1, 1, 0).with_range(1, 20),
            KeyDist::Uniform,
            Span::Ops(ops),
            Pacing::ClosedLoop { threads },
        ))
    }

    #[test]
    fn pipeline_target_completes_every_op() {
        let mut target = PipelineTarget::new(sharded(4), 2, 128);
        let result = Driver::new().run(&scenario(5_000, 2), &mut target);
        let p = &result.phases[0];
        assert_eq!(p.ops(), 5_000, "flush must account for the partial batch");
        assert!(p.tally.hits > 0);
        assert!(p.tally.new_keys > 0);
        assert!(p.tally.scanned_keys > 0);
        assert_eq!(p.tally.errors, 0);
        assert_eq!(
            target.index().len() as u64,
            4_000 + p.tally.new_keys - p.tally.removed
        );
        assert!(result.target.contains("pipeline"));
    }

    #[test]
    fn session_target_completes_every_op() {
        let mut target = SessionTarget::new(sharded(4), 2, 128, 8);
        let result = Driver::new().run(&scenario(5_000, 3), &mut target);
        let p = &result.phases[0];
        assert_eq!(p.ops(), 5_000, "drain must hand back every batch");
        assert_eq!(p.tally.errors, 0);
        assert_eq!(
            target.index().len() as u64,
            4_000 + p.tally.new_keys - p.tally.removed
        );
        assert!(result.target.contains("session"));
    }

    #[test]
    fn instrumented_target_counts_every_completed_op() {
        use gre_telemetry::{CounterId, GaugeId, GlobalHistId};

        let mut target =
            SessionTarget::new(sharded(4), 2, 128, 8).instrumented_with(|c| c.trace_sample(64));
        let result = Driver::new().run(&scenario(5_000, 2), &mut target);
        let p = &result.phases[0];
        assert_eq!(p.ops(), 5_000);

        let t = target.telemetry().expect("instrumented");
        let snap = t.snapshot();
        assert_eq!(snap.counter(CounterId::OpsSubmitted), 5_000);
        assert_eq!(snap.counter(CounterId::OpsCompleted), 5_000);
        assert_eq!(snap.counter(CounterId::GetHits), p.tally.hits);
        assert_eq!(snap.counter(CounterId::ScannedKeys), p.tally.scanned_keys);
        // Per-shard completions sum to the total, and the drained pipeline
        // leaves no residual queue depth or in-flight ops.
        let per_shard: u64 = snap.shards.iter().map(|s| s.ops_completed).sum();
        assert_eq!(per_shard, 5_000);
        for shard in &snap.shards {
            assert_eq!(shard.gauge(GaugeId::QueueDepth), 0);
            assert_eq!(shard.gauge(GaugeId::InFlightOps), 0);
        }
        // Sessions record their in-flight window occupancy on every submit.
        assert!(snap.global(GlobalHistId::SessionWindow).count() > 0);
        // The 1-in-64 sampler left spans in the ring.
        assert!(t.trace().expect("tracing on").recorded() > 0);
        assert!(snap.counter(CounterId::TraceSpans) > 0);
    }

    #[test]
    fn durable_target_restores_a_previous_incarnation_on_load() {
        use gre_durability::util::TempDir;
        use gre_telemetry::CounterId;

        let tmp = TempDir::new("serve-restart");
        let mut target =
            PipelineTarget::new(sharded(2), 2, 64).durable(tmp.path(), SyncPolicy::EveryGroup);
        let result = Driver::new().run(&scenario(2_000, 2), &mut target);
        assert_eq!(result.phases[0].tally.errors, 0);
        let mut before = Vec::new();
        target
            .index()
            .range(RangeSpec::new(0, usize::MAX), &mut before);
        drop(target); // the pipeline joins and syncs the log

        // A fresh target on the same directory restarts from the durable
        // history: the recovered state supersedes the bulk entries.
        let mut target = PipelineTarget::new(sharded(2), 2, 64)
            .durable(tmp.path(), SyncPolicy::EveryGroup)
            .instrumented_with(|c| c.without_trace());
        target.load(&[(1, 1)]); // ignored: the durable history wins
        let mut after = Vec::new();
        target
            .index()
            .range(RangeSpec::new(0, usize::MAX), &mut after);
        assert_eq!(after, before, "restart must restore the served state");
        let snap = target.telemetry().expect("instrumented").snapshot();
        assert!(snap.counter(CounterId::RecoveryReplayedOps) > 0);
    }

    #[test]
    fn batched_latency_is_measured_from_intended_send_time() {
        // A tiny open-loop run: every op is timed, and since ops wait for
        // their batch to fill before even being submitted, their recorded
        // latency (measured from intended send time) must cover that
        // buffering delay: with 64-op batches at 6.4k ops/s the first op of
        // each batch waits ~10ms for the batch to fill.
        let mut target = SessionTarget::new(sharded(2), 2, 64, 4);
        let keys: Vec<u64> = (1..=2_000u64).map(|i| i * 8).collect();
        let s = Scenario::new("co-safe", 5, &keys).phase(Phase::new(
            "paced",
            Mix::read_only(),
            KeyDist::Uniform,
            Span::Ops(256),
            Pacing::OpenLoop {
                rate_ops_s: 6_400.0,
            },
        ));
        let result = Driver::new().open_loop_senders(1).run(&s, &mut target);
        let p = &result.phases[0];
        assert_eq!(p.ops(), 256);
        assert_eq!(p.latency.total_count(), 256, "open loop times every op");
        let get = p.kind_summary(RequestKind::Get);
        // 64 ops fill a batch in 10ms; the batch-opening op waits all of it.
        assert!(
            get.max_ns > 2_000_000,
            "max latency {}ns does not cover the buffering delay",
            get.max_ns
        );
    }
}
