//! The byte-sink abstraction the WAL writes through.
//!
//! Separating *what* the log writes (framed records, group commit) from
//! *where* the bytes land lets the fault-injection layer
//! ([`crate::failpoint::InjectingSink`]) interpose deterministically scripted
//! failures between the log logic and the real file, while production code
//! uses a plain [`FileSink`].
//!
//! The contract mirrors the durability semantics of a real OS:
//! [`WalSink::append`] hands bytes to the sink with **no** durability
//! promise (they may sit in a page-cache-like buffer), and only
//! [`WalSink::sync`] is a durability barrier — after it returns `Ok`, every
//! previously appended byte must survive a crash. [`WalSink::truncate`]
//! discards the log (used when a snapshot supersedes it).

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// An append-only byte sink with an explicit durability barrier.
pub trait WalSink: Send {
    /// Hand `buf` to the sink. Not durable until [`WalSink::sync`] returns.
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Durability barrier: all appended bytes must survive a crash once this
    /// returns `Ok`.
    fn sync(&mut self) -> io::Result<()>;

    /// Discard the entire log (after its contents were snapshotted). The
    /// truncation itself must be durable on return.
    fn truncate(&mut self) -> io::Result<()>;

    /// Bytes appended so far (durable or not), for offset-based failpoints
    /// and stats.
    fn position(&self) -> u64;
}

/// The production sink: a real file, `append` = buffered `write_all`,
/// `sync` = flush + `sync_data`.
pub struct FileSink {
    file: File,
    /// Appended-but-unsynced bytes. Buffering in-process (instead of
    /// writing straight through) keeps one write syscall per group commit
    /// even when the sync policy batches several groups per barrier.
    pending: Vec<u8>,
    position: u64,
}

impl FileSink {
    /// Open (creating or appending to) the log at `path`.
    pub fn open(path: &Path) -> io::Result<FileSink> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let position = file.metadata()?.len();
        Ok(FileSink {
            file,
            pending: Vec::new(),
            position,
        })
    }
}

impl WalSink for FileSink {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.pending.extend_from_slice(buf);
        self.position += buf.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        if !self.pending.is_empty() {
            self.file.write_all(&self.pending)?;
            self.pending.clear();
        }
        self.file.sync_data()
    }

    fn truncate(&mut self) -> io::Result<()> {
        self.pending.clear();
        self.file.set_len(0)?;
        self.position = 0;
        self.file.sync_data()
    }

    fn position(&self) -> u64 {
        self.position
    }
}

/// An in-memory sink for unit tests: bytes survive "crashes" only if synced
/// (same model the injecting sink enforces). The backing store is shared so
/// a test can inspect what a crashed writer actually persisted.
pub struct MemSink {
    store: std::sync::Arc<std::sync::Mutex<Vec<u8>>>,
    pending: Vec<u8>,
    position: u64,
}

impl MemSink {
    pub fn new() -> (MemSink, std::sync::Arc<std::sync::Mutex<Vec<u8>>>) {
        let store = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        (
            MemSink {
                store: std::sync::Arc::clone(&store),
                pending: Vec::new(),
                position: 0,
            },
            store,
        )
    }
}

impl WalSink for MemSink {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.pending.extend_from_slice(buf);
        self.position += buf.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.store
            .lock()
            .expect("mem sink poisoned")
            .extend_from_slice(&self.pending);
        self.pending.clear();
        Ok(())
    }

    fn truncate(&mut self) -> io::Result<()> {
        self.store.lock().expect("mem sink poisoned").clear();
        self.pending.clear();
        self.position = 0;
        Ok(())
    }

    fn position(&self) -> u64 {
        self.position
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_sink_persists_only_on_sync() {
        let (mut sink, store) = MemSink::new();
        sink.append(b"abc").unwrap();
        assert_eq!(sink.position(), 3);
        assert!(store.lock().unwrap().is_empty(), "unsynced stays pending");
        sink.sync().unwrap();
        assert_eq!(store.lock().unwrap().as_slice(), b"abc");
        sink.append(b"def").unwrap();
        sink.truncate().unwrap();
        assert!(store.lock().unwrap().is_empty());
        assert_eq!(sink.position(), 0);
    }

    #[test]
    fn file_sink_round_trips_through_the_filesystem() {
        let dir = crate::util::TempDir::new("file-sink");
        let path = dir.path().join("wal.log");
        {
            let mut sink = FileSink::open(&path).unwrap();
            sink.append(b"hello ").unwrap();
            sink.append(b"wal").unwrap();
            assert_eq!(sink.position(), 9);
            sink.sync().unwrap();
        }
        assert_eq!(std::fs::read(&path).unwrap(), b"hello wal");
        // Reopening appends; truncation is durable.
        let mut sink = FileSink::open(&path).unwrap();
        assert_eq!(sink.position(), 9);
        sink.truncate().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"");
    }
}
