//! Imbalance detection policy: pure logic over windowed per-shard load
//! snapshots, separated from the executor so it is unit-testable without
//! threads, pipelines, or clocks.
//!
//! The [`LoadWatcher`] consumes *cumulative* per-shard completed-op counters
//! (exactly what `gre-telemetry`'s `ShardScope::ops_completed` exposes),
//! differentiates them into per-tick throughput shares, and demands that an
//! imbalance **sustain** for a configured number of consecutive ticks before
//! recommending a topology change — a single bursty interval never triggers
//! a migration, and a cooldown separates consecutive actions so the serving
//! layer observes the effect of one change before the next is planned.

/// Tuning knobs for the elasticity policy.
#[derive(Debug, Clone, Copy)]
pub struct ElasticPolicy {
    /// A shard is *hot* when its share of the tick's completed ops is at
    /// least this fraction. With `S` shards the fair share is `1/S`, so a
    /// sensible threshold is a small multiple of that.
    pub hot_share: f64,
    /// A shard is *cold* when its share is at most this fraction.
    pub cold_share: f64,
    /// Consecutive ticks a shard must stay hot before a split is
    /// recommended (the sustain window).
    pub hot_sustain: u32,
    /// Consecutive ticks a shard must stay cold before a merge is
    /// recommended.
    pub cold_sustain: u32,
    /// Ticks to wait after any recommendation before another one may fire
    /// (lets the previous topology change take effect first).
    pub cooldown: u32,
    /// Ticks with fewer completed ops than this are ignored entirely:
    /// shares of a near-idle interval are noise, not load.
    pub min_ops_per_tick: u64,
    /// Segments with fewer live keys than this are never split.
    pub min_split_keys: usize,
}

impl Default for ElasticPolicy {
    fn default() -> Self {
        ElasticPolicy {
            hot_share: 0.5,
            cold_share: 0.02,
            hot_sustain: 3,
            cold_sustain: 5,
            cooldown: 5,
            min_ops_per_tick: 1_000,
            min_split_keys: 64,
        }
    }
}

/// A topology change the watcher recommends. The controller turns the shard
/// id into a concrete segment plan (which segment, where to cut, which
/// target shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Split the hot shard's largest segment and move the upper half away.
    Split { shard: usize },
    /// Fold one of the cold shard's segments into a neighbouring shard.
    Merge { shard: usize },
}

/// Streak-tracking imbalance detector over cumulative per-shard op counters.
#[derive(Debug)]
pub struct LoadWatcher {
    policy: ElasticPolicy,
    /// Cumulative counter values at the previous observation.
    last_ops: Vec<u64>,
    /// Consecutive hot ticks per shard.
    hot_streak: Vec<u32>,
    /// Consecutive cold ticks per shard.
    cold_streak: Vec<u32>,
    cooldown_left: u32,
    primed: bool,
    /// Per-shard op deltas of the most recent non-idle tick: the traffic
    /// picture a migration target should be chosen from.
    last_deltas: Option<Vec<u64>>,
}

impl LoadWatcher {
    /// A watcher for `shards` shards under `policy`.
    pub fn new(policy: ElasticPolicy, shards: usize) -> Self {
        LoadWatcher {
            policy,
            last_ops: vec![0; shards],
            hot_streak: vec![0; shards],
            cold_streak: vec![0; shards],
            cooldown_left: 0,
            primed: false,
            last_deltas: None,
        }
    }

    /// The policy this watcher runs.
    pub fn policy(&self) -> &ElasticPolicy {
        &self.policy
    }

    /// Feed one observation of the cumulative per-shard completed-op
    /// counters; returns a recommendation when an imbalance has sustained
    /// past its window. The first observation only primes the baseline.
    ///
    /// # Panics
    /// If `ops_completed.len()` differs from the watcher's shard count.
    pub fn observe(&mut self, ops_completed: &[u64]) -> Option<Action> {
        assert_eq!(
            ops_completed.len(),
            self.last_ops.len(),
            "observation arity must match the shard count"
        );
        let deltas: Vec<u64> = ops_completed
            .iter()
            .zip(&self.last_ops)
            .map(|(&now, &then)| now.saturating_sub(then))
            .collect();
        self.last_ops.copy_from_slice(ops_completed);
        if !self.primed {
            self.primed = true;
            return None;
        }
        let total: u64 = deltas.iter().sum();
        if total < self.policy.min_ops_per_tick {
            // Idle interval: shares are meaningless, streaks decay.
            self.hot_streak.iter_mut().for_each(|s| *s = 0);
            self.cold_streak.iter_mut().for_each(|s| *s = 0);
            self.cooldown_left = self.cooldown_left.saturating_sub(1);
            return None;
        }
        self.last_deltas = Some(deltas.clone());
        for (shard, &delta) in deltas.iter().enumerate() {
            let share = delta as f64 / total as f64;
            if share >= self.policy.hot_share {
                self.hot_streak[shard] += 1;
            } else {
                self.hot_streak[shard] = 0;
            }
            if share <= self.policy.cold_share {
                self.cold_streak[shard] += 1;
            } else {
                self.cold_streak[shard] = 0;
            }
        }
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return None;
        }
        // Splits take priority: overload hurts tail latency immediately,
        // while a cold shard is merely wasted capacity. Among qualifying
        // shards, the hottest (longest streak, then lowest id) wins.
        let split = (0..deltas.len())
            .filter(|&s| self.hot_streak[s] >= self.policy.hot_sustain)
            .max_by_key(|&s| (self.hot_streak[s], std::cmp::Reverse(s)));
        if let Some(shard) = split {
            self.arm_cooldown(shard);
            return Some(Action::Split { shard });
        }
        let merge = (0..deltas.len())
            .filter(|&s| self.cold_streak[s] >= self.policy.cold_sustain)
            .max_by_key(|&s| (self.cold_streak[s], std::cmp::Reverse(s)));
        if let Some(shard) = merge {
            self.arm_cooldown(shard);
            return Some(Action::Merge { shard });
        }
        None
    }

    /// The shard that served the *least* traffic in the most recent non-idle
    /// tick, excluding `not` — the natural target for a migration away from
    /// a hot shard. Choosing the target by recent traffic (not by stored key
    /// count) is what makes repeated splits spread a hotspot across the
    /// whole fleet instead of ping-ponging keys between the two busiest
    /// shards, whose key counts see-saw with every move. `None` until a
    /// non-idle tick has been observed.
    pub fn coldest_recent(&self, not: usize) -> Option<usize> {
        let deltas = self.last_deltas.as_ref()?;
        (0..deltas.len())
            .filter(|&s| s != not)
            .min_by_key(|&s| deltas[s])
    }

    fn arm_cooldown(&mut self, acted_on: usize) {
        self.cooldown_left = self.policy.cooldown;
        self.hot_streak[acted_on] = 0;
        self.cold_streak[acted_on] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> ElasticPolicy {
        ElasticPolicy {
            hot_share: 0.5,
            cold_share: 0.05,
            hot_sustain: 3,
            cold_sustain: 3,
            cooldown: 2,
            min_ops_per_tick: 100,
            min_split_keys: 8,
        }
    }

    /// Feed cumulative counters built from per-tick deltas.
    fn feed(w: &mut LoadWatcher, cum: &mut [u64], deltas: &[u64]) -> Option<Action> {
        for (c, d) in cum.iter_mut().zip(deltas) {
            *c += d;
        }
        w.observe(cum)
    }

    #[test]
    fn sustained_hot_shard_triggers_a_split_once() {
        let mut w = LoadWatcher::new(policy(), 4);
        let mut cum = [0u64; 4];
        assert_eq!(w.observe(&cum), None, "first observation only primes");
        // Shard 2 takes 70% of the traffic. Two hot ticks: not sustained.
        assert_eq!(feed(&mut w, &mut cum, &[100, 100, 700, 100]), None);
        assert_eq!(feed(&mut w, &mut cum, &[100, 100, 700, 100]), None);
        // Third consecutive hot tick crosses the sustain window.
        assert_eq!(
            feed(&mut w, &mut cum, &[100, 100, 700, 100]),
            Some(Action::Split { shard: 2 })
        );
        // Cooldown: the imbalance persists but no new action fires.
        assert_eq!(feed(&mut w, &mut cum, &[100, 100, 700, 100]), None);
        assert_eq!(feed(&mut w, &mut cum, &[100, 100, 700, 100]), None);
    }

    #[test]
    fn a_single_burst_does_not_trigger() {
        let mut w = LoadWatcher::new(policy(), 3);
        let mut cum = [0u64; 3];
        w.observe(&cum);
        assert_eq!(feed(&mut w, &mut cum, &[800, 100, 100]), None);
        // Balance restored: the streak resets.
        assert_eq!(feed(&mut w, &mut cum, &[334, 333, 333]), None);
        assert_eq!(feed(&mut w, &mut cum, &[800, 100, 100]), None);
        assert_eq!(feed(&mut w, &mut cum, &[800, 100, 100]), None);
        // The reset means this is only tick 3 of the new streak.
        assert_eq!(
            feed(&mut w, &mut cum, &[800, 100, 100]),
            Some(Action::Split { shard: 0 })
        );
    }

    #[test]
    fn idle_ticks_are_ignored_and_decay_streaks() {
        let mut w = LoadWatcher::new(policy(), 2);
        let mut cum = [0u64; 2];
        w.observe(&cum);
        assert_eq!(feed(&mut w, &mut cum, &[900, 100]), None);
        assert_eq!(feed(&mut w, &mut cum, &[900, 100]), None);
        // Near-idle tick: below min_ops_per_tick, shares are noise.
        assert_eq!(feed(&mut w, &mut cum, &[30, 1]), None);
        assert_eq!(feed(&mut w, &mut cum, &[900, 100]), None);
        assert_eq!(feed(&mut w, &mut cum, &[900, 100]), None);
        assert_eq!(
            feed(&mut w, &mut cum, &[900, 100]),
            Some(Action::Split { shard: 0 })
        );
    }

    #[test]
    fn sustained_cold_shard_triggers_a_merge() {
        let mut w = LoadWatcher::new(policy(), 4);
        let mut cum = [0u64; 4];
        w.observe(&cum);
        // Shard 3 serves ~1% — cold but nobody is hot (max share 33%).
        for _ in 0..2 {
            assert_eq!(feed(&mut w, &mut cum, &[330, 330, 330, 10]), None);
        }
        assert_eq!(
            feed(&mut w, &mut cum, &[330, 330, 330, 10]),
            Some(Action::Merge { shard: 3 })
        );
    }

    #[test]
    fn split_takes_priority_over_merge() {
        let mut w = LoadWatcher::new(policy(), 3);
        let mut cum = [0u64; 3];
        w.observe(&cum);
        // Shard 0 hot and shard 2 cold simultaneously.
        for _ in 0..2 {
            assert_eq!(feed(&mut w, &mut cum, &[800, 190, 10]), None);
        }
        assert_eq!(
            feed(&mut w, &mut cum, &[800, 190, 10]),
            Some(Action::Split { shard: 0 })
        );
    }

    #[test]
    fn coldest_recent_reflects_the_last_active_tick() {
        let mut w = LoadWatcher::new(policy(), 4);
        let mut cum = [0u64; 4];
        assert_eq!(w.coldest_recent(0), None, "no traffic observed yet");
        w.observe(&cum);
        feed(&mut w, &mut cum, &[500, 300, 150, 50]);
        assert_eq!(w.coldest_recent(0), Some(3));
        assert_eq!(w.coldest_recent(3), Some(2), "the hot shard is excluded");
        // An idle tick does not overwrite the last useful traffic picture.
        feed(&mut w, &mut cum, &[1, 1, 1, 1]);
        assert_eq!(w.coldest_recent(0), Some(3));
    }

    #[test]
    #[should_panic(expected = "observation arity")]
    fn mismatched_observation_arity_panics() {
        let mut w = LoadWatcher::new(policy(), 4);
        let _ = w.observe(&[0, 0]);
    }
}
