//! `ShardedIndex`: a horizontally partitioned store over any
//! [`ConcurrentIndex`] backend.
//!
//! Each shard is an independent backend instance; a [`Partitioner`] routes
//! every key to exactly one shard, so point operations touch one backend and
//! scale past the internal lock granularity of any single instance. The
//! composite itself implements [`ConcurrentIndex`], which means it drops into
//! every existing harness entry point (`run_concurrent`, the figure binaries,
//! the examples) unchanged — sharding composes with, rather than replaces,
//! the backends.
//!
//! This is a different layer from `gre-traditional`'s internal `Sharded`
//! emulation wrapper: that one builds a *concurrent index out of
//! single-threaded parts* to model OLC behaviour; this one builds a *serving
//! layer out of already-concurrent backends* (learned or traditional), with
//! pluggable partitioning and merged reporting.

use crate::partition::Partitioner;
use gre_core::elastic::ElasticError;
use gre_core::{ConcurrentIndex, IndexMeta, InsertStats, Key, Payload, RangeSpec, StatsSnapshot};
use parking_lot::{RwLock, RwLockReadGuard};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// The key window frozen while a migration is in flight. `lo` is inclusive
/// (`None` = domain minimum), `hi` exclusive (`None` = domain maximum).
#[derive(Debug, Clone, Copy)]
pub struct FrozenRange<K> {
    pub lo: Option<K>,
    pub hi: Option<K>,
    /// Set by [`ShardedIndex::seal_frozen`] once the pipeline queues are
    /// drained and bulk extraction begins: from that point until the commit
    /// or abort, direct (non-pipeline) operations touching the window wait,
    /// because the window's entries are physically in flight between
    /// backends. Before sealing, in-flight pre-freeze work may still touch
    /// the window safely under the old routing.
    pub sealed: bool,
}

impl<K: Key> FrozenRange<K> {
    /// Whether a point key falls inside the frozen window.
    #[inline]
    pub fn contains(&self, key: K) -> bool {
        self.lo.map_or(true, |l| key >= l) && self.hi.map_or(true, |h| key < h)
    }

    /// Whether a scan window `[start, end]` (inclusive end; `None` = the
    /// scan is count-limited and could run arbitrarily far right) can
    /// intersect the frozen window.
    #[inline]
    pub fn intersects_scan(&self, start: K, end: Option<K>) -> bool {
        let reaches_lo = match (self.lo, end) {
            (Some(l), Some(e)) => e >= l,
            _ => true,
        };
        reaches_lo && self.hi.map_or(true, |h| start < h)
    }
}

/// The atomically swappable routing table: which partitioner routes keys,
/// which window (if any) is frozen mid-migration, and the epoch stamp that
/// advances on every committed topology change.
pub(crate) struct RoutingState<K: Key> {
    pub(crate) partitioner: Arc<Partitioner<K>>,
    pub(crate) frozen: Option<FrozenRange<K>>,
    pub(crate) epoch: u64,
}

/// A range- or hash-partitioned store over `N` backend instances.
///
/// Routing state lives behind a reader/writer lock so the elasticity
/// controller can swap the boundary table while traffic is live: every
/// operation routes under a read guard held across its backend call, which
/// makes the controller's write-lock acquisitions (freeze, seal, commit)
/// true grace periods — no operation is ever mid-flight across a swap.
pub struct ShardedIndex<K: Key, B: ConcurrentIndex<K>> {
    routing: RwLock<RoutingState<K>>,
    /// Companion lock/condvar pair for operations that must wait out a
    /// sealed freeze window (the routing lock itself is never waited on
    /// with a predicate). Protocol: waiters re-check the routing state
    /// under this gate; the controller bumps/notifies after releasing the
    /// routing write lock, so the two locks are never held crosswise.
    freeze_gate: Mutex<()>,
    unfrozen: Condvar,
    backends: Vec<B>,
    name: &'static str,
}

impl<K: Key, B: ConcurrentIndex<K>> ShardedIndex<K, B> {
    /// Build from a partitioner and one backend per shard.
    ///
    /// # Panics
    /// If `backends.len()` differs from `partitioner.shards()`.
    pub fn new(partitioner: Partitioner<K>, backends: Vec<B>) -> Self {
        assert_eq!(
            backends.len(),
            partitioner.shards(),
            "one backend per shard required"
        );
        ShardedIndex {
            routing: RwLock::new(RoutingState {
                partitioner: Arc::new(partitioner),
                frozen: None,
                epoch: 0,
            }),
            freeze_gate: Mutex::new(()),
            unfrozen: Condvar::new(),
            backends,
            name: "sharded",
        }
    }

    /// Build `partitioner.shards()` backends from a factory closure (the
    /// closure receives the shard id).
    pub fn from_factory(partitioner: Partitioner<K>, mut factory: impl FnMut(usize) -> B) -> Self {
        let backends = (0..partitioner.shards()).map(&mut factory).collect();
        Self::new(partitioner, backends)
    }

    /// Build a same-topology sibling: a fresh `ShardedIndex` whose shard
    /// boundaries equal this one's *current* routing table, with empty
    /// backends from `factory`. This is how a replication tier constructs
    /// a replica group — every member routes each key to the same shard id,
    /// so per-shard WAL streams from the primary apply 1:1 on the sibling.
    ///
    /// The sibling takes a snapshot of the routing table; it does not track
    /// later topology changes on `self` (live elasticity under replication
    /// is out of scope — see `docs/REPLICATION.md`).
    pub fn sibling_from_factory<B2: ConcurrentIndex<K>>(
        &self,
        factory: impl FnMut(usize) -> B2,
    ) -> ShardedIndex<K, B2> {
        ShardedIndex::from_factory((*self.partitioner()).clone(), factory)
    }

    /// Set the name reported through [`ConcurrentIndex::meta`].
    pub fn with_name(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.backends.len()
    }

    /// The shard `key` routes to under the current routing table.
    #[inline]
    pub fn shard_of(&self, key: K) -> usize {
        self.routing.read().partitioner.shard_of(key)
    }

    /// The backend serving shard `shard`.
    pub fn backend(&self, shard: usize) -> &B {
        &self.backends[shard]
    }

    /// A snapshot of the partitioner in use. The snapshot stays internally
    /// consistent if a topology change commits afterwards (the swap replaces
    /// the `Arc`, it never mutates the shared table), but routing decisions
    /// derived from a stale snapshot may disagree with the live table —
    /// code that routes *writes* must hold the internal routing lock's read
    /// guard across the backend call instead (as every `ConcurrentIndex`
    /// method here does).
    pub fn partitioner(&self) -> Arc<Partitioner<K>> {
        Arc::clone(&self.routing.read().partitioner)
    }

    /// The routing epoch: bumped by every committed topology change.
    pub fn routing_epoch(&self) -> u64 {
        self.routing.read().epoch
    }

    /// The currently frozen window, if a migration is in flight.
    pub fn frozen_range(&self) -> Option<FrozenRange<K>> {
        self.routing.read().frozen
    }

    /// Entry count of every shard, for balance diagnostics.
    pub fn per_shard_lens(&self) -> Vec<usize> {
        self.backends.iter().map(|b| b.len()).collect()
    }

    /// The routing read guard, for callers (the pipeline) that must route a
    /// whole batch and enqueue it under one consistent table.
    pub(crate) fn routing(&self) -> RwLockReadGuard<'_, RoutingState<K>> {
        self.routing.read()
    }

    /// Step 1 of the migration protocol: freeze routing for `[lo, hi)`.
    ///
    /// From the moment this returns, the pipeline refuses new batches that
    /// touch the window (`BackpressureReason::Migrating`) — and because the
    /// freeze takes the routing write lock, every batch admitted before it
    /// is already fully enqueued. In-flight work may still touch the window
    /// under the old routing until [`ShardedIndex::seal_frozen`].
    pub fn freeze_range(&self, lo: Option<K>, hi: Option<K>) -> Result<(), ElasticError> {
        if let (Some(l), Some(h)) = (lo, hi) {
            if l >= h {
                return Err(ElasticError::InvalidRange(
                    "freeze window is empty".to_string(),
                ));
            }
        }
        let mut routing = self.routing.write();
        if routing.frozen.is_some() {
            return Err(ElasticError::AlreadyMigrating);
        }
        routing.frozen = Some(FrozenRange {
            lo,
            hi,
            sealed: false,
        });
        Ok(())
    }

    /// Step 3 of the migration protocol (after the queue drain): mark the
    /// frozen window sealed. Direct operations touching the window now wait
    /// until the commit or abort; the write-lock acquisition doubles as the
    /// grace period for any reader still mid-operation.
    pub fn seal_frozen(&self) -> Result<(), ElasticError> {
        let mut routing = self.routing.write();
        match routing.frozen.as_mut() {
            Some(f) => {
                f.sealed = true;
                Ok(())
            }
            None => Err(ElasticError::Aborted("seal without an active freeze")),
        }
    }

    /// Final step of the migration protocol: atomically install the new
    /// partitioner, clear the freeze, and advance the routing epoch.
    /// Returns the new epoch. Waiters parked on the frozen window resume
    /// under the new table.
    pub fn commit_routing(&self, new: Partitioner<K>) -> Result<u64, ElasticError> {
        if new.shards() != self.backends.len() {
            return Err(ElasticError::InvalidRange(format!(
                "partitioner routes over {} shards, store has {}",
                new.shards(),
                self.backends.len()
            )));
        }
        let epoch = {
            let mut routing = self.routing.write();
            routing.partitioner = Arc::new(new);
            routing.frozen = None;
            routing.epoch += 1;
            routing.epoch
        };
        // Notify after releasing the routing lock so a waiter holding the
        // gate while re-checking routing can never deadlock against us.
        let _gate = self.freeze_gate.lock().expect("freeze gate poisoned");
        self.unfrozen.notify_all();
        Ok(epoch)
    }

    /// Abandon an in-flight freeze, waking any parked waiters. Routing is
    /// left exactly as before [`ShardedIndex::freeze_range`].
    pub fn abort_freeze(&self) {
        {
            let mut routing = self.routing.write();
            routing.frozen = None;
        }
        let _gate = self.freeze_gate.lock().expect("freeze gate poisoned");
        self.unfrozen.notify_all();
    }

    /// Park until the routing state changes (bounded wait; callers loop on
    /// their own predicate). See `freeze_gate` for the lock protocol.
    pub(crate) fn wait_routing_change(&self) {
        let gate = self.freeze_gate.lock().expect("freeze gate poisoned");
        // Re-check under the gate: the unfreeze may have landed between the
        // caller's predicate check and this lock acquisition, in which case
        // its notify already happened and we must not sleep on it.
        if self.routing.read().frozen.is_none() {
            return;
        }
        let _ = self
            .unfrozen
            .wait_timeout(gate, Duration::from_millis(5))
            .expect("freeze gate poisoned");
    }

    /// Routing guard for a point op: waits out a sealed freeze window that
    /// contains `key`, then returns the guard to route and execute under.
    fn route_point(&self, key: K) -> RwLockReadGuard<'_, RoutingState<K>> {
        loop {
            let guard = self.routing.read();
            match guard.frozen {
                Some(f) if f.sealed && f.contains(key) => drop(guard),
                _ => return guard,
            }
            self.wait_routing_change();
        }
    }

    /// Fan-out range scan for unordered (hash) partitioning: every shard may
    /// hold keys from the requested window, so collect up to `count` from
    /// each and k-way merge the per-shard (individually sorted) results.
    /// The merge enforces `spec.end` itself, so backends that ignore the
    /// bound still produce a correctly clipped stitched window.
    fn range_fan_out(&self, spec: RangeSpec<K>, out: &mut Vec<(K, Payload)>) -> usize {
        let mut per_shard: Vec<Vec<(K, Payload)>> = Vec::with_capacity(self.backends.len());
        for b in &self.backends {
            let mut buf = Vec::new();
            b.range(spec, &mut buf);
            per_shard.push(buf);
        }
        let before = out.len();
        let mut cursors = vec![0usize; per_shard.len()];
        while out.len() - before < spec.count {
            let mut min: Option<(usize, K)> = None;
            for (s, buf) in per_shard.iter().enumerate() {
                if let Some(&(k, _)) = buf.get(cursors[s]) {
                    if min.map_or(true, |(_, mk)| k < mk) {
                        min = Some((s, k));
                    }
                }
            }
            match min {
                Some((s, k)) => {
                    if !spec.admits(k) {
                        break;
                    }
                    out.push(per_shard[s][cursors[s]]);
                    cursors[s] += 1;
                }
                None => break,
            }
        }
        out.len() - before
    }
}

impl<K: Key, B: ConcurrentIndex<K>> ConcurrentIndex<K> for ShardedIndex<K, B> {
    /// Refits range boundaries to the loaded keys' CDF, then splits the
    /// (sorted) entries into per-shard loads. Hash partitioning scatters;
    /// every scattered sub-sequence of a sorted slice is itself sorted, so
    /// backend bulk-load preconditions hold either way.
    fn bulk_load(&mut self, entries: &[(K, Payload)]) {
        let routing = self.routing.get_mut();
        let partitioner = Arc::make_mut(&mut routing.partitioner);
        if partitioner.is_ordered() {
            // Stride-sample down to the CDF sketch budget up front so the
            // transient key copy is O(SAMPLE_LIMIT), not O(entries).
            let stride = entries
                .len()
                .div_ceil(crate::partition::SAMPLE_LIMIT)
                .max(1);
            let keys: Vec<K> = entries.iter().step_by(stride).map(|e| e.0).collect();
            // Refit resets segment targets to the identity assignment, so
            // `shard_of` is monotone in the key and the contiguous-slice
            // split below is valid.
            partitioner.refit(&keys);
            let mut start = 0usize;
            for (s, backend) in self.backends.iter_mut().enumerate() {
                let end = if s + 1 < partitioner.shards() {
                    entries.partition_point(|e| partitioner.shard_of(e.0) <= s)
                } else {
                    entries.len()
                };
                backend.bulk_load(&entries[start..end]);
                start = end;
            }
        } else {
            let mut buckets: Vec<Vec<(K, Payload)>> =
                (0..self.backends.len()).map(|_| Vec::new()).collect();
            for &e in entries {
                buckets[partitioner.shard_of(e.0)].push(e);
            }
            for (backend, bucket) in self.backends.iter_mut().zip(&buckets) {
                backend.bulk_load(bucket);
            }
        }
    }

    fn get(&self, key: K) -> Option<Payload> {
        let guard = self.route_point(key);
        self.backends[guard.partitioner.shard_of(key)].get(key)
    }

    /// Batched lookups are grouped per shard and forwarded to each backend's
    /// `get_batch`, so a backend's interleaved override (e.g. ALEX+) is
    /// reached even through the composite. Results land in input order.
    ///
    /// Regrouping is a two-pass counting sort — route every key once
    /// (memoized), prefix-sum the per-shard counts, scatter into one
    /// contiguous scratch buffer — so the cost is O(keys + shards) with a
    /// fixed handful of allocations, instead of the per-key group search
    /// and per-shard buffers a naive regroup pays. Single-shard batches
    /// (every key routed the same way) skip the scatter entirely and
    /// forward `keys` as-is.
    fn get_batch(&self, keys: &[K], out: &mut Vec<Option<Payload>>) {
        out.clear();
        out.resize(keys.len(), None);
        if keys.is_empty() {
            return;
        }
        let shards = self.backends.len();
        if shards == 1 {
            self.backends[0].get_batch(keys, out);
            return;
        }
        // One routing guard for the whole batch; wait out a sealed freeze
        // window that any of the keys falls into.
        let guard = loop {
            let g = self.routing.read();
            match g.frozen {
                Some(f) if f.sealed && keys.iter().any(|&k| f.contains(k)) => drop(g),
                _ => break g,
            }
            self.wait_routing_change();
        };
        let partitioner = &guard.partitioner;
        // Pass 1: route each key once, counting per-shard group sizes.
        let mut routed: Vec<u32> = Vec::with_capacity(keys.len());
        let mut counts: Vec<usize> = vec![0; shards];
        for &key in keys {
            let s = partitioner.shard_of(key);
            routed.push(s as u32);
            counts[s] += 1;
        }
        if counts[routed[0] as usize] == keys.len() {
            // Every key landed on one shard: no regrouping needed.
            self.backends[routed[0] as usize].get_batch(keys, out);
            return;
        }
        // Pass 2: prefix-sum offsets, then scatter keys (and their input
        // positions) into per-shard contiguous runs of one scratch buffer.
        let mut starts = vec![0usize; shards + 1];
        for s in 0..shards {
            starts[s + 1] = starts[s] + counts[s];
        }
        let mut grouped: Vec<(K, usize)> = vec![(keys[0], 0); keys.len()];
        let mut cursors = starts.clone();
        for (i, &key) in keys.iter().enumerate() {
            let s = routed[i] as usize;
            grouped[cursors[s]] = (key, i);
            cursors[s] += 1;
        }
        let mut group_keys: Vec<K> = Vec::with_capacity(keys.len());
        let mut group_results: Vec<Option<Payload>> = Vec::new();
        for s in 0..shards {
            let run = &grouped[starts[s]..starts[s + 1]];
            if run.is_empty() {
                continue;
            }
            group_keys.clear();
            group_keys.extend(run.iter().map(|&(k, _)| k));
            self.backends[s].get_batch(&group_keys, &mut group_results);
            for (&(_, i), result) in run.iter().zip(group_results.drain(..)) {
                out[i] = result;
            }
        }
    }

    fn insert(&self, key: K, value: Payload) -> bool {
        let guard = self.route_point(key);
        self.backends[guard.partitioner.shard_of(key)].insert(key, value)
    }

    /// As atomic as the owning shard's backend: routing adds no extra
    /// critical section, so the trait's atomicity contract is inherited
    /// unchanged from the backend.
    fn update(&self, key: K, value: Payload) -> bool {
        let guard = self.route_point(key);
        self.backends[guard.partitioner.shard_of(key)].update(key, value)
    }

    fn remove(&self, key: K) -> Option<Payload> {
        let guard = self.route_point(key);
        self.backends[guard.partitioner.shard_of(key)].remove(key)
    }

    /// Cross-shard scans are stitched in key order. Range partitioning walks
    /// **segments** sequentially in key order (a shard may serve several
    /// disjoint segments after topology changes, so walking shards would
    /// break ordering); hash partitioning fans out to every shard and
    /// merges. The stitcher enforces both each segment's upper bound and
    /// `spec.end` itself (clipping each sorted tail), so bounded windows are
    /// honored even over backends that ignore the bound. A scan that could
    /// enter a sealed (actively migrating) window waits for the commit —
    /// the pipeline never executes such scans (they are refused at submit),
    /// so only direct callers can park here.
    fn range(&self, spec: RangeSpec<K>, out: &mut Vec<(K, Payload)>) -> usize {
        let guard = loop {
            let g = self.routing.read();
            match g.frozen {
                Some(f) if f.sealed && f.intersects_scan(spec.start, spec.end) => drop(g),
                _ => break g,
            }
            self.wait_routing_change();
        };
        let Some(rp) = guard.partitioner.as_range() else {
            drop(guard);
            return self.range_fan_out(spec, out);
        };
        let before = out.len();
        let mut remaining = spec.count;
        let mut seg = rp.segment_of(spec.start);
        while remaining > 0 && seg < rp.segments() {
            let (seg_lo, seg_hi) = rp.segment_range(seg);
            // Stop once segments start past the end bound.
            if let (Some(lo), Some(end)) = (seg_lo, spec.end) {
                if lo > end {
                    break;
                }
            }
            let start = match seg_lo {
                Some(lo) if lo > spec.start => lo,
                _ => spec.start,
            };
            let at = out.len();
            let sub = RangeSpec {
                start,
                count: remaining,
                end: spec.end,
            };
            self.backends[rp.segment_target(seg)].range(sub, out);
            // The backend may also serve later segments; entries at or past
            // this segment's upper bound belong to those walks, not this one.
            if let Some(hi) = seg_hi {
                while out.len() > at && out.last().is_some_and(|e| e.0 >= hi) {
                    out.pop();
                }
            }
            // Clip overshoot past the end bound; once anything is clipped
            // there, no later segment can contribute.
            let mut end_clipped = false;
            while out.len() > at && out.last().is_some_and(|e| !spec.admits(e.0)) {
                out.pop();
                end_clipped = true;
            }
            if end_clipped {
                break;
            }
            remaining -= out.len() - at;
            seg += 1;
        }
        out.len() - before
    }

    /// Sum of the per-shard entry counts, read **non-atomically**: each
    /// shard is queried in turn with no global quiesce, so while writers are
    /// active the sum may mix before/after states of different shards and
    /// transiently differ from any single serialization of the write stream.
    /// A live **migration** widens the same caveat: between extraction and
    /// the routing commit the moving entries are in neither backend, so the
    /// sum can transiently under-count by up to the moved range's size (it
    /// never double-counts — entries are removed before they are re-inserted).
    /// In a quiesced state (no in-flight writes, no migration) the value is
    /// exact — see `len_is_exact_when_quiesced` here and the post-split/merge
    /// exactness test in `gre-elastic`, which pin this contract.
    fn len(&self) -> usize {
        self.backends.iter().map(|b| b.len()).sum()
    }

    /// Same consistency contract as [`ConcurrentIndex::len`]: non-atomic
    /// per-shard sum, transiently off under live writers or a migration,
    /// exact when quiesced.
    fn memory_usage(&self) -> usize {
        self.backends.iter().map(|b| b.memory_usage()).sum()
    }

    /// Merged statistics across all shards.
    fn stats(&self) -> StatsSnapshot {
        let mut counters = gre_core::OpCounters::default();
        for b in &self.backends {
            counters.merge(&b.stats().counters);
        }
        StatsSnapshot::new(counters)
    }

    fn reset_stats(&self) {
        for b in &self.backends {
            b.reset_stats();
        }
    }

    fn last_insert_stats(&self) -> InsertStats {
        // No global "most recent" insert exists across shards; report the
        // first shard's as a representative sample.
        self.backends
            .first()
            .map(|b| b.last_insert_stats())
            .unwrap_or_default()
    }

    /// Merged metadata: capability flags are the conjunction over shards
    /// (the composite only supports what every backend supports).
    fn meta(&self) -> IndexMeta {
        let mut meta = self
            .backends
            .first()
            .map(|b| b.meta())
            .unwrap_or(IndexMeta {
                name: "sharded",
                learned: false,
                concurrent: true,
                supports_delete: true,
                supports_range: true,
            });
        for b in &self.backends[1..] {
            let m = b.meta();
            meta.learned &= m.learned;
            meta.supports_delete &= m.supports_delete;
            meta.supports_range &= m.supports_range;
        }
        meta.name = self.name;
        meta.concurrent = true;
        meta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::RwLock;
    use std::collections::BTreeMap;

    /// Minimal concurrent backend for unit tests: a BTreeMap behind a lock.
    #[derive(Default)]
    struct MapBackend {
        map: RwLock<BTreeMap<u64, Payload>>,
    }

    impl ConcurrentIndex<u64> for MapBackend {
        fn bulk_load(&mut self, entries: &[(u64, Payload)]) {
            *self.map.get_mut() = entries.iter().copied().collect();
        }
        fn get(&self, key: u64) -> Option<Payload> {
            self.map.read().get(&key).copied()
        }
        fn insert(&self, key: u64, value: Payload) -> bool {
            self.map.write().insert(key, value).is_none()
        }
        fn update(&self, key: u64, value: Payload) -> bool {
            let mut map = self.map.write();
            match map.get_mut(&key) {
                Some(v) => {
                    *v = value;
                    true
                }
                None => false,
            }
        }
        fn remove(&self, key: u64) -> Option<Payload> {
            self.map.write().remove(&key)
        }
        fn range(&self, spec: RangeSpec<u64>, out: &mut Vec<(u64, Payload)>) -> usize {
            let map = self.map.read();
            let before = out.len();
            out.extend(
                map.range(spec.start..)
                    .take(spec.count)
                    .map(|(k, v)| (*k, *v)),
            );
            out.len() - before
        }
        fn len(&self) -> usize {
            self.map.read().len()
        }
        fn memory_usage(&self) -> usize {
            self.map.read().len() * 48
        }
        fn meta(&self) -> IndexMeta {
            IndexMeta {
                name: "map-backend",
                learned: false,
                concurrent: true,
                supports_delete: true,
                supports_range: true,
            }
        }
    }

    fn entries(n: u64) -> Vec<(u64, Payload)> {
        (0..n).map(|i| (i * 7, i)).collect()
    }

    fn sharded(partitioner: Partitioner<u64>) -> ShardedIndex<u64, MapBackend> {
        ShardedIndex::from_factory(partitioner, |_| MapBackend::default())
    }

    #[test]
    fn bulk_load_spreads_and_round_trips_range_scheme() {
        let mut idx = sharded(Partitioner::range(4));
        idx.bulk_load(&entries(8_000));
        assert_eq!(idx.len(), 8_000);
        let lens = idx.per_shard_lens();
        assert_eq!(lens.len(), 4);
        assert!(
            lens.iter().all(|&l| l >= 1_000),
            "range boundaries should spread the load: {lens:?}"
        );
        for i in (0..8_000).step_by(97) {
            assert_eq!(idx.get(i * 7), Some(i));
        }
        assert_eq!(idx.get(1), None);
    }

    #[test]
    fn bulk_load_spreads_and_round_trips_hash_scheme() {
        let mut idx = sharded(Partitioner::hash(4));
        idx.bulk_load(&entries(8_000));
        assert_eq!(idx.len(), 8_000);
        assert!(idx.per_shard_lens().iter().all(|&l| l >= 1_000));
        for i in (0..8_000).step_by(97) {
            assert_eq!(idx.get(i * 7), Some(i));
        }
    }

    #[test]
    fn point_ops_route_consistently() {
        let mut idx = sharded(Partitioner::range(8));
        idx.bulk_load(&entries(4_000));
        assert!(idx.insert(1, 111));
        assert!(!idx.insert(1, 112));
        assert_eq!(idx.get(1), Some(112));
        assert!(idx.update(1, 113));
        assert_eq!(idx.remove(1), Some(113));
        assert!(!idx.update(1, 114), "update after remove must miss");
        assert_eq!(idx.len(), 4_000);
    }

    #[test]
    fn get_batch_routes_per_shard_and_preserves_order() {
        for partitioner in [Partitioner::range(8), Partitioner::hash(8)] {
            let mut idx = sharded(partitioner);
            idx.bulk_load(&entries(4_000));
            let mut keys: Vec<u64> = (0..333u64)
                .map(|i| (i.wrapping_mul(0x9e37_79b9) % 5_000) * 7 + (i % 2))
                .collect();
            keys.push(keys[7]);
            let mut batched = vec![Some(9)]; // stale content must be cleared
            idx.get_batch(&keys, &mut batched);
            let scalar: Vec<_> = keys.iter().map(|&k| idx.get(k)).collect();
            assert_eq!(batched, scalar);
            assert!(batched.iter().any(|r| r.is_some()));
            assert!(batched.iter().any(|r| r.is_none()));
        }
    }

    #[test]
    fn range_scan_stitches_across_shard_boundaries_in_order() {
        for partitioner in [Partitioner::range(8), Partitioner::hash(8)] {
            let mut idx = sharded(partitioner);
            idx.bulk_load(&entries(8_000));
            let mut out = Vec::new();
            let got = idx.range(RangeSpec::new(3 * 7, 5_000), &mut out);
            assert_eq!(got, 5_000);
            assert_eq!(out.len(), 5_000);
            assert_eq!(out[0].0, 21);
            assert_eq!(out.last().unwrap().0, (3 + 4_999) * 7);
            assert!(
                out.windows(2).all(|w| w[0].0 < w[1].0),
                "stitched scan must be in strictly ascending key order"
            );
        }
    }

    #[test]
    fn bounded_range_scan_clips_at_end_across_shards() {
        for partitioner in [Partitioner::range(8), Partitioner::hash(8)] {
            let scheme = partitioner.scheme();
            let mut idx = sharded(partitioner);
            idx.bulk_load(&entries(8_000)); // keys 0, 7, 14, …
                                            // Window [21, 2100]: keys 21..=2100 step 7 → 298 entries, fewer
                                            // than the count limit, so the end bound does the clipping.
            let mut out = Vec::new();
            let got = idx.range(RangeSpec::bounded(21, 2_100, 5_000), &mut out);
            assert_eq!(got, 298, "{scheme}");
            assert_eq!(out.first().unwrap().0, 21);
            assert_eq!(out.last().unwrap().0, 2_100); // 2100 = 300*7 is a stored key
            assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(out.iter().all(|e| (21..=2_100).contains(&e.0)));
            // Count still limits a wide bounded window.
            out.clear();
            assert_eq!(idx.range(RangeSpec::bounded(0, u64::MAX, 10), &mut out), 10);
            // Empty window.
            out.clear();
            assert_eq!(
                idx.range(RangeSpec::bounded(22, 27, 10), &mut out),
                0,
                "{scheme}"
            );
        }
    }

    #[test]
    fn len_is_exact_when_quiesced() {
        // The trait impl documents len() as approximate only while writers
        // are in flight; this pins the exactness half of that contract:
        // after every write completes, the non-atomic per-shard sum must
        // equal the true entry count.
        let mut idx = sharded(Partitioner::range(4));
        idx.bulk_load(&entries(4_000));
        let idx = std::sync::Arc::new(idx);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let idx = std::sync::Arc::clone(&idx);
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        // Fresh keys (existing keys are multiples of 7).
                        idx.insert(1_000_000 + t * 1_000_000 + i * 7 + 1, i);
                    }
                    for i in 0..100u64 {
                        idx.remove(1_000_000 + t * 1_000_000 + i * 7 + 1);
                    }
                });
            }
        });
        // Quiesced: all writer threads joined by scope exit.
        assert_eq!(idx.len(), 4_000 + 4 * (1_000 - 100));
        assert_eq!(idx.per_shard_lens().iter().sum::<usize>(), idx.len());
    }

    #[test]
    fn range_scan_exhausts_the_tail() {
        let mut idx = sharded(Partitioner::range(4));
        idx.bulk_load(&entries(1_000));
        let mut out = Vec::new();
        // Ask for more than remains past the start key.
        let got = idx.range(RangeSpec::new(995 * 7, 100), &mut out);
        assert_eq!(got, 5);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn merged_reporting() {
        let mut idx = sharded(Partitioner::range(4)).with_name("sharded(map,4)");
        idx.bulk_load(&entries(2_000));
        assert!(idx.memory_usage() >= 2_000 * 48);
        let meta = idx.meta();
        assert_eq!(meta.name, "sharded(map,4)");
        assert!(meta.concurrent);
        assert!(meta.supports_delete);
        assert!(meta.supports_range);
        assert!(!meta.learned);
        assert_eq!(idx.num_shards(), 4);
        assert_eq!(idx.partitioner().scheme(), "range");
        // Stats merge across shards (MapBackend reports none — defaults).
        assert_eq!(idx.stats().counters.inserts, 0);
        idx.reset_stats();
        assert_eq!(idx.last_insert_stats(), InsertStats::default());
    }

    #[test]
    fn empty_sharded_index_behaves() {
        let idx = sharded(Partitioner::range(4));
        assert_eq!(idx.len(), 0);
        assert!(idx.is_empty());
        assert_eq!(idx.get(5), None);
        let mut out = Vec::new();
        assert_eq!(idx.range(RangeSpec::new(0, 10), &mut out), 0);
    }

    #[test]
    #[should_panic(expected = "one backend per shard")]
    fn mismatched_backend_count_panics() {
        let _ = ShardedIndex::new(Partitioner::<u64>::range(4), vec![MapBackend::default()]);
    }

    #[test]
    fn boxed_dyn_backends_work() {
        // The gre-core Box forwarding impl in action: heterogeneous-capable
        // dyn backends under one sharded store.
        let partitioner = Partitioner::<u64>::hash(3);
        let mut idx: ShardedIndex<u64, Box<dyn ConcurrentIndex<u64>>> =
            ShardedIndex::from_factory(partitioner, |_| {
                Box::new(MapBackend::default()) as Box<dyn ConcurrentIndex<u64>>
            });
        idx.bulk_load(&entries(1_000));
        assert_eq!(idx.len(), 1_000);
        assert!(idx.insert(1, 1));
        assert_eq!(idx.get(1), Some(1));
    }
}
