//! The lock-free metrics registry: static-id counters striped per worker,
//! per-shard gauges, and concurrent log-linear histograms.
//!
//! Everything on the recording side is a relaxed atomic operation addressed
//! by a static enum id — no string hashing, no locking, no allocation. The
//! layout is sized once at construction from the serving topology (shard
//! count, worker count) and never changes, so hot-path accesses are plain
//! array indexing.
//!
//! Counters are *striped*: each worker owns a cache-line-padded cell per
//! counter id, so concurrent increments from different workers never bounce
//! the same line. [`MetricsRegistry::snapshot`] folds the stripes into one
//! consistent-enough view (relaxed reads; exact once writers quiesce).
//!
//! Histograms ([`AtomicHistogram`]) mirror the exact bucket layout of
//! [`gre_core::latency::LatencyHistogram`] via the public
//! [`gre_core::latency::bucket_index`] mapping, and snapshot
//! back into a `LatencyHistogram` so every existing percentile/summary path
//! works on telemetry data unchanged.

use gre_core::latency::{bucket_index, bucket_span, LatencyHistogram, BUCKET_COUNT};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Monotonic event counters, one logical value per id (striped per worker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterId {
    /// Operations accepted into the pipeline by `submit`/`try_submit`.
    OpsSubmitted,
    /// Operations whose response has been produced by a shard worker.
    OpsCompleted,
    /// Batches accepted by `submit`/`try_submit`.
    BatchesSubmitted,
    /// Batches bounced by `try_submit` because a shard queue was full.
    BatchesRejected,
    /// Shard-local sub-batches executed by workers.
    SubBatchesExecuted,
    /// Get operations served through the batched `get_batch` fast path.
    BatchedGetOps,
    /// Point lookups that found their key.
    GetHits,
    /// Inserts that created a new key.
    InsertedNew,
    /// Updates that found their key.
    Updated,
    /// Removes that found their key.
    Removed,
    /// Keys returned by range scans.
    ScannedKeys,
    /// Range scans executed.
    RangeScans,
    /// Operations answered with a typed error (e.g. unsupported).
    OpErrors,
    /// Spans recorded into the trace ring.
    TraceSpans,
    /// Spans dropped because a ring slot was mid-write (writer collision).
    TraceDropped,
    /// Write-ahead-log records appended (one per durably logged group).
    WalAppends,
    /// Write-ahead-log fsync (durability) barriers issued.
    WalFsyncs,
    /// Operations replayed from the WAL during crash recovery.
    RecoveryReplayedOps,
    /// Hot-segment splits the elasticity controller started.
    SplitsStarted,
    /// Hot-segment splits that committed a routing swap.
    SplitsCompleted,
    /// Cold-segment merges the elasticity controller started.
    MergesStarted,
    /// Cold-segment merges that committed a routing swap.
    MergesCompleted,
    /// Live entries moved between shards by migrations.
    KeysMigrated,
    /// Microseconds routing was frozen for a migrating range (summed over
    /// migrations; only traffic in the moved range observes the pause).
    MigrationPauseMicros,
    /// Reads rejected by SLO admission control (every eligible replica and
    /// the fallback were over their latency target).
    ReadsShed,
    /// Reads redirected away from their policy-chosen replica because it
    /// was over its latency SLO.
    ReadsRedirected,
    /// Operations applied on read replicas from the shipped WAL stream.
    ReplicaAppliedOps,
}

impl CounterId {
    /// All counter ids, in export order.
    pub const ALL: [CounterId; 27] = [
        CounterId::OpsSubmitted,
        CounterId::OpsCompleted,
        CounterId::BatchesSubmitted,
        CounterId::BatchesRejected,
        CounterId::SubBatchesExecuted,
        CounterId::BatchedGetOps,
        CounterId::GetHits,
        CounterId::InsertedNew,
        CounterId::Updated,
        CounterId::Removed,
        CounterId::ScannedKeys,
        CounterId::RangeScans,
        CounterId::OpErrors,
        CounterId::TraceSpans,
        CounterId::TraceDropped,
        CounterId::WalAppends,
        CounterId::WalFsyncs,
        CounterId::RecoveryReplayedOps,
        CounterId::SplitsStarted,
        CounterId::SplitsCompleted,
        CounterId::MergesStarted,
        CounterId::MergesCompleted,
        CounterId::KeysMigrated,
        CounterId::MigrationPauseMicros,
        CounterId::ReadsShed,
        CounterId::ReadsRedirected,
        CounterId::ReplicaAppliedOps,
    ];

    /// Number of counter ids.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index (position in [`CounterId::ALL`]).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Metric name in Prometheus/JSON exports (without the `gre_` prefix).
    pub fn name(self) -> &'static str {
        match self {
            CounterId::OpsSubmitted => "ops_submitted",
            CounterId::OpsCompleted => "ops_completed",
            CounterId::BatchesSubmitted => "batches_submitted",
            CounterId::BatchesRejected => "batches_rejected",
            CounterId::SubBatchesExecuted => "sub_batches_executed",
            CounterId::BatchedGetOps => "batched_get_ops",
            CounterId::GetHits => "get_hits",
            CounterId::InsertedNew => "inserted_new",
            CounterId::Updated => "updated",
            CounterId::Removed => "removed",
            CounterId::ScannedKeys => "scanned_keys",
            CounterId::RangeScans => "range_scans",
            CounterId::OpErrors => "op_errors",
            CounterId::TraceSpans => "trace_spans",
            CounterId::TraceDropped => "trace_dropped",
            CounterId::WalAppends => "wal_appends",
            CounterId::WalFsyncs => "wal_fsyncs",
            CounterId::RecoveryReplayedOps => "recovery_replayed_ops",
            CounterId::SplitsStarted => "splits_started",
            CounterId::SplitsCompleted => "splits_completed",
            CounterId::MergesStarted => "merges_started",
            CounterId::MergesCompleted => "merges_completed",
            CounterId::KeysMigrated => "keys_migrated",
            CounterId::MigrationPauseMicros => "migration_pause_micros",
            CounterId::ReadsShed => "reads_shed",
            CounterId::ReadsRedirected => "reads_redirected",
            CounterId::ReplicaAppliedOps => "replica_applied_ops",
        }
    }

    /// One-line help string for the Prometheus export.
    pub fn help(self) -> &'static str {
        match self {
            CounterId::OpsSubmitted => "Operations accepted into the pipeline",
            CounterId::OpsCompleted => "Operations completed by shard workers",
            CounterId::BatchesSubmitted => "Batches accepted by submit/try_submit",
            CounterId::BatchesRejected => "Batches bounced by try_submit backpressure",
            CounterId::SubBatchesExecuted => "Shard-local sub-batches executed",
            CounterId::BatchedGetOps => "Gets served through the batched get_batch path",
            CounterId::GetHits => "Point lookups that found their key",
            CounterId::InsertedNew => "Inserts that created a new key",
            CounterId::Updated => "Updates that found their key",
            CounterId::Removed => "Removes that found their key",
            CounterId::ScannedKeys => "Keys returned by range scans",
            CounterId::RangeScans => "Range scans executed",
            CounterId::OpErrors => "Operations answered with a typed error",
            CounterId::TraceSpans => "Spans recorded into the trace ring",
            CounterId::TraceDropped => "Spans dropped on trace-slot collision",
            CounterId::WalAppends => "WAL records appended (one per logged group)",
            CounterId::WalFsyncs => "WAL fsync durability barriers issued",
            CounterId::RecoveryReplayedOps => "Operations replayed from the WAL during recovery",
            CounterId::SplitsStarted => "Hot-segment splits started",
            CounterId::SplitsCompleted => "Hot-segment splits that committed a routing swap",
            CounterId::MergesStarted => "Cold-segment merges started",
            CounterId::MergesCompleted => "Cold-segment merges that committed a routing swap",
            CounterId::KeysMigrated => "Live entries moved between shards by migrations",
            CounterId::MigrationPauseMicros => {
                "Microseconds routing was frozen for migrating ranges"
            }
            CounterId::ReadsShed => "Reads rejected by SLO admission control",
            CounterId::ReadsRedirected => "Reads redirected off an SLO-breaching replica",
            CounterId::ReplicaAppliedOps => "Operations applied on replicas from the WAL stream",
        }
    }
}

/// Per-shard instantaneous level gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeId {
    /// Sub-batches currently queued or executing on the shard.
    QueueDepth,
    /// Operations enqueued on the shard whose responses are not yet written.
    InFlightOps,
    /// Worst replica apply lag on this shard, in WAL sequence numbers
    /// (primary's last committed seq minus the slowest replica's applied
    /// watermark). Published by the shipping loop.
    ReplicaLag,
}

impl GaugeId {
    /// All gauge ids, in export order.
    pub const ALL: [GaugeId; 3] = [
        GaugeId::QueueDepth,
        GaugeId::InFlightOps,
        GaugeId::ReplicaLag,
    ];
    /// Number of gauge ids.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index (position in [`GaugeId::ALL`]).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Metric name in Prometheus/JSON exports (without the `gre_` prefix).
    pub fn name(self) -> &'static str {
        match self {
            GaugeId::QueueDepth => "shard_queue_depth",
            GaugeId::InFlightOps => "shard_inflight_ops",
            GaugeId::ReplicaLag => "shard_replica_lag",
        }
    }
}

/// Per-shard value distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHistId {
    /// Operations per shard-local sub-batch.
    SubBatchSize,
    /// Nanoseconds a sub-batch waited between enqueue and worker dequeue.
    QueueWaitNs,
    /// Nanoseconds a worker spent executing a sub-batch.
    ServiceNs,
}

impl ShardHistId {
    /// All per-shard histogram ids, in export order.
    pub const ALL: [ShardHistId; 3] = [
        ShardHistId::SubBatchSize,
        ShardHistId::QueueWaitNs,
        ShardHistId::ServiceNs,
    ];
    /// Number of per-shard histogram ids.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index (position in [`ShardHistId::ALL`]).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Metric name in Prometheus/JSON exports (without the `gre_` prefix).
    pub fn name(self) -> &'static str {
        match self {
            ShardHistId::SubBatchSize => "sub_batch_size",
            ShardHistId::QueueWaitNs => "queue_wait_ns",
            ShardHistId::ServiceNs => "service_ns",
        }
    }
}

/// Process-wide value distributions (not per shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalHistId {
    /// `Session` in-flight window occupancy sampled at each submit.
    SessionWindow,
    /// Operations per driver-submitted batch.
    BatchOps,
    /// Nanoseconds a replica spent applying one shipped WAL record.
    ReplicaApplyNs,
}

impl GlobalHistId {
    /// All global histogram ids, in export order.
    pub const ALL: [GlobalHistId; 3] = [
        GlobalHistId::SessionWindow,
        GlobalHistId::BatchOps,
        GlobalHistId::ReplicaApplyNs,
    ];
    /// Number of global histogram ids.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index (position in [`GlobalHistId::ALL`]).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Metric name in Prometheus/JSON exports (without the `gre_` prefix).
    pub fn name(self) -> &'static str {
        match self {
            GlobalHistId::SessionWindow => "session_window",
            GlobalHistId::BatchOps => "batch_ops",
            GlobalHistId::ReplicaApplyNs => "replica_apply_ns",
        }
    }
}

/// One atomic counter cell padded to a cache line so neighbouring cells
/// (other counters of the same stripe, other stripes) never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedI64(AtomicI64);

/// One worker's private row of counter cells. All increments are relaxed —
/// counters are monotone event counts, not synchronization.
#[derive(Debug)]
pub struct CounterStripe {
    cells: [PaddedU64; CounterId::COUNT],
}

impl CounterStripe {
    fn new() -> CounterStripe {
        CounterStripe {
            cells: Default::default(),
        }
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        self.cells[id.index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one to a counter.
    #[inline]
    pub fn inc(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Current value of this stripe's cell (not the registry-wide total).
    pub fn get(&self, id: CounterId) -> u64 {
        self.cells[id.index()].0.load(Ordering::Relaxed)
    }
}

/// A concurrent log-linear histogram sharing the bucket layout of
/// [`LatencyHistogram`].
///
/// Recording is one relaxed `fetch_add` on the value's bucket (plus count
/// and sum upkeep). [`snapshot`](AtomicHistogram::snapshot) rebuilds a
/// `LatencyHistogram` by replaying each bucket at its midpoint: percentiles
/// are exact to bucket resolution (~3%), mean/min/max carry the same
/// representative-value approximation.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    pub fn new() -> AtomicHistogram {
        AtomicHistogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of recorded values (wraps after ~584 years of nanoseconds).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Rebuild a [`LatencyHistogram`] from the current bucket counts.
    pub fn snapshot(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for (b, cell) in self.buckets.iter().enumerate() {
            let n = cell.load(Ordering::Relaxed);
            if n > 0 {
                let (low, width) = bucket_span(b);
                h.record_n(low + width / 2, n);
            }
        }
        h
    }
}

/// All per-shard telemetry state: gauges, a dedicated completed-ops
/// counter (the live load signal a rebalancer would watch), and the
/// per-shard histograms.
#[derive(Debug)]
pub struct ShardScope {
    gauges: [PaddedI64; GaugeId::COUNT],
    ops_completed: PaddedU64,
    hists: [AtomicHistogram; ShardHistId::COUNT],
}

impl ShardScope {
    fn new() -> ShardScope {
        ShardScope {
            gauges: Default::default(),
            ops_completed: PaddedU64::default(),
            hists: [
                AtomicHistogram::new(),
                AtomicHistogram::new(),
                AtomicHistogram::new(),
            ],
        }
    }

    /// Move a gauge by `delta` (relaxed).
    #[inline]
    pub fn gauge_add(&self, id: GaugeId, delta: i64) {
        self.gauges[id.index()]
            .0
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Current gauge level.
    pub fn gauge(&self, id: GaugeId) -> i64 {
        self.gauges[id.index()].0.load(Ordering::Relaxed)
    }

    /// Add `n` completed operations to this shard's load counter.
    #[inline]
    pub fn add_ops_completed(&self, n: u64) {
        self.ops_completed.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Operations completed on this shard since construction.
    pub fn ops_completed(&self) -> u64 {
        self.ops_completed.0.load(Ordering::Relaxed)
    }

    /// One of this shard's histograms.
    #[inline]
    pub fn hist(&self, id: ShardHistId) -> &AtomicHistogram {
        &self.hists[id.index()]
    }
}

/// The registry: sized once from the serving topology, then written with
/// relaxed atomics only.
#[derive(Debug)]
pub struct MetricsRegistry {
    stripes: Box<[CounterStripe]>,
    shards: Box<[ShardScope]>,
    globals: [AtomicHistogram; GlobalHistId::COUNT],
}

impl MetricsRegistry {
    /// A registry for `shards` shards written by up to `writers` concurrent
    /// workers (each worker gets a private counter stripe; both are clamped
    /// to at least 1).
    pub fn new(shards: usize, writers: usize) -> MetricsRegistry {
        MetricsRegistry {
            stripes: (0..writers.max(1)).map(|_| CounterStripe::new()).collect(),
            shards: (0..shards.max(1)).map(|_| ShardScope::new()).collect(),
            globals: [
                AtomicHistogram::new(),
                AtomicHistogram::new(),
                AtomicHistogram::new(),
            ],
        }
    }

    /// The counter stripe of `writer` (wrapped modulo stripe count, so any
    /// thread id is a valid writer id).
    #[inline]
    pub fn stripe(&self, writer: usize) -> &CounterStripe {
        &self.stripes[writer % self.stripes.len()]
    }

    /// Per-shard telemetry scope (panics on out-of-range shard).
    #[inline]
    pub fn shard(&self, shard: usize) -> &ShardScope {
        &self.shards[shard]
    }

    /// Number of shard scopes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// A process-wide histogram.
    #[inline]
    pub fn global(&self, id: GlobalHistId) -> &AtomicHistogram {
        &self.globals[id.index()]
    }

    /// Registry-wide counter total (sum over stripes).
    pub fn counter(&self, id: CounterId) -> u64 {
        self.stripes.iter().map(|s| s.get(id)).sum()
    }

    /// Fold the live state into an owned snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = [0u64; CounterId::COUNT];
        for (i, c) in counters.iter_mut().enumerate() {
            *c = self.counter(CounterId::ALL[i]);
        }
        let shards = self
            .shards
            .iter()
            .map(|s| {
                let mut gauges = [0i64; GaugeId::COUNT];
                for (i, g) in gauges.iter_mut().enumerate() {
                    *g = s.gauge(GaugeId::ALL[i]);
                }
                ShardSnapshot {
                    gauges,
                    ops_completed: s.ops_completed(),
                    hists: ShardHistId::ALL.map(|id| s.hist(id).snapshot()),
                }
            })
            .collect();
        MetricsSnapshot {
            counters,
            shards,
            globals: GlobalHistId::ALL.map(|id| self.global(id).snapshot()),
        }
    }
}

/// Owned point-in-time view of one shard's telemetry.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    gauges: [i64; GaugeId::COUNT],
    /// Operations completed on this shard since construction.
    pub ops_completed: u64,
    hists: [LatencyHistogram; ShardHistId::COUNT],
}

impl ShardSnapshot {
    /// Gauge level at snapshot time.
    pub fn gauge(&self, id: GaugeId) -> i64 {
        self.gauges[id.index()]
    }

    /// Per-shard histogram at snapshot time.
    pub fn hist(&self, id: ShardHistId) -> &LatencyHistogram {
        &self.hists[id.index()]
    }
}

/// Owned point-in-time view of the whole registry, consumed by the
/// exporters in [`crate::export`].
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    counters: [u64; CounterId::COUNT],
    /// One snapshot per shard, indexed by shard id.
    pub shards: Vec<ShardSnapshot>,
    globals: [LatencyHistogram; GlobalHistId::COUNT],
}

impl MetricsSnapshot {
    /// Registry-wide counter total at snapshot time.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.index()]
    }

    /// A process-wide histogram at snapshot time.
    pub fn global(&self, id: GlobalHistId) -> &LatencyHistogram {
        &self.globals[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_ids_are_dense_and_named() {
        for (i, id) in CounterId::ALL.iter().enumerate() {
            assert_eq!(id.index(), i);
            assert!(!id.name().is_empty());
            assert!(!id.help().is_empty());
        }
        for (i, id) in GaugeId::ALL.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
        for (i, id) in ShardHistId::ALL.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
        for (i, id) in GlobalHistId::ALL.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn stripes_fold_into_totals() {
        let reg = MetricsRegistry::new(2, 3);
        reg.stripe(0).add(CounterId::OpsCompleted, 10);
        reg.stripe(1).add(CounterId::OpsCompleted, 5);
        reg.stripe(2).inc(CounterId::OpsCompleted);
        // Writer ids wrap modulo the stripe count.
        reg.stripe(3).add(CounterId::OpsCompleted, 4);
        assert_eq!(reg.counter(CounterId::OpsCompleted), 20);
        assert_eq!(reg.stripe(0).get(CounterId::OpsCompleted), 14);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(CounterId::OpsCompleted), 20);
        assert_eq!(snap.counter(CounterId::OpErrors), 0);
    }

    #[test]
    fn gauges_and_shard_counters_track_levels() {
        let reg = MetricsRegistry::new(2, 1);
        reg.shard(0).gauge_add(GaugeId::QueueDepth, 3);
        reg.shard(0).gauge_add(GaugeId::QueueDepth, -1);
        reg.shard(1).gauge_add(GaugeId::InFlightOps, 7);
        reg.shard(1).add_ops_completed(42);
        assert_eq!(reg.shard(0).gauge(GaugeId::QueueDepth), 2);
        assert_eq!(reg.shard(1).gauge(GaugeId::QueueDepth), 0);
        assert_eq!(reg.shard(1).ops_completed(), 42);
        let snap = reg.snapshot();
        assert_eq!(snap.shards[0].gauge(GaugeId::QueueDepth), 2);
        assert_eq!(snap.shards[1].gauge(GaugeId::InFlightOps), 7);
        assert_eq!(snap.shards[1].ops_completed, 42);
    }

    #[test]
    fn atomic_histogram_snapshot_matches_percentiles() {
        let h = AtomicHistogram::new();
        let mut reference = LatencyHistogram::new();
        for v in (1..=10_000u64).map(|i| i * 37) {
            h.record(v);
            reference.record(v);
        }
        assert_eq!(h.count(), 10_000);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 10_000);
        for p in [0.5, 0.9, 0.99] {
            let a = snap.percentile(p) as f64;
            let b = reference.percentile(p) as f64;
            assert!((a - b).abs() / b < 0.05, "p{p}: snapshot {a} vs direct {b}");
        }
        // The exact sum survives even though the snapshot mean is bucketed.
        assert_eq!(h.sum(), (1..=10_000u64).map(|i| i * 37).sum::<u64>());
    }

    #[test]
    fn atomic_histogram_is_concurrency_safe() {
        let h = std::sync::Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..25_000u64 {
                        h.record(t * 1_000 + i % 997);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 100_000);
        assert_eq!(h.snapshot().count(), 100_000);
    }
}
