//! Key-space partitioners: the `key -> shard` maps of the serving layer.
//!
//! Two schemes, matching the two failure modes of partitioned serving:
//!
//! * [`RangePartitioner`] — contiguous key ranges with boundaries placed at
//!   the quantiles of a sampled key CDF, so an arbitrarily skewed key
//!   *distribution* still spreads evenly across shards. Keeps shards ordered
//!   by key, which lets cross-shard range scans visit shards sequentially.
//! * [`HashPartitioner`] — a mixed hash of the key, for *access* skew
//!   resistance: a hot contiguous key region (e.g. append-mostly inserts at
//!   the domain tail) is spread over all shards instead of hammering one.
//!   Range scans lose shard locality and must fan out to every shard.

use gre_core::Key;

/// Cap on the number of CDF sample points used to fit range boundaries.
/// Quantile placement needs only a coarse CDF sketch; sampling keeps
/// boundary fitting O(SAMPLE_LIMIT log SAMPLE_LIMIT) even for huge loads.
pub const SAMPLE_LIMIT: usize = 4096;

/// Partitioning scheme selector: the configuration-surface counterpart of
/// [`Partitioner`] (which additionally carries fitted state). Used by typed
/// builders — e.g. `IndexBuilder::backend("alex+")?.partitioner(Scheme::Hash)`
/// in `gre-bench` — to pick a scheme before the shard count is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scheme {
    /// Contiguous key ranges, boundaries fitted to the loaded key CDF.
    #[default]
    Range,
    /// splitmix64 hash of the key: access-skew resistant, fan-out scans.
    Hash,
}

impl Scheme {
    /// Instantiate a partitioner of this scheme over `shards` shards.
    pub fn partitioner<K: Key>(self, shards: usize) -> Partitioner<K> {
        match self {
            Scheme::Range => Partitioner::range(shards),
            Scheme::Hash => Partitioner::hash(shards),
        }
    }

    /// Scheme name as used in display names and CLI specs.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Range => "range",
            Scheme::Hash => "hash",
        }
    }

    /// Parse a scheme name (the inverse of [`Scheme::name`]).
    pub fn parse(s: &str) -> Option<Scheme> {
        match s.trim().to_ascii_lowercase().as_str() {
            "range" => Some(Scheme::Range),
            "hash" => Some(Scheme::Hash),
            _ => None,
        }
    }
}

/// A `key -> shard` map over a fixed number of shards.
#[derive(Debug, Clone)]
pub enum Partitioner<K: Key> {
    Range(RangePartitioner<K>),
    Hash(HashPartitioner),
}

impl<K: Key> Partitioner<K> {
    /// Range partitioner with no fitted boundaries yet: every key routes to
    /// shard 0 until [`Partitioner::refit`] (called by `ShardedIndex`'s bulk
    /// load) derives boundaries from actual keys.
    pub fn range(shards: usize) -> Self {
        Partitioner::Range(RangePartitioner::unfitted(shards))
    }

    /// Range partitioner with boundaries fitted to the CDF of `samples`.
    pub fn range_from_samples(samples: &[K], shards: usize) -> Self {
        Partitioner::Range(RangePartitioner::from_samples(samples, shards))
    }

    /// Hash partitioner over `shards` shards.
    pub fn hash(shards: usize) -> Self {
        Partitioner::Hash(HashPartitioner::new(shards))
    }

    /// Number of shards this partitioner routes over.
    pub fn shards(&self) -> usize {
        match self {
            Partitioner::Range(p) => p.shards,
            Partitioner::Hash(p) => p.shards,
        }
    }

    /// The shard `key` routes to. Always `< self.shards()`.
    #[inline]
    pub fn shard_of(&self, key: K) -> usize {
        match self {
            Partitioner::Range(p) => p.shard_of(key),
            Partitioner::Hash(p) => p.shard_of(key),
        }
    }

    /// Whether shard order follows key order (true for range partitioning).
    /// Ordered partitioners support sequential cross-shard range scans;
    /// unordered ones require a full fan-out merge.
    pub fn is_ordered(&self) -> bool {
        matches!(self, Partitioner::Range(_))
    }

    /// Refit the partitioner to a fresh key sample. A no-op for hash
    /// partitioning; for range partitioning this re-derives the quantile
    /// boundaries. Must only be called while no keys are stored under the
    /// old boundaries (i.e. at bulk-load time).
    pub fn refit(&mut self, samples: &[K]) {
        if let Partitioner::Range(p) = self {
            *p = RangePartitioner::from_samples(samples, p.shards);
        }
    }

    /// Human-readable scheme name for reporting.
    pub fn scheme(&self) -> &'static str {
        match self {
            Partitioner::Range(_) => "range",
            Partitioner::Hash(_) => "hash",
        }
    }
}

/// Range partitioning: shard `i` owns keys in `[boundaries[i-1], boundaries[i])`
/// (shard 0 owns everything below `boundaries[0]`, the last shard everything
/// from the last boundary up).
#[derive(Debug, Clone)]
pub struct RangePartitioner<K> {
    /// `boundaries[i]` is the smallest key owned by shard `i + 1`; strictly
    /// increasing, at most `shards - 1` long (shorter when the sample had
    /// too few distinct keys, leaving trailing shards empty).
    boundaries: Vec<K>,
    shards: usize,
}

impl<K: Key> RangePartitioner<K> {
    /// A partitioner with no boundaries: all keys route to shard 0.
    pub fn unfitted(shards: usize) -> Self {
        RangePartitioner {
            boundaries: Vec::new(),
            shards: shards.max(1),
        }
    }

    /// Fit boundaries at the quantiles of the sampled key CDF so each shard
    /// owns an (approximately) equal share of the observed keys.
    pub fn from_samples(samples: &[K], shards: usize) -> Self {
        let shards = shards.max(1);
        // Stride-sample to the CDF sketch budget, then sort the sketch.
        let stride = samples.len().div_ceil(SAMPLE_LIMIT).max(1);
        let mut sketch: Vec<K> = samples.iter().step_by(stride).copied().collect();
        sketch.sort_unstable();

        let mut boundaries = Vec::with_capacity(shards.saturating_sub(1));
        if sketch.len() >= shards && shards > 1 {
            for s in 1..shards {
                boundaries.push(sketch[s * sketch.len() / shards]);
            }
            boundaries.dedup();
        }
        RangePartitioner { boundaries, shards }
    }

    /// Fitted boundary keys (for diagnostics and tests).
    pub fn boundaries(&self) -> &[K] {
        &self.boundaries
    }

    #[inline]
    pub fn shard_of(&self, key: K) -> usize {
        self.boundaries.partition_point(|b| *b <= key)
    }
}

/// Hash partitioning via a 64-bit finalizer (splitmix64) over the key's
/// radix bytes: adjacent keys land on unrelated shards.
#[derive(Debug, Clone)]
pub struct HashPartitioner {
    shards: usize,
}

impl HashPartitioner {
    pub fn new(shards: usize) -> Self {
        HashPartitioner {
            shards: shards.max(1),
        }
    }

    #[inline]
    pub fn shard_of<K: Key>(&self, key: K) -> usize {
        let x = u64::from_be_bytes(key.to_radix_bytes());
        (splitmix64(x) % self.shards as u64) as usize
    }
}

/// The splitmix64 finalizer: full-avalanche mixing of a 64-bit word.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unfitted_range_routes_everything_to_shard_zero() {
        let p = Partitioner::<u64>::range(8);
        assert_eq!(p.shards(), 8);
        assert!(p.is_ordered());
        assert_eq!(p.scheme(), "range");
        for k in [0u64, 1, 1 << 40, u64::MAX] {
            assert_eq!(p.shard_of(k), 0);
        }
    }

    #[test]
    fn range_boundaries_track_the_sampled_cdf() {
        // Uniform keys: quantile boundaries split the domain evenly.
        let keys: Vec<u64> = (0..10_000u64).collect();
        let p = RangePartitioner::from_samples(&keys, 4);
        assert_eq!(p.boundaries().len(), 3);
        let mut counts = [0usize; 4];
        for &k in &keys {
            counts[p.shard_of(k)] += 1;
        }
        for c in counts {
            assert!(
                (2_000..=3_000).contains(&c),
                "uniform keys should spread evenly, got {counts:?}"
            );
        }
    }

    #[test]
    fn range_boundaries_adapt_to_skew() {
        // 90% of keys in a narrow band: quantiles put most boundaries there.
        let mut keys: Vec<u64> = (0..9_000u64).map(|i| 1_000_000 + i).collect();
        keys.extend((0..1_000u64).map(|i| i * 1_000_000_000));
        let p = RangePartitioner::from_samples(&keys, 8);
        let mut counts = vec![0usize; 8];
        for &k in &keys {
            counts[p.shard_of(k)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(
            max <= keys.len() / 4,
            "no shard should own more than ~2x its fair share: {counts:?}"
        );
    }

    #[test]
    fn range_shard_of_is_monotone_in_the_key() {
        let keys: Vec<u64> = (0..5_000u64).map(|i| i * 31).collect();
        let p = RangePartitioner::from_samples(&keys, 7);
        let mut prev = 0usize;
        for &k in &keys {
            let s = p.shard_of(k);
            assert!(s >= prev, "range partitioning must preserve key order");
            assert!(s < 7);
            prev = s;
        }
    }

    #[test]
    fn degenerate_samples_leave_trailing_shards_empty() {
        // All-equal keys: boundaries collapse to at most one after dedup,
        // and every key still routes to a single valid shard.
        let keys = vec![42u64; 100];
        let p = RangePartitioner::from_samples(&keys, 4);
        assert!(p.boundaries().len() <= 1);
        assert!(p.shard_of(42) < 4);
        // Fewer samples than shards: also degenerate, still routable.
        let p = RangePartitioner::from_samples(&[1u64, 2], 8);
        for k in 0..10u64 {
            assert!(p.shard_of(k) < 8);
        }
    }

    #[test]
    fn hash_spreads_contiguous_keys() {
        let p = HashPartitioner::new(8);
        let mut counts = [0usize; 8];
        for k in 0..8_000u64 {
            counts[p.shard_of(k)] += 1;
        }
        for c in counts {
            assert!(
                (800..=1_200).contains(&c),
                "hash partitioning should spread a contiguous run: {counts:?}"
            );
        }
        assert!(!Partitioner::<u64>::hash(8).is_ordered());
        assert_eq!(Partitioner::<u64>::hash(8).scheme(), "hash");
    }

    #[test]
    fn refit_changes_range_but_not_hash() {
        let keys: Vec<u64> = (0..1_000u64).collect();
        let mut p = Partitioner::range(4);
        assert_eq!(p.shard_of(900), 0);
        p.refit(&keys);
        assert_eq!(p.shard_of(900), 3);
        let mut h = Partitioner::hash(4);
        let before = h.shard_of(900u64);
        h.refit(&keys);
        assert_eq!(h.shard_of(900u64), before);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        assert_eq!(Partitioner::<u64>::range(0).shards(), 1);
        assert_eq!(Partitioner::<u64>::hash(0).shards(), 1);
    }

    #[test]
    fn scheme_round_trips_names_and_builds_partitioners() {
        assert_eq!(Scheme::default(), Scheme::Range);
        for scheme in [Scheme::Range, Scheme::Hash] {
            assert_eq!(Scheme::parse(scheme.name()), Some(scheme));
            let p: Partitioner<u64> = scheme.partitioner(4);
            assert_eq!(p.shards(), 4);
            assert_eq!(p.scheme(), scheme.name());
            assert_eq!(p.is_ordered(), scheme == Scheme::Range);
        }
        assert_eq!(Scheme::parse("HASH"), Some(Scheme::Hash));
        assert_eq!(Scheme::parse("nope"), None);
    }
}
