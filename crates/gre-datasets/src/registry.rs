//! Dataset registry mirroring Table 2 of the paper.

use crate::shapes;
use gre_pla::{synth, DataHardness, HardnessConfig, SynthCorner};

/// The datasets of Table 2 plus the synthetic corner datasets of §7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Amazon book sales popularity (SOSD).
    Books,
    /// Up-sampled Facebook user IDs (SOSD) — contains extreme outliers.
    Fb,
    /// Uniformly sampled OpenStreetMap locations (SOSD) — hardest overall.
    Osm,
    /// Wikipedia edit timestamps (SOSD) — contains duplicate keys.
    Wiki,
    /// Uniformly sampled Tweet IDs with tag COVID-19.
    Covid,
    /// Loci pairs in human chromosomes — locally hardest.
    Genome,
    /// Vote IDs from Stackoverflow.
    Stack,
    /// Partition keys from the WISE survey data.
    Wise,
    /// Repository IDs from libraries.io.
    Libio,
    /// History node IDs in OpenStreetMap.
    History,
    /// Planet IDs in OpenStreetMap — globally hardest (sharp CDF knee).
    Planet,
    /// Synthetic dataset positioned at a hardness-plane corner (§7).
    Synthetic(SynthCorner),
}

/// Static description of a dataset, used when printing Table 2.
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    pub name: String,
    pub description: String,
    pub source: String,
    pub has_duplicates: bool,
}

impl Dataset {
    /// The ten real datasets shown in the paper's heatmaps, ordered roughly
    /// from easy to difficult (the ordering used on the heatmap x-axis).
    pub const HEATMAP_DATASETS: [Dataset; 10] = [
        Dataset::Stack,
        Dataset::Wise,
        Dataset::Covid,
        Dataset::History,
        Dataset::Libio,
        Dataset::Books,
        Dataset::Planet,
        Dataset::Osm,
        Dataset::Fb,
        Dataset::Genome,
    ];

    /// The four datasets used in the drill-down figures (Fig 3, 5, 6, 8–11, 13):
    /// two easy (covid, libio), the locally hardest (genome) and the globally
    /// hardest (osm).
    pub const DRILLDOWN_DATASETS: [Dataset; 4] = [
        Dataset::Covid,
        Dataset::Libio,
        Dataset::Genome,
        Dataset::Osm,
    ];

    /// All real datasets (everything except the synthetic corners).
    pub const ALL_REAL: [Dataset; 11] = [
        Dataset::Books,
        Dataset::Fb,
        Dataset::Osm,
        Dataset::Wiki,
        Dataset::Covid,
        Dataset::Genome,
        Dataset::Stack,
        Dataset::Wise,
        Dataset::Libio,
        Dataset::History,
        Dataset::Planet,
    ];

    /// Name as used in the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Dataset::Books => "books".into(),
            Dataset::Fb => "fb".into(),
            Dataset::Osm => "osm".into(),
            Dataset::Wiki => "wiki".into(),
            Dataset::Covid => "covid".into(),
            Dataset::Genome => "genome".into(),
            Dataset::Stack => "stack".into(),
            Dataset::Wise => "wise".into(),
            Dataset::Libio => "libio".into(),
            Dataset::History => "history".into(),
            Dataset::Planet => "planet".into(),
            Dataset::Synthetic(c) => c.name().into(),
        }
    }

    /// Table 2 row for this dataset.
    pub fn profile(&self) -> DatasetProfile {
        let (description, source) = match self {
            Dataset::Books => ("Amazon book sales popularity", "SOSD [23]"),
            Dataset::Fb => ("Upsampled Facebook user ID", "SOSD [23]"),
            Dataset::Osm => ("Uniformly sampled OpenStreetMap locations", "SOSD [23]"),
            Dataset::Wiki => ("Wikipedia article edit timestamps", "SOSD [23]"),
            Dataset::Covid => ("Uniformly sampled Tweet ID with tag COVID-19", "[34]"),
            Dataset::Genome => ("Loci pairs in human chromosomes", "[49]"),
            Dataset::Stack => ("Vote ID from Stackoverflow", "[53]"),
            Dataset::Wise => ("Partition key from the WISE data", "[60]"),
            Dataset::Libio => ("Repository ID from libraries.io", "[33]"),
            Dataset::History => ("History node ID in OpenStreetMap", "[8]"),
            Dataset::Planet => ("Planet ID in OpenStreetMap", "[8]"),
            Dataset::Synthetic(_) => ("Synthetic hardness-driven dataset (§7)", "generator"),
        };
        DatasetProfile {
            name: self.name(),
            description: description.into(),
            source: source.into(),
            has_duplicates: self.has_duplicates(),
        }
    }

    /// Whether the dataset contains duplicate keys (only wiki does).
    pub fn has_duplicates(&self) -> bool {
        matches!(self, Dataset::Wiki)
    }

    /// Generate `n` keys of this dataset (sorted ascending; strictly
    /// ascending unless [`Self::has_duplicates`]). Deterministic per seed.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<u64> {
        if n == 0 {
            return Vec::new();
        }
        match self {
            // Easy, near-uniform identifier datasets.
            Dataset::Covid => shapes::uniform(n, 1 << 44, seed ^ 0xC0117D),
            Dataset::Stack => shapes::auto_increment_with_gaps(n, 0.02, 64, seed ^ 0x57AC),
            Dataset::Wise => shapes::uniform(n, 1 << 38, seed ^ 0x317E),
            Dataset::History => shapes::auto_increment_with_gaps(n, 0.10, 512, seed ^ 0x4157),
            Dataset::Libio => shapes::auto_increment_with_gaps(n, 0.05, 2_048, seed ^ 0x11B1),
            // Moderate: a log-normal popularity distribution.
            Dataset::Books => shapes::lognormal(n, 12.0, 1.4, 4096.0, seed ^ 0xB00C),
            // Globally hard: sharp knee in the CDF (Figure 1a).
            Dataset::Planet => shapes::deflected(n, 0.55, 1 << 22, seed ^ 0x914E7),
            // Globally and locally hard: clustered spatial projection.
            Dataset::Osm => shapes::clustered(n, 200, 1 << 56, seed ^ 0x05A1),
            // Locally hard: bumpy short runs (Figure 1b zoomed).
            Dataset::Genome => shapes::bumpy_runs(n, 48, seed ^ 0x6E40),
            // Up-sampled IDs with extreme outliers near the top of the domain.
            Dataset::Fb => shapes::with_outliers(n, 16.min(n / 10).max(1), seed ^ 0xFB),
            // Timestamps with duplicates.
            Dataset::Wiki => shapes::timestamps_with_duplicates(n, 0.25, seed ^ 0x3137),
            Dataset::Synthetic(corner) => synth::generate_corner(*corner, n, seed),
        }
    }

    /// Compute the hardness coordinates of an `n`-key instance of this
    /// dataset (sub-sampled measurement; see
    /// [`DataHardness::compute_sampled`]).
    pub fn hardness(&self, n: usize, seed: u64, config: HardnessConfig) -> DataHardness {
        let mut keys = self.generate(n, seed);
        keys.dedup();
        DataHardness::compute_sampled(&keys, config, 200_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_real_datasets_generate_requested_size() {
        for ds in Dataset::ALL_REAL {
            let keys = ds.generate(4_000, 7);
            assert_eq!(keys.len(), 4_000, "{}", ds.name());
            assert!(
                keys.windows(2).all(|w| w[0] <= w[1]),
                "{} not sorted",
                ds.name()
            );
            if !ds.has_duplicates() {
                assert!(
                    keys.windows(2).all(|w| w[0] < w[1]),
                    "{} has unexpected duplicates",
                    ds.name()
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for ds in [Dataset::Osm, Dataset::Covid, Dataset::Wiki] {
            assert_eq!(ds.generate(2_000, 3), ds.generate(2_000, 3));
            assert_ne!(ds.generate(2_000, 3), ds.generate(2_000, 4));
        }
    }

    #[test]
    fn wiki_has_duplicates_and_others_do_not() {
        assert!(Dataset::Wiki.has_duplicates());
        assert!(!Dataset::Osm.has_duplicates());
        let wiki = Dataset::Wiki.generate(5_000, 1);
        assert!(wiki.windows(2).any(|w| w[0] == w[1]));
    }

    #[test]
    fn hardness_ordering_matches_the_paper() {
        // The drill-down datasets must be ordered as the paper reports:
        // covid and libio easy, genome locally hardest, osm/planet hard.
        let n = 60_000;
        let cfg = HardnessConfig::default();
        let covid = Dataset::Covid.hardness(n, 1, cfg);
        let libio = Dataset::Libio.hardness(n, 1, cfg);
        let genome = Dataset::Genome.hardness(n, 1, cfg);
        let osm = Dataset::Osm.hardness(n, 1, cfg);
        let planet = Dataset::Planet.hardness(n, 1, cfg);

        assert!(
            genome.local > covid.local && genome.local > libio.local,
            "genome local {} vs covid {} / libio {}",
            genome.local,
            covid.local,
            libio.local
        );
        assert!(
            osm.local > covid.local,
            "osm local {} vs covid {}",
            osm.local,
            covid.local
        );
        assert!(
            planet.global >= covid.global && osm.global >= covid.global,
            "planet {} osm {} covid {}",
            planet.global,
            osm.global,
            covid.global
        );
        // fb's outliers blow up the MSE metric far more than covid's.
        let fb = Dataset::Fb.hardness(n, 1, cfg);
        assert!(fb.single_line_mse > covid.single_line_mse);
    }

    #[test]
    fn profiles_and_names_are_consistent() {
        assert_eq!(Dataset::Osm.name(), "osm");
        assert_eq!(Dataset::Synthetic(SynthCorner::Easy).name(), "syn_easy");
        let p = Dataset::Genome.profile();
        assert!(p.description.contains("chromosomes"));
        assert!(!p.has_duplicates);
        assert_eq!(Dataset::HEATMAP_DATASETS.len(), 10);
        assert_eq!(Dataset::DRILLDOWN_DATASETS.len(), 4);
    }

    #[test]
    fn empty_generation_is_empty() {
        assert!(Dataset::Covid.generate(0, 1).is_empty());
    }
}
