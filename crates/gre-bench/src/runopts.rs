//! Command-line options shared by every per-figure binary.
//!
//! All binaries accept the same flags so the whole evaluation can be scaled
//! to the machine at hand:
//!
//! ```text
//! --keys N      number of keys per dataset        (default 200000)
//! --threads T   worker threads for concurrent runs (default: available cores)
//! --seed S      RNG seed                           (default 42)
//! --shards N    max shard count for sharded serving-layer sweeps (default 8)
//! --quick       shrink everything for a smoke run
//! --verbose     per-kind latency breakdowns (get/insert/update/remove/range)
//! ```

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct RunOpts {
    pub keys: usize,
    pub threads: usize,
    pub seed: u64,
    /// Upper bound of the shard-count axis in serving-layer sweeps
    /// (`figs_shard_scalability`); other binaries ignore it.
    pub shards: usize,
    pub quick: bool,
    /// Print per-`RequestKind` latency summaries next to the throughput
    /// rows (binaries with latency reporting honor this).
    pub verbose: bool,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            keys: 200_000,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            seed: 42,
            shards: 8,
            quick: false,
            verbose: false,
        }
    }
}

impl RunOpts {
    /// Parse from an iterator of arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut opts = RunOpts::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--keys" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        opts.keys = v;
                    }
                }
                "--threads" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        opts.threads = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        opts.seed = v;
                    }
                }
                "--shards" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        opts.shards = v;
                    }
                }
                "--quick" => opts.quick = true,
                "--verbose" => opts.verbose = true,
                _ => {}
            }
        }
        if opts.quick {
            opts.keys = opts.keys.min(20_000);
        }
        opts.keys = opts.keys.max(1_000);
        opts.threads = opts.threads.max(1);
        opts.shards = opts.shards.max(1);
        opts
    }

    /// Parse from the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults_and_flags() {
        let o = RunOpts::parse(s(&[]));
        assert_eq!(o.keys, 200_000);
        assert!(!o.quick);
        let o = RunOpts::parse(s(&["--keys", "50000", "--threads", "2", "--seed", "7"]));
        assert_eq!(o.keys, 50_000);
        assert_eq!(o.threads, 2);
        assert_eq!(o.seed, 7);
        assert_eq!(o.shards, 8, "default shard axis");
    }

    #[test]
    fn verbose_flag_parses() {
        assert!(!RunOpts::parse(s(&[])).verbose);
        assert!(RunOpts::parse(s(&["--verbose"])).verbose);
        assert!(RunOpts::parse(s(&["--quick", "--verbose"])).quick);
    }

    #[test]
    fn shards_flag_parses_and_clamps() {
        let o = RunOpts::parse(s(&["--shards", "16"]));
        assert_eq!(o.shards, 16);
        let o = RunOpts::parse(s(&["--shards", "0"]));
        assert_eq!(o.shards, 1);
        let o = RunOpts::parse(s(&["--shards", "junk"]));
        assert_eq!(o.shards, 8);
    }

    #[test]
    fn quick_caps_keys_and_bad_values_are_ignored() {
        let o = RunOpts::parse(s(&["--keys", "999999", "--quick"]));
        assert!(o.quick);
        assert_eq!(o.keys, 20_000);
        let o = RunOpts::parse(s(&["--keys", "nonsense", "--threads", "0"]));
        assert_eq!(o.keys, 200_000);
        assert_eq!(o.threads.max(1), o.threads);
    }
}
