//! CDF shape primitives used to emulate the real datasets.
//!
//! Each function produces a sorted array of `u64` keys with a particular
//! distribution shape. The shapes are combined by [`crate::registry`] to
//! emulate the datasets of Table 2.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal, Normal};

/// Finalize a raw key sample into a strictly ascending array of exactly `n`
/// keys: sort, deduplicate, and densify (fill gaps deterministically) if the
/// deduplication removed too many keys.
pub fn finalize(mut keys: Vec<u64>, n: usize) -> Vec<u64> {
    keys.sort_unstable();
    keys.dedup();
    // Refill: spread replacement keys between existing ones.
    let mut rng = StdRng::seed_from_u64(keys.len() as u64 ^ 0x9e37_79b9_7f4a_7c15);
    while keys.len() < n {
        let missing = n - keys.len();
        let mut extra = Vec::with_capacity(missing);
        for _ in 0..missing {
            let i = rng.gen_range(0..keys.len().max(1));
            let base = keys.get(i).copied().unwrap_or(0);
            let next = keys
                .get(i + 1)
                .copied()
                .unwrap_or(base.saturating_add(1 << 20));
            if next > base + 1 {
                extra.push(base + 1 + (rng.gen::<u64>() % (next - base - 1).max(1)));
            } else {
                extra.push(base.saturating_add(rng.gen_range(1..1_000_000)));
            }
        }
        keys.extend(extra);
        keys.sort_unstable();
        keys.dedup();
    }
    keys.truncate(n);
    keys
}

/// Keys uniformly distributed over a domain (covid / stack / wise-like:
/// the easy region of the hardness plane).
pub fn uniform(n: usize, domain: u64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let raw: Vec<u64> = (0..n * 11 / 10).map(|_| rng.gen_range(1..domain)).collect();
    finalize(raw, n)
}

/// Keys following a log-normal CDF (books-like sales popularity).
pub fn lognormal(n: usize, mu: f64, sigma: f64, scale: f64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = LogNormal::new(mu, sigma).expect("valid lognormal parameters");
    let raw: Vec<u64> = (0..n * 11 / 10)
        .map(|_| (dist.sample(&mut rng) * scale).min(u64::MAX as f64 / 2.0) as u64)
        .collect();
    finalize(raw, n)
}

/// A mixture of Gaussian clusters at different scales (osm-like: the
/// one-dimensional projection of spatial data produces many clusters of very
/// different densities, which is both globally and locally hard).
pub fn clustered(n: usize, clusters: usize, domain: u64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let clusters = clusters.max(1);
    let mut raw = Vec::with_capacity(n * 11 / 10);
    // Cluster centers are themselves non-uniform (power-law spaced) and the
    // per-cluster spread varies over four orders of magnitude.
    let centers: Vec<f64> = (0..clusters)
        .map(|_| (rng.gen::<f64>().powf(2.0)) * domain as f64)
        .collect();
    for i in 0..(n * 11 / 10) {
        let c = centers[i % clusters];
        let spread_exp = rng.gen_range(2.0..6.0);
        let spread = 10f64.powf(spread_exp);
        let normal = Normal::new(c, spread).expect("valid normal");
        let v = normal.sample(&mut rng).abs().min(u64::MAX as f64 / 2.0);
        raw.push(v as u64 + 1);
    }
    finalize(raw, n)
}

/// A dense region followed by a sparse region (planet-like sharp CDF
/// deflection, Figure 1a: dense keys below the knee, sparse keys above).
pub fn deflected(n: usize, knee_fraction: f64, density_ratio: u64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dense_n = ((n as f64) * knee_fraction) as usize;
    let sparse_n = n - dense_n;
    let dense_domain = dense_n as u64 * 4;
    let mut raw: Vec<u64> = (0..dense_n * 11 / 10)
        .map(|_| rng.gen_range(1..dense_domain.max(2)))
        .collect();
    let sparse_start = dense_domain + 1;
    let sparse_step = density_ratio.max(2);
    raw.extend(
        (0..sparse_n * 11 / 10)
            .map(|_| sparse_start + rng.gen_range(0..sparse_n as u64 * sparse_step)),
    );
    finalize(raw, n)
}

/// Locally bumpy keys (genome-like): loci pairs form short dense runs with
/// irregular run lengths and irregular jumps between runs, which defeats
/// per-node models at small ε while the overall CDF still looks smooth.
pub fn bumpy_runs(n: usize, mean_run: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut raw = Vec::with_capacity(n * 11 / 10);
    let mut cursor: u64 = 1;
    while raw.len() < n * 11 / 10 {
        let run = rng.gen_range(1..=mean_run.max(2) * 2);
        let stride = rng.gen_range(1..=8u64);
        for i in 0..run {
            raw.push(cursor + i as u64 * stride);
        }
        cursor += run as u64 * stride + rng.gen_range(1_000..5_000_000);
    }
    finalize(raw, n)
}

/// Mostly-uniform keys with a handful of extreme outliers appended at the top
/// of the domain (fb-like up-sampled IDs: a few keys near 2^64 blow up the
/// MSE metric while PLA hardness only rises slightly — Appendix D).
pub fn with_outliers(n: usize, outliers: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let outliers = outliers.min(n.saturating_sub(1));
    let body_n = n - outliers;
    let body_domain: u64 = 1 << 40;
    let raw: Vec<u64> = (0..body_n * 11 / 10)
        .map(|_| {
            // The up-sampling in fb creates locally uneven density: mix two
            // granularities.
            if rng.gen_bool(0.5) {
                rng.gen_range(1..body_domain)
            } else {
                rng.gen_range(1..body_domain / 1024) * 1024
            }
        })
        .collect();
    let mut keys = finalize(raw, body_n);
    // Outliers sit near the very top of the 64-bit domain, far above the
    // body, which is exactly what inflates the single-line MSE for fb.
    for i in (0..outliers).rev() {
        keys.push(u64::MAX - 2 - (i as u64) * 1_000_003);
    }
    keys
}

/// Timestamps with duplicates (wiki-like edit timestamps). Returns a sorted
/// array of exactly `n` keys where roughly `dup_fraction` of positions repeat
/// the previous key. This is the only dataset shape with duplicate keys.
pub fn timestamps_with_duplicates(n: usize, dup_fraction: f64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys = Vec::with_capacity(n);
    let mut t: u64 = 1_000_000_000;
    while keys.len() < n {
        t += rng.gen_range(1..120);
        keys.push(t);
        // A burst of edits in the same second produces duplicate timestamps.
        while keys.len() < n && rng.gen_bool(dup_fraction) {
            keys.push(t);
        }
    }
    keys
}

/// Near-contiguous identifiers with occasional gaps (libio / history /
/// stack-like auto-increment IDs with deletions).
pub fn auto_increment_with_gaps(
    n: usize,
    gap_probability: f64,
    max_gap: u64,
    seed: u64,
) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys = Vec::with_capacity(n);
    let mut cursor: u64 = 1;
    for _ in 0..n {
        cursor += 1;
        if rng.gen_bool(gap_probability) {
            cursor += rng.gen_range(1..max_gap.max(2));
        }
        keys.push(cursor);
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_sorted_unique(keys: &[u64]) {
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "not strictly ascending"
        );
    }

    #[test]
    fn uniform_shape() {
        let keys = uniform(5_000, 1 << 40, 1);
        assert_eq!(keys.len(), 5_000);
        assert_sorted_unique(&keys);
    }

    #[test]
    fn lognormal_shape() {
        let keys = lognormal(5_000, 10.0, 2.0, 1e6, 1);
        assert_eq!(keys.len(), 5_000);
        assert_sorted_unique(&keys);
    }

    #[test]
    fn clustered_shape() {
        let keys = clustered(5_000, 50, 1 << 50, 1);
        assert_eq!(keys.len(), 5_000);
        assert_sorted_unique(&keys);
    }

    #[test]
    fn deflected_shape_has_knee() {
        let keys = deflected(10_000, 0.5, 1 << 20, 1);
        assert_eq!(keys.len(), 10_000);
        assert_sorted_unique(&keys);
        // The sparse half must cover a much wider key range than the dense half.
        let mid = keys[keys.len() / 2];
        let dense_span = mid - keys[0];
        let sparse_span = keys[keys.len() - 1] - mid;
        assert!(sparse_span > dense_span * 10);
    }

    #[test]
    fn bumpy_runs_shape() {
        let keys = bumpy_runs(5_000, 40, 1);
        assert_eq!(keys.len(), 5_000);
        assert_sorted_unique(&keys);
    }

    #[test]
    fn outliers_reach_top_of_domain() {
        let keys = with_outliers(5_000, 8, 1);
        assert_eq!(keys.len(), 5_000);
        assert_sorted_unique(&keys);
        assert!(*keys.last().unwrap() > u64::MAX / 2);
    }

    #[test]
    fn duplicates_present_in_wiki_shape() {
        let keys = timestamps_with_duplicates(5_000, 0.3, 1);
        assert_eq!(keys.len(), 5_000);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        let dup_count = keys.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(dup_count > 100, "expected many duplicates, got {dup_count}");
    }

    #[test]
    fn auto_increment_is_dense() {
        let keys = auto_increment_with_gaps(5_000, 0.01, 100, 1);
        assert_eq!(keys.len(), 5_000);
        assert_sorted_unique(&keys);
        // Dense: total span within a small multiple of n.
        assert!(keys[keys.len() - 1] - keys[0] < 5_000 * 20);
    }

    #[test]
    fn finalize_tops_up_after_dedup() {
        let raw = vec![5u64; 100];
        let keys = finalize(raw, 50);
        assert_eq!(keys.len(), 50);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }
}
