//! Figure 12: throughput change when the data distribution shifts after
//! deployment (bulk load dataset X, run a balanced workload inserting
//! dataset Y rescaled into X's domain).
use gre_bench::{registry::single_thread_indexes, RunOpts};
use gre_datasets::Dataset;
use gre_workloads::{run_single, WorkloadBuilder, WriteRatio};

fn main() {
    let opts = RunOpts::from_env();
    let builder = WorkloadBuilder::new(opts.seed);
    let pairs = [
        (Dataset::Covid, Dataset::Osm),
        (Dataset::Osm, Dataset::Covid),
        (Dataset::Covid, Dataset::Genome),
        (Dataset::Genome, Dataset::Covid),
    ];
    println!("# Figure 12: throughput change (%) under distribution shift vs no shift");
    println!(
        "{:<22} {:<12} {:>14} {:>14} {:>10}",
        "shift", "index", "base Mop/s", "shift Mop/s", "change %"
    );
    for (x, y) in pairs {
        let keys_x = x.generate(opts.keys, opts.seed);
        let keys_y = y.generate(opts.keys, opts.seed + 1);
        let baseline = builder.insert_workload(&x.name(), &keys_x, WriteRatio::Balanced);
        let shifted =
            builder.shift_workload(&format!("{}->{}", x.name(), y.name()), &keys_x, &keys_y);
        for entry in single_thread_indexes() {
            let mut base_index = entry.index;
            let base = run_single(base_index.as_mut(), &baseline);
            // A fresh instance of the same index for the shifted run.
            let mut fresh = gre_bench::single_thread_indexes()
                .into_iter()
                .find(|e| e.name == entry.name)
                .expect("index exists")
                .index;
            let shift = run_single(fresh.as_mut(), &shifted);
            let change = if base.throughput_mops() > 0.0 {
                (shift.throughput_mops() - base.throughput_mops()) / base.throughput_mops() * 100.0
            } else {
                0.0
            };
            println!(
                "{:<22} {:<12} {:>14.3} {:>14.3} {:>10.1}",
                format!("{}->{}", x.name(), y.name()),
                entry.name,
                base.throughput_mops(),
                shift.throughput_mops(),
                change
            );
        }
    }
}
