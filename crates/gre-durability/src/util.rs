//! Small filesystem helpers shared by the crate's tests and binaries.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A uniquely named directory under the system temp dir, removed on drop.
///
/// Exposed (not `cfg(test)`) because integration tests and the recovery
/// benchmark binary need scratch directories too.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    pub fn new(tag: &str) -> TempDir {
        static SERIAL: AtomicU64 = AtomicU64::new(0);
        let serial = SERIAL.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "gre-durability-{tag}-{}-{serial}",
            std::process::id()
        ));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
