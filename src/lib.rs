//! Umbrella crate re-exporting the GRE-rs workspace.
pub use gre_core as core;
pub use gre_datasets as datasets;
pub use gre_elastic as elastic;
pub use gre_learned as learned;
pub use gre_pla as pla;
pub use gre_replica as replica;
pub use gre_shard as shard;
pub use gre_traditional as traditional;
pub use gre_workloads as workloads;
