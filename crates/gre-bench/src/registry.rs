//! Index registries: every evaluated index behind a uniform constructor so
//! the per-figure binaries can iterate over them.
//!
//! Two layers:
//!
//! * The **list registries** ([`single_thread_indexes`],
//!   [`concurrent_indexes`], [`sharded_concurrent_indexes`]) return fresh
//!   instances of whole index families for figure sweeps.
//! * The **string-keyed factory** ([`concurrent_backend`], [`backend`],
//!   [`sharded_index`]) resolves a backend by name — `backend("alex+", 8)`
//!   yields ALEX+ behind an 8-shard range-partitioned serving layer — so
//!   binaries and external callers can request any (backend × shards)
//!   combination without naming concrete types.

use gre_core::{ConcurrentIndex, Index};
use gre_learned::{
    Alex, AlexConfig, AlexPlus, DynamicPgm, Finedex, Lipp, LippPlus, LockGranularity, XIndex,
};
use gre_shard::{Partitioner, ShardedIndex};
use gre_traditional::{
    art_olc, btree_olc, hot_rowex, masstree_concurrent, wormhole_concurrent, Art, BPlusTree, Hot,
    Masstree, Wormhole,
};
use std::collections::HashMap;
use std::sync::Mutex;

/// Whether an index is learned or traditional (heatmap colouring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    Learned,
    Traditional,
}

/// A named single-threaded index instance.
pub struct SingleEntry {
    pub name: &'static str,
    pub kind: IndexKind,
    pub index: Box<dyn Index<u64>>,
}

/// A named concurrent index instance. The name is owned because sharded
/// variants carry computed names like `sharded(ALEX+,8)`.
pub struct ConcurrentEntry {
    pub name: String,
    pub kind: IndexKind,
    pub index: Box<dyn ConcurrentIndex<u64>>,
}

/// Canonical names of every concurrent backend, paired with its kind and in
/// the paper's presentation order. ALEX+ and LIPP+ (the parallelized
/// derivatives this study contributes) lead so Figure 16's "world without
/// this study" can drop a prefix.
pub const CONCURRENT_BACKENDS: [(&str, IndexKind); 9] = [
    ("ALEX+", IndexKind::Learned),
    ("LIPP+", IndexKind::Learned),
    ("XIndex", IndexKind::Learned),
    ("FINEdex", IndexKind::Learned),
    ("ART-OLC", IndexKind::Traditional),
    ("B+treeOLC", IndexKind::Traditional),
    ("HOT-ROWEX", IndexKind::Traditional),
    ("Masstree", IndexKind::Traditional),
    ("Wormhole", IndexKind::Traditional),
];

/// Fresh instances of every single-threaded index of the study
/// (the Table 1 learned indexes plus STX B+-tree, ART and HOT, §3.1).
pub fn single_thread_indexes() -> Vec<SingleEntry> {
    vec![
        SingleEntry {
            name: "ALEX",
            kind: IndexKind::Learned,
            index: Box::new(Alex::<u64>::new()),
        },
        SingleEntry {
            name: "LIPP",
            kind: IndexKind::Learned,
            index: Box::new(Lipp::<u64>::new()),
        },
        SingleEntry {
            name: "PGM-Index",
            kind: IndexKind::Learned,
            index: Box::new(DynamicPgm::<u64>::new()),
        },
        SingleEntry {
            name: "B+tree",
            kind: IndexKind::Traditional,
            index: Box::new(BPlusTree::<u64>::new()),
        },
        SingleEntry {
            name: "ART",
            kind: IndexKind::Traditional,
            index: Box::new(Art::<u64>::new()),
        },
        SingleEntry {
            name: "HOT",
            kind: IndexKind::Traditional,
            index: Box::new(Hot::<u64>::new()),
        },
        SingleEntry {
            name: "Masstree",
            kind: IndexKind::Traditional,
            index: Box::new(Masstree::<u64>::new()),
        },
        SingleEntry {
            name: "Wormhole",
            kind: IndexKind::Traditional,
            index: Box::new(Wormhole::<u64>::new()),
        },
    ]
}

/// Constructor of a boxed concurrent backend.
type BackendCtor = fn() -> Box<dyn ConcurrentIndex<u64>>;

/// Resolve a backend name to its canonical display name and constructor
/// without building an instance (name validation and display formatting
/// must stay allocation-free on hot factory paths).
fn resolve_backend(name: &str) -> Option<(&'static str, BackendCtor)> {
    let canon: String = name
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || *c == '+')
        .collect::<String>()
        .to_ascii_lowercase();
    Some(match canon.as_str() {
        "alex+" | "alexplus" => ("ALEX+", || {
            Box::new(AlexPlus::<u64>::with_config(
                AlexConfig::default(),
                LockGranularity::PerNode,
            ))
        }),
        "lipp+" | "lippplus" => ("LIPP+", || Box::new(LippPlus::<u64>::new())),
        "xindex" => ("XIndex", || Box::new(XIndex::<u64>::new())),
        "finedex" => ("FINEdex", || Box::new(Finedex::<u64>::new())),
        "artolc" => ("ART-OLC", || Box::new(art_olc::<u64>())),
        "b+treeolc" | "btreeolc" => ("B+treeOLC", || Box::new(btree_olc::<u64>())),
        "hotrowex" => ("HOT-ROWEX", || Box::new(hot_rowex::<u64>())),
        "masstree" => ("Masstree", || Box::new(masstree_concurrent::<u64>())),
        "wormhole" => ("Wormhole", || Box::new(wormhole_concurrent::<u64>())),
        _ => return None,
    })
}

/// Resolve a concurrent backend by name (case-insensitive; `+`, `-` and
/// spaces are cosmetic: `"alex+"`, `"ALEX+"` and `"alexplus"` all resolve
/// to ALEX+). Returns `None` for unknown names.
pub fn concurrent_backend(name: &str) -> Option<Box<dyn ConcurrentIndex<u64>>> {
    resolve_backend(name).map(|(_, build)| build())
}

/// Build a [`ShardedIndex`] of `partitioner.shards()` instances of the named
/// backend. The composite reports itself as `sharded(NAME,N)` (range
/// partitioning) or `sharded(NAME,N,hash)`.
pub fn sharded_index(
    name: &str,
    partitioner: Partitioner<u64>,
) -> Option<ShardedIndex<u64, Box<dyn ConcurrentIndex<u64>>>> {
    let (canonical, build) = resolve_backend(name)?;
    let display = sharded_name(canonical, &partitioner);
    Some(ShardedIndex::from_factory(partitioner, |_| build()).with_name(intern(display)))
}

/// The display name of a sharded composite, e.g. `sharded(ALEX+,8)`.
pub fn sharded_name(backend: &str, partitioner: &Partitioner<u64>) -> String {
    if partitioner.is_ordered() {
        format!("sharded({backend},{})", partitioner.shards())
    } else {
        format!(
            "sharded({backend},{},{})",
            partitioner.shards(),
            partitioner.scheme()
        )
    }
}

/// The string-keyed factory: the named backend behind `shards` range
/// partitions (`shards <= 1` returns the bare backend). This is the single
/// entry point every figure binary can use to run a `sharded(X)` variant of
/// any evaluated index.
pub fn backend(name: &str, shards: usize) -> Option<Box<dyn ConcurrentIndex<u64>>> {
    if shards <= 1 {
        concurrent_backend(name)
    } else {
        sharded_index(name, Partitioner::range(shards))
            .map(|idx| Box::new(idx) as Box<dyn ConcurrentIndex<u64>>)
    }
}

/// Intern a computed index name: `IndexMeta::name` is `&'static str` (every
/// figure binary formats it by value), so computed sharded names are leaked
/// once per distinct name and reused afterwards.
fn intern(name: String) -> &'static str {
    static INTERNED: Mutex<Option<HashMap<String, &'static str>>> = Mutex::new(None);
    let mut guard = INTERNED.lock().expect("intern table poisoned");
    let table = guard.get_or_insert_with(HashMap::new);
    if let Some(&s) = table.get(&name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.clone().into_boxed_str());
    table.insert(name, leaked);
    leaked
}

/// Fresh instances of every concurrent index (§4.2). Set `include_parallelized`
/// to `false` to reproduce "the world without this study" (Figure 16), which
/// drops ALEX+ and LIPP+ and keeps only the natively concurrent indexes.
pub fn concurrent_indexes(include_parallelized: bool) -> Vec<ConcurrentEntry> {
    CONCURRENT_BACKENDS
        .iter()
        .skip(if include_parallelized { 0 } else { 2 })
        .map(|&(name, kind)| ConcurrentEntry {
            name: name.to_string(),
            kind,
            index: concurrent_backend(name).expect("registry name resolves"),
        })
        .collect()
}

/// `sharded(X, shards)` variants of every concurrent backend: the serving
/// layer over the full §4.2 index set, for shard-scalability sweeps.
pub fn sharded_concurrent_indexes(shards: usize) -> Vec<ConcurrentEntry> {
    CONCURRENT_BACKENDS
        .iter()
        .map(|&(name, kind)| {
            let index = backend(name, shards).expect("registry name resolves");
            ConcurrentEntry {
                name: index.meta().name.to_string(),
                kind,
                index,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_cover_the_papers_index_set() {
        let single = single_thread_indexes();
        assert_eq!(single.len(), 8);
        assert!(single.iter().any(|e| e.name == "ALEX"));
        assert!(single.iter().any(|e| e.name == "ART"));
        let learned = single
            .iter()
            .filter(|e| e.kind == IndexKind::Learned)
            .count();
        assert_eq!(learned, 3);

        let conc = concurrent_indexes(true);
        assert_eq!(conc.len(), 9);
        assert!(conc.iter().any(|e| e.name == "ALEX+"));
        let without = concurrent_indexes(false);
        assert_eq!(without.len(), 7);
        assert!(!without.iter().any(|e| e.name == "ALEX+"));
    }

    #[test]
    fn every_registered_index_supports_basic_ops() {
        let entries: Vec<(u64, u64)> = (0..1_000u64).map(|i| (i * 5 + 1, i)).collect();
        for mut e in single_thread_indexes() {
            e.index.bulk_load(&entries);
            assert_eq!(e.index.len(), 1_000, "{}", e.name);
            assert_eq!(e.index.get(6), Some(1), "{}", e.name);
            e.index.insert(2, 22);
            assert_eq!(e.index.get(2), Some(22), "{}", e.name);
            assert!(e.index.memory_usage() > 0, "{}", e.name);
        }
        for mut e in concurrent_indexes(true) {
            e.index.bulk_load(&entries);
            assert_eq!(e.index.len(), 1_000, "{}", e.name);
            assert_eq!(e.index.get(6), Some(1), "{}", e.name);
            e.index.insert(2, 22);
            assert_eq!(e.index.get(2), Some(22), "{}", e.name);
        }
    }

    #[test]
    fn factory_resolves_names_case_and_punctuation_insensitively() {
        for spec in ["alex+", "ALEX+", "AlexPlus", "alex plus"] {
            let b = concurrent_backend(spec).unwrap_or_else(|| panic!("{spec} must resolve"));
            assert_eq!(b.meta().name, "ALEX+");
        }
        assert_eq!(
            concurrent_backend("b+tree-olc").unwrap().meta().name,
            "B+treeOLC"
        );
        assert_eq!(
            concurrent_backend("hot-rowex").unwrap().meta().name,
            "HOT-ROWEX"
        );
        assert!(concurrent_backend("no-such-index").is_none());
        assert!(concurrent_backend("").is_none());
    }

    #[test]
    fn factory_builds_sharded_composites() {
        let idx = backend("lipp+", 4).expect("sharded lipp+");
        assert_eq!(idx.meta().name, "sharded(LIPP+,4)");
        assert!(idx.meta().concurrent);
        // shards <= 1 yields the bare backend.
        let idx = backend("lipp+", 1).expect("bare lipp+");
        assert_eq!(idx.meta().name, "LIPP+");
        assert!(backend("nope", 4).is_none());
        // Hash scheme shows in the name.
        let idx = sharded_index("xindex", Partitioner::hash(2)).expect("hash-sharded");
        assert_eq!(idx.meta().name, "sharded(XIndex,2,hash)");
    }

    #[test]
    fn interned_names_are_stable() {
        let a = backend("alex+", 2).unwrap().meta().name;
        let b = backend("alex+", 2).unwrap().meta().name;
        assert!(
            std::ptr::eq(a, b),
            "same name must intern to one allocation"
        );
    }
}
