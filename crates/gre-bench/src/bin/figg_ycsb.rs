//! Figure G (appendix): YCSB A/B/C with Zipfian (0.99) request keys,
//! single-threaded and multi-threaded.
//!
//! The multi-threaded sweep is expressed natively in the scenario engine —
//! YCSB *is* a one-phase scenario (a get/update `Mix` over
//! `KeyDist::Zipf { theta: 0.99 }`) — instead of pre-materializing the
//! request stream; the single-threaded rows keep the materialized workload
//! (single-threaded indexes sit outside the concurrent serving surface).
use gre_bench::report::print_phase_latency;
use gre_bench::{
    registry::{concurrent_indexes, single_thread_indexes},
    RunOpts,
};
use gre_datasets::Dataset;
use gre_workloads::driver::Driver;
use gre_workloads::generate::YcsbVariant;
use gre_workloads::scenario::{KeyDist, Mix, Pacing, Phase, Scenario, Span};
use gre_workloads::{run_single, WorkloadBuilder};

/// The scenario mix of a YCSB variant: lookups plus in-place updates.
fn ycsb_mix(variant: YcsbVariant) -> Mix {
    match variant {
        YcsbVariant::A => Mix::ycsb_a(),
        YcsbVariant::B => Mix::ycsb_b(),
        YcsbVariant::C => Mix::read_only(),
    }
}

fn main() {
    let opts = RunOpts::from_env();
    let builder = WorkloadBuilder::new(opts.seed);
    println!("# Figure G: YCSB throughput (Mop/s), Zipfian 0.99");
    println!(
        "{:<10} {:<8} {:<12} {:>9} {:>10}",
        "dataset", "ycsb", "index", "threads", "Mop/s"
    );
    for ds in Dataset::DRILLDOWN_DATASETS {
        let keys = ds.generate(opts.keys, opts.seed);
        for variant in [YcsbVariant::A, YcsbVariant::B, YcsbVariant::C] {
            let workload = builder.ycsb(&ds.name(), &keys, variant, opts.keys);
            for entry in single_thread_indexes() {
                let mut index = entry.index;
                let r = run_single(index.as_mut(), &workload);
                println!(
                    "{:<10} {:<8} {:<12} {:>9} {:>10.3}",
                    ds.name(),
                    variant.name(),
                    entry.name,
                    1,
                    r.throughput_mops()
                );
            }
            let scenario = Scenario::new(
                &format!("{}/{}", ds.name(), variant.name()),
                opts.seed,
                &keys,
            )
            .phase(Phase::new(
                variant.name(),
                ycsb_mix(variant),
                KeyDist::Zipf { theta: 0.99 },
                Span::Ops(opts.keys as u64),
                Pacing::ClosedLoop {
                    threads: opts.threads,
                },
            ));
            for entry in concurrent_indexes(true) {
                let mut index = entry.index;
                let result = Driver::new().run(&scenario, index.as_mut());
                let phase = result.phases.into_iter().next().expect("one phase");
                println!(
                    "{:<10} {:<8} {:<12} {:>9} {:>10.3}",
                    ds.name(),
                    variant.name(),
                    entry.name,
                    opts.threads,
                    phase.throughput_mops()
                );
                if opts.verbose {
                    print_phase_latency("      ", &phase);
                }
            }
        }
    }
}
