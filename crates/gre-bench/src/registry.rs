//! Index registries: every evaluated index behind a uniform constructor so
//! the per-figure binaries can iterate over them.

use gre_core::{ConcurrentIndex, Index};
use gre_learned::{
    Alex, AlexConfig, AlexPlus, DynamicPgm, Finedex, Lipp, LippPlus, LockGranularity, XIndex,
};
use gre_traditional::{
    art_olc, btree_olc, hot_rowex, masstree_concurrent, wormhole_concurrent, Art, BPlusTree, Hot,
    Masstree, Wormhole,
};

/// Whether an index is learned or traditional (heatmap colouring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    Learned,
    Traditional,
}

/// A named single-threaded index instance.
pub struct SingleEntry {
    pub name: &'static str,
    pub kind: IndexKind,
    pub index: Box<dyn Index<u64>>,
}

/// A named concurrent index instance.
pub struct ConcurrentEntry {
    pub name: &'static str,
    pub kind: IndexKind,
    pub index: Box<dyn ConcurrentIndex<u64>>,
}

/// Fresh instances of every single-threaded index of the study
/// (the Table 1 learned indexes plus STX B+-tree, ART and HOT, §3.1).
pub fn single_thread_indexes() -> Vec<SingleEntry> {
    vec![
        SingleEntry {
            name: "ALEX",
            kind: IndexKind::Learned,
            index: Box::new(Alex::<u64>::new()),
        },
        SingleEntry {
            name: "LIPP",
            kind: IndexKind::Learned,
            index: Box::new(Lipp::<u64>::new()),
        },
        SingleEntry {
            name: "PGM-Index",
            kind: IndexKind::Learned,
            index: Box::new(DynamicPgm::<u64>::new()),
        },
        SingleEntry {
            name: "B+tree",
            kind: IndexKind::Traditional,
            index: Box::new(BPlusTree::<u64>::new()),
        },
        SingleEntry {
            name: "ART",
            kind: IndexKind::Traditional,
            index: Box::new(Art::<u64>::new()),
        },
        SingleEntry {
            name: "HOT",
            kind: IndexKind::Traditional,
            index: Box::new(Hot::<u64>::new()),
        },
        SingleEntry {
            name: "Masstree",
            kind: IndexKind::Traditional,
            index: Box::new(Masstree::<u64>::new()),
        },
        SingleEntry {
            name: "Wormhole",
            kind: IndexKind::Traditional,
            index: Box::new(Wormhole::<u64>::new()),
        },
    ]
}

/// Fresh instances of every concurrent index (§4.2). Set `include_parallelized`
/// to `false` to reproduce "the world without this study" (Figure 16), which
/// drops ALEX+ and LIPP+ and keeps only the natively concurrent indexes.
pub fn concurrent_indexes(include_parallelized: bool) -> Vec<ConcurrentEntry> {
    let mut out: Vec<ConcurrentEntry> = Vec::new();
    if include_parallelized {
        out.push(ConcurrentEntry {
            name: "ALEX+",
            kind: IndexKind::Learned,
            index: Box::new(AlexPlus::<u64>::with_config(
                AlexConfig::default(),
                LockGranularity::PerNode,
            )),
        });
        out.push(ConcurrentEntry {
            name: "LIPP+",
            kind: IndexKind::Learned,
            index: Box::new(LippPlus::<u64>::new()),
        });
    }
    out.push(ConcurrentEntry {
        name: "XIndex",
        kind: IndexKind::Learned,
        index: Box::new(XIndex::<u64>::new()),
    });
    out.push(ConcurrentEntry {
        name: "FINEdex",
        kind: IndexKind::Learned,
        index: Box::new(Finedex::<u64>::new()),
    });
    out.push(ConcurrentEntry {
        name: "ART-OLC",
        kind: IndexKind::Traditional,
        index: Box::new(art_olc::<u64>()),
    });
    out.push(ConcurrentEntry {
        name: "B+treeOLC",
        kind: IndexKind::Traditional,
        index: Box::new(btree_olc::<u64>()),
    });
    out.push(ConcurrentEntry {
        name: "HOT-ROWEX",
        kind: IndexKind::Traditional,
        index: Box::new(hot_rowex::<u64>()),
    });
    out.push(ConcurrentEntry {
        name: "Masstree",
        kind: IndexKind::Traditional,
        index: Box::new(masstree_concurrent::<u64>()),
    });
    out.push(ConcurrentEntry {
        name: "Wormhole",
        kind: IndexKind::Traditional,
        index: Box::new(wormhole_concurrent::<u64>()),
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_cover_the_papers_index_set() {
        let single = single_thread_indexes();
        assert_eq!(single.len(), 8);
        assert!(single.iter().any(|e| e.name == "ALEX"));
        assert!(single.iter().any(|e| e.name == "ART"));
        let learned = single
            .iter()
            .filter(|e| e.kind == IndexKind::Learned)
            .count();
        assert_eq!(learned, 3);

        let conc = concurrent_indexes(true);
        assert_eq!(conc.len(), 9);
        assert!(conc.iter().any(|e| e.name == "ALEX+"));
        let without = concurrent_indexes(false);
        assert_eq!(without.len(), 7);
        assert!(!without.iter().any(|e| e.name == "ALEX+"));
    }

    #[test]
    fn every_registered_index_supports_basic_ops() {
        let entries: Vec<(u64, u64)> = (0..1_000u64).map(|i| (i * 5 + 1, i)).collect();
        for mut e in single_thread_indexes() {
            e.index.bulk_load(&entries);
            assert_eq!(e.index.len(), 1_000, "{}", e.name);
            assert_eq!(e.index.get(6), Some(1), "{}", e.name);
            e.index.insert(2, 22);
            assert_eq!(e.index.get(2), Some(22), "{}", e.name);
            assert!(e.index.memory_usage() > 0, "{}", e.name);
        }
        for mut e in concurrent_indexes(true) {
            e.index.bulk_load(&entries);
            assert_eq!(e.index.len(), 1_000, "{}", e.name);
            assert_eq!(e.index.get(6), Some(1), "{}", e.name);
            e.index.insert(2, 22);
            assert_eq!(e.index.get(2), Some(22), "{}", e.name);
        }
    }
}
