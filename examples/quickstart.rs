//! Quickstart: build a learned index, query it, update it, scan it.
//!
//! Run with `cargo run --release --example quickstart`.

use gre::learned::{Alex, Lipp};
use gre::traditional::Art;
use gre_core::{Index, RangeSpec};

fn main() {
    // 1M synthetic entries (key, payload), sorted by key.
    let entries: Vec<(u64, u64)> = (0..1_000_000u64).map(|i| (i * 3 + 1, i)).collect();

    // Bulk load ALEX and look a few keys up.
    let mut alex = Alex::<u64>::new();
    alex.bulk_load(&entries);
    assert_eq!(alex.get(301), Some(100));
    println!(
        "ALEX holds {} keys in {:.1} MB",
        alex.len(),
        alex.memory_usage() as f64 / 1e6
    );

    // Insert new keys: ALEX finds gaps or shifts, LIPP chains nodes.
    let mut lipp = Lipp::<u64>::new();
    lipp.bulk_load(&entries);
    for k in 0..10_000u64 {
        alex.insert(k * 3 + 2, k);
        lipp.insert(k * 3 + 2, k);
    }
    println!(
        "after 10k inserts: ALEX shifted {:.1} keys/insert, LIPP created {:.2} nodes/insert",
        alex.stats().avg_keys_shifted_per_insert(),
        lipp.stats().avg_nodes_created_per_insert()
    );

    // Range scan: 10 keys starting at 1_000.
    let mut out = Vec::new();
    alex.range(RangeSpec::new(1_000, 10), &mut out);
    println!(
        "scan from 1000: {:?}",
        out.iter().map(|e| e.0).collect::<Vec<_>>()
    );

    // A traditional baseline for comparison.
    let mut art = Art::<u64>::new();
    art.bulk_load(&entries);
    println!(
        "ART holds {} keys in {:.1} MB",
        art.len(),
        art.memory_usage() as f64 / 1e6
    );
}
