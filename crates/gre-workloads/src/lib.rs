//! # gre-workloads
//!
//! Workload description and execution, mirroring §3.3 of the paper and
//! extending it into a typed scenario engine:
//!
//! * [`spec`] — operation and workload types (read-only … write-only,
//!   deletion mixes, range scans, YCSB, distribution shift).
//! * [`generate`] — builders that turn a dataset into a concrete operation
//!   sequence (bulk-load set plus request stream).
//! * [`scenario`] — typed scenario descriptions: named phases, each an op
//!   [`Mix`] over a [`KeyDist`] with a
//!   [`Span`] and [`Pacing`] (closed loop
//!   or open loop at a fixed rate), generated lazily per thread through the
//!   seeded, allocation-free [`OpStream`].
//! * [`driver`] — the [`Driver`] executes a scenario
//!   against any [`ServeTarget`] (bare backends here;
//!   `ShardPipeline`/`Session` targets in `gre-shard`), recording
//!   per-phase, per-kind latency histograms measured from intended send
//!   time (coordinated-omission-safe under open loop) plus an interval
//!   throughput series.
//! * [`zipf`] — the Zipfian request-key sampler used by the YCSB workloads.
//! * [`batch`] — per-shard splitting of op streams for partitioned serving
//!   layers (the `gre-shard` crate's batched request pipeline).
//! * [`runner`] — the materialized-[`Workload`] compatibility surface:
//!   [`run_concurrent`] is now a thin adapter over a one-phase replay
//!   scenario (see the MIGRATION note in [`runner`]).

pub mod batch;
pub mod driver;
pub mod generate;
pub mod runner;
pub mod scenario;
pub mod spec;
pub mod zipf;

pub use batch::{route_key, split_indexed_ops_by_shard, split_ops_by_shard};
pub use driver::{
    Connection, Driver, PhaseRecorder, PhaseResult, ScenarioResult, ServeTarget, Tally,
};
pub use generate::WorkloadBuilder;
pub use runner::{
    run_concurrent, run_single, KindSummaries, LatencySummary, RunResult, LATENCY_SAMPLE_RATE,
};
pub use scenario::{KeyDist, Mix, OpSource, OpStream, Pacing, Phase, Scenario, Span};
pub use spec::{Op, OpKind, Workload, WriteRatio};
