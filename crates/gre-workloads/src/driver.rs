//! The scenario driver: executes a [`Scenario`] against any serving target.
//!
//! The driver separates three concerns the old `run_concurrent` surface
//! fused together:
//!
//! * **What** is offered — the scenario's phase script (see
//!   [`scenario`](crate::scenario)).
//! * **Where** it is served — anything implementing [`ServeTarget`]. A
//!   blanket impl covers every bare [`ConcurrentIndex`] backend (including
//!   the sharded composite); `gre-shard` adds targets for its batched
//!   `ShardPipeline` and pipelined `Session` client paths.
//! * **How** it is measured — per-phase, per-[`RequestKind`] latency
//!   histograms plus an interval throughput series. Under
//!   [`Pacing::OpenLoop`], latency is measured from each operation's
//!   **intended** send time: a stalled server accrues the queueing delay it
//!   caused (coordinated-omission-safe), instead of the closed-loop
//!   behaviour where a stall simply stops the clock on new requests.
//!
//! One driver thread drives one [`Connection`]; targets decide what a
//! connection means (direct calls, a batch buffer over a pipeline, a
//! pipelined session window).
//!
//! Driving a scenario against a bare backend (any [`ConcurrentIndex`] is a
//! [`ServeTarget`] through the blanket impl):
//!
//! ```
//! # use gre_core::{Index, IndexMeta, Payload, RangeSpec};
//! # use std::collections::BTreeMap;
//! # #[derive(Default)]
//! # struct Toy(BTreeMap<u64, Payload>);
//! # impl Index<u64> for Toy {
//! #     fn bulk_load(&mut self, entries: &[(u64, Payload)]) {
//! #         self.0 = entries.iter().copied().collect();
//! #     }
//! #     fn get(&self, key: u64) -> Option<Payload> { self.0.get(&key).copied() }
//! #     fn insert(&mut self, key: u64, value: Payload) -> bool {
//! #         self.0.insert(key, value).is_none()
//! #     }
//! #     fn remove(&mut self, key: u64) -> Option<Payload> { self.0.remove(&key) }
//! #     fn range(&self, spec: RangeSpec<u64>, out: &mut Vec<(u64, Payload)>) -> usize {
//! #         let before = out.len();
//! #         out.extend(self.0.range(spec.start..)
//! #             .take_while(|(k, _)| spec.end.map_or(true, |e| **k <= e))
//! #             .take(spec.count).map(|(k, v)| (*k, *v)));
//! #         out.len() - before
//! #     }
//! #     fn len(&self) -> usize { self.0.len() }
//! #     fn memory_usage(&self) -> usize { 0 }
//! #     fn meta(&self) -> IndexMeta {
//! #         IndexMeta { name: "toy", learned: false, concurrent: false,
//! #                     supports_delete: true, supports_range: true }
//! #     }
//! # }
//! use gre_core::index::MutexIndex;
//! use gre_workloads::scenario::{KeyDist, Mix, Pacing, Phase, Scenario, Span};
//! use gre_workloads::Driver;
//!
//! let keys: Vec<u64> = (1..=1_000u64).map(|i| i * 4).collect();
//! let scenario = Scenario::new("driver-doc", 42, &keys).phase(Phase::new(
//!     "reads",
//!     Mix::read_only(),
//!     KeyDist::Zipf { theta: 0.99 },
//!     Span::Ops(2_000),
//!     Pacing::ClosedLoop { threads: 2 },
//! ));
//!
//! // `Toy` is any `Index` impl; `MutexIndex` lifts it to `ConcurrentIndex`.
//! let mut index = MutexIndex::new(Toy::default(), "toy");
//! let result = Driver::new().run(&scenario, &mut index);
//!
//! let phase = &result.phases[0];
//! assert_eq!(phase.ops(), 2_000);
//! assert_eq!(phase.tally.hits, 2_000); // read-only over loaded keys
//! println!("{}: {:.2} Mop/s", phase.phase, phase.throughput_mops());
//! ```

use crate::runner::{LatencySummary, LATENCY_SAMPLE_RATE};
use crate::scenario::{phase_stream, OpStream, Pacing, Phase, Scenario, Span};
use crate::spec::Op;
use gre_core::ops::RequestKind;
use gre_core::{ConcurrentIndex, IndexMeta, KindLatency, LatencyHistogram, Payload, Response};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default width of the interval throughput series.
pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(100);

/// Default number of sender threads for open-loop phases.
pub const DEFAULT_OPEN_LOOP_SENDERS: usize = 4;

/// Typed-response counters accumulated over a phase (the scenario-side
/// analogue of `gre-shard`'s per-batch counter view).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// Completed operations.
    pub ops: u64,
    /// Lookups that found their key.
    pub hits: u64,
    /// Inserts that created a new key.
    pub new_keys: u64,
    /// Updates that found their key.
    pub updated: u64,
    /// Removes that found their key.
    pub removed: u64,
    /// Keys returned by range scans.
    pub scanned_keys: u64,
    /// Operations rejected as unsupported by the target.
    pub errors: u64,
    /// Reads shed by SLO admission control (the
    /// [`IndexError::Overloaded`](gre_core::IndexError::Overloaded) subset
    /// of [`errors`](Tally::errors)).
    pub shed: u64,
    /// Reads redirected away from their policy-chosen server because it
    /// breached its latency SLO. Reported by the target via
    /// [`PhaseRecorder::note_redirects`]; these ops still complete
    /// normally, so they are *not* errors.
    pub redirected: u64,
}

impl Tally {
    /// Record one typed response.
    #[inline]
    pub fn record(&mut self, response: &Response<u64>) {
        self.ops += 1;
        match response {
            Response::Get(found) => self.hits += u64::from(found.is_some()),
            Response::Insert(new) => self.new_keys += u64::from(*new),
            Response::Update(hit) => self.updated += u64::from(*hit),
            Response::Remove(removed) => self.removed += u64::from(removed.is_some()),
            Response::Range(entries) => self.scanned_keys += entries.len() as u64,
            Response::Error(e) => {
                self.errors += 1;
                self.shed += u64::from(*e == gre_core::IndexError::Overloaded);
            }
        }
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &Tally) {
        self.ops += other.ops;
        self.hits += other.hits;
        self.new_keys += other.new_keys;
        self.updated += other.updated;
        self.removed += other.removed;
        self.scanned_keys += other.scanned_keys;
        self.errors += other.errors;
        self.shed += other.shed;
        self.redirected += other.redirected;
    }
}

/// Per-thread measurement sink for one phase: kind-indexed latency
/// histograms (from intended send time), typed-response counters, and the
/// completions-per-interval series.
pub struct PhaseRecorder {
    phase_start: Instant,
    interval_ns: u64,
    latency: KindLatency,
    tally: Tally,
    intervals: Vec<u64>,
    /// One latency histogram per interval, fed by timed completions only
    /// (grown lazily; may be shorter than `intervals` when the tail saw
    /// only untimed ops).
    interval_latency: Vec<LatencyHistogram>,
    /// Interval of the most recent timestamped completion; untimed
    /// (unsampled closed-loop) completions are attributed here.
    last_bucket: usize,
}

impl PhaseRecorder {
    pub fn new(phase_start: Instant, interval: Duration) -> PhaseRecorder {
        PhaseRecorder {
            phase_start,
            interval_ns: interval.as_nanos().max(1) as u64,
            latency: KindLatency::new(),
            tally: Tally::default(),
            intervals: Vec::new(),
            interval_latency: Vec::new(),
            last_bucket: 0,
        }
    }

    /// Record a completion whose latency was measured: `intended` is the
    /// intended send time, `now` the completion time.
    #[inline]
    pub fn complete_timed(
        &mut self,
        kind: RequestKind,
        intended: Instant,
        now: Instant,
        response: &Response<u64>,
    ) {
        let ns = now.saturating_duration_since(intended).as_nanos() as u64;
        self.latency.record(kind, ns);
        let since_start = now.saturating_duration_since(self.phase_start).as_nanos() as u64;
        self.last_bucket = (since_start / self.interval_ns) as usize;
        if self.last_bucket >= self.interval_latency.len() {
            self.interval_latency
                .resize_with(self.last_bucket + 1, LatencyHistogram::new);
        }
        self.interval_latency[self.last_bucket].record(ns);
        self.bump_interval();
        self.tally.record(response);
    }

    /// Record a completion without a timestamp (an unsampled closed-loop
    /// op); attributed to the interval of the last timed completion.
    #[inline]
    pub fn complete_untimed(&mut self, response: &Response<u64>) {
        self.bump_interval();
        self.tally.record(response);
    }

    /// The typed-response counters accumulated so far — for custom targets
    /// and tests that drive a [`Connection`] directly, outside a full
    /// [`Driver::run`].
    pub fn tally(&self) -> &Tally {
        &self.tally
    }

    /// Report `n` reads this connection redirected off an SLO-breaching
    /// server. Called by admission-controlled targets at dispatch time
    /// (the ops themselves still complete and are recorded normally).
    #[inline]
    pub fn note_redirects(&mut self, n: u64) {
        self.tally.redirected += n;
    }

    #[inline]
    fn bump_interval(&mut self) {
        if self.last_bucket >= self.intervals.len() {
            self.intervals.resize(self.last_bucket + 1, 0);
        }
        self.intervals[self.last_bucket] += 1;
    }

    fn merge_into(
        self,
        latency: &mut KindLatency,
        tally: &mut Tally,
        intervals: &mut Vec<u64>,
        interval_latency: &mut Vec<LatencyHistogram>,
    ) {
        latency.merge(&self.latency);
        tally.merge(&self.tally);
        if intervals.len() < self.intervals.len() {
            intervals.resize(self.intervals.len(), 0);
        }
        for (a, b) in intervals.iter_mut().zip(self.intervals.iter()) {
            *a += b;
        }
        if interval_latency.len() < self.interval_latency.len() {
            interval_latency.resize_with(self.interval_latency.len(), LatencyHistogram::new);
        }
        for (a, b) in interval_latency
            .iter_mut()
            .zip(self.interval_latency.iter())
        {
            a.merge(b);
        }
    }
}

/// Anything a scenario can be driven against.
///
/// Implementations exist for every bare [`ConcurrentIndex`] backend (the
/// blanket impl below — this includes the sharded composite, whose routing
/// then happens per op) and, in `gre-shard`, for the batched `ShardPipeline`
/// and the pipelined `Session` client surface.
pub trait ServeTarget: Sync {
    /// Display name of the target configuration.
    fn describe(&self) -> String;

    /// Bulk load the initial entries. The driver calls this exactly once,
    /// before the first phase (with an empty slice when the scenario loads
    /// nothing).
    fn load(&mut self, entries: &[(u64, Payload)]);

    /// Open one client connection. The driver opens one per thread, inside
    /// that thread.
    fn connect(&self) -> Box<dyn Connection + '_>;

    /// Keys currently stored (for post-run verification).
    fn stored_len(&self) -> usize;

    /// Bytes used by the underlying store, when the target can tell.
    fn memory_bytes(&self) -> usize {
        0
    }
}

/// One driver thread's submission endpoint.
///
/// `submit` hands over one operation with an optional intended-send
/// timestamp (present for every open-loop op and for sampled closed-loop
/// ops); the connection reports each *completion* into the recorder —
/// synchronously for direct targets, on batch completion for batched ones.
/// `flush` must push out any buffered operations and wait out everything
/// still in flight, so a phase's recorder sees every accepted op exactly
/// once.
pub trait Connection {
    fn submit(&mut self, op: Op, intended: Option<Instant>, rec: &mut PhaseRecorder);
    fn flush(&mut self, rec: &mut PhaseRecorder);
}

/// Direct connection to a bare concurrent index: every op executes
/// synchronously on the calling thread through the typed request path.
struct BareConn<'a, I: ConcurrentIndex<u64> + ?Sized> {
    index: &'a I,
    meta: IndexMeta,
}

impl<I: ConcurrentIndex<u64> + ?Sized> Connection for BareConn<'_, I> {
    #[inline]
    fn submit(&mut self, op: Op, intended: Option<Instant>, rec: &mut PhaseRecorder) {
        let response = op.execute(self.index, &self.meta);
        match intended {
            Some(t0) => rec.complete_timed(op.kind(), t0, Instant::now(), &response),
            None => rec.complete_untimed(&response),
        }
    }

    fn flush(&mut self, _rec: &mut PhaseRecorder) {}
}

/// Every concurrent index is directly drivable: the "bare backend" serving
/// path, where each driver thread calls the index synchronously.
impl<I: ConcurrentIndex<u64> + ?Sized> ServeTarget for I {
    fn describe(&self) -> String {
        self.meta().name.to_string()
    }

    fn load(&mut self, entries: &[(u64, Payload)]) {
        self.bulk_load(entries);
    }

    fn connect(&self) -> Box<dyn Connection + '_> {
        Box::new(BareConn {
            index: self,
            meta: self.meta(),
        })
    }

    fn stored_len(&self) -> usize {
        ConcurrentIndex::len(self)
    }

    fn memory_bytes(&self) -> usize {
        self.memory_usage()
    }
}

/// Executes scenarios against serving targets.
///
/// Construction is builder-style; the defaults measure like the old runner
/// (1-in-101 latency sampling under closed loop) while open-loop phases
/// always time every operation from its intended send time.
#[derive(Debug, Clone)]
pub struct Driver {
    sample_stride: usize,
    open_loop_senders: usize,
    interval: Duration,
    stop: Option<Arc<AtomicBool>>,
}

impl Default for Driver {
    fn default() -> Self {
        Driver {
            sample_stride: LATENCY_SAMPLE_RATE,
            open_loop_senders: DEFAULT_OPEN_LOOP_SENDERS,
            interval: DEFAULT_INTERVAL,
            stop: None,
        }
    }
}

impl Driver {
    pub fn new() -> Driver {
        Driver::default()
    }

    /// Closed-loop latency sampling stride (1 = time every op). Open-loop
    /// phases ignore this: they time everything, because their latency
    /// origin (the intended send time) is computed, not measured.
    pub fn sample_stride(mut self, stride: usize) -> Driver {
        self.sample_stride = stride.max(1);
        self
    }

    /// Sender threads used by open-loop phases (the offered rate is split
    /// evenly across them).
    pub fn open_loop_senders(mut self, senders: usize) -> Driver {
        self.open_loop_senders = senders.max(1);
        self
    }

    /// Width of the interval throughput series.
    pub fn interval(mut self, interval: Duration) -> Driver {
        self.interval = interval;
        self
    }

    /// Cooperative shutdown: when `flag` becomes true the driver stops
    /// submitting, flushes in-flight work, and reports only completed ops.
    pub fn with_stop(mut self, flag: Arc<AtomicBool>) -> Driver {
        self.stop = Some(flag);
        self
    }

    #[inline]
    fn stopped(&self) -> bool {
        self.stop
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Execute `scenario` against `target`: bulk load, then run each phase
    /// in script order.
    pub fn run<T: ServeTarget + ?Sized>(
        &self,
        scenario: &Scenario,
        target: &mut T,
    ) -> ScenarioResult {
        let load_timer = Instant::now();
        target.load(&scenario.bulk);
        let bulk_load_ns = load_timer.elapsed().as_nanos() as u64;
        let keys = Arc::new(scenario.loaded_keys());
        let mut phases = Vec::with_capacity(scenario.phases.len());
        for (pi, phase) in scenario.phases.iter().enumerate() {
            if self.stopped() {
                break;
            }
            phases.push(self.run_phase(scenario, &keys, pi, phase, &*target));
        }
        ScenarioResult {
            scenario: scenario.name.clone(),
            target: target.describe(),
            bulk_load_ns,
            phases,
        }
    }

    fn run_phase<T: ServeTarget + ?Sized>(
        &self,
        scenario: &Scenario,
        keys: &Arc<Vec<u64>>,
        phase_idx: usize,
        phase: &Phase,
        target: &T,
    ) -> PhaseResult {
        let threads = match phase.pacing {
            Pacing::ClosedLoop { threads } => threads.max(1),
            Pacing::OpenLoop { .. } => self.open_loop_senders.max(1),
        };
        // Per-thread op budgets: an even split for op-count spans,
        // unbounded for time spans.
        let budgets: Vec<u64> = match phase.span {
            Span::Ops(n) => {
                let base = n / threads as u64;
                let extra = (n % threads as u64) as usize;
                (0..threads).map(|t| base + u64::from(t < extra)).collect()
            }
            Span::Time(_) => vec![u64::MAX; threads],
        };
        let start = Instant::now();
        let deadline = match phase.span {
            Span::Time(d) => Some(start + d),
            Span::Ops(_) => None,
        };

        let recorders: Vec<PhaseRecorder> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let budget = budgets[t];
                    scope.spawn(move || {
                        let mut stream = phase_stream(scenario, keys, phase_idx, phase, t, threads);
                        let mut conn = target.connect();
                        let mut rec = PhaseRecorder::new(start, self.interval);
                        match phase.pacing {
                            Pacing::ClosedLoop { .. } => self.closed_loop(
                                stream.as_mut(),
                                conn.as_mut(),
                                &mut rec,
                                budget,
                                deadline,
                            ),
                            Pacing::OpenLoop { rate_ops_s } => self.open_loop(
                                stream.as_mut(),
                                conn.as_mut(),
                                &mut rec,
                                budget,
                                deadline,
                                start,
                                rate_ops_s / threads as f64,
                            ),
                        }
                        conn.flush(&mut rec);
                        rec
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("driver thread panicked"))
                .collect()
        });
        let elapsed_ns = start.elapsed().as_nanos() as u64;

        let mut latency = KindLatency::new();
        let mut tally = Tally::default();
        let mut intervals = Vec::new();
        let mut interval_latency = Vec::new();
        for rec in recorders {
            rec.merge_into(
                &mut latency,
                &mut tally,
                &mut intervals,
                &mut interval_latency,
            );
        }
        // Align the two series so consumers can zip them 1:1 (the latency
        // side can come up short when the tail saw only untimed ops).
        if interval_latency.len() < intervals.len() {
            interval_latency.resize_with(intervals.len(), LatencyHistogram::new);
        }
        PhaseResult {
            phase: phase.name.clone(),
            threads,
            offered_rate: phase.offered_rate(),
            elapsed_ns,
            tally,
            latency,
            intervals,
            interval_latency,
            interval_ns: self.interval.as_nanos().max(1) as u64,
        }
    }

    fn closed_loop(
        &self,
        stream: &mut dyn OpStream,
        conn: &mut dyn Connection,
        rec: &mut PhaseRecorder,
        budget: u64,
        deadline: Option<Instant>,
    ) {
        let stride = self.sample_stride as u64;
        let mut i = 0u64;
        while i < budget {
            let sampled = i % stride == 0;
            if sampled {
                // Stop/deadline checks ride the sampling stride so the
                // common path stays clock-free.
                if self.stopped() || deadline.is_some_and(|d| Instant::now() >= d) {
                    break;
                }
            }
            let Some(op) = stream.next_op() else { break };
            let intended = if sampled { Some(Instant::now()) } else { None };
            conn.submit(op, intended, rec);
            i += 1;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn open_loop(
        &self,
        stream: &mut dyn OpStream,
        conn: &mut dyn Connection,
        rec: &mut PhaseRecorder,
        budget: u64,
        deadline: Option<Instant>,
        start: Instant,
        rate_ops_s: f64,
    ) {
        let tick = 1.0 / rate_ops_s.max(1e-6);
        let mut i = 0u64;
        while i < budget {
            if i % 64 == 0 && self.stopped() {
                break;
            }
            let intended = start + Duration::from_secs_f64(i as f64 * tick);
            if deadline.is_some_and(|d| intended >= d) {
                break;
            }
            // Hold to the schedule; when behind, send immediately — the
            // intended stamp still charges the slip to latency.
            loop {
                let now = Instant::now();
                if now >= intended {
                    break;
                }
                let wait = intended - now;
                if wait > Duration::from_micros(200) {
                    std::thread::sleep(wait - Duration::from_micros(100));
                } else {
                    std::hint::spin_loop();
                }
            }
            let Some(op) = stream.next_op() else { break };
            conn.submit(op, Some(intended), rec);
            i += 1;
        }
    }
}

/// Measurements of one executed phase.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    pub phase: String,
    /// Driver threads (clients for closed loop, senders for open loop).
    pub threads: usize,
    /// Requested rate for open-loop phases.
    pub offered_rate: Option<f64>,
    /// Wall-clock time of the phase including the final drain, ns.
    pub elapsed_ns: u64,
    /// Typed-response counters over every completed op.
    pub tally: Tally,
    /// Kind-indexed latency histograms, measured from intended send time.
    pub latency: KindLatency,
    /// Completions per interval (coarse throughput-over-time series).
    pub intervals: Vec<u64>,
    /// Latency histogram per interval, aligned with
    /// [`intervals`](PhaseResult::intervals); fed by *timed* completions
    /// only, so under closed-loop pacing each holds the 1-in-stride sample.
    pub interval_latency: Vec<LatencyHistogram>,
    /// Width of one interval, ns.
    pub interval_ns: u64,
}

impl PhaseResult {
    /// Completed operations.
    pub fn ops(&self) -> u64 {
        self.tally.ops
    }

    /// Reads shed by SLO admission control during this phase.
    pub fn shed(&self) -> u64 {
        self.tally.shed
    }

    /// Reads redirected off an SLO-breaching server during this phase.
    pub fn redirected(&self) -> u64 {
        self.tally.redirected
    }

    /// Throughput in million completed ops per second.
    pub fn throughput_mops(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.tally.ops as f64 / (self.elapsed_ns as f64 / 1e9) / 1e6
    }

    /// Achieved delivery rate in ops/s (compare against
    /// [`offered_rate`](PhaseResult::offered_rate) for open-loop phases).
    pub fn achieved_rate(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.tally.ops as f64 / (self.elapsed_ns as f64 / 1e9)
    }

    /// Latency summary of one request kind.
    pub fn kind_summary(&self, kind: RequestKind) -> LatencySummary {
        LatencySummary::from_histogram(self.latency.get(kind))
    }

    /// Merged read-side (get + range) latency summary.
    pub fn read_summary(&self) -> LatencySummary {
        LatencySummary::from_histogram(
            &self.latency.merged(&[RequestKind::Get, RequestKind::Range]),
        )
    }

    /// Per-interval latency percentile series (ns): one value per entry of
    /// [`intervals`](PhaseResult::intervals), 0 for intervals with no timed
    /// completion. `q` is a fraction (0.5 for p50, 0.99 for p99).
    pub fn interval_percentiles(&self, q: f64) -> Vec<u64> {
        self.interval_latency
            .iter()
            .map(|h| if h.count() == 0 { 0 } else { h.percentile(q) })
            .collect()
    }

    /// Merged write-side (insert + update + remove) latency summary.
    pub fn write_summary(&self) -> LatencySummary {
        LatencySummary::from_histogram(&self.latency.merged(&[
            RequestKind::Insert,
            RequestKind::Update,
            RequestKind::Remove,
        ]))
    }
}

/// Measurements of one full scenario run against one target.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    pub scenario: String,
    pub target: String,
    pub bulk_load_ns: u64,
    pub phases: Vec<PhaseResult>,
}

impl ScenarioResult {
    /// Total completed operations across all phases.
    pub fn total_ops(&self) -> u64 {
        self.phases.iter().map(|p| p.tally.ops).sum()
    }

    /// Look up a phase by name.
    pub fn phase(&self, name: &str) -> Option<&PhaseResult> {
        self.phases.iter().find(|p| p.phase == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{KeyDist, Mix};
    use gre_core::index::MutexIndex;
    use gre_core::{Index, RangeSpec};
    use std::collections::BTreeMap;

    #[derive(Default)]
    struct MapIndex {
        map: BTreeMap<u64, Payload>,
    }

    impl Index<u64> for MapIndex {
        fn bulk_load(&mut self, entries: &[(u64, Payload)]) {
            self.map = entries.iter().copied().collect();
        }
        fn get(&self, key: u64) -> Option<Payload> {
            self.map.get(&key).copied()
        }
        fn insert(&mut self, key: u64, value: Payload) -> bool {
            self.map.insert(key, value).is_none()
        }
        fn update(&mut self, key: u64, value: Payload) -> bool {
            match self.map.get_mut(&key) {
                Some(v) => {
                    *v = value;
                    true
                }
                None => false,
            }
        }
        fn remove(&mut self, key: u64) -> Option<Payload> {
            self.map.remove(&key)
        }
        fn range(&self, spec: RangeSpec<u64>, out: &mut Vec<(u64, Payload)>) -> usize {
            let before = out.len();
            out.extend(
                self.map
                    .range(spec.start..)
                    .take_while(|(k, _)| spec.end.map_or(true, |e| **k <= e))
                    .take(spec.count)
                    .map(|(k, v)| (*k, *v)),
            );
            out.len() - before
        }
        fn len(&self) -> usize {
            self.map.len()
        }
        fn memory_usage(&self) -> usize {
            self.map.len() * 48
        }
        fn meta(&self) -> gre_core::IndexMeta {
            gre_core::IndexMeta {
                name: "map",
                learned: false,
                concurrent: false,
                supports_delete: true,
                supports_range: true,
            }
        }
    }

    fn keys(n: u64) -> Vec<u64> {
        (1..=n).map(|i| i * 13).collect()
    }

    #[test]
    fn closed_loop_scenario_runs_to_the_op_budget() {
        let scenario = Scenario::new("t", 1, &keys(2_000)).phase(Phase::new(
            "p0",
            Mix::read_only(),
            KeyDist::Uniform,
            Span::Ops(5_000),
            Pacing::ClosedLoop { threads: 3 },
        ));
        let mut index = MutexIndex::new(MapIndex::default(), "map-mutex");
        let result = Driver::new().sample_stride(7).run(&scenario, &mut index);
        assert_eq!(result.target, "map-mutex");
        assert_eq!(result.phases.len(), 1);
        let p = &result.phases[0];
        assert_eq!(p.ops(), 5_000);
        assert_eq!(p.tally.hits, 5_000, "read-only over loaded keys all hit");
        assert_eq!(p.threads, 3);
        assert!(p.throughput_mops() > 0.0);
        assert!(p.latency.get(RequestKind::Get).count() > 0);
        assert_eq!(p.latency.get(RequestKind::Insert).count(), 0);
        assert!(p.read_summary().samples > 0);
        assert!(!p.intervals.is_empty());
        assert_eq!(p.intervals.iter().sum::<u64>(), 5_000);
        assert_eq!(result.total_ops(), 5_000);
        assert!(result.phase("p0").is_some() && result.phase("nope").is_none());
    }

    #[test]
    fn interval_latency_series_aligns_with_intervals() {
        let scenario = Scenario::new("t", 9, &keys(2_000)).phase(Phase::new(
            "paced",
            Mix::read_only(),
            KeyDist::Uniform,
            Span::Ops(3_000),
            Pacing::OpenLoop {
                rate_ops_s: 30_000.0,
            },
        ));
        let mut index = MutexIndex::new(MapIndex::default(), "map-mutex");
        let result = Driver::new()
            .interval(Duration::from_millis(20))
            .open_loop_senders(2)
            .run(&scenario, &mut index);
        let p = &result.phases[0];
        assert_eq!(p.interval_latency.len(), p.intervals.len());
        // Open loop times every op, so the per-interval histogram counts
        // must sum back to the completion series exactly.
        let timed: u64 = p.interval_latency.iter().map(|h| h.count()).sum();
        assert_eq!(timed, p.intervals.iter().sum::<u64>());
        let p99 = p.interval_percentiles(0.99);
        assert_eq!(p99.len(), p.intervals.len());
        assert!(
            p.intervals
                .iter()
                .zip(&p99)
                .all(|(&n, &v)| (n == 0) == (v == 0)),
            "a percentile sample exists exactly where completions exist"
        );
        // 3k ops at 30k ops/s spans ~100ms => ~5 intervals of 20ms.
        assert!(
            p.intervals.len() >= 3,
            "got {} intervals",
            p.intervals.len()
        );
    }

    #[test]
    fn mixed_phase_tallies_typed_outcomes() {
        let scenario = Scenario::new("t", 2, &keys(2_000)).phase(Phase::new(
            "mixed",
            Mix::points(2, 1, 1, 0).with_range(1, 10),
            KeyDist::Uniform,
            Span::Ops(4_000),
            Pacing::ClosedLoop { threads: 2 },
        ));
        let mut index = MutexIndex::new(MapIndex::default(), "map-mutex");
        let result = Driver::new().run(&scenario, &mut index);
        let p = &result.phases[0];
        assert_eq!(p.ops(), 4_000);
        assert!(p.tally.hits > 0);
        assert!(p.tally.new_keys > 0);
        assert!(p.tally.updated > 0);
        assert!(p.tally.scanned_keys > 0);
        assert_eq!(p.tally.errors, 0);
        // Inserted keys really landed.
        assert_eq!(
            ServeTarget::stored_len(&index) as u64,
            2_000 + p.tally.new_keys
        );
    }

    #[test]
    fn open_loop_phase_holds_the_offered_rate() {
        let scenario = Scenario::new("t", 3, &keys(2_000)).phase(Phase::new(
            "paced",
            Mix::read_only(),
            KeyDist::Uniform,
            Span::Ops(2_000),
            Pacing::OpenLoop {
                rate_ops_s: 20_000.0,
            },
        ));
        let mut index = MutexIndex::new(MapIndex::default(), "map-mutex");
        let result = Driver::new()
            .open_loop_senders(2)
            .run(&scenario, &mut index);
        let p = &result.phases[0];
        assert_eq!(p.ops(), 2_000);
        assert_eq!(p.offered_rate, Some(20_000.0));
        assert_eq!(p.threads, 2);
        // Every open-loop op is timed from its intended send time.
        assert_eq!(p.latency.total_count(), 2_000);
        let achieved = p.achieved_rate();
        assert!(
            (achieved - 20_000.0).abs() / 20_000.0 < 0.25,
            "achieved {achieved:.0} ops/s vs offered 20000"
        );
    }

    #[test]
    fn time_span_and_stop_flag_end_phases_early() {
        let scenario = Scenario::new("t", 4, &keys(1_000))
            .phase(Phase::new(
                "timed",
                Mix::read_only(),
                KeyDist::Uniform,
                Span::Time(Duration::from_millis(30)),
                Pacing::ClosedLoop { threads: 2 },
            ))
            .phase(Phase::new(
                "never-entered",
                Mix::read_only(),
                KeyDist::Uniform,
                Span::Ops(1_000_000),
                Pacing::ClosedLoop { threads: 2 },
            ));
        let stop = Arc::new(AtomicBool::new(false));
        let mut index = MutexIndex::new(MapIndex::default(), "map-mutex");
        let driver = Driver::new().with_stop(Arc::clone(&stop));
        let flag = Arc::clone(&stop);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            flag.store(true, Ordering::Relaxed);
        });
        let result = driver.run(&scenario, &mut index);
        // The timed phase ended by deadline; the second phase was cut off by
        // the stop flag long before its 1M-op budget.
        assert!(!result.phases.is_empty());
        let timed = &result.phases[0];
        assert!(timed.ops() > 0);
        assert!(timed.elapsed_ns >= 25_000_000, "ran for the deadline");
        if let Some(second) = result.phases.get(1) {
            assert!(second.ops() < 1_000_000, "stop flag cut the phase short");
        }
    }

    #[test]
    fn replay_scenario_reproduces_workload_semantics() {
        use crate::generate::WorkloadBuilder;
        use crate::spec::WriteRatio;
        let w = WorkloadBuilder::new(9).insert_workload("t", &keys(2_000), WriteRatio::Balanced);
        let scenario = Scenario::from_workload(&w, Pacing::ClosedLoop { threads: 4 });
        let mut index = MutexIndex::new(MapIndex::default(), "map-mutex");
        let result = Driver::new().run(&scenario, &mut index);
        let p = &result.phases[0];
        assert_eq!(p.ops() as usize, w.ops.len());
        // All remaining keys were inserted: the store holds every key.
        assert_eq!(ServeTarget::stored_len(&index), 2_000);
    }
}
