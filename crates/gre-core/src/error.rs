//! Shared error type for GRE-rs.

use std::fmt;

/// Errors surfaced by index implementations and the benchmarking harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GreError {
    /// Bulk load was called with keys that are not sorted in strictly
    /// ascending order (for indexes that require sorted, unique input).
    UnsortedBulkLoad,
    /// A key already present was inserted into an index configured for
    /// unique keys.
    DuplicateKey,
    /// The requested key does not exist.
    KeyNotFound,
    /// The operation is not supported by this index (e.g. deletes on an
    /// index the paper also excludes from deletion experiments).
    Unsupported(&'static str),
    /// A configuration parameter was invalid (e.g. zero node size).
    InvalidConfig(String),
    /// The workload or dataset specification could not be satisfied.
    InvalidWorkload(String),
}

impl fmt::Display for GreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GreError::UnsortedBulkLoad => {
                write!(f, "bulk load requires strictly ascending unique keys")
            }
            GreError::DuplicateKey => write!(f, "duplicate key"),
            GreError::KeyNotFound => write!(f, "key not found"),
            GreError::Unsupported(op) => write!(f, "operation not supported: {op}"),
            GreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            GreError::InvalidWorkload(msg) => write!(f, "invalid workload: {msg}"),
        }
    }
}

impl std::error::Error for GreError {}

/// Convenience result alias used across the workspace.
pub type Result<T> = std::result::Result<T, GreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(GreError::UnsortedBulkLoad.to_string().contains("ascending"));
        assert!(GreError::DuplicateKey.to_string().contains("duplicate"));
        assert!(GreError::KeyNotFound.to_string().contains("not found"));
        assert!(GreError::Unsupported("delete")
            .to_string()
            .contains("delete"));
        assert!(GreError::InvalidConfig("x".into())
            .to_string()
            .contains('x'));
        assert!(GreError::InvalidWorkload("y".into())
            .to_string()
            .contains('y'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<GreError>();
    }
}
