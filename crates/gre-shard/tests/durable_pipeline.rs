//! Kill-and-recover model equivalence for the durable pipeline, over real
//! backends (ALEX+ and B+treeOLC) and a matrix of scripted crash points.
//!
//! Protocol under test (see `docs/DURABILITY.md`): every sub-batch's writes
//! are group-committed to the per-shard WAL *before* execution, and a group
//! the log cannot accept answers `IndexError::Shutdown` without executing.
//! So at any crash point the set of accepted (non-error) responses is
//! exactly the durable state: rebuilding an index purely from disk must
//! reproduce the model of accepted operations — no lost ack, no ghost op.

use gre_core::{ConcurrentIndex, Payload, Response};
use gre_durability::util::TempDir;
use gre_durability::{DurableLog, FailAction, FailpointRegistry, Recovery, SyncPolicy, Trigger};
use gre_learned::AlexPlus;
use gre_shard::{OpBatch, Partitioner, ShardPipeline, ShardedIndex};
use gre_traditional::btree_olc;
use gre_workloads::Op;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

type DynBackend = Box<dyn ConcurrentIndex<u64>>;
type BackendFactory = fn() -> DynBackend;

fn backends() -> Vec<(&'static str, BackendFactory)> {
    vec![
        ("ALEX+", || Box::new(AlexPlus::<u64>::new())),
        ("B+treeOLC", || Box::new(btree_olc::<u64>())),
    ]
}

const SHARDS: usize = 4;

/// Apply `op` to the model iff the pipeline accepted it, asserting the live
/// response matched the model's prediction (single sequential submitter, so
/// accepted responses are deterministic).
fn apply_accepted(
    model: &mut BTreeMap<u64, Payload>,
    op: Op,
    resp: &Response<u64>,
    ctx: &str,
) -> bool {
    if resp.is_error() {
        return false;
    }
    let expected = match op {
        Op::Get(k) => Response::Get(model.get(&k).copied()),
        Op::Insert(k, v) => Response::Insert(model.insert(k, v).is_none()),
        Op::Update(k, v) => Response::Update(match model.get_mut(&k) {
            Some(slot) => {
                *slot = v;
                true
            }
            None => false,
        }),
        Op::Remove(k) => Response::Remove(model.remove(&k)),
        Op::Range(_) => unreachable!("write-and-get stream has no ranges"),
    };
    assert_eq!(*resp, expected, "{ctx}: accepted response diverges");
    true
}

fn random_write_or_get(rng: &mut StdRng) -> Op {
    let key = rng.gen_range(0..30_000u64);
    match rng.gen_range(0..8u32) {
        0..=1 => Op::Get(key),
        2..=4 => Op::Insert(key, rng.gen()),
        5..=6 => Op::Update(key, rng.gen()),
        _ => Op::Remove(key),
    }
}

/// Rebuild a single flat backend purely from the on-disk state (shards
/// partition the key space, so their union replays into one index), then
/// check it holds exactly the accepted-op model.
fn assert_disk_matches_model(
    dir: &std::path::Path,
    factory: BackendFactory,
    model: &BTreeMap<u64, Payload>,
    ctx: &str,
) -> Recovery {
    let rec = Recovery::recover(dir).unwrap();
    let mut rebuilt = factory();
    rec.replay_into(&mut *rebuilt);
    assert_eq!(rebuilt.len(), model.len(), "{ctx}: recovered size");
    for (&k, &v) in model {
        assert_eq!(rebuilt.get(k), Some(v), "{ctx}: key {k}");
    }
    rec
}

/// One full kill-and-recover round: bulk load + checkpoint, serve a seeded
/// write stream through a durable pipeline whose WAL crashes at a scripted
/// failpoint, "kill" the process (drop the pipeline; the injected sink has
/// already dropped whatever a real crash would lose), then recover from
/// disk and demand exact accepted-op equivalence. Returns the number of
/// refused ops so callers can assert the crash actually bit.
fn crash_round(name: &str, factory: BackendFactory, script: (&str, Trigger, FailAction)) -> usize {
    let (point, trigger, action) = script;
    let ctx = format!("{name}/{point:?}");
    let tmp = TempDir::new("durable-pipeline");

    let mut idx = ShardedIndex::from_factory(Partitioner::range(SHARDS), |_| factory());
    let bulk: Vec<(u64, Payload)> = (0..3_000u64).map(|i| (i * 7, i)).collect();
    idx.bulk_load(&bulk);
    let mut model: BTreeMap<u64, Payload> = bulk.iter().copied().collect();

    let registry = FailpointRegistry::new();
    registry.script(point, trigger, action);
    let log = DurableLog::create_injected(
        tmp.path(),
        SHARDS,
        SyncPolicy::EveryGroup,
        Arc::clone(&registry),
    )
    .unwrap();
    // The bulk load bypasses the pipeline; checkpoint it per shard so
    // recovery starts from the loaded state.
    for shard in 0..SHARDS {
        let mine: Vec<(u64, Payload)> = bulk
            .iter()
            .copied()
            .filter(|&(k, _)| idx.partitioner().shard_of(k) == shard)
            .collect();
        log.checkpoint(shard, &mine).unwrap();
    }

    let pipeline = ShardPipeline::with_durability(Arc::new(idx), 2, 64, log);
    let mut rng = StdRng::seed_from_u64(0xC4A54u64 ^ point.len() as u64);
    let mut refused = 0usize;
    for _ in 0..40 {
        let ops: Vec<Op> = (0..32).map(|_| random_write_or_get(&mut rng)).collect();
        let responses = pipeline.submit(OpBatch::new(ops.clone())).wait();
        for (&op, resp) in ops.iter().zip(&responses) {
            if !apply_accepted(&mut model, op, resp, &ctx) {
                refused += 1;
            }
        }
    }
    assert!(
        registry.fired(point),
        "{ctx}: the scripted failpoint never fired — the scenario is vacuous"
    );
    let live = Arc::clone(pipeline.index());
    drop(pipeline); // the "kill": workers join, survivor shards sync

    // The live in-memory state never ran ahead of the log (fail-stop)…
    assert_eq!(live.len(), model.len(), "{ctx}: live size");
    // …and the state rebuilt purely from disk is the accepted-op model.
    let rec = assert_disk_matches_model(tmp.path(), factory, &model, &ctx);

    // Recover-and-continue: resume the log (torn tails truncated, per-shard
    // seqs intact), serve more writes durably, and the *next* recovery must
    // still be exact — crash damage does not compound.
    let resumed = rec.resume(SyncPolicy::EveryGroup).unwrap();
    let mut idx2 = ShardedIndex::from_factory(Partitioner::range(SHARDS), |_| factory());
    let entries: Vec<(u64, Payload)> = model.iter().map(|(&k, &v)| (k, v)).collect();
    idx2.bulk_load(&entries);
    let pipeline = ShardPipeline::with_durability(Arc::new(idx2), 2, 64, resumed);
    for _ in 0..10 {
        let ops: Vec<Op> = (0..32).map(|_| random_write_or_get(&mut rng)).collect();
        let responses = pipeline.submit(OpBatch::new(ops.clone())).wait();
        for (&op, resp) in ops.iter().zip(&responses) {
            let accepted = apply_accepted(&mut model, op, resp, &ctx);
            assert!(accepted, "{ctx}: resumed log must accept every group");
        }
    }
    drop(pipeline);
    assert_disk_matches_model(tmp.path(), factory, &model, &format!("{ctx}/resumed"));
    refused
}

/// The crash matrix, elementwise: each scripted fault against each backend.
/// Sync crashes and append errors leave a clean (if shorter) log; short
/// writes leave a torn tail recovery must truncate. In every case the
/// crashed group was never acked, so equivalence stays exact.
#[test]
fn killed_mid_group_commit_recovers_to_accepted_state() {
    for (name, factory) in backends() {
        let refused = crash_round(
            name,
            factory,
            ("wal/0/sync", Trigger::OnHit(4), FailAction::Crash),
        );
        assert!(refused > 0, "{name}: a crashed shard must refuse later ops");
    }
}

#[test]
fn torn_write_at_injected_offset_recovers_to_accepted_state() {
    for (name, factory) in backends() {
        let refused = crash_round(
            name,
            factory,
            (
                "wal/1/append",
                Trigger::OnHit(3),
                FailAction::ShortWrite { keep: 9 },
            ),
        );
        assert!(refused > 0, "{name}: the torn shard must refuse later ops");
    }
}

#[test]
fn append_error_fail_stops_the_shard_and_recovers_exactly() {
    for (name, factory) in backends() {
        let refused = crash_round(
            name,
            factory,
            ("wal/2/append", Trigger::OnHit(2), FailAction::Error),
        );
        assert!(
            refused > 0,
            "{name}: the failed shard must refuse later ops"
        );
    }
}

#[test]
fn crash_at_byte_offset_recovers_to_accepted_state() {
    for (name, factory) in backends() {
        crash_round(
            name,
            factory,
            ("wal/3/append", Trigger::AtByte(600), FailAction::Crash),
        );
    }
}
