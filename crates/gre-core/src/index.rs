//! The index trait surface every evaluated structure implements.
//!
//! The GRE benchmark drives all indexes through the same operation set:
//! bulk load, point lookup, insert, delete, range scan, plus memory and
//! statistics reporting. Single-threaded indexes implement [`Index`]
//! (`&mut self` operations); concurrent derivatives (ALEX+, LIPP+, ART-OLC,
//! B+TreeOLC, HOT-ROWEX, XIndex, FINEdex, …) implement [`ConcurrentIndex`]
//! (`&self`, `Send + Sync`).

use crate::key::{Key, Payload};
use crate::stats::{InsertStats, StatsSnapshot};

/// Descriptive metadata about an index implementation, used by the harness
/// when printing tables (Table 1 of the paper) and heatmap legends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexMeta {
    /// Human-readable name as it appears in the paper ("ALEX", "LIPP+", …).
    pub name: &'static str,
    /// Whether this is a learned index (true) or a traditional one (false).
    pub learned: bool,
    /// Whether the structure supports concurrent operation.
    pub concurrent: bool,
    /// Whether deletions are implemented (the paper excludes several indexes
    /// from deletion experiments).
    pub supports_delete: bool,
    /// Whether range scans are implemented (Figure 13 only includes these).
    pub supports_range: bool,
}

/// A range scan request: fetch up to `count` entries with keys `>= start`
/// (and `<= end`, when an inclusive end bound is set).
///
/// The count-limited form matches the paper's range-query experiment (§6.3):
/// "Each query picks a random start key K and fetches a fixed number of keys
/// starting from K." The optional [`end`](RangeSpec::end) bound serves the
/// serving-layer API, where clients scan key windows rather than fixed key
/// counts; [`RangeSpec::bounded`] sets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeSpec<K> {
    pub start: K,
    pub count: usize,
    /// Inclusive upper key bound. `None` means count-limited only.
    pub end: Option<K>,
}

impl<K: Key> RangeSpec<K> {
    /// Count-limited scan: up to `count` entries with keys `>= start`.
    pub fn new(start: K, count: usize) -> Self {
        RangeSpec {
            start,
            count,
            end: None,
        }
    }

    /// Bounded scan: up to `count` entries with keys in `[start, end]`.
    pub fn bounded(start: K, end: K, count: usize) -> Self {
        RangeSpec {
            start,
            count,
            end: Some(end),
        }
    }

    /// Whether `key` falls inside this spec's key window.
    #[inline]
    pub fn admits(&self, key: K) -> bool {
        key >= self.start && self.end.map_or(true, |e| key <= e)
    }
}

/// Single-threaded updatable index over `(K, Payload)` pairs.
pub trait Index<K: Key>: Send {
    /// Bulk load from a slice sorted by strictly ascending key.
    ///
    /// Implementations may assume sortedness; the harness validates inputs.
    fn bulk_load(&mut self, entries: &[(K, Payload)]);

    /// Point lookup. Returns the payload of `key` if present. For indexes
    /// configured to store duplicates, any one matching payload is returned.
    fn get(&self, key: K) -> Option<Payload>;

    /// Insert a key/payload pair. Returns `true` if the key was newly
    /// inserted, `false` if an existing key's payload was updated in place
    /// (or, for duplicate-supporting configurations, appended).
    fn insert(&mut self, key: K, value: Payload) -> bool;

    /// Update the payload of an existing key in place. Returns `false` if the
    /// key is absent. The default goes through `insert`.
    fn update(&mut self, key: K, value: Payload) -> bool {
        if self.get(key).is_some() {
            self.insert(key, value);
            true
        } else {
            false
        }
    }

    /// Remove a key. Returns its payload if it was present.
    fn remove(&mut self, key: K) -> Option<Payload>;

    /// Range scan: append up to `spec.count` entries with key `>= spec.start`
    /// in ascending key order to `out`, returning the number appended.
    fn range(&self, spec: RangeSpec<K>, out: &mut Vec<(K, Payload)>) -> usize;

    /// Number of entries currently stored.
    fn len(&self) -> usize;

    /// True when no entries are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// End-to-end memory consumption in bytes, including the leaf layer
    /// (the paper's §5 measures end-to-end space, not just inner nodes).
    fn memory_usage(&self) -> usize;

    /// Statistics accumulated since construction or the last `reset_stats`.
    fn stats(&self) -> StatsSnapshot {
        StatsSnapshot::default()
    }

    /// Reset accumulated statistics.
    fn reset_stats(&mut self) {}

    /// Detailed breakdown of the most recent insert (Figure 3 / Table 3).
    fn last_insert_stats(&self) -> InsertStats {
        InsertStats::default()
    }

    /// Index metadata for reporting.
    fn meta(&self) -> IndexMeta;
}

/// Concurrent updatable index: same operation set, `&self` receivers.
pub trait ConcurrentIndex<K: Key>: Send + Sync {
    /// Bulk load from a sorted slice. Called before concurrent operation
    /// starts, so it takes `&mut self`.
    fn bulk_load(&mut self, entries: &[(K, Payload)]);

    /// Point lookup.
    fn get(&self, key: K) -> Option<Payload>;

    /// Batched point lookup: `out[i]` is the result of `get(keys[i])`.
    ///
    /// The default is the scalar loop, so every backend gets the batched
    /// entry point for free and callers (the `gre-shard` request pipeline,
    /// harness binaries) can always hand over a group of keys. Structures
    /// with a predictable search path override this with an interleaved,
    /// software-pipelined version (issue model predictions for the whole
    /// group, prefetch the predicted positions, then finish the bounded
    /// local searches) — see ALEX+ in `gre-learned`.
    ///
    /// # Contract
    ///
    /// `out` is cleared first; afterwards `out.len() == keys.len()` and each
    /// `out[i]` equals what a scalar `get(keys[i])` at some point during the
    /// call would have returned. Duplicated keys are looked up once each, in
    /// order.
    fn get_batch(&self, keys: &[K], out: &mut Vec<Option<Payload>>) {
        out.clear();
        out.extend(keys.iter().map(|&k| self.get(k)));
    }

    /// Insert or update.
    fn insert(&self, key: K, value: Payload) -> bool;

    /// Update payload of an existing key; `false` if absent.
    ///
    /// # Atomicity contract
    ///
    /// An implementation must make the presence check and the payload write
    /// appear as **one** atomic step with respect to other operations on the
    /// same key: a concurrent `update`/`insert`/`remove` of that key may be
    /// ordered before or after it, but never in between.
    ///
    /// This method is deliberately **required** (no provided default): the
    /// obvious `get`-then-`insert` composition spans two critical sections,
    /// so a racing `remove` can slip in between (resurrecting the key) and a
    /// racing `update` can be lost. Every backend must implement a
    /// single-critical-section version — see [`MutexIndex`] for the minimal
    /// correct shape.
    fn update(&self, key: K, value: Payload) -> bool;

    /// Remove a key.
    fn remove(&self, key: K) -> Option<Payload>;

    /// Range scan.
    fn range(&self, spec: RangeSpec<K>, out: &mut Vec<(K, Payload)>) -> usize;

    /// Remove every entry with key in `[lo, hi)` (`hi = None` means up to
    /// the domain maximum) and append the removed `(key, payload)` pairs to
    /// `out` in ascending key order. Returns the number extracted.
    ///
    /// This is the bulk-extraction primitive of shard migration: the
    /// elasticity controller vacates the moving range from the source shard
    /// with one call instead of a scan-then-remove loop per key. The default
    /// composes `range` + `remove` in bounded chunks, so it requires both
    /// `supports_range` and `supports_delete` (callers gate on
    /// [`ConcurrentIndex::meta`]); backends with a cheaper internal path may
    /// override it.
    ///
    /// The default is **not** atomic with respect to concurrent writers in
    /// the window — the migration protocol guarantees exclusivity by
    /// freezing routing for the range first.
    fn extract_range(&self, lo: K, hi: Option<K>, out: &mut Vec<(K, Payload)>) -> usize {
        const CHUNK: usize = 1024;
        let before = out.len();
        let mut buf: Vec<(K, Payload)> = Vec::with_capacity(CHUNK);
        loop {
            buf.clear();
            // Re-scan from `lo` every round: extracted keys are gone, so the
            // scan window slides forward without needing a key successor.
            let got = self.range(RangeSpec::new(lo, CHUNK), &mut buf);
            let mut removed_any = false;
            let mut past_hi = false;
            for &(k, _) in buf.iter() {
                if hi.is_some_and(|h| k >= h) {
                    past_hi = true;
                    break;
                }
                if let Some(v) = self.remove(k) {
                    out.push((k, v));
                    removed_any = true;
                }
            }
            // Terminate when the window is exhausted, the scan ran past the
            // upper bound, or nothing was removable (a backend without
            // working deletes must not spin forever).
            if past_hi || got < CHUNK || !removed_any {
                break;
            }
        }
        out.len() - before
    }

    /// Bulk-absorb `entries` (ascending by key, disjoint from the stored
    /// keys — the migration protocol's freeze guarantees both).
    ///
    /// This is the bulk-load half of shard migration: the elasticity
    /// controller lands an extracted range in the target shard with one
    /// call. The default inserts one key at a time, which is correct for
    /// every backend but leaves incrementally-grown structure behind;
    /// learned indexes override it to rebuild the touched region with their
    /// bulk-load machinery, so a migrated range serves at bulk-loaded speed
    /// rather than at insert-aged speed.
    fn absorb_range(&self, entries: &[(K, Payload)]) {
        for &(k, v) in entries {
            self.insert(k, v);
        }
    }

    /// Number of entries (may be approximate while writers are active).
    fn len(&self) -> usize;

    /// True when no entries are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// End-to-end memory consumption in bytes.
    fn memory_usage(&self) -> usize;

    /// Statistics accumulated since construction or the last `reset_stats`.
    /// Counters may be slightly stale while writers are active.
    fn stats(&self) -> StatsSnapshot {
        StatsSnapshot::default()
    }

    /// Reset accumulated statistics. Takes `&self` so the harness can reset
    /// between measurement phases without exclusive access.
    fn reset_stats(&self) {}

    /// Detailed breakdown of the most recent insert (Figure 3 / Table 3).
    fn last_insert_stats(&self) -> InsertStats {
        InsertStats::default()
    }

    /// Index metadata for reporting.
    fn meta(&self) -> IndexMeta;
}

/// Boxed single-threaded indexes are indexes: forwarding impl so harness
/// code can treat `Box<dyn Index<K>>` (and boxes of concrete indexes)
/// uniformly with unboxed backends. Forwards every method, including the
/// defaulted ones, so overrides in the boxed type are preserved.
impl<K: Key, T: Index<K> + ?Sized> Index<K> for Box<T> {
    fn bulk_load(&mut self, entries: &[(K, Payload)]) {
        (**self).bulk_load(entries);
    }
    fn get(&self, key: K) -> Option<Payload> {
        (**self).get(key)
    }
    fn insert(&mut self, key: K, value: Payload) -> bool {
        (**self).insert(key, value)
    }
    fn update(&mut self, key: K, value: Payload) -> bool {
        (**self).update(key, value)
    }
    fn remove(&mut self, key: K) -> Option<Payload> {
        (**self).remove(key)
    }
    fn range(&self, spec: RangeSpec<K>, out: &mut Vec<(K, Payload)>) -> usize {
        (**self).range(spec, out)
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }
    fn memory_usage(&self) -> usize {
        (**self).memory_usage()
    }
    fn stats(&self) -> StatsSnapshot {
        (**self).stats()
    }
    fn reset_stats(&mut self) {
        (**self).reset_stats();
    }
    fn last_insert_stats(&self) -> InsertStats {
        (**self).last_insert_stats()
    }
    fn meta(&self) -> IndexMeta {
        (**self).meta()
    }
}

/// Boxed concurrent indexes are concurrent indexes. This is what lets a
/// composite structure (e.g. `gre-shard`'s `ShardedIndex`) hold
/// `Box<dyn ConcurrentIndex<K>>` backends chosen at runtime while itself
/// implementing `ConcurrentIndex<K>`.
impl<K: Key, T: ConcurrentIndex<K> + ?Sized> ConcurrentIndex<K> for Box<T> {
    fn bulk_load(&mut self, entries: &[(K, Payload)]) {
        (**self).bulk_load(entries);
    }
    fn get(&self, key: K) -> Option<Payload> {
        (**self).get(key)
    }
    fn get_batch(&self, keys: &[K], out: &mut Vec<Option<Payload>>) {
        (**self).get_batch(keys, out);
    }
    fn insert(&self, key: K, value: Payload) -> bool {
        (**self).insert(key, value)
    }
    fn update(&self, key: K, value: Payload) -> bool {
        (**self).update(key, value)
    }
    fn remove(&self, key: K) -> Option<Payload> {
        (**self).remove(key)
    }
    fn range(&self, spec: RangeSpec<K>, out: &mut Vec<(K, Payload)>) -> usize {
        (**self).range(spec, out)
    }
    fn extract_range(&self, lo: K, hi: Option<K>, out: &mut Vec<(K, Payload)>) -> usize {
        (**self).extract_range(lo, hi, out)
    }
    fn absorb_range(&self, entries: &[(K, Payload)]) {
        (**self).absorb_range(entries)
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }
    fn memory_usage(&self) -> usize {
        (**self).memory_usage()
    }
    fn stats(&self) -> StatsSnapshot {
        (**self).stats()
    }
    fn reset_stats(&self) {
        (**self).reset_stats();
    }
    fn last_insert_stats(&self) -> InsertStats {
        (**self).last_insert_stats()
    }
    fn meta(&self) -> IndexMeta {
        (**self).meta()
    }
}

/// Blanket adapter: any single-threaded index wrapped in a global mutex
/// becomes a (trivially serialized) concurrent index. The harness uses this
/// only for sanity checks, never for the scalability experiments.
pub struct MutexIndex<I> {
    inner: parking_lot::Mutex<I>,
    name: &'static str,
}

impl<I> MutexIndex<I> {
    pub fn new(inner: I, name: &'static str) -> Self {
        MutexIndex {
            inner: parking_lot::Mutex::new(inner),
            name,
        }
    }
}

impl<K: Key, I: Index<K>> ConcurrentIndex<K> for MutexIndex<I> {
    fn bulk_load(&mut self, entries: &[(K, Payload)]) {
        self.inner.get_mut().bulk_load(entries);
    }

    fn get(&self, key: K) -> Option<Payload> {
        self.inner.lock().get(key)
    }

    fn get_batch(&self, keys: &[K], out: &mut Vec<Option<Payload>>) {
        // One lock() for the whole batch instead of one per key.
        let inner = self.inner.lock();
        out.clear();
        out.extend(keys.iter().map(|&k| inner.get(k)));
    }

    fn insert(&self, key: K, value: Payload) -> bool {
        self.inner.lock().insert(key, value)
    }

    fn update(&self, key: K, value: Payload) -> bool {
        // One lock() for the whole check-then-write, satisfying the trait's
        // atomicity contract; the defaulted get-then-insert would open a
        // lost-update window between its two critical sections.
        self.inner.lock().update(key, value)
    }

    fn remove(&self, key: K) -> Option<Payload> {
        self.inner.lock().remove(key)
    }

    fn range(&self, spec: RangeSpec<K>, out: &mut Vec<(K, Payload)>) -> usize {
        self.inner.lock().range(spec, out)
    }

    fn len(&self) -> usize {
        self.inner.lock().len()
    }

    fn memory_usage(&self) -> usize {
        self.inner.lock().memory_usage()
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.lock().stats()
    }

    fn reset_stats(&self) {
        self.inner.lock().reset_stats();
    }

    fn last_insert_stats(&self) -> InsertStats {
        self.inner.lock().last_insert_stats()
    }

    fn meta(&self) -> IndexMeta {
        let mut meta = self.inner.lock().meta();
        meta.name = self.name;
        meta.concurrent = true;
        meta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// A reference index backed by `BTreeMap`, used here to exercise the
    /// trait defaults and by other crates' property tests as the model.
    /// Tracks insert/lookup counters so adapter stats forwarding is testable.
    #[derive(Default)]
    pub struct ModelIndex {
        map: BTreeMap<u64, Payload>,
        counters: crate::stats::OpCounters,
    }

    impl Index<u64> for ModelIndex {
        fn bulk_load(&mut self, entries: &[(u64, Payload)]) {
            self.map = entries.iter().copied().collect();
        }
        fn get(&self, key: u64) -> Option<Payload> {
            self.map.get(&key).copied()
        }
        fn insert(&mut self, key: u64, value: Payload) -> bool {
            self.counters.record_insert(&InsertStats::default());
            self.map.insert(key, value).is_none()
        }
        fn remove(&mut self, key: u64) -> Option<Payload> {
            self.map.remove(&key)
        }
        fn stats(&self) -> StatsSnapshot {
            StatsSnapshot::new(self.counters)
        }
        fn reset_stats(&mut self) {
            self.counters = Default::default();
        }
        fn range(&self, spec: RangeSpec<u64>, out: &mut Vec<(u64, Payload)>) -> usize {
            let before = out.len();
            out.extend(
                self.map
                    .range(spec.start..)
                    .take_while(|(k, _)| spec.end.map_or(true, |e| **k <= e))
                    .take(spec.count)
                    .map(|(k, v)| (*k, *v)),
            );
            out.len() - before
        }
        fn len(&self) -> usize {
            self.map.len()
        }
        fn memory_usage(&self) -> usize {
            self.map.len() * 48
        }
        fn meta(&self) -> IndexMeta {
            IndexMeta {
                name: "model",
                learned: false,
                concurrent: false,
                supports_delete: true,
                supports_range: true,
            }
        }
    }

    #[test]
    fn model_index_basics() {
        let mut idx = ModelIndex::default();
        idx.bulk_load(&[(1, 10), (5, 50), (9, 90)]);
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
        assert_eq!(idx.get(5), Some(50));
        assert_eq!(idx.get(4), None);
        assert!(idx.insert(4, 40));
        assert!(!idx.insert(4, 41));
        assert!(idx.update(4, 42));
        assert!(!idx.update(100, 1));
        assert_eq!(idx.remove(4), Some(42));
        let mut out = Vec::new();
        assert_eq!(idx.range(RangeSpec::new(2, 10), &mut out), 2);
        assert_eq!(out, vec![(5, 50), (9, 90)]);
    }

    #[test]
    fn mutex_adapter_serializes_access() {
        let mut wrapped = MutexIndex::new(ModelIndex::default(), "model-mutex");
        ConcurrentIndex::bulk_load(&mut wrapped, &[(1, 1), (2, 2)]);
        assert_eq!(ConcurrentIndex::get(&wrapped, 1), Some(1));
        assert!(ConcurrentIndex::insert(&wrapped, 3, 3));
        assert!(ConcurrentIndex::update(&wrapped, 3, 33));
        assert_eq!(ConcurrentIndex::remove(&wrapped, 3), Some(33));
        assert_eq!(ConcurrentIndex::len(&wrapped), 2);
        assert!(ConcurrentIndex::memory_usage(&wrapped) > 0);
        assert_eq!(ConcurrentIndex::meta(&wrapped).name, "model-mutex");
        assert!(ConcurrentIndex::meta(&wrapped).concurrent);

        // Concurrent hammering through the adapter must not lose updates.
        let wrapped = std::sync::Arc::new(wrapped);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let w = std::sync::Arc::clone(&wrapped);
                s.spawn(move || {
                    for i in 0..250u64 {
                        w.insert(1000 + t * 1000 + i, i);
                    }
                });
            }
        });
        assert_eq!(wrapped.len(), 2 + 4 * 250);
    }

    #[test]
    fn mutex_adapter_forwards_stats() {
        let wrapped = MutexIndex::new(ModelIndex::default(), "model-mutex");
        wrapped.insert(1, 1);
        wrapped.insert(2, 2);
        assert_eq!(
            wrapped.stats().counters.inserts,
            2,
            "stats must come from the inner index, not the trait default"
        );
        ConcurrentIndex::reset_stats(&wrapped);
        assert_eq!(wrapped.stats().counters.inserts, 0);
        assert_eq!(wrapped.last_insert_stats(), InsertStats::default());
    }

    #[test]
    fn get_batch_matches_scalar_gets_in_order() {
        let mut wrapped = MutexIndex::new(ModelIndex::default(), "model-mutex");
        ConcurrentIndex::bulk_load(&mut wrapped, &[(1, 10), (2, 20), (5, 50)]);
        let keys = [5u64, 4, 1, 5, 2];
        let mut out = vec![Some(999)]; // stale content must be cleared
        wrapped.get_batch(&keys, &mut out);
        let scalar: Vec<_> = keys.iter().map(|&k| wrapped.get(k)).collect();
        assert_eq!(out, scalar);
        assert_eq!(out, vec![Some(50), None, Some(10), Some(50), Some(20)]);
        // Empty batches clear the output vector.
        wrapped.get_batch(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn boxed_index_forwards_everything() {
        let mut boxed: Box<dyn Index<u64>> = Box::new(ModelIndex::default());
        boxed.bulk_load(&[(1, 10), (2, 20)]);
        assert_eq!(boxed.len(), 2);
        assert!(!boxed.is_empty());
        assert!(boxed.insert(3, 30));
        assert!(boxed.update(3, 33));
        assert_eq!(boxed.get(3), Some(33));
        assert_eq!(boxed.remove(3), Some(33));
        let mut out = Vec::new();
        assert_eq!(boxed.range(RangeSpec::new(0, 10), &mut out), 2);
        assert!(boxed.memory_usage() > 0);
        // The inner ModelIndex counted 2 inserts (insert + update-via-insert);
        // the Box impl must surface them instead of the defaulted zeros.
        assert_eq!(boxed.stats().counters.inserts, 2);
        boxed.reset_stats();
        assert_eq!(boxed.stats().counters.inserts, 0);
        assert_eq!(boxed.meta().name, "model");
    }

    #[test]
    fn boxed_concurrent_index_forwards_everything() {
        let mut boxed: Box<dyn ConcurrentIndex<u64>> =
            Box::new(MutexIndex::new(ModelIndex::default(), "boxed-model"));
        boxed.bulk_load(&[(1, 10), (2, 20)]);
        assert_eq!(boxed.len(), 2);
        assert!(!boxed.is_empty());
        assert!(boxed.insert(3, 30));
        assert!(boxed.update(3, 33));
        assert!(!boxed.update(99, 1));
        assert_eq!(boxed.get(3), Some(33));
        assert_eq!(boxed.remove(3), Some(33));
        let mut out = Vec::new();
        assert_eq!(boxed.range(RangeSpec::new(0, 10), &mut out), 2);
        assert!(boxed.memory_usage() > 0);
        assert!(boxed.stats().counters.inserts > 0);
        boxed.reset_stats();
        assert_eq!(boxed.stats().counters.inserts, 0);
        assert_eq!(boxed.last_insert_stats(), InsertStats::default());
        assert_eq!(boxed.meta().name, "boxed-model");
    }

    #[test]
    fn extract_range_default_vacates_the_window() {
        let mut wrapped = MutexIndex::new(ModelIndex::default(), "model-mutex");
        let entries: Vec<(u64, Payload)> = (0..5_000u64).map(|i| (i * 3, i)).collect();
        ConcurrentIndex::bulk_load(&mut wrapped, &entries);

        // Bounded window [3000, 9000): hi is exclusive.
        let mut moved = Vec::new();
        let got = wrapped.extract_range(3_000, Some(9_000), &mut moved);
        assert_eq!(got, moved.len());
        assert_eq!(moved.len(), 2_000); // keys 3000, 3003, …, 8997
        assert!(moved.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(moved.iter().all(|&(k, _)| (3_000..9_000).contains(&k)));
        assert_eq!(wrapped.get(3_000), None);
        assert_eq!(wrapped.get(8_997), None);
        assert_eq!(wrapped.get(2_997), Some(999));
        assert_eq!(wrapped.get(9_000), Some(3_000));
        assert_eq!(wrapped.len(), 5_000 - 2_000);

        // Unbounded tail: everything from lo upward moves out.
        moved.clear();
        let got = wrapped.extract_range(9_000, None, &mut moved);
        assert_eq!(got, 5_000 - 3_000);
        assert_eq!(wrapped.len(), 1_000);

        // Empty window extracts nothing.
        moved.clear();
        assert_eq!(wrapped.extract_range(3_000, Some(3_000), &mut moved), 0);
        assert!(moved.is_empty());
    }

    #[test]
    fn range_spec_constructor() {
        let spec = RangeSpec::new(7u64, 3);
        assert_eq!(spec.start, 7);
        assert_eq!(spec.count, 3);
        assert_eq!(spec.end, None);
        assert!(spec.admits(7));
        assert!(spec.admits(u64::MAX));
        assert!(!spec.admits(6));
    }

    #[test]
    fn bounded_range_spec_clips_at_the_end_key() {
        let spec = RangeSpec::bounded(2u64, 6, 100);
        assert_eq!(spec.end, Some(6));
        assert!(spec.admits(2) && spec.admits(6));
        assert!(!spec.admits(7));

        let mut idx = ModelIndex::default();
        idx.bulk_load(&[(1, 10), (3, 30), (5, 50), (7, 70), (9, 90)]);
        let mut out = Vec::new();
        // End bound clips before the count limit does.
        assert_eq!(idx.range(spec, &mut out), 2);
        assert_eq!(out, vec![(3, 30), (5, 50)]);
        // Count still limits a wide window.
        out.clear();
        assert_eq!(idx.range(RangeSpec::bounded(0, 100, 2), &mut out), 2);
        assert_eq!(out, vec![(1, 10), (3, 30)]);
        // An inverted window yields nothing.
        out.clear();
        assert_eq!(idx.range(RangeSpec::bounded(8, 2, 10), &mut out), 0);
    }
}
