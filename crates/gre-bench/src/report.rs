//! Shared latency-report formatting for the per-figure binaries' verbose
//! mode: per-[`RequestKind`](gre_core::RequestKind) summary lines so read
//! and write tails stay separable in the printed output.

use gre_core::LatencyHistogram;
use gre_workloads::driver::PhaseResult;
use gre_workloads::KindSummaries;

/// Print one line per request kind that recorded samples:
/// `kind  n  p50  p99  p999  max` (latencies in µs).
pub fn print_kind_latency(indent: &str, kinds: &KindSummaries) {
    for (kind, s) in kinds.iter_nonempty() {
        println!(
            "{indent}{:<7} n={:<9} p50={:>9.1}us p99={:>9.1}us p999={:>9.1}us max={:>9.1}us",
            kind.label(),
            s.samples,
            s.p50_ns as f64 / 1e3,
            s.p99_ns as f64 / 1e3,
            s.p999_ns as f64 / 1e3,
            s.max_ns as f64 / 1e3,
        );
    }
}

/// Per-kind latency lines for one scenario phase.
pub fn print_phase_latency(indent: &str, phase: &PhaseResult) {
    print_kind_latency(indent, &KindSummaries::from_kind_latency(&phase.latency));
}

/// A condensed `completions-per-interval` view of a phase's throughput
/// series: `interval_s` column pairs, at most `max_cols` of them (evenly
/// subsampled beyond that).
pub fn interval_series(phase: &PhaseResult, max_cols: usize) -> String {
    let n = phase.intervals.len();
    if n == 0 || max_cols == 0 {
        return String::from("(no intervals)");
    }
    let stride = n.div_ceil(max_cols);
    let secs = phase.interval_ns as f64 / 1e9;
    phase
        .intervals
        .chunks(stride)
        .enumerate()
        .map(|(i, chunk)| {
            let total: u64 = chunk.iter().sum();
            let rate = total as f64 / (chunk.len() as f64 * secs);
            format!("{:.1}s:{:.0}/s", i as f64 * stride as f64 * secs, rate)
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// A condensed per-interval latency view of a phase: `t:p50/p99` column
/// pairs in µs, at most `max_cols` of them (adjacent interval histograms
/// are merged beyond that). Intervals without a timed completion print `-`.
pub fn interval_latency_series(phase: &PhaseResult, max_cols: usize) -> String {
    let n = phase.interval_latency.len();
    if n == 0 || max_cols == 0 {
        return String::from("(no intervals)");
    }
    let stride = n.div_ceil(max_cols);
    let secs = phase.interval_ns as f64 / 1e9;
    phase
        .interval_latency
        .chunks(stride)
        .enumerate()
        .map(|(i, chunk)| {
            let t = i as f64 * stride as f64 * secs;
            let mut merged = LatencyHistogram::new();
            for h in chunk {
                merged.merge(h);
            }
            if merged.count() == 0 {
                format!("{t:.1}s:-")
            } else {
                format!(
                    "{t:.1}s:{:.0}/{:.0}us",
                    merged.percentile(0.5) as f64 / 1e3,
                    merged.percentile(0.99) as f64 / 1e3,
                )
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}
