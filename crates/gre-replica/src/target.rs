//! [`ReplicatedTarget`]: the replicated serving adapter the `Scenario` /
//! `Driver` machinery drives unchanged.
//!
//! Writes forward to a durable primary [`PipelineTarget`] (so every write is
//! group-committed to the per-shard WAL before it executes); reads fan out
//! across the replica set under the configured [`ReadPolicy`], with
//! SLO-driven admission shedding or redirecting reads away from replicas
//! whose p99-over-interval breaches the target.

use crate::set::{spawn_shipper, ReplicaNode, ShipperConfig};
use crate::slo::SloTarget;
use gre_core::ops::RequestKind;
use gre_core::{ConcurrentIndex, IndexError, Payload, RangeSpec, ReadPolicy, Response};
use gre_durability::{DurableLog, FailpointRegistry, LogFollower, SyncPolicy};
use gre_shard::{PipelineTarget, RetryPolicy, ShardPipeline};
use gre_telemetry::{CounterId, Telemetry};
use gre_workloads::driver::{Connection, PhaseRecorder, ServeTarget};
use gre_workloads::Op;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long [`ReplicatedTarget::quiesce`] waits for shipping to catch up
/// before declaring the replica set wedged.
const QUIESCE_TIMEOUT: Duration = Duration::from_secs(30);

/// A replicated serving target: a write-forwarding durable primary plus `n`
/// read replicas fed by WAL log-shipping.
///
/// Construction is two-stage, like the other serve targets: the builder
/// configures topology and policy, and [`ServeTarget::load`] materialises
/// the replica set (bulk-seeding each replica from the loaded primary and
/// starting its shipper thread). The driver's own `load` call makes this
/// transparent; a test may also `load` ahead of the driver to grab handles.
pub struct ReplicatedTarget<B: ConcurrentIndex<u64> + 'static> {
    /// Always `Some`; optional only so the consuming builder methods can
    /// move it despite the `Drop` impl.
    primary: Option<PipelineTarget<B>>,
    /// Builds one backend instance per (replica, shard); locked because
    /// `ServeTarget` requires `Sync` while `FnMut` is not.
    factory: Mutex<Box<dyn FnMut(usize) -> B + Send>>,
    wal_dir: PathBuf,
    replica_count: usize,
    replica_workers: usize,
    batch: usize,
    policy: ReadPolicy,
    slo: Option<SloTarget>,
    poll_interval: Duration,
    failpoints: Option<Arc<FailpointRegistry>>,
    /// Stripe the connections and shippers count into (the submitter
    /// stripe of the primary's telemetry topology).
    stripe: usize,
    nodes: Vec<Arc<ReplicaNode<B>>>,
    shippers: Vec<Option<JoinHandle<()>>>,
}

impl<B: ConcurrentIndex<u64> + 'static> ReplicatedTarget<B> {
    /// A replicated target serving `index` as the primary through a
    /// `workers`-thread pipeline in `batch`-op batches, with the WAL (and
    /// therefore the shipping stream) rooted at `wal_dir`. `factory` builds
    /// one replica backend per shard; it must produce the same index type
    /// the primary runs so replica state stays model-comparable.
    ///
    /// Defaults: 1 replica, replica pipelines sized like the primary,
    /// [`ReadPolicy::RoundRobin`], no SLO admission, `EveryGroup` syncs.
    pub fn new(
        index: gre_shard::ShardedIndex<u64, B>,
        workers: usize,
        batch: usize,
        wal_dir: impl AsRef<Path>,
        factory: impl FnMut(usize) -> B + Send + 'static,
    ) -> Self {
        let wal_dir = wal_dir.as_ref().to_path_buf();
        ReplicatedTarget {
            primary: Some(
                PipelineTarget::new(index, workers, batch)
                    .durable(&wal_dir, SyncPolicy::EveryGroup),
            ),
            factory: Mutex::new(Box::new(factory)),
            wal_dir,
            replica_count: 1,
            replica_workers: workers,
            batch: batch.max(1),
            policy: ReadPolicy::RoundRobin,
            slo: None,
            poll_interval: Duration::from_micros(200),
            failpoints: None,
            stripe: workers,
            nodes: Vec::new(),
            shippers: Vec::new(),
        }
    }

    /// Set the replica count (0 is allowed: a pure write-forwarding
    /// baseline where every read serves from the primary).
    pub fn with_replicas(mut self, n: usize) -> Self {
        self.replica_count = n;
        self
    }

    /// Worker threads per replica pipeline (clamped to the shard count by
    /// the pipeline itself).
    pub fn replica_workers(mut self, workers: usize) -> Self {
        self.replica_workers = workers.max(1);
        self
    }

    /// Read placement policy.
    pub fn read_policy(mut self, policy: ReadPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enable SLO-driven admission: each replica tracks its read p99 over
    /// `target.interval`, and reads are redirected off (or, when every
    /// replica is in breach, shed with [`IndexError::Overloaded`]) a
    /// breached replica.
    pub fn with_slo(mut self, target: SloTarget) -> Self {
        self.slo = Some(target);
        self
    }

    /// Shipper idle poll interval (how quickly replicas notice new WAL
    /// records when the stream goes quiet).
    pub fn poll_interval(mut self, interval: Duration) -> Self {
        self.poll_interval = interval;
        self
    }

    /// Attach a failpoint registry; shippers evaluate
    /// [`crate::set::apply_failpoint`] once per applied record.
    pub fn with_failpoints(mut self, registry: Arc<FailpointRegistry>) -> Self {
        self.failpoints = Some(registry);
        self
    }

    fn map_primary(mut self, f: impl FnOnce(PipelineTarget<B>) -> PipelineTarget<B>) -> Self {
        self.primary = Some(f(self.primary.take().expect("primary present")));
        self
    }

    /// Override the primary WAL's sync policy.
    pub fn sync(self, policy: SyncPolicy) -> Self {
        let dir = self.wal_dir.clone();
        self.map_primary(|p| p.durable(dir, policy))
    }

    /// Retry rejected primary submissions per `policy` (see
    /// [`PipelineTarget::with_retry`]).
    pub fn with_retry(self, policy: RetryPolicy) -> Self {
        self.map_primary(|p| p.with_retry(policy))
    }

    /// Attach runtime telemetry (sized for the primary's topology; shed,
    /// redirect, and shipping metrics land in the same registry).
    pub fn instrumented(self) -> Self {
        self.map_primary(PipelineTarget::instrumented)
    }

    /// The attached telemetry, when [`ReplicatedTarget::instrumented`].
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.primary().telemetry()
    }

    /// The primary serve target.
    pub fn primary(&self) -> &PipelineTarget<B> {
        self.primary.as_ref().expect("primary present")
    }

    /// The replica set (empty until loaded).
    pub fn nodes(&self) -> &[Arc<ReplicaNode<B>>] {
        &self.nodes
    }

    /// The primary's live WAL, once loaded.
    pub fn log(&self) -> Option<&Arc<DurableLog>> {
        self.primary().durability()
    }

    /// Per-shard committed sequence numbers (the shipping targets replicas
    /// chase). Panics before load.
    pub fn committed(&self) -> Vec<u64> {
        let log = self.log().expect("target not loaded");
        (0..log.shards()).map(|s| log.next_seq(s) - 1).collect()
    }

    /// Stop replica `i`'s shipper and wait for it to exit: the controlled
    /// half of the kill drill. The replica keeps serving (stale) reads
    /// under lag-blind policies; its watermark freezes.
    pub fn kill_replica(&mut self, i: usize) {
        self.nodes[i].request_stop();
        if let Some(handle) = self.shippers[i].take() {
            handle.join().expect("shipper panicked");
        }
    }

    /// Restart replica `i`'s shipper, resuming the shipping stream from
    /// the replica's own applied watermark — the re-join path after a
    /// crash or a [`ReplicatedTarget::kill_replica`]. Records at or below
    /// the watermark are skipped by the follower, so nothing is applied
    /// twice; everything after it replays, so nothing is lost.
    pub fn rejoin_replica(&mut self, i: usize) -> io::Result<()> {
        if let Some(handle) = self.shippers[i].take() {
            let _ = handle.join();
        }
        let log = self.log().expect("target not loaded").clone();
        let node = &self.nodes[i];
        let follower = LogFollower::resume(log.dir(), &node.watermark().snapshot())?;
        self.shippers[i] = Some(spawn_shipper(
            Arc::clone(node),
            follower,
            ShipperConfig {
                log,
                telemetry: self.telemetry().cloned(),
                failpoints: self.failpoints.clone(),
                poll_interval: self.poll_interval,
                stripe: self.stripe,
            },
        ));
        Ok(())
    }

    /// Drain the primary pipeline, sync the WAL, and wait until every
    /// *live* replica's watermark covers everything committed. After this
    /// returns, each live replica's state is byte-equivalent to the
    /// primary's (crashed replicas are left where they stopped).
    ///
    /// Panics if shipping fails to converge within 30 s — a wedged shipper
    /// is a bug, not a condition to serve through.
    pub fn quiesce(&self) {
        if let Some(pipeline) = self.primary().pipeline_handle() {
            pipeline.drain_barrier().wait();
        }
        let log = self.log().expect("target not loaded");
        log.sync_all().expect("wal sync failed");
        let targets = self.committed();
        let deadline = Instant::now() + QUIESCE_TIMEOUT;
        for node in self.nodes.iter().filter(|n| n.is_running()) {
            while node.watermark().total_lag(&targets) > 0 {
                assert!(
                    Instant::now() < deadline,
                    "replica {} failed to catch up to {targets:?} (at {:?})",
                    node.id(),
                    node.watermark().snapshot()
                );
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
}

impl<B: ConcurrentIndex<u64> + 'static> ServeTarget for ReplicatedTarget<B> {
    fn describe(&self) -> String {
        format!(
            "{} ×{} replicas [ship policy={}{}]",
            self.primary().describe(),
            self.replica_count,
            self.policy,
            if self.slo.is_some() { " slo" } else { "" }
        )
    }

    fn load(&mut self, entries: &[(u64, Payload)]) {
        let primary = self.primary.as_mut().expect("primary present");
        primary.load(entries);
        if !self.nodes.is_empty() {
            return;
        }
        let primary = self.primary.as_ref().expect("primary present");
        let log = primary
            .durability()
            .expect("replicated target primary is always durable")
            .clone();
        // Seed replicas from the *primary's* post-load state, not from
        // `entries`: on a restart the primary recovers its durable history,
        // which is what replicas must mirror. Load precedes traffic, so
        // the scan is race-free.
        let primary_index = primary.index();
        let mut seed = Vec::with_capacity(primary_index.len());
        primary_index.range(RangeSpec::new(0, usize::MAX), &mut seed);
        let shards = primary_index.num_shards();
        let baselines: Vec<u64> = (0..shards).map(|s| log.next_seq(s) - 1).collect();
        let mut factory = self.factory.lock().expect("factory poisoned");
        for id in 0..self.replica_count {
            let mut index = primary_index.sibling_from_factory(&mut **factory);
            index.bulk_load(&seed);
            let index = Arc::new(index);
            let pipeline = Arc::new(ShardPipeline::new(Arc::clone(&index), self.replica_workers));
            let node = ReplicaNode::new(id, index, pipeline, &baselines, self.slo);
            let follower =
                LogFollower::resume(log.dir(), &baselines).expect("wal readable for shipping");
            self.shippers.push(Some(spawn_shipper(
                Arc::clone(&node),
                follower,
                ShipperConfig {
                    log: Arc::clone(&log),
                    telemetry: primary.telemetry().cloned(),
                    failpoints: self.failpoints.clone(),
                    poll_interval: self.poll_interval,
                    stripe: self.stripe,
                },
            )));
            self.nodes.push(node);
        }
    }

    fn connect(&self) -> Box<dyn Connection + '_> {
        let primary = self
            .primary()
            .pipeline_handle()
            .expect("connect before load");
        let shards = self.primary().index().num_shards();
        Box::new(ReplicatedConn {
            target: self,
            primary,
            batch: self.batch,
            buf: Vec::with_capacity(self.batch),
            meta: Vec::with_capacity(self.batch),
            session_req: vec![0; shards],
            rr: 0,
            batches: 0,
        })
    }

    fn stored_len(&self) -> usize {
        self.primary().index().len()
    }

    fn memory_bytes(&self) -> usize {
        self.primary().index().memory_usage()
            + self
                .nodes
                .iter()
                .map(|n| n.index().memory_usage())
                .sum::<usize>()
    }
}

impl<B: ConcurrentIndex<u64> + 'static> Drop for ReplicatedTarget<B> {
    fn drop(&mut self) {
        for node in &self.nodes {
            node.request_stop();
        }
        for handle in self.shippers.iter_mut().filter_map(Option::take) {
            let _ = handle.join();
        }
    }
}

/// Where one read sub-batch goes.
enum Placement {
    /// A replica, by position in the node set.
    Node(usize),
    /// The primary pipeline (no replicas, none eligible, or none running).
    Primary,
    /// Nowhere: admission control rejects the batch with
    /// [`IndexError::Overloaded`].
    Shed,
}

/// One driver thread's endpoint: buffers ops, forwards the write portion
/// of each batch to the primary, and places the read portion per policy.
struct ReplicatedConn<'a, B: ConcurrentIndex<u64> + 'static> {
    target: &'a ReplicatedTarget<B>,
    primary: Arc<ShardPipeline<B>>,
    batch: usize,
    buf: Vec<Op>,
    meta: Vec<(RequestKind, Option<Instant>)>,
    /// Read-your-writes requirement: per shard, the committed sequence at
    /// the time of this connection's last acknowledged write batch.
    /// (Sampled from the log, so it is conservative — it may also cover
    /// other sessions' concurrent writes.)
    session_req: Vec<u64>,
    /// Round-robin cursor.
    rr: usize,
    /// Read batches placed so far (paces the breach-probe cadence).
    batches: usize,
}

impl<B: ConcurrentIndex<u64> + 'static> ReplicatedConn<'_, B> {
    fn send(&mut self, rec: &mut PhaseRecorder) {
        if self.buf.is_empty() {
            return;
        }
        let ops = std::mem::take(&mut self.buf);
        let meta = std::mem::take(&mut self.meta);
        let mut writes = Vec::new();
        let mut wmeta = Vec::new();
        let mut reads = Vec::new();
        let mut rmeta = Vec::new();
        for (op, m) in ops.into_iter().zip(meta) {
            if op.is_write() {
                writes.push(op);
                wmeta.push(m);
            } else {
                reads.push(op);
                rmeta.push(m);
            }
        }
        if !writes.is_empty() {
            let responses = self.primary.submit(gre_shard::OpBatch::new(writes)).wait();
            record_batch(rec, &wmeta, &responses);
            // The log's committed sequences now cover this batch; remember
            // them as the session's freshness floor for bounded reads.
            let log = self.target.log().expect("loaded");
            for (shard, req) in self.session_req.iter_mut().enumerate() {
                *req = log.next_seq(shard) - 1;
            }
        }
        if reads.is_empty() {
            return;
        }
        let (placement, redirected) = self.place(&reads);
        let n = reads.len() as u64;
        if redirected {
            rec.note_redirects(n);
            self.count(CounterId::ReadsRedirected, n);
        }
        match placement {
            Placement::Node(i) => {
                let node = &self.target.nodes()[i];
                let t0 = Instant::now();
                let responses = node
                    .pipeline()
                    .submit(gre_shard::OpBatch::new(reads))
                    .wait();
                if let Some(slo) = node.slo() {
                    slo.record(t0.elapsed().as_nanos() as u64);
                }
                record_batch(rec, &rmeta, &responses);
            }
            Placement::Primary => {
                let responses = self.primary.submit(gre_shard::OpBatch::new(reads)).wait();
                record_batch(rec, &rmeta, &responses);
            }
            Placement::Shed => {
                let responses = vec![Response::Error(IndexError::Overloaded); reads.len()];
                record_batch(rec, &rmeta, &responses);
                self.count(CounterId::ReadsShed, n);
            }
        }
    }

    /// Decide where this read batch goes; the bool reports an SLO
    /// redirect (the policy's pick was in breach and a healthy replica
    /// took the batch instead).
    fn place(&mut self, reads: &[Op]) -> (Placement, bool) {
        let nodes = self.target.nodes();
        if nodes.is_empty() {
            return (Placement::Primary, false);
        }
        // Every 32nd batch probes the policy's pick even through a breach,
        // so a redirected-away (or fully shed) replica set keeps receiving
        // enough traffic to close an interval and clear its breach bit.
        self.batches = self.batches.wrapping_add(1);
        let probe = self.batches % 32 == 0;
        // A replica whose *shipper* died still serves reads (its backend is
        // intact, just frozen): least-lagged steers around it and a
        // watermark bound stops covering it, but lag-blind round-robin
        // keeps reading it — documented staleness, not an error.
        let mut candidates: Vec<usize> = (0..nodes.len()).collect();
        if self.target.policy == ReadPolicy::WatermarkBound {
            let touched = self.touched_shards(reads);
            candidates.retain(|&i| {
                touched
                    .iter()
                    .enumerate()
                    .all(|(s, &t)| !t || nodes[i].watermark().covers(s, self.session_req[s]))
            });
        }
        if candidates.is_empty() {
            return (Placement::Primary, false);
        }
        if self.target.slo.is_none() {
            return (Placement::Node(self.choose(&candidates)), false);
        }
        let breached = |i: usize| nodes[i].slo().is_some_and(|s| s.breached());
        let healthy: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| !breached(i))
            .collect();
        if healthy.is_empty() {
            return if probe {
                (Placement::Node(self.choose(&candidates)), false)
            } else {
                (Placement::Shed, false)
            };
        }
        let pick = self.choose(&candidates);
        if breached(pick) && !probe {
            (Placement::Node(self.choose(&healthy)), true)
        } else {
            (Placement::Node(pick), false)
        }
    }

    /// Pick one of `candidates` (non-empty) per the configured policy.
    fn choose(&mut self, candidates: &[usize]) -> usize {
        let nodes = self.target.nodes();
        match self.target.policy {
            ReadPolicy::LeastLagged => {
                let targets = self.target.committed();
                *candidates
                    .iter()
                    .min_by_key(|&&i| nodes[i].watermark().total_lag(&targets))
                    .expect("candidates non-empty")
            }
            ReadPolicy::RoundRobin | ReadPolicy::WatermarkBound => {
                let i = candidates[self.rr % candidates.len()];
                self.rr = self.rr.wrapping_add(1);
                i
            }
        }
    }

    /// Which shards this read batch touches. Range scans conservatively
    /// touch every shard (a scan may cross shard boundaries).
    fn touched_shards(&self, reads: &[Op]) -> Vec<bool> {
        let index = self.target.primary().index();
        let mut touched = vec![false; index.num_shards()];
        for op in reads {
            if op.kind() == RequestKind::Range {
                touched.iter_mut().for_each(|t| *t = true);
                break;
            }
            touched[index.shard_of(op.route_key())] = true;
        }
        touched
    }

    fn count(&self, id: CounterId, n: u64) {
        if let Some(t) = self.target.telemetry() {
            t.metrics().stripe(self.target.stripe).add(id, n);
        }
    }
}

impl<B: ConcurrentIndex<u64> + 'static> Connection for ReplicatedConn<'_, B> {
    fn submit(&mut self, op: Op, intended: Option<Instant>, rec: &mut PhaseRecorder) {
        self.buf.push(op);
        self.meta.push((op.kind(), intended));
        if self.buf.len() >= self.batch {
            self.send(rec);
        }
    }

    fn flush(&mut self, rec: &mut PhaseRecorder) {
        self.send(rec);
    }
}

/// Record one completed batch, stamping every timed op with the batch's
/// completion time (the same contract as the `gre-shard` adapters).
fn record_batch(
    rec: &mut PhaseRecorder,
    meta: &[(RequestKind, Option<Instant>)],
    responses: &[Response<u64>],
) {
    let now = Instant::now();
    for ((kind, intended), response) in meta.iter().zip(responses) {
        match intended {
            Some(t0) => rec.complete_timed(*kind, *t0, now, response),
            None => rec.complete_untimed(response),
        }
    }
}
