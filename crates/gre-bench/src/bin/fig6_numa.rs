//! Figure 6: scalability across sockets. The paper interleaves memory across
//! 1–4 NUMA sockets; this host-independent reproduction continues the thread
//! sweep past one socket's worth of cores (see DESIGN.md substitutions) —
//! the qualitative signal is each index's trend as parallelism keeps growing.
use gre_bench::{registry::concurrent_indexes, RunOpts};
use gre_datasets::Dataset;
use gre_workloads::{run_concurrent, WorkloadBuilder, WriteRatio};

fn main() {
    let opts = RunOpts::from_env();
    let builder = WorkloadBuilder::new(opts.seed);
    let socket_equivalents: Vec<usize> = vec![
        2,
        opts.threads,
        opts.threads * 2,
        opts.threads * 3,
        opts.threads * 4,
    ];
    println!(
        "# Figure 6: socket-count scaling (thread counts {:?})",
        socket_equivalents
    );
    for ds in Dataset::DRILLDOWN_DATASETS {
        let keys = ds.generate(opts.keys, opts.seed);
        for ratio in [
            WriteRatio::ReadOnly,
            WriteRatio::Balanced,
            WriteRatio::WriteOnly,
        ] {
            let workload = builder.insert_workload(&ds.name(), &keys, ratio);
            for entry in concurrent_indexes(true) {
                let mut row = format!("{:<10} {:<6} {:<10}", ds.name(), ratio.label(), entry.name);
                let mut index = entry.index;
                for &t in &socket_equivalents {
                    let r = run_concurrent(index.as_mut(), &workload, t.max(1));
                    row.push_str(&format!(" {:>8.3}", r.throughput_mops()));
                }
                println!("{row}");
            }
        }
    }
}
