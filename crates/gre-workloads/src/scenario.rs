//! Typed scenario descriptions: *what* traffic to offer, separated from
//! *how* it is executed (the [`driver`](crate::driver) module).
//!
//! A [`Scenario`] is a bulk-load set plus a script of named [`Phase`]s. Each
//! phase describes a request population — an operation [`Mix`] and a
//! [`KeyDist`] key-selection law, or a pre-materialized replay stream — a
//! [`Span`] (run for N ops or for a wall-clock duration) and a [`Pacing`]
//! discipline:
//!
//! * [`Pacing::ClosedLoop`] — `threads` clients issue the next request as
//!   soon as the previous one completes. Throughput is the measurement;
//!   latency under closed-loop pacing is a *service time*, blind to queueing
//!   delay (the coordinated-omission caveat).
//! * [`Pacing::OpenLoop`] — requests are released on a fixed schedule at
//!   `rate_ops_s`, independent of completions. Latency is measured from the
//!   **intended** send time, so a stalled server accrues the waiting time it
//!   caused instead of silently suppressing the samples.
//!
//! Operation generation is lazy: a phase materializes nothing. Each driver
//! thread pulls from its own [`OpStream`], seeded from
//! `(scenario seed, phase index, thread index)`, so the offered traffic is
//! reproducible and identical across serving targets regardless of timing —
//! the property the cross-target equivalence tests rely on.
//!
//! A two-phase script — a skewed closed-loop warm-up, then a paced
//! open-loop read/insert mix:
//!
//! ```
//! use gre_workloads::scenario::{KeyDist, Mix, Pacing, Phase, Scenario, Span};
//! use std::time::Duration;
//!
//! let keys: Vec<u64> = (1..=10_000u64).map(|i| i * 16).collect();
//! let scenario = Scenario::new("warm-then-burst", 42, &keys)
//!     .phase(Phase::new(
//!         "warm",
//!         Mix::read_only(),
//!         KeyDist::Zipf { theta: 0.99 },
//!         Span::Ops(100_000),
//!         Pacing::ClosedLoop { threads: 4 },
//!     ))
//!     .phase(Phase::new(
//!         "burst",
//!         Mix::read_mostly(5), // 95% get / 5% insert
//!         KeyDist::Uniform,
//!         Span::Time(Duration::from_secs(5)),
//!         Pacing::OpenLoop { rate_ops_s: 50_000.0 },
//!     ));
//!
//! assert_eq!(scenario.phases.len(), 2);
//! // The bulk-load set is deduped, sorted, and paired with payloads.
//! assert_eq!(scenario.bulk.len(), 10_000);
//! ```

use crate::spec::{payload_for, Op, Workload};
use crate::zipf::ScrambledZipf;
use gre_core::{Payload, RangeSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// Relative weights of the five operation kinds in a phase's request
/// stream, plus the scan length used by range operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    pub get: u32,
    pub insert: u32,
    pub update: u32,
    pub remove: u32,
    pub range: u32,
    /// Keys per range scan (when `range > 0`).
    pub scan_len: usize,
}

impl Mix {
    /// A mix with only the given get/insert/update/remove weights.
    pub const fn points(get: u32, insert: u32, update: u32, remove: u32) -> Mix {
        Mix {
            get,
            insert,
            update,
            remove,
            range: 0,
            scan_len: 0,
        }
    }

    /// 100% lookups.
    pub const fn read_only() -> Mix {
        Mix::points(1, 0, 0, 0)
    }

    /// The paper's balanced point: 50% lookups / 50% inserts.
    pub const fn balanced() -> Mix {
        Mix::points(1, 1, 0, 0)
    }

    /// Read-mostly: `write_pct`% inserts, the rest lookups.
    pub const fn read_mostly(write_pct: u32) -> Mix {
        Mix::points(100 - write_pct, write_pct, 0, 0)
    }

    /// 100% inserts.
    pub const fn write_only() -> Mix {
        Mix::points(0, 1, 0, 0)
    }

    /// YCSB-A: 50% lookups / 50% updates over loaded keys.
    pub const fn ycsb_a() -> Mix {
        Mix::points(1, 0, 1, 0)
    }

    /// YCSB-B: 95% lookups / 5% updates.
    pub const fn ycsb_b() -> Mix {
        Mix::points(95, 0, 5, 0)
    }

    /// Add range scans of `scan_len` keys with the given weight.
    pub const fn with_range(mut self, weight: u32, scan_len: usize) -> Mix {
        self.range = weight;
        self.scan_len = scan_len;
        self
    }

    /// Sum of all weights (0 means a degenerate all-get mix).
    pub fn total(&self) -> u32 {
        self.get + self.insert + self.update + self.remove + self.range
    }

    /// Fraction of write operations (inserts + updates + removes).
    pub fn write_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.insert + self.update + self.remove) as f64 / total as f64
    }
}

/// Key-selection law of a phase, over the scenario's loaded key population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Uniform over the loaded keys.
    Uniform,
    /// Zipfian (scrambled, YCSB-style) with exponent `theta`.
    Zipf { theta: f64 },
    /// A moving hotspot: with probability `hot_access` the request targets
    /// the hot window of `span` (fraction of the key population) starting at
    /// rank-fraction `start`; otherwise it falls back to uniform. Successive
    /// phases shift `start` to model a drifting working set.
    Hotspot {
        /// Start of the hot window as a fraction of the key population's
        /// rank space (`0.0 ..= 1.0`; windows wrap around).
        start: f64,
        /// Width of the hot window as a fraction of the key population.
        span: f64,
        /// Probability a request targets the hot window.
        hot_access: f64,
    },
}

/// How a phase's requests are released.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pacing {
    /// `threads` clients, each issuing its next request immediately after
    /// the previous completes (throughput-oriented; latency readings are
    /// service times subject to coordinated omission).
    ClosedLoop { threads: usize },
    /// Requests released on a fixed schedule at `rate_ops_s`, split evenly
    /// across the driver's sender threads. Latency is measured from the
    /// intended send time even when the sender falls behind schedule.
    OpenLoop { rate_ops_s: f64 },
}

/// How long a phase runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Span {
    /// Exactly this many operations (split across threads).
    Ops(u64),
    /// Until this much wall-clock time has elapsed.
    Time(Duration),
}

/// Where a phase's operations come from.
#[derive(Debug, Clone)]
pub enum OpSource {
    /// Lazily generated from a mix and a key distribution (seeded,
    /// allocation-free, infinite).
    Synthetic { mix: Mix, dist: KeyDist },
    /// Replay of a pre-materialized op stream, split into contiguous
    /// per-thread chunks (the [`Workload`] adapter path).
    Replay(Arc<Vec<Op>>),
}

/// One named phase of a scenario.
#[derive(Debug, Clone)]
pub struct Phase {
    pub name: String,
    pub source: OpSource,
    pub span: Span,
    pub pacing: Pacing,
}

impl Phase {
    /// A synthetic phase.
    pub fn new(name: &str, mix: Mix, dist: KeyDist, span: Span, pacing: Pacing) -> Phase {
        Phase {
            name: name.to_string(),
            source: OpSource::Synthetic { mix, dist },
            span,
            pacing,
        }
    }

    /// A replay phase covering the whole op stream once.
    pub fn replay(name: &str, ops: Arc<Vec<Op>>, pacing: Pacing) -> Phase {
        let span = Span::Ops(ops.len() as u64);
        Phase {
            name: name.to_string(),
            source: OpSource::Replay(ops),
            span,
            pacing,
        }
    }

    /// The requested open-loop rate, if this phase is open-loop.
    pub fn offered_rate(&self) -> Option<f64> {
        match self.pacing {
            Pacing::OpenLoop { rate_ops_s } => Some(rate_ops_s),
            Pacing::ClosedLoop { .. } => None,
        }
    }
}

/// A complete scenario: what to load, then a script of phases to run.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub name: String,
    pub seed: u64,
    /// Entries bulk-loaded before the first phase, sorted by key.
    pub bulk: Vec<(u64, Payload)>,
    pub phases: Vec<Phase>,
}

impl Scenario {
    /// Start a scenario loading `keys` (deduplicated, sorted, paired with
    /// the canonical deterministic payload).
    pub fn new(name: &str, seed: u64, keys: &[u64]) -> Scenario {
        let mut sorted: Vec<u64> = keys.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        Scenario {
            name: name.to_string(),
            seed,
            bulk: sorted.into_iter().map(|k| (k, payload_for(k))).collect(),
            phases: Vec::new(),
        }
    }

    /// Append a phase (builder-style).
    pub fn phase(mut self, phase: Phase) -> Scenario {
        self.phases.push(phase);
        self
    }

    /// Wrap a materialized [`Workload`] as a one-phase replay scenario —
    /// the migration adapter behind [`run_concurrent`](crate::run_concurrent).
    pub fn from_workload(workload: &Workload, pacing: Pacing) -> Scenario {
        Scenario {
            name: workload.name.clone(),
            seed: 0,
            bulk: workload.bulk.clone(),
            phases: vec![Phase::replay(
                &workload.name,
                Arc::new(workload.ops.clone()),
                pacing,
            )],
        }
    }

    /// The loaded keys, in sorted order (the key population synthetic
    /// phases draw from).
    pub fn loaded_keys(&self) -> Vec<u64> {
        self.bulk.iter().map(|e| e.0).collect()
    }
}

/// A lazy per-thread operation stream. `None` marks exhaustion of a finite
/// (replay) stream; synthetic streams are infinite.
pub trait OpStream {
    fn next_op(&mut self) -> Option<Op>;
}

/// Seeded synthetic stream over a loaded key population: one per
/// `(phase, thread)`, allocation-free after construction.
pub struct SyntheticStream {
    keys: Arc<Vec<u64>>,
    rng: StdRng,
    mix: Mix,
    dist: KeyDist,
    zipf: Option<ScrambledZipf>,
    /// Key offset granularity for inserts: roughly the mean gap between
    /// loaded keys, so inserted keys interleave with the loaded population
    /// instead of clustering on it.
    insert_gap: u64,
}

impl SyntheticStream {
    pub fn new(keys: Arc<Vec<u64>>, mix: Mix, dist: KeyDist, seed: u64) -> SyntheticStream {
        let zipf = match dist {
            KeyDist::Zipf { theta } => Some(ScrambledZipf::new(keys.len().max(1), theta)),
            _ => None,
        };
        let insert_gap = match (keys.first(), keys.last()) {
            (Some(&lo), Some(&hi)) if keys.len() > 1 => ((hi - lo) / keys.len() as u64).max(1),
            _ => 1,
        };
        SyntheticStream {
            keys,
            rng: StdRng::seed_from_u64(seed),
            mix,
            dist,
            zipf,
            insert_gap,
        }
    }

    /// Sample a rank in the loaded key population per the distribution.
    #[inline]
    fn sample_rank(&mut self) -> usize {
        let n = self.keys.len();
        if n == 0 {
            return 0;
        }
        match self.dist {
            KeyDist::Uniform => self.rng.gen_range(0..n),
            KeyDist::Zipf { .. } => self
                .zipf
                .as_ref()
                .expect("zipf sampler initialized")
                .sample(&mut self.rng),
            KeyDist::Hotspot {
                start,
                span,
                hot_access,
            } => {
                if self.rng.gen_bool(hot_access.clamp(0.0, 1.0)) {
                    let hot_len = ((n as f64 * span) as usize).clamp(1, n);
                    let hot_start = (n as f64 * start.clamp(0.0, 1.0)) as usize;
                    (hot_start + self.rng.gen_range(0..hot_len)) % n
                } else {
                    self.rng.gen_range(0..n)
                }
            }
        }
    }

    #[inline]
    fn key_at(&self, rank: usize) -> u64 {
        if self.keys.is_empty() {
            0
        } else {
            self.keys[rank.min(self.keys.len() - 1)]
        }
    }
}

impl OpStream for SyntheticStream {
    #[inline]
    fn next_op(&mut self) -> Option<Op> {
        let total = self.mix.total();
        let pick = if total == 0 {
            0
        } else {
            self.rng.gen_range(0..total)
        };
        let rank = self.sample_rank();
        let base = self.key_at(rank);
        let mix = self.mix;
        let op = if pick < mix.get {
            Op::Get(base)
        } else if pick < mix.get + mix.insert {
            // Offset into the gap after the sampled key: new keys interleave
            // with the loaded population (re-inserting an existing key is a
            // benign upsert of the same canonical payload).
            let k = base.wrapping_add(self.rng.gen_range(1..=self.insert_gap));
            Op::Insert(k, payload_for(k))
        } else if pick < mix.get + mix.insert + mix.update {
            Op::Update(base, payload_for(base))
        } else if pick < mix.get + mix.insert + mix.update + mix.remove {
            Op::Remove(base)
        } else {
            Op::Range(RangeSpec::new(base, self.mix.scan_len.max(1)))
        };
        Some(op)
    }
}

/// Replay stream over one thread's contiguous chunk of a materialized op
/// vector.
pub struct ReplayStream {
    ops: Arc<Vec<Op>>,
    next: usize,
    end: usize,
}

impl ReplayStream {
    /// The stream for thread `thread` of `threads`: contiguous chunks whose
    /// lengths follow the same even split (`len/threads`, first `len %
    /// threads` threads one longer) the driver uses for `Span::Ops` budgets
    /// — the two MUST agree, or threads whose budget undercuts their chunk
    /// would silently drop the chunk's tail ops.
    pub fn chunk(ops: Arc<Vec<Op>>, thread: usize, threads: usize) -> ReplayStream {
        let threads = threads.max(1);
        let base = ops.len() / threads;
        let extra = ops.len() % threads;
        let next = thread * base + thread.min(extra);
        let end = next + base + usize::from(thread < extra);
        ReplayStream { ops, next, end }
    }
}

impl OpStream for ReplayStream {
    #[inline]
    fn next_op(&mut self) -> Option<Op> {
        if self.next >= self.end {
            return None;
        }
        let op = self.ops[self.next];
        self.next += 1;
        Some(op)
    }
}

/// Build the op stream for `(phase, thread)` of a scenario. Synthetic
/// streams are seeded from `(scenario seed, phase index, thread index)`, so
/// the offered traffic is identical for every serving target.
pub fn phase_stream(
    scenario: &Scenario,
    keys: &Arc<Vec<u64>>,
    phase_idx: usize,
    phase: &Phase,
    thread: usize,
    threads: usize,
) -> Box<dyn OpStream + Send> {
    match &phase.source {
        OpSource::Synthetic { mix, dist } => {
            let seed = scenario
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((phase_idx as u64) << 32)
                .wrapping_add(thread as u64);
            Box::new(SyntheticStream::new(Arc::clone(keys), *mix, *dist, seed))
        }
        OpSource::Replay(ops) => Box::new(ReplayStream::chunk(Arc::clone(ops), thread, threads)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::OpKind;

    fn keyset(n: u64) -> Arc<Vec<u64>> {
        Arc::new((1..=n).map(|i| i * 64).collect())
    }

    #[test]
    fn mix_fractions_and_builders() {
        assert_eq!(Mix::read_only().write_fraction(), 0.0);
        assert_eq!(Mix::balanced().write_fraction(), 0.5);
        assert_eq!(Mix::write_only().write_fraction(), 1.0);
        assert!((Mix::read_mostly(20).write_fraction() - 0.2).abs() < 1e-9);
        assert!((Mix::ycsb_b().write_fraction() - 0.05).abs() < 1e-9);
        let with_scans = Mix::read_only().with_range(1, 50);
        assert_eq!(with_scans.total(), 2);
        assert_eq!(with_scans.scan_len, 50);
    }

    #[test]
    fn synthetic_stream_is_deterministic_per_seed() {
        let keys = keyset(1_000);
        let mk = || SyntheticStream::new(Arc::clone(&keys), Mix::balanced(), KeyDist::Uniform, 7);
        let mut a = mk();
        let mut b = mk();
        for _ in 0..1_000 {
            assert_eq!(a.next_op(), b.next_op());
        }
        let mut c = SyntheticStream::new(Arc::clone(&keys), Mix::balanced(), KeyDist::Uniform, 8);
        let same = (0..1_000).filter(|_| a.next_op() == c.next_op()).count();
        assert!(same < 1_000, "different seeds must diverge");
    }

    #[test]
    fn synthetic_stream_respects_the_mix() {
        let keys = keyset(1_000);
        let mix = Mix::points(60, 20, 10, 10).with_range(0, 0);
        let mut s = SyntheticStream::new(Arc::clone(&keys), mix, KeyDist::Uniform, 3);
        let mut counts = [0usize; 5];
        for _ in 0..20_000 {
            counts[s.next_op().unwrap().kind().index()] += 1;
        }
        let frac = |i: usize| counts[i] as f64 / 20_000.0;
        assert!((frac(OpKind::Get.index()) - 0.6).abs() < 0.03);
        assert!((frac(OpKind::Insert.index()) - 0.2).abs() < 0.03);
        assert!((frac(OpKind::Update.index()) - 0.1).abs() < 0.02);
        assert!((frac(OpKind::Remove.index()) - 0.1).abs() < 0.02);
        assert_eq!(counts[OpKind::Range.index()], 0);
    }

    #[test]
    fn hotspot_concentrates_requests() {
        let keys = keyset(10_000);
        let dist = KeyDist::Hotspot {
            start: 0.25,
            span: 0.05,
            hot_access: 0.9,
        };
        let mut s = SyntheticStream::new(Arc::clone(&keys), Mix::read_only(), dist, 11);
        let lo = keys[2_500];
        let hi = keys[2_500 + 500];
        let mut in_window = 0usize;
        let total = 20_000;
        for _ in 0..total {
            if let Some(Op::Get(k)) = s.next_op() {
                if (lo..hi).contains(&k) {
                    in_window += 1;
                }
            }
        }
        let share = in_window as f64 / total as f64;
        // 90% targeted + ~5% of the uniform fallback ≈ 0.905.
        assert!(share > 0.8, "hot window got only {share:.3}");
    }

    #[test]
    fn inserts_generate_interleaving_fresh_keys() {
        let keys = keyset(1_000);
        let mut s = SyntheticStream::new(Arc::clone(&keys), Mix::write_only(), KeyDist::Uniform, 5);
        let lo = *keys.first().unwrap();
        let hi = *keys.last().unwrap();
        let mut fresh = 0usize;
        for _ in 0..1_000 {
            let Some(Op::Insert(k, v)) = s.next_op() else {
                panic!("write-only mix must insert")
            };
            assert_eq!(v, payload_for(k));
            assert!(k > lo && k <= hi + 64, "key {k} far outside domain");
            if keys.binary_search(&k).is_err() {
                fresh += 1;
            }
        }
        assert!(fresh > 900, "only {fresh}/1000 inserts were fresh keys");
    }

    #[test]
    fn replay_stream_chunks_cover_everything_once() {
        let ops: Arc<Vec<Op>> = Arc::new((0..103u64).map(Op::Get).collect());
        for threads in [1usize, 2, 3, 4, 7] {
            let mut seen = Vec::new();
            for t in 0..threads {
                let mut s = ReplayStream::chunk(Arc::clone(&ops), t, threads);
                while let Some(op) = s.next_op() {
                    seen.push(op);
                }
            }
            assert_eq!(seen.len(), ops.len(), "{threads} threads");
            assert_eq!(&seen, &*ops, "{threads} threads: order preserved");
        }
    }

    #[test]
    fn scenario_builder_and_workload_adapter() {
        let keys: Vec<u64> = (1..=100).map(|i| i * 3).collect();
        let s = Scenario::new("t", 1, &keys).phase(Phase::new(
            "p0",
            Mix::balanced(),
            KeyDist::Uniform,
            Span::Ops(100),
            Pacing::ClosedLoop { threads: 2 },
        ));
        assert_eq!(s.bulk.len(), 100);
        assert_eq!(s.phases.len(), 1);
        assert_eq!(s.loaded_keys(), keys);
        assert_eq!(s.phases[0].offered_rate(), None);

        let w = Workload {
            name: "w".into(),
            bulk: vec![(1, 1), (2, 2)],
            ops: vec![Op::Get(1), Op::Get(2), Op::Get(1)],
        };
        let s = Scenario::from_workload(&w, Pacing::ClosedLoop { threads: 2 });
        assert_eq!(s.phases.len(), 1);
        assert_eq!(s.phases[0].span, Span::Ops(3));
        assert!(matches!(s.phases[0].source, OpSource::Replay(_)));
        let open = Phase::new(
            "o",
            Mix::read_only(),
            KeyDist::Uniform,
            Span::Time(Duration::from_millis(10)),
            Pacing::OpenLoop { rate_ops_s: 500.0 },
        );
        assert_eq!(open.offered_rate(), Some(500.0));
    }

    #[test]
    fn phase_stream_seeds_differ_by_thread_and_phase() {
        let keys: Vec<u64> = (1..=500).map(|i| i * 2).collect();
        let scenario = Scenario::new("t", 42, &keys);
        let pop = Arc::new(scenario.loaded_keys());
        let phase = Phase::new(
            "p",
            Mix::balanced(),
            KeyDist::Uniform,
            Span::Ops(100),
            Pacing::ClosedLoop { threads: 2 },
        );
        let mut s00 = phase_stream(&scenario, &pop, 0, &phase, 0, 2);
        let mut s01 = phase_stream(&scenario, &pop, 0, &phase, 1, 2);
        let mut s10 = phase_stream(&scenario, &pop, 1, &phase, 0, 2);
        let a: Vec<_> = (0..50).map(|_| s00.next_op().unwrap()).collect();
        let b: Vec<_> = (0..50).map(|_| s01.next_op().unwrap()).collect();
        let c: Vec<_> = (0..50).map(|_| s10.next_op().unwrap()).collect();
        assert_ne!(a, b, "threads see different streams");
        assert_ne!(a, c, "phases see different streams");
        // And the same coordinates reproduce the same stream.
        let mut again = phase_stream(&scenario, &pop, 0, &phase, 0, 2);
        let a2: Vec<_> = (0..50).map(|_| again.next_op().unwrap()).collect();
        assert_eq!(a, a2);
    }
}
