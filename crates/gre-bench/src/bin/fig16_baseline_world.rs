//! Figure 16: "the world without this study" — the multi-threaded heatmap
//! restricted to natively concurrent indexes (no ALEX+ / LIPP+).
use gre_bench::heatmap::concurrent_heatmap;
use gre_bench::RunOpts;
use gre_datasets::Dataset;

fn main() {
    let opts = RunOpts::from_env();
    let hm = concurrent_heatmap(
        &format!(
            "Figure 16: heatmap without ALEX+/LIPP+ ({} threads)",
            opts.threads
        ),
        &Dataset::HEATMAP_DATASETS,
        &opts,
        false,
    );
    print!("{}", hm.render());
}
