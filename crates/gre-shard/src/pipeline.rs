//! The batched request pipeline: `OpBatch` → per-shard sub-batches executed
//! on a fixed worker pool.
//!
//! Callers hand the pipeline whole batches of operations instead of issuing
//! them one by one; the pipeline routes each batch into per-shard sub-batches
//! (amortizing partitioner lookups and thread hand-off over many ops) and
//! executes them on `workers` long-lived threads. Shard `s` is pinned to
//! worker `s % workers`, and each worker drains its queue in arrival order,
//! which yields the pipeline's ordering guarantee: **operations on the same
//! shard execute in submission order** (per-shard FIFO). Operations on
//! different shards from the same batch may run concurrently — exactly the
//! freedom a partitioned store is allowed to exploit.
//!
//! Point operations go straight to the owning shard's backend (the routing
//! already picked it, so the composite's dispatch is skipped); range scans
//! run through the full [`ShardedIndex`] so cross-shard stitching applies.

use crate::sharded::ShardedIndex;
use gre_core::{ConcurrentIndex, Payload, RangeSpec};
use gre_workloads::{split_ops_by_shard, Op};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A batch of operations submitted to the pipeline as one unit.
#[derive(Debug, Clone, Default)]
pub struct OpBatch {
    pub ops: Vec<Op>,
}

impl OpBatch {
    pub fn new(ops: Vec<Op>) -> Self {
        OpBatch { ops }
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Aggregated outcome of one executed batch (or sub-batch).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchResult {
    /// Operations executed.
    pub ops: usize,
    /// Lookups that found their key.
    pub hits: usize,
    /// Keys returned by range scans.
    pub scanned_keys: usize,
    /// Inserts that created a new key (as opposed to updating in place).
    pub new_keys: usize,
    /// Updates that found their key.
    pub updated: usize,
    /// Removes that found their key.
    pub removed: usize,
}

impl BatchResult {
    fn merge(&mut self, other: &BatchResult) {
        self.ops += other.ops;
        self.hits += other.hits;
        self.scanned_keys += other.scanned_keys;
        self.new_keys += other.new_keys;
        self.updated += other.updated;
        self.removed += other.removed;
    }
}

/// A per-shard unit of work queued to a worker.
struct Job {
    shard: usize,
    ops: Vec<Op>,
    done: Sender<BatchResult>,
}

/// Handle to an in-flight batch; [`BatchTicket::wait`] blocks until every
/// sub-batch has executed and returns the merged result.
pub struct BatchTicket {
    pending: usize,
    rx: Receiver<BatchResult>,
    /// Ops that were part of the batch (kept so `wait` can report totals
    /// even for an all-empty split).
    ops: usize,
}

impl BatchTicket {
    /// Block until the whole batch has executed; returns the merged result.
    pub fn wait(self) -> BatchResult {
        let mut merged = BatchResult::default();
        for _ in 0..self.pending {
            let part = self
                .rx
                .recv()
                .expect("pipeline worker dropped a sub-batch result");
            merged.merge(&part);
        }
        debug_assert_eq!(merged.ops, self.ops);
        merged
    }
}

/// A fixed worker pool executing batches against a shared [`ShardedIndex`].
///
/// Dropping the pipeline shuts the workers down (they drain already-queued
/// jobs first, so submitted work is never lost).
pub struct ShardPipeline<B: ConcurrentIndex<u64> + 'static> {
    index: Arc<ShardedIndex<u64, B>>,
    queues: Vec<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl<B: ConcurrentIndex<u64> + 'static> ShardPipeline<B> {
    /// Spawn `workers` threads serving `index`. The worker count is clamped
    /// to at least 1 and at most the shard count (extra workers would never
    /// receive a shard assignment).
    pub fn new(index: Arc<ShardedIndex<u64, B>>, workers: usize) -> Self {
        let workers = workers.clamp(1, index.num_shards());
        let mut queues = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel::<Job>();
            let index = Arc::clone(&index);
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    let result = execute_sub_batch(&index, job.shard, &job.ops);
                    // The submitter may have stopped waiting; that's fine.
                    let _ = job.done.send(result);
                }
            }));
            queues.push(tx);
        }
        ShardPipeline {
            index,
            queues,
            workers: handles,
        }
    }

    /// The served index (for reads outside the batch path).
    pub fn index(&self) -> &Arc<ShardedIndex<u64, B>> {
        &self.index
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Split `batch` into per-shard sub-batches and enqueue them. Returns a
    /// ticket to wait on. Sub-batches of the same shard (across submissions)
    /// execute in submission order on the shard's pinned worker.
    pub fn submit(&self, batch: OpBatch) -> BatchTicket {
        let shards = self.index.num_shards();
        let partitioner = self.index.partitioner();
        let ops = batch.ops.len();
        let sub_batches = split_ops_by_shard(&batch.ops, shards, |k| partitioner.shard_of(k));
        let (done_tx, done_rx) = channel();
        let mut pending = 0usize;
        for (shard, sub) in sub_batches.into_iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            self.queues[shard % self.queues.len()]
                .send(Job {
                    shard,
                    ops: sub,
                    done: done_tx.clone(),
                })
                .expect("pipeline worker exited early");
            pending += 1;
        }
        BatchTicket {
            pending,
            rx: done_rx,
            ops,
        }
    }

    /// Submit and wait: the synchronous convenience wrapper.
    pub fn execute(&self, batch: OpBatch) -> BatchResult {
        self.submit(batch).wait()
    }
}

impl<B: ConcurrentIndex<u64> + 'static> Drop for ShardPipeline<B> {
    fn drop(&mut self) {
        // Closing the channels ends each worker's recv loop after it drains
        // the jobs already queued.
        self.queues.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Execute one per-shard sub-batch. Point ops hit the owning backend
/// directly; scans go through the composite for cross-shard stitching.
fn execute_sub_batch<B: ConcurrentIndex<u64>>(
    index: &ShardedIndex<u64, B>,
    shard: usize,
    ops: &[Op],
) -> BatchResult {
    let backend = index.backend(shard);
    let mut result = BatchResult {
        ops: ops.len(),
        ..Default::default()
    };
    let mut scan_buf: Vec<(u64, Payload)> = Vec::new();
    for op in ops {
        match *op {
            Op::Get(k) => {
                if backend.get(k).is_some() {
                    result.hits += 1;
                }
            }
            Op::Insert(k, v) => {
                if backend.insert(k, v) {
                    result.new_keys += 1;
                }
            }
            Op::Update(k, v) => {
                if backend.update(k, v) {
                    result.updated += 1;
                }
            }
            Op::Remove(k) => {
                if backend.remove(k).is_some() {
                    result.removed += 1;
                }
            }
            Op::Scan(k, count) => {
                scan_buf.clear();
                result.scanned_keys += index.range(RangeSpec::new(k, count), &mut scan_buf);
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partitioner;
    use gre_core::index::MutexIndex;
    use gre_core::{Index, IndexMeta};
    use std::collections::BTreeMap;

    /// Single-threaded BTreeMap index, wrapped per shard in MutexIndex.
    #[derive(Default)]
    struct MapIndex {
        map: BTreeMap<u64, Payload>,
    }

    impl Index<u64> for MapIndex {
        fn bulk_load(&mut self, entries: &[(u64, Payload)]) {
            self.map = entries.iter().copied().collect();
        }
        fn get(&self, key: u64) -> Option<Payload> {
            self.map.get(&key).copied()
        }
        fn insert(&mut self, key: u64, value: Payload) -> bool {
            self.map.insert(key, value).is_none()
        }
        fn update(&mut self, key: u64, value: Payload) -> bool {
            match self.map.get_mut(&key) {
                Some(v) => {
                    *v = value;
                    true
                }
                None => false,
            }
        }
        fn remove(&mut self, key: u64) -> Option<Payload> {
            self.map.remove(&key)
        }
        fn range(&self, spec: RangeSpec<u64>, out: &mut Vec<(u64, Payload)>) -> usize {
            let before = out.len();
            out.extend(
                self.map
                    .range(spec.start..)
                    .take(spec.count)
                    .map(|(k, v)| (*k, *v)),
            );
            out.len() - before
        }
        fn len(&self) -> usize {
            self.map.len()
        }
        fn memory_usage(&self) -> usize {
            self.map.len() * 48
        }
        fn meta(&self) -> IndexMeta {
            IndexMeta {
                name: "map",
                learned: false,
                concurrent: false,
                supports_delete: true,
                supports_range: true,
            }
        }
    }

    fn pipeline(shards: usize, workers: usize) -> ShardPipeline<MutexIndex<MapIndex>> {
        let mut idx = ShardedIndex::from_factory(Partitioner::range(shards), |_| {
            MutexIndex::new(MapIndex::default(), "map-shard")
        });
        let entries: Vec<(u64, Payload)> = (0..4_000u64).map(|i| (i * 2, i)).collect();
        idx.bulk_load(&entries);
        ShardPipeline::new(Arc::new(idx), workers)
    }

    #[test]
    fn batch_results_aggregate_per_op_outcomes() {
        let p = pipeline(4, 2);
        assert_eq!(p.worker_count(), 2);
        let batch = OpBatch::new(vec![
            Op::Get(0),           // hit
            Op::Get(1),           // miss (odd keys absent)
            Op::Insert(1, 10),    // new key
            Op::Insert(0, 99),    // overwrite, not a new key
            Op::Update(2, 77),    // present
            Op::Update(9_999, 0), // absent
            Op::Remove(4),        // present
            Op::Remove(5),        // absent
            Op::Scan(0, 100),     // 100 keys
        ]);
        assert_eq!(batch.len(), 9);
        assert!(!batch.is_empty());
        let r = p.execute(batch);
        assert_eq!(r.ops, 9);
        assert_eq!(r.hits, 1);
        assert_eq!(r.new_keys, 1);
        assert_eq!(r.updated, 1);
        assert_eq!(r.removed, 1);
        assert_eq!(r.scanned_keys, 100);
        // The writes really landed.
        assert_eq!(p.index().get(1), Some(10));
        assert_eq!(p.index().get(0), Some(99));
        assert_eq!(p.index().get(2), Some(77));
        assert_eq!(p.index().get(4), None);
    }

    #[test]
    fn empty_batch_completes_immediately() {
        let p = pipeline(4, 4);
        let r = p.execute(OpBatch::default());
        assert_eq!(r, BatchResult::default());
    }

    #[test]
    fn per_shard_fifo_makes_same_key_writes_deterministic() {
        let p = pipeline(8, 3);
        // 100 successive single-op batches updating the same key: FIFO per
        // shard means the last submitted value must win, every time.
        for round in 0..100u64 {
            p.submit(OpBatch::new(vec![Op::Insert(0, round)]));
        }
        let r = p.execute(OpBatch::new(vec![Op::Get(0)]));
        assert_eq!(r.hits, 1);
        assert_eq!(p.index().get(0), Some(99));
    }

    #[test]
    fn worker_count_clamps_to_shard_count() {
        let p = pipeline(2, 16);
        assert_eq!(p.worker_count(), 2);
        let p = pipeline(4, 0);
        assert_eq!(p.worker_count(), 1);
    }

    #[test]
    fn drop_drains_queued_work() {
        let total;
        {
            let p = pipeline(4, 2);
            for i in 0..50u64 {
                // Tickets are intentionally dropped: fire-and-forget.
                p.submit(OpBatch::new(vec![Op::Insert(100_001 + 2 * i, i)]));
            }
            total = Arc::clone(p.index());
            // p drops here; workers must finish the queued inserts first.
        }
        assert_eq!(total.len(), 4_000 + 50);
    }

    #[test]
    fn concurrent_submitters_lose_no_updates() {
        let p = pipeline(8, 4);
        let p = &p;
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for b in 0..20u64 {
                        let ops: Vec<Op> = (0..50u64)
                            .map(|i| {
                                let k = 1_000_000 + t * 1_000_000 + b * 50 + i;
                                Op::Insert(k, k)
                            })
                            .collect();
                        let r = p.execute(OpBatch::new(ops));
                        assert_eq!(r.new_keys, 50);
                    }
                });
            }
        });
        assert_eq!(p.index().len(), 4_000 + 4 * 20 * 50);
    }
}
