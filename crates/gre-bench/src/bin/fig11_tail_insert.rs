//! Figure 11: tail latency (99.9th percentile and standard deviation) of
//! inserts, single-threaded and multi-threaded.
use gre_bench::{
    registry::{concurrent_indexes, single_thread_indexes},
    RunOpts,
};
use gre_datasets::Dataset;
use gre_workloads::{run_concurrent, run_single, WorkloadBuilder, WriteRatio};

fn main() {
    let opts = RunOpts::from_env();
    let builder = WorkloadBuilder::new(opts.seed);
    println!("# Figure 11: insert tail latency (write-only workload)");
    println!(
        "{:<10} {:<12} {:>9} {:>12} {:>10}",
        "dataset", "index", "threads", "p99.9 (ns)", "std (ns)"
    );
    for ds in Dataset::DRILLDOWN_DATASETS {
        let keys = ds.generate(opts.keys, opts.seed);
        let workload = builder.insert_workload(&ds.name(), &keys, WriteRatio::WriteOnly);
        for entry in single_thread_indexes() {
            let mut index = entry.index;
            let r = run_single(index.as_mut(), &workload);
            println!(
                "{:<10} {:<12} {:>9} {:>12} {:>10.0}",
                ds.name(),
                entry.name,
                1,
                r.write_latency.p999_ns,
                r.write_latency.std_ns
            );
        }
        for entry in concurrent_indexes(true) {
            let mut index = entry.index;
            let r = run_concurrent(index.as_mut(), &workload, opts.threads);
            println!(
                "{:<10} {:<12} {:>9} {:>12} {:>10.0}",
                ds.name(),
                entry.name,
                opts.threads,
                r.write_latency.p999_ns,
                r.write_latency.std_ns
            );
        }
    }
}
