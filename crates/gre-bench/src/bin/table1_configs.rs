//! Table 1: configurations of the evaluated learned indexes.
use gre_learned::{AlexConfig, FinedexConfig, LippConfig, XIndexConfig};

fn main() {
    let alex = AlexConfig::default();
    let lipp = LippConfig::default();
    let xindex = XIndexConfig::default();
    let finedex = FinedexConfig::default();
    println!("# Table 1: learned index configurations");
    println!(
        "ALEX / ALEX+      max node entries: {}  min/init/max density: {}/{}/{}",
        alex.max_node_entries, alex.min_density, alex.init_density, alex.max_density
    );
    println!(
        "ALEX-M (Fig 9)    init density: {}",
        AlexConfig::memory_matched().init_density
    );
    println!(
        "LIPP / LIPP+      density: {}  max node slots: {}  inserted/conflict ratio: {}/{}",
        lipp.density, lipp.max_node_slots, lipp.inserted_ratio, lipp.conflict_ratio
    );
    println!(
        "PGM-Index         error bound: {}",
        gre_learned::pgm::DEFAULT_EPSILON
    );
    println!(
        "XIndex            error bound: {}  delta size: {}  group size: {}",
        xindex.error_bound, xindex.delta_size, xindex.group_size
    );
    println!(
        "FINEdex           error bound: {}  bin capacity: {}  group size: {}",
        finedex.error_bound, finedex.bin_capacity, finedex.group_size
    );
}
