//! Zipfian request-key sampling for the YCSB workloads (Appendix E).
//!
//! YCSB's default request distribution is Zipfian with constant 0.99 over the
//! loaded keys. We wrap `rand_distr::Zipf` and add the scrambling step YCSB
//! applies so that popular keys are spread over the key space instead of
//! clustering at the smallest keys.

use rand::Rng;
use rand_distr::{Distribution, Zipf};

/// A Zipfian sampler over `n` items with exponent `theta`, returning
/// scrambled item ranks in `0..n`.
#[derive(Debug, Clone)]
pub struct ScrambledZipf {
    dist: Zipf<f64>,
    n: u64,
}

impl ScrambledZipf {
    /// Create a sampler over `n` items (`n >= 1`) with the given exponent.
    pub fn new(n: usize, theta: f64) -> Self {
        let n = n.max(1) as u64;
        ScrambledZipf {
            dist: Zipf::new(n, theta).expect("valid zipf parameters"),
            n,
        }
    }

    /// Sample a scrambled rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        // Zipf samples in 1..=n with rank 1 most popular; FNV-style scramble
        // spreads the popular ranks across the key space (as YCSB does).
        let rank = self.dist.sample(rng) as u64 - 1;
        (fnv_hash(rank) % self.n) as usize
    }
}

#[inline]
fn fnv_hash(mut x: u64) -> u64 {
    // 64-bit FNV-1a over the 8 key bytes.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for _ in 0..8 {
        hash ^= x & 0xff;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        x >>= 8;
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = ScrambledZipf::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn distribution_is_skewed() {
        // With theta = 0.99 a handful of scrambled ranks should dominate.
        let n = 10_000;
        let z = ScrambledZipf::new(n, 0.99);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u32; n];
        let samples = 200_000;
        for _ in 0..samples {
            counts[z.sample(&mut rng)] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top_1pct: u32 = counts.iter().take(n / 100).sum();
        let share = top_1pct as f64 / samples as f64;
        assert!(
            share > 0.2,
            "top 1% of keys got only {share:.3} of requests"
        );
    }

    #[test]
    fn scrambling_spreads_hot_keys() {
        // The two most popular scrambled ranks should not be adjacent.
        let n = 100_000;
        let z = ScrambledZipf::new(n, 0.99);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0u32; n];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let mut ranked: Vec<usize> = (0..n).collect();
        ranked.sort_unstable_by_key(|&i| std::cmp::Reverse(counts[i]));
        let a = ranked[0] as i64;
        let b = ranked[1] as i64;
        assert!((a - b).abs() > 1, "hot keys {a} and {b} are adjacent");
    }

    #[test]
    fn degenerate_sizes_do_not_panic() {
        let z = ScrambledZipf::new(0, 0.99);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
        let z = ScrambledZipf::new(1, 0.5);
        assert_eq!(z.sample(&mut rng), 0);
    }
}
