//! Registry smoke tests: fast-failing coverage that every registered index
//! survives a tiny insert/lookup round-trip, so registry regressions (a
//! renamed entry, a broken constructor, a trait-impl typo) surface in
//! milliseconds without the heavy end-to-end suite. Covers the plain
//! registries, the `sharded(...)` serving-layer entries, and the
//! string-keyed backend factory.

use gre_bench::registry::{
    backend, concurrent_backend, concurrent_indexes, sharded_concurrent_indexes,
    single_thread_indexes, IndexBuilder, CONCURRENT_BACKENDS,
};
use gre_core::ConcurrentIndex;
use gre_shard::Scheme;

const TINY: u64 = 64;

fn tiny_entries() -> Vec<(u64, u64)> {
    (0..TINY).map(|i| (i * 3 + 1, i + 100)).collect()
}

#[test]
fn registries_are_non_empty() {
    assert!(!single_thread_indexes().is_empty());
    assert!(!concurrent_indexes(true).is_empty());
    assert!(!concurrent_indexes(false).is_empty());
    assert!(!sharded_concurrent_indexes(4).is_empty());
}

#[test]
fn registry_names_are_unique() {
    let mut names: Vec<&str> = single_thread_indexes().iter().map(|e| e.name).collect();
    names.sort_unstable();
    let len = names.len();
    names.dedup();
    assert_eq!(names.len(), len, "duplicate single-thread registry name");

    let mut names: Vec<String> = concurrent_indexes(true)
        .into_iter()
        .map(|e| e.name)
        .chain(sharded_concurrent_indexes(4).into_iter().map(|e| e.name))
        .collect();
    names.sort_unstable();
    let len = names.len();
    names.dedup();
    assert_eq!(names.len(), len, "duplicate concurrent registry name");
}

#[test]
fn every_single_thread_entry_round_trips() {
    let entries = tiny_entries();
    for mut e in single_thread_indexes() {
        e.index.bulk_load(&entries);
        assert_eq!(e.index.len(), entries.len(), "{} bulk load", e.name);
        for &(k, v) in &entries {
            assert_eq!(e.index.get(k), Some(v), "{} lookup {k}", e.name);
        }
        assert!(e.index.insert(2, 999), "{} fresh insert", e.name);
        assert_eq!(e.index.get(2), Some(999), "{} read-own-insert", e.name);
        assert_eq!(e.index.get(0), None, "{} absent key", e.name);
    }
}

#[test]
fn every_concurrent_entry_round_trips() {
    let entries = tiny_entries();
    for mut e in concurrent_indexes(true) {
        e.index.bulk_load(&entries);
        assert_eq!(e.index.len(), entries.len(), "{} bulk load", e.name);
        for &(k, v) in &entries {
            assert_eq!(e.index.get(k), Some(v), "{} lookup {k}", e.name);
        }
        assert!(e.index.insert(2, 999), "{} fresh insert", e.name);
        assert_eq!(e.index.get(2), Some(999), "{} read-own-insert", e.name);
        assert_eq!(e.index.get(0), None, "{} absent key", e.name);
    }
}

#[test]
fn every_sharded_entry_round_trips() {
    let entries = tiny_entries();
    for shards in [2usize, 4] {
        for mut e in sharded_concurrent_indexes(shards) {
            assert!(
                e.name.starts_with("sharded(") && e.name.ends_with(&format!(",{shards})")),
                "sharded entry name encodes backend and shard count: {}",
                e.name
            );
            e.index.bulk_load(&entries);
            assert_eq!(e.index.len(), entries.len(), "{} bulk load", e.name);
            for &(k, v) in &entries {
                assert_eq!(e.index.get(k), Some(v), "{} lookup {k}", e.name);
            }
            assert!(e.index.insert(2, 999), "{} fresh insert", e.name);
            assert_eq!(e.index.get(2), Some(999), "{} read-own-insert", e.name);
            assert_eq!(e.index.get(0), None, "{} absent key", e.name);
            assert_eq!(e.index.meta().name, e.name, "{} meta name", e.name);
        }
    }
}

#[test]
fn backend_factory_covers_every_registry_name() {
    for (name, _) in CONCURRENT_BACKENDS {
        let bare = concurrent_backend(name)
            .unwrap_or_else(|| panic!("factory must resolve registry name {name}"));
        assert_eq!(bare.meta().name, name);
        let sharded =
            backend(name, 3).unwrap_or_else(|| panic!("factory must build sharded({name},3)"));
        assert_eq!(sharded.meta().name, format!("sharded({name},3)"));
    }
    assert!(backend("definitely-not-an-index", 3).is_none());
}

#[test]
fn index_builder_covers_every_registry_name() {
    let entries = tiny_entries();
    for (name, kind) in CONCURRENT_BACKENDS {
        let builder = IndexBuilder::backend(name)
            .unwrap_or_else(|_| panic!("builder must resolve registry name {name}"));
        assert_eq!(builder.backend_name(), name);
        assert_eq!(builder.kind(), kind);
        // A hash-sharded composite built through the typed surface serves a
        // tiny round-trip.
        let mut idx = builder.shards(2).partitioner(Scheme::Hash).build_sharded();
        gre_core::ConcurrentIndex::bulk_load(&mut idx, &entries);
        assert_eq!(idx.meta().name, format!("sharded({name},2,hash)"));
        assert_eq!(idx.len(), entries.len(), "{name} bulk load");
        assert!(idx.insert(2, 999), "{name} fresh insert");
        assert_eq!(idx.get(2), Some(999), "{name} read-own-insert");
    }
    assert!(IndexBuilder::backend("definitely-not-an-index").is_err());
    // The CLI spec form resolves to the same configurations.
    let b = IndexBuilder::parse("masstree:2:hash").expect("spec parses");
    assert_eq!(b.display_name(), "sharded(Masstree,2,hash)");
}
