//! What happens when the data distribution changes after deployment? (§6.2)
//! Bulk load an easy dataset (covid), then insert keys drawn from the hardest
//! dataset (osm) rescaled into the same domain, and compare against the
//! no-shift baseline.
//!
//! Run with `cargo run --release --example distribution_shift`.

use gre::datasets::Dataset;
use gre::learned::{Alex, Lipp};
use gre::traditional::Art;
use gre::workloads::{run_single, WorkloadBuilder, WriteRatio};

fn main() {
    let n = 200_000;
    let builder = WorkloadBuilder::new(42);
    let covid = Dataset::Covid.generate(n, 42);
    let osm = Dataset::Osm.generate(n, 43);

    let baseline = builder.insert_workload("covid", &covid, WriteRatio::Balanced);
    let shifted = builder.shift_workload("covid->osm", &covid, &osm);

    for name in ["ALEX", "LIPP", "ART"] {
        let (base, shift) = match name {
            "ALEX" => (
                run_single(&mut Alex::<u64>::new(), &baseline),
                run_single(&mut Alex::<u64>::new(), &shifted),
            ),
            "LIPP" => (
                run_single(&mut Lipp::<u64>::new(), &baseline),
                run_single(&mut Lipp::<u64>::new(), &shifted),
            ),
            _ => (
                run_single(&mut Art::<u64>::new(), &baseline),
                run_single(&mut Art::<u64>::new(), &shifted),
            ),
        };
        let change =
            (shift.throughput_mops() - base.throughput_mops()) / base.throughput_mops() * 100.0;
        println!(
            "{:<6} baseline {:.2} Mop/s, covid->osm {:.2} Mop/s ({:+.1}%)",
            name,
            base.throughput_mops(),
            shift.throughput_mops(),
            change
        );
    }
    println!("Learned indexes feel the shift; traditional indexes barely notice (Message 11).");
}
