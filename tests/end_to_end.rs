//! Cross-crate integration tests: the full GRE pipeline (dataset → workload →
//! runner → result) on every index, plus cross-index agreement and the
//! paper's qualitative relationships that must hold at any scale.

use gre::datasets::Dataset;
use gre::learned::{Alex, AlexPlus, DynamicPgm, Finedex, Lipp, LippPlus, XIndex};
use gre::traditional::{art_olc, btree_olc, Art, BPlusTree, Hot};
use gre::workloads::{run_concurrent, run_single, WorkloadBuilder, WriteRatio};
use gre_bench::registry::{concurrent_indexes, single_thread_indexes};
use gre_core::{ConcurrentIndex, Index};

const N: usize = 20_000;

#[test]
fn all_single_thread_indexes_agree_on_the_balanced_workload() {
    let keys = Dataset::Covid.generate(N, 7);
    let workload = WorkloadBuilder::new(7).insert_workload("covid", &keys, WriteRatio::Balanced);
    let mut lens = Vec::new();
    let mut probes: Vec<Vec<Option<u64>>> = Vec::new();
    let probe_keys: Vec<u64> = keys.iter().step_by(97).copied().collect();
    for entry in single_thread_indexes() {
        eprintln!("running {}", entry.name);
        let mut index = entry.index;
        let result = run_single(index.as_mut(), &workload);
        assert!(result.throughput_mops() > 0.0, "{}", entry.name);
        lens.push((entry.name, index.len()));
        probes.push(probe_keys.iter().map(|&k| index.get(k)).collect());
    }
    let expected_len = lens[0].1;
    for (name, len) in &lens {
        assert_eq!(*len, expected_len, "{name} disagrees on the final size");
    }
    for p in &probes {
        assert_eq!(p, &probes[0], "probe results disagree across indexes");
    }
}

#[test]
fn all_concurrent_indexes_agree_under_threads() {
    let keys = Dataset::Libio.generate(N, 9);
    let workload = WorkloadBuilder::new(9).insert_workload("libio", &keys, WriteRatio::Balanced);
    let mut lens = Vec::new();
    for entry in concurrent_indexes(true) {
        let mut index = entry.index;
        let result = run_concurrent(index.as_mut(), &workload, 4);
        assert!(result.throughput_mops() > 0.0, "{}", entry.name);
        lens.push((entry.name, index.len()));
    }
    let expected = lens[0].1;
    for (name, len) in &lens {
        assert_eq!(*len, expected, "{name} lost or duplicated keys");
    }
}

#[test]
fn deletion_workload_shrinks_every_delete_capable_index() {
    let keys = Dataset::Stack.generate(N, 3);
    let workload = WorkloadBuilder::new(3).delete_workload("stack", &keys, 0.5);
    for entry in single_thread_indexes() {
        if !entry.index.meta().supports_delete {
            continue;
        }
        let mut index = entry.index;
        run_single(index.as_mut(), &workload);
        assert_eq!(index.len(), keys.len() - keys.len() / 2, "{}", entry.name);
    }
}

#[test]
fn memory_ordering_matches_figure_8() {
    // End-to-end sizes after a write-only workload: PGM < ALEX < LIPP, and
    // HOT is the most compact traditional index (Message 9's supporting facts).
    let keys = Dataset::Covid.generate(N, 5);
    let workload = WorkloadBuilder::new(5).insert_workload("covid", &keys, WriteRatio::WriteOnly);
    let mem = |mut idx: Box<dyn Index<u64>>| -> usize {
        run_single(idx.as_mut(), &workload);
        idx.memory_usage()
    };
    let pgm = mem(Box::new(DynamicPgm::<u64>::new()));
    let alex = mem(Box::new(Alex::<u64>::new()));
    let lipp = mem(Box::new(Lipp::<u64>::new()));
    let hot = mem(Box::new(Hot::<u64>::new()));
    let art = mem(Box::new(Art::<u64>::new()));
    let btree = mem(Box::new(BPlusTree::<u64>::new()));
    assert!(
        pgm < alex,
        "PGM ({pgm}) should be smaller than ALEX ({alex})"
    );
    assert!(
        alex < lipp,
        "ALEX ({alex}) should be smaller than LIPP ({lipp})"
    );
    assert!(
        hot < lipp,
        "HOT ({hot}) should be smaller than LIPP ({lipp})"
    );
    assert!(btree > 0 && art > 0);
}

#[test]
fn lipp_has_lower_write_amplification_than_alex() {
    // Message 5: LIPP's chaining creates at most one node per collision while
    // ALEX shifts many keys per insert on hard data.
    let keys = Dataset::Genome.generate(N, 11);
    let workload = WorkloadBuilder::new(11).insert_workload("genome", &keys, WriteRatio::WriteOnly);
    let mut alex = Alex::<u64>::new();
    let mut lipp = Lipp::<u64>::new();
    run_single(&mut alex, &workload);
    run_single(&mut lipp, &workload);
    let alex_shifts = alex.stats().avg_keys_shifted_per_insert();
    let lipp_nodes = lipp.stats().avg_nodes_created_per_insert();
    assert!(
        lipp_nodes <= 1.0,
        "LIPP creates at most one node per insert"
    );
    assert!(
        alex_shifts > lipp_nodes,
        "ALEX write amplification ({alex_shifts:.2} shifts) should exceed LIPP's ({lipp_nodes:.2} nodes)"
    );
}

#[test]
fn concurrent_learned_indexes_survive_mixed_churn() {
    let keys = Dataset::Wise.generate(N, 13);
    let entries: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k)).collect();
    let mut alex_plus = AlexPlus::<u64>::new();
    let mut lipp_plus = LippPlus::<u64>::new();
    let mut xindex = XIndex::<u64>::new();
    let mut finedex = Finedex::<u64>::new();
    let mut art = art_olc::<u64>();
    let mut btree = btree_olc::<u64>();
    ConcurrentIndex::bulk_load(&mut alex_plus, &entries);
    ConcurrentIndex::bulk_load(&mut lipp_plus, &entries);
    ConcurrentIndex::bulk_load(&mut xindex, &entries);
    ConcurrentIndex::bulk_load(&mut finedex, &entries);
    ConcurrentIndex::bulk_load(&mut art, &entries);
    ConcurrentIndex::bulk_load(&mut btree, &entries);
    let indexes: Vec<(&str, &dyn ConcurrentIndex<u64>)> = vec![
        ("ALEX+", &alex_plus),
        ("LIPP+", &lipp_plus),
        ("XIndex", &xindex),
        ("FINEdex", &finedex),
        ("ART-OLC", &art),
        ("B+treeOLC", &btree),
    ];
    for (name, index) in indexes {
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        // Keys are spaced above the f64 ulp at this magnitude:
                        // like the original implementations, the learned
                        // indexes train double-precision models and cannot
                        // separate keys closer than ~2^11 near 2^63.
                        let key = u64::MAX / 2 + (t * 1_000_000 + i) * (1 << 16);
                        index.insert(key, i);
                        assert_eq!(index.get(key), Some(i), "{name}");
                        if i % 3 == 0 {
                            index.remove(key);
                        }
                    }
                });
            }
        });
        let expected = entries.len() + 4 * (2_000 - 2_000_usize.div_ceil(3));
        assert_eq!(index.len(), expected, "{name} lost updates");
    }
}
