//! The replication mechanism: read replicas that continuously apply the
//! primary's WAL via a [`LogFollower`] shipping stream, publishing per-shard
//! applied watermarks, plus the shipper threads' kill/re-join lifecycle.

use crate::slo::{SloMonitor, SloTarget};
use gre_core::{ConcurrentIndex, Watermark};
use gre_durability::{DurableLog, FailAction, FailpointRegistry, LogFollower};
use gre_shard::{ShardPipeline, ShardedIndex};
use gre_telemetry::{CounterId, GaugeId, GlobalHistId, Telemetry};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The failpoint name a replica's shipper evaluates once per applied
/// record: `replica/{id}/apply`. Script it with
/// [`FailAction::Crash`] to kill the shipper mid-stream (the position
/// passed to the trigger is the count of records applied so far, so
/// `Trigger::OnHit(n)` and `Trigger::AtByte(n)` both kill after `n`
/// records).
pub fn apply_failpoint(replica: usize) -> String {
    format!("replica/{replica}/apply")
}

/// One read replica: a same-topology copy of the primary's sharded index,
/// its own serving pipeline for reads, and the applied-sequence watermark
/// its shipper publishes.
pub struct ReplicaNode<B: ConcurrentIndex<u64> + 'static> {
    pub(crate) id: usize,
    pub(crate) index: Arc<ShardedIndex<u64, B>>,
    pub(crate) pipeline: Arc<ShardPipeline<B>>,
    pub(crate) watermark: Arc<Watermark>,
    pub(crate) slo: Option<SloMonitor>,
    /// Records fully applied by this replica's shipper (across rejoins).
    applied_records: AtomicU64,
    /// Write operations applied (the sum of record op counts).
    applied_ops: AtomicU64,
    /// Shipper liveness: true while a shipper thread is applying. A
    /// scripted crash or an error flips it to false.
    running: AtomicBool,
    /// Cooperative stop request for the current shipper incarnation.
    stop: AtomicBool,
    /// This replica's last contribution to the per-shard lag gauge, so a
    /// new shipper incarnation adjusts by delta instead of double-counting.
    lag_contrib: Mutex<Vec<i64>>,
}

impl<B: ConcurrentIndex<u64> + 'static> ReplicaNode<B> {
    pub(crate) fn new(
        id: usize,
        index: Arc<ShardedIndex<u64, B>>,
        pipeline: Arc<ShardPipeline<B>>,
        baselines: &[u64],
        slo: Option<SloTarget>,
    ) -> Arc<ReplicaNode<B>> {
        let watermark = Watermark::new(baselines.len());
        for (shard, &seq) in baselines.iter().enumerate() {
            watermark.advance(shard, seq);
        }
        Arc::new(ReplicaNode {
            id,
            index,
            pipeline,
            watermark: Arc::new(watermark),
            slo: slo.map(SloMonitor::new),
            applied_records: AtomicU64::new(0),
            applied_ops: AtomicU64::new(0),
            running: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            lag_contrib: Mutex::new(vec![0; baselines.len()]),
        })
    }

    /// This replica's id (its position in the replica set).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The replica's index copy (for post-run verification).
    pub fn index(&self) -> &ShardedIndex<u64, B> {
        &self.index
    }

    /// The per-shard applied watermark this replica publishes.
    pub fn watermark(&self) -> &Watermark {
        &self.watermark
    }

    /// The replica's read-serving pipeline.
    pub fn pipeline(&self) -> &ShardPipeline<B> {
        &self.pipeline
    }

    /// The replica's SLO monitor, when admission control is configured.
    pub fn slo(&self) -> Option<&SloMonitor> {
        self.slo.as_ref()
    }

    /// WAL records fully applied by this replica (across rejoins).
    pub fn applied_records(&self) -> u64 {
        self.applied_records.load(Ordering::Relaxed)
    }

    /// Write operations applied by this replica (across rejoins).
    pub fn applied_ops(&self) -> u64 {
        self.applied_ops.load(Ordering::Relaxed)
    }

    /// Whether a shipper thread is currently applying for this replica.
    pub fn is_running(&self) -> bool {
        self.running.load(Ordering::Acquire)
    }

    pub(crate) fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    pub(crate) fn clear_stop(&self) {
        self.stop.store(false, Ordering::Release);
    }
}

/// Everything one shipper incarnation needs; owned by the spawned thread.
pub(crate) struct ShipperConfig {
    pub log: Arc<DurableLog>,
    pub telemetry: Option<Arc<Telemetry>>,
    pub failpoints: Option<Arc<FailpointRegistry>>,
    pub poll_interval: Duration,
    /// Counter-stripe index this shipper records into.
    pub stripe: usize,
}

/// Spawn a shipper thread applying `follower`'s stream into `node`.
///
/// The shipper polls every shard, executes each record's write ops against
/// the replica's backend for that shard, advances the watermark *after* the
/// ops are visible, and publishes its shipping lag into the
/// [`GaugeId::ReplicaLag`] gauge. It exits when
/// [`ReplicaNode::request_stop`] is observed (graceful: `running` stays
/// consistent), when the scripted [`apply_failpoint`] fires with
/// [`FailAction::Crash`] (the kill-window drill), or when the stream
/// errors.
pub(crate) fn spawn_shipper<B: ConcurrentIndex<u64> + 'static>(
    node: Arc<ReplicaNode<B>>,
    mut follower: LogFollower,
    cfg: ShipperConfig,
) -> JoinHandle<()> {
    node.clear_stop();
    node.running.store(true, Ordering::Release);
    std::thread::spawn(move || {
        let shards = node.index.num_shards();
        let metas: Vec<_> = (0..shards).map(|s| node.index.backend(s).meta()).collect();
        let failpoint = cfg.failpoints.as_ref().map(|_| apply_failpoint(node.id));
        loop {
            if node.stop.load(Ordering::Acquire) {
                break;
            }
            let mut progressed = false;
            for (shard, meta) in metas.iter().enumerate() {
                let records = match follower.poll(shard) {
                    Ok(records) => records,
                    Err(_) => {
                        // A corrupt or truncated stream fail-stops this
                        // replica's shipping; reads keep being served from
                        // its last applied state.
                        node.running.store(false, Ordering::Release);
                        return;
                    }
                };
                for record in records {
                    let t0 = Instant::now();
                    let backend = node.index.backend(shard);
                    let mut ops = 0u64;
                    for op in &record.ops {
                        if op.is_write() {
                            op.execute(backend, meta);
                            ops += 1;
                        }
                    }
                    // Ops first, watermark second: a watermark never claims
                    // state the backend does not yet show.
                    node.watermark.advance(shard, record.seq);
                    let applied = node.applied_records.fetch_add(1, Ordering::AcqRel) + 1;
                    node.applied_ops.fetch_add(ops, Ordering::Relaxed);
                    if let Some(t) = &cfg.telemetry {
                        t.metrics()
                            .stripe(cfg.stripe)
                            .add(CounterId::ReplicaAppliedOps, ops);
                        t.metrics()
                            .global(GlobalHistId::ReplicaApplyNs)
                            .record(t0.elapsed().as_nanos() as u64);
                    }
                    progressed = true;
                    if let (Some(fp), Some(name)) = (&cfg.failpoints, &failpoint) {
                        if fp.check(name, applied) == Some(FailAction::Crash) {
                            // The scripted mid-stream kill: the shipper dies
                            // between two applies, exactly like a replica
                            // process crash after persisting its state.
                            node.running.store(false, Ordering::Release);
                            return;
                        }
                    }
                }
            }
            publish_lag(&node, &cfg);
            if !progressed {
                std::thread::sleep(cfg.poll_interval);
            }
        }
        publish_lag(&node, &cfg);
        node.running.store(false, Ordering::Release);
    })
}

/// Fold this replica's current shipping lag into the shared per-shard
/// [`GaugeId::ReplicaLag`] gauge (which sums lag across replicas), by
/// delta against the node's last published contribution.
fn publish_lag<B: ConcurrentIndex<u64> + 'static>(node: &ReplicaNode<B>, cfg: &ShipperConfig) {
    let Some(t) = &cfg.telemetry else { return };
    let mut contrib = node.lag_contrib.lock().expect("lag contribution poisoned");
    for (shard, prev) in contrib.iter_mut().enumerate() {
        let committed = cfg.log.next_seq(shard) - 1;
        let lag = node.watermark.lag_behind(shard, committed) as i64;
        if lag != *prev {
            t.metrics()
                .shard(shard)
                .gauge_add(GaugeId::ReplicaLag, lag - *prev);
            *prev = lag;
        }
    }
}
