//! The on-disk WAL record frame: length-prefixed, CRC-checksummed groups of
//! wire-encoded operations.
//!
//! Layout of one record (all integers little-endian):
//!
//! ```text
//! +---------+---------+---------+-----------+------------------------+
//! | len u32 | crc u32 | seq u64 | count u32 | count wire-encoded ops |
//! +---------+---------+---------+-----------+------------------------+
//!  `len`  = bytes after the crc field (12 + op bytes)
//!  `crc`  = CRC-32C over those same `len` bytes
//! ```
//!
//! `seq` is the shard's monotonically increasing **group sequence number**
//! (one per group commit); recovery uses it to skip records already covered
//! by a snapshot and to stop at the first discontinuity (a duplicate tail
//! record left by a torn rewrite reuses a seq and is rejected).
//!
//! [`decode_record`] classifies every way a scan can end ([`RecordError`]):
//! a clean record, a torn tail (fewer bytes than the header or body claims —
//! the normal crash signature, truncated by recovery), or a corrupt record
//! (checksum or payload decode failure — bit rot or a bug). It never panics
//! and never reads past the buffer.

use gre_core::wire::{decode_requests, encode_requests};
use gre_core::Request;

/// Bytes before the checksummed region: the `len` and `crc` fields.
pub const FRAME_HEADER: usize = 8;
/// Checksummed bytes before the op payload: `seq` and `count`.
pub const RECORD_HEADER: usize = 12;
/// Sanity cap on a single record's body, so a corrupt length prefix cannot
/// ask recovery to buffer gigabytes. One group is one pipeline sub-batch;
/// 16 MiB is orders of magnitude above any real group.
pub const MAX_RECORD_LEN: u32 = 16 << 20;
/// High bit of the `count` field marking a **topology record** (shard
/// split/merge/migrate handoff) instead of an op group. The remaining 31
/// bits carry the entry count; op groups never approach that.
pub const TOPOLOGY_FLAG: u32 = 0x8000_0000;
/// Entries per In-record chunk: a migration larger than this is written as
/// several In records sharing one handoff id, keeping every record far
/// under [`MAX_RECORD_LEN`] (100k entries ≈ 1.6 MiB).
pub const TOPOLOGY_CHUNK: usize = 100_000;

/// Encode one group of operations as a framed record appended to `out`.
pub fn encode_record(seq: u64, ops: &[Request<u64>], out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.extend_from_slice(&[0u8; FRAME_HEADER]); // len + crc backpatched below
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    encode_requests(ops, out);
    let len = (out.len() - start - FRAME_HEADER) as u32;
    debug_assert!(len <= MAX_RECORD_LEN, "a group never approaches the cap");
    let crc = crc32c(&out[start + FRAME_HEADER..]);
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    out.len() - start
}

/// Encode one topology record in the same frame as an op group, flagged via
/// the high bit of the count field. Body after the record header:
/// `dir u8, id u64, lo u64, hi-present u8, hi u64, peer u32, entries`.
pub fn encode_topology(seq: u64, topo: &TopologyRecord, out: &mut Vec<u8>) -> usize {
    assert!(
        topo.entries.len() <= TOPOLOGY_CHUNK,
        "chunk In entries before encoding"
    );
    let start = out.len();
    out.extend_from_slice(&[0u8; FRAME_HEADER]);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(TOPOLOGY_FLAG | topo.entries.len() as u32).to_le_bytes());
    out.push(match topo.dir {
        TopologyDirection::In => 0,
        TopologyDirection::Out => 1,
    });
    out.extend_from_slice(&topo.id.to_le_bytes());
    out.extend_from_slice(&topo.lo.to_le_bytes());
    out.push(topo.hi.is_some() as u8);
    out.extend_from_slice(&topo.hi.unwrap_or(0).to_le_bytes());
    out.extend_from_slice(&topo.peer.to_le_bytes());
    for &(k, v) in &topo.entries {
        out.extend_from_slice(&k.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    let len = (out.len() - start - FRAME_HEADER) as u32;
    debug_assert!(
        len <= MAX_RECORD_LEN,
        "a chunked handoff stays under the cap"
    );
    let crc = crc32c(&out[start + FRAME_HEADER..]);
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    out.len() - start
}

/// Fixed topology body bytes after the record header (before the entries).
const TOPOLOGY_FIXED: usize = 1 + 8 + 8 + 1 + 8 + 4;

fn decode_topology(body: &[u8], count: u32) -> Option<TopologyRecord> {
    let n = (count & !TOPOLOGY_FLAG) as usize;
    if body.len() != TOPOLOGY_FIXED + n * 16 {
        return None;
    }
    let dir = match body[0] {
        0 => TopologyDirection::In,
        1 => TopologyDirection::Out,
        _ => return None,
    };
    let id = u64::from_le_bytes(body[1..9].try_into().ok()?);
    let lo = u64::from_le_bytes(body[9..17].try_into().ok()?);
    let hi = match body[17] {
        0 => None,
        1 => Some(u64::from_le_bytes(body[18..26].try_into().ok()?)),
        _ => return None,
    };
    let peer = u32::from_le_bytes(body[26..30].try_into().ok()?);
    let mut entries = Vec::with_capacity(n);
    for i in 0..n {
        let at = TOPOLOGY_FIXED + i * 16;
        entries.push((
            u64::from_le_bytes(body[at..at + 8].try_into().ok()?),
            u64::from_le_bytes(body[at + 8..at + 16].try_into().ok()?),
        ));
    }
    Some(TopologyRecord {
        dir,
        id,
        lo,
        hi,
        peer,
        entries,
    })
}

/// Which side of a range handoff a topology record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyDirection {
    /// The entries of `[lo, hi)` arriving at this shard (written to the
    /// **target** shard's log, synced *before* the matching `Out`).
    In,
    /// The range `[lo, hi)` departing this shard (written to the **source**
    /// shard's log, synced *after* the matching `In` — its presence is the
    /// migration's durable commit point).
    Out,
}

/// A range-handoff record: one half of a split/merge/migrate, identified by
/// a handoff id shared between the source's `Out` and the target's `In`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyRecord {
    pub dir: TopologyDirection,
    /// Handoff id, unique across shard incarnations (the controller derives
    /// it from the source shard and its WAL seq).
    pub id: u64,
    /// Inclusive lower bound of the moved range.
    pub lo: u64,
    /// Exclusive upper bound; `None` = unbounded.
    pub hi: Option<u64>,
    /// The other shard of the handoff (source for `In`, target for `Out`).
    pub peer: u32,
    /// The moved entries (`In` only; large handoffs chunk across several
    /// `In` records with the same id). Always empty for `Out`.
    pub entries: Vec<(u64, u64)>,
}

/// One successfully decoded record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    pub seq: u64,
    pub ops: Vec<Request<u64>>,
    /// Present when this is a topology record; `ops` is then empty.
    pub topology: Option<TopologyRecord>,
    /// Total framed size in bytes (frame header included).
    pub frame_len: usize,
}

/// Why a record could not be decoded at the current offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordError {
    /// Fewer bytes remain than a frame header or the length prefix claims:
    /// the crash signature of a torn append. Recovery truncates here.
    TornTail {
        /// Bytes remaining at the failed offset.
        remaining: usize,
    },
    /// The length prefix exceeds [`MAX_RECORD_LEN`] — a corrupt prefix, not
    /// a plausible record.
    BadLength { claimed: u32 },
    /// The CRC-32C over the record body does not match the stored checksum.
    BadChecksum,
    /// The checksum held but the op payload does not decode — only possible
    /// through a format bug or a collision-grade corruption.
    BadPayload,
}

/// Decode the record starting at `buf[at..]`.
pub fn decode_record(buf: &[u8], at: usize) -> Result<Record, RecordError> {
    let remaining = buf.len().saturating_sub(at);
    if remaining < FRAME_HEADER {
        return Err(RecordError::TornTail { remaining });
    }
    let len = u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"));
    if len > MAX_RECORD_LEN || (len as usize) < RECORD_HEADER {
        return Err(RecordError::BadLength { claimed: len });
    }
    let crc = u32::from_le_bytes(buf[at + 4..at + 8].try_into().expect("4 bytes"));
    let body_start = at + FRAME_HEADER;
    let body_end = body_start + len as usize;
    if body_end > buf.len() {
        return Err(RecordError::TornTail { remaining });
    }
    let body = &buf[body_start..body_end];
    if crc32c(body) != crc {
        return Err(RecordError::BadChecksum);
    }
    let seq = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
    let count = u32::from_le_bytes(body[8..12].try_into().expect("4 bytes"));
    if count & TOPOLOGY_FLAG != 0 {
        let topology =
            decode_topology(&body[RECORD_HEADER..], count).ok_or(RecordError::BadPayload)?;
        return Ok(Record {
            seq,
            ops: Vec::new(),
            topology: Some(topology),
            frame_len: FRAME_HEADER + len as usize,
        });
    }
    let ops =
        decode_requests(&body[RECORD_HEADER..], count as usize).ok_or(RecordError::BadPayload)?;
    Ok(Record {
        seq,
        ops,
        topology: None,
        frame_len: FRAME_HEADER + len as usize,
    })
}

/// CRC-32C (Castagnoli), bitwise-reflected, software table implementation.
/// The polynomial choice matches what production log formats use (ext4,
/// iSCSI, RocksDB WALs); the table is built at first use.
pub fn crc32c(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        const POLY: u32 = 0x82F6_3B78; // reflected 0x1EDC6F41
        let mut table = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    });
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use gre_core::RangeSpec;

    fn sample_ops() -> Vec<Request<u64>> {
        vec![
            Request::Insert(10, 100),
            Request::Update(20, 200),
            Request::Remove(30),
            Request::Range(RangeSpec::bounded(1, 9, 4)),
        ]
    }

    #[test]
    fn crc32c_known_vectors() {
        // RFC 3720 / iSCSI test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn record_round_trips() {
        let mut buf = Vec::new();
        let written = encode_record(42, &sample_ops(), &mut buf);
        assert_eq!(written, buf.len());
        let rec = decode_record(&buf, 0).expect("valid record");
        assert_eq!(rec.seq, 42);
        assert_eq!(rec.ops, sample_ops());
        assert_eq!(rec.frame_len, buf.len());
    }

    #[test]
    fn back_to_back_records_decode_in_sequence() {
        let mut buf = Vec::new();
        encode_record(1, &sample_ops()[..2], &mut buf);
        let second_at = buf.len();
        encode_record(2, &sample_ops()[2..], &mut buf);
        let first = decode_record(&buf, 0).expect("first");
        assert_eq!(first.frame_len, second_at);
        let second = decode_record(&buf, first.frame_len).expect("second");
        assert_eq!(second.seq, 2);
        assert_eq!(second.ops, sample_ops()[2..]);
    }

    #[test]
    fn every_truncation_is_a_torn_tail() {
        let mut buf = Vec::new();
        encode_record(7, &sample_ops(), &mut buf);
        for cut in 0..buf.len() {
            match decode_record(&buf[..cut], 0) {
                Err(RecordError::TornTail { .. }) => {}
                other => panic!("cut at {cut}: expected torn tail, got {other:?}"),
            }
        }
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let mut pristine = Vec::new();
        encode_record(7, &sample_ops(), &mut pristine);
        for byte in 0..pristine.len() {
            for bit in 0..8 {
                let mut buf = pristine.clone();
                buf[byte] ^= 1 << bit;
                // A flip in the length prefix may masquerade as a torn
                // tail or an absurd length; anywhere else it must be the
                // checksum that catches it. All are detections — only a
                // silent clean decode is a failure.
                if let Ok(rec) = decode_record(&buf, 0) {
                    panic!("flip {byte}.{bit} decoded silently as seq {}", rec.seq);
                }
            }
        }
    }

    #[test]
    fn absurd_length_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        encode_record(7, &sample_ops(), &mut buf);
        buf[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_record(&buf, 0),
            Err(RecordError::BadLength { claimed: u32::MAX })
        ));
        // A length below the record header is equally implausible.
        buf[0..4].copy_from_slice(&4u32.to_le_bytes());
        assert!(matches!(
            decode_record(&buf, 0),
            Err(RecordError::BadLength { claimed: 4 })
        ));
    }

    #[test]
    fn empty_group_is_a_valid_record() {
        let mut buf = Vec::new();
        encode_record(1, &[], &mut buf);
        let rec = decode_record(&buf, 0).expect("valid");
        assert!(rec.ops.is_empty());
    }

    #[test]
    fn topology_records_round_trip_both_directions() {
        let moved_in = TopologyRecord {
            dir: TopologyDirection::In,
            id: (3u64 << 48) | 17,
            lo: 5_000,
            hi: Some(9_000),
            peer: 3,
            entries: vec![(5_000, 1), (6_500, 2), (8_999, 3)],
        };
        let departed = TopologyRecord {
            dir: TopologyDirection::Out,
            id: moved_in.id,
            lo: 5_000,
            hi: None, // unbounded tail handoff
            peer: 1,
            entries: Vec::new(),
        };
        let mut buf = Vec::new();
        encode_topology(7, &moved_in, &mut buf);
        let second_at = buf.len();
        encode_topology(8, &departed, &mut buf);

        let first = decode_record(&buf, 0).expect("In decodes");
        assert_eq!(first.seq, 7);
        assert!(first.ops.is_empty());
        assert_eq!(first.topology, Some(moved_in));
        let second = decode_record(&buf, second_at).expect("Out decodes");
        assert_eq!(second.topology, Some(departed));
    }

    #[test]
    fn topology_records_interleave_with_op_groups() {
        let mut buf = Vec::new();
        encode_record(1, &sample_ops(), &mut buf);
        let topo = TopologyRecord {
            dir: TopologyDirection::Out,
            id: 42,
            lo: 0,
            hi: Some(10),
            peer: 2,
            entries: Vec::new(),
        };
        let at = buf.len();
        encode_topology(2, &topo, &mut buf);
        encode_record(3, &sample_ops()[..1], &mut buf);

        let first = decode_record(&buf, 0).unwrap();
        assert!(first.topology.is_none());
        let second = decode_record(&buf, at).unwrap();
        assert_eq!(second.topology, Some(topo));
        let third = decode_record(&buf, at + second.frame_len).unwrap();
        assert_eq!((third.seq, third.ops.len()), (3, 1));
    }

    #[test]
    fn corrupt_topology_body_is_a_bad_payload() {
        let mut buf = Vec::new();
        encode_topology(
            1,
            &TopologyRecord {
                dir: TopologyDirection::In,
                id: 9,
                lo: 1,
                hi: Some(2),
                peer: 0,
                entries: vec![(1, 1)],
            },
            &mut buf,
        );
        // A direction byte beyond the enum must fail decode, not panic —
        // repair the crc so only the payload check can catch it.
        buf[FRAME_HEADER + RECORD_HEADER] = 7;
        let crc = crc32c(&buf[FRAME_HEADER..]);
        buf[4..8].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_record(&buf, 0), Err(RecordError::BadPayload));
    }
}
