//! Figure 7: single-threaded throughput heatmap under deletion workloads.
use gre_bench::heatmap::{single_thread_heatmap, HeatmapMode};
use gre_bench::RunOpts;
use gre_datasets::Dataset;

fn main() {
    let opts = RunOpts::from_env();
    let hm = single_thread_heatmap(
        "Figure 7: single-threaded deletion heatmap",
        &Dataset::HEATMAP_DATASETS,
        &opts,
        HeatmapMode::Deletes,
    );
    print!("{}", hm.render());
}
