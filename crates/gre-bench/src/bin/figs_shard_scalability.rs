//! Shard scalability of the `gre-shard` serving layer: throughput of
//! `sharded(backend, S)` while sweeping shard count × thread count ×
//! backend on the paper's balanced workload.
//!
//! Three execution paths per configuration:
//!
//! * `direct`  — client threads call the composite `ConcurrentIndex`
//!   directly (`run_concurrent`), one routing decision per op.
//! * `batched` — the same request stream split into `OpBatch`es and
//!   submitted to the `ShardPipeline` worker pool one batch at a time
//!   (submit, then wait), amortizing routing and hand-off over `BATCH` ops
//!   with per-shard FIFO execution.
//! * `session` — the same batches submitted through per-client `Session`s
//!   that keep up to `INFLIGHT` batches in flight each, overlapping
//!   submission with execution (the typed request/response client surface).
//!
//! `--shards N` caps the shard-count axis, `--threads T` the thread axis.

use gre_bench::registry::IndexBuilder;
use gre_bench::RunOpts;
use gre_core::ConcurrentIndex;
use gre_datasets::Dataset;
use gre_shard::{OpBatch, Session, ShardPipeline};
use gre_workloads::{run_concurrent, Workload, WorkloadBuilder, WriteRatio};
use std::sync::Arc;
use std::time::Instant;

/// Ops per submitted batch on the batched and session paths.
const BATCH: usize = 1024;

/// In-flight batch window per client session.
const INFLIGHT: usize = 8;

fn main() {
    let opts = RunOpts::from_env();
    let backends: Vec<&str> = if opts.quick {
        vec!["ALEX+", "B+treeOLC"]
    } else {
        vec!["ALEX+", "LIPP+", "XIndex", "B+treeOLC", "ART-OLC"]
    };
    let shard_counts: Vec<usize> = [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .filter(|s| *s <= opts.shards)
        .collect();
    let mut thread_points: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|t| *t <= opts.threads)
        .collect();
    if thread_points.is_empty() {
        thread_points.push(1);
    }
    let datasets: &[Dataset] = if opts.quick {
        &[Dataset::Covid]
    } else {
        &[Dataset::Covid, Dataset::Osm]
    };

    let builder = WorkloadBuilder::new(opts.seed);
    println!(
        "# Shard scalability (Mop/s), balanced workload; thread axis: {thread_points:?}; \
         batched/session paths use {BATCH}-op batches, sessions keep {INFLIGHT} in flight"
    );
    println!(
        "{:<10} {:<22} {:>6} {:<8}{}",
        "dataset",
        "index",
        "shards",
        "path",
        thread_points
            .iter()
            .map(|t| format!(" {t:>7}T"))
            .collect::<String>()
    );
    for ds in datasets {
        let keys = ds.generate(opts.keys, opts.seed);
        let workload = builder.insert_workload(&ds.name(), &keys, WriteRatio::Balanced);
        for backend in &backends {
            for &shards in &shard_counts {
                let spec = IndexBuilder::backend(backend)
                    .expect("registry backend resolves")
                    .shards(shards);
                let name = spec.build_sharded().meta().name.to_string();
                let mut rows = [
                    (String::from("direct"), String::new()),
                    (String::from("batched"), String::new()),
                    (String::from("session"), String::new()),
                ];
                for &threads in &thread_points {
                    // Always the composite — even at 1 shard — so every row
                    // of the sweep measures the same structure and the
                    // shards=1 baseline includes the routing dispatch too.
                    let mut index = spec.build_sharded();
                    let r = run_concurrent(&mut index, &workload, threads);
                    rows[0]
                        .1
                        .push_str(&format!(" {:>8.3}", r.throughput_mops()));
                    rows[1]
                        .1
                        .push_str(&format!(" {:>8.3}", run_batched(&spec, &workload, threads)));
                    rows[2]
                        .1
                        .push_str(&format!(" {:>8.3}", run_session(&spec, &workload, threads)));
                }
                for (path, cells) in rows {
                    println!(
                        "{:<10} {:<22} {:>6} {:<8}{cells}",
                        ds.name(),
                        name,
                        shards,
                        path
                    );
                }
            }
        }
    }
}

/// Bulk load a fresh sharded composite and serve it from a pipeline.
fn boot(
    spec: &IndexBuilder,
    workload: &Workload,
    workers: usize,
) -> ShardPipeline<Box<dyn ConcurrentIndex<u64>>> {
    let mut index = spec.build_sharded();
    ConcurrentIndex::bulk_load(&mut index, &workload.bulk);
    ShardPipeline::new(Arc::new(index), workers)
}

/// Throughput of the batched pipeline path: one submitter, one batch in
/// flight at a time (submit, then wait for its typed responses).
fn run_batched(spec: &IndexBuilder, workload: &Workload, workers: usize) -> f64 {
    let pipeline = boot(spec, workload, workers);
    let timer = Instant::now();
    let mut executed = 0usize;
    for chunk in workload.ops.chunks(BATCH) {
        executed += pipeline.submit(OpBatch::new(chunk.to_vec())).wait().len();
    }
    let elapsed = timer.elapsed().as_secs_f64();
    assert_eq!(executed, workload.ops.len(), "pipeline dropped operations");
    if elapsed == 0.0 {
        return 0.0;
    }
    executed as f64 / elapsed / 1e6
}

/// Throughput of the session-pipelined path: `clients` threads each keep up
/// to `INFLIGHT` batches in flight through their own `Session`, consuming
/// typed responses in FIFO order as they complete.
fn run_session(spec: &IndexBuilder, workload: &Workload, clients: usize) -> f64 {
    let clients = clients.max(1);
    let pipeline = boot(spec, workload, clients);
    let chunk_size = workload.ops.len().div_ceil(clients).max(1);
    let timer = Instant::now();
    let executed: usize = std::thread::scope(|s| {
        let pipeline = &pipeline;
        let handles: Vec<_> = workload
            .ops
            .chunks(chunk_size)
            .map(|client_ops| {
                s.spawn(move || {
                    let mut session = Session::with_max_inflight(pipeline, INFLIGHT);
                    let mut executed = 0usize;
                    for chunk in client_ops.chunks(BATCH) {
                        session.submit(OpBatch::new(chunk.to_vec()));
                        // Consume whatever has already completed, without
                        // blocking the submission stream.
                        while let Some(responses) = session.try_recv() {
                            executed += responses.len();
                        }
                    }
                    for responses in session.drain() {
                        executed += responses.len();
                    }
                    executed
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .sum()
    });
    let elapsed = timer.elapsed().as_secs_f64();
    assert_eq!(executed, workload.ops.len(), "session dropped operations");
    if elapsed == 0.0 {
        return 0.0;
    }
    executed as f64 / elapsed / 1e6
}
