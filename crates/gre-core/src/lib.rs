//! # gre-core
//!
//! Core building blocks shared by every index implementation and by the GRE
//! benchmarking harness:
//!
//! * [`key`] — the [`key::Key`] abstraction (ordered, copyable, convertible
//!   to/from `f64` so linear models can be trained on it) and the canonical
//!   `(key, payload)` entry type.
//! * [`index`] — the [`index::Index`] and
//!   [`index::ConcurrentIndex`] traits every evaluated index
//!   implements, mirroring the operation set of the GRE benchmark
//!   (bulk load, lookup, insert, remove, range scan, memory accounting).
//! * [`stats`] — per-operation statistics used to reproduce the paper's
//!   insert-time breakdown (Figure 3) and per-insert counters (Table 3).
//! * [`ops`] — the canonical typed request/response vocabulary
//!   ([`ops::Request`]/[`ops::Response`]) spoken by the
//!   workload generators and the serving layers, with per-operation
//!   capability gating ([`ops::IndexError`]).
//! * [`latency`] — kind-indexed log-linear latency histograms
//!   ([`latency::LatencyHistogram`], [`latency::KindLatency`]) used by the
//!   scenario driver for coordinated-omission-safe tail reporting.
//! * [`sync`] — the optimistic versioned lock (OLC word) used by the
//!   concurrent index variants (ALEX+, LIPP+, ART-OLC, B+TreeOLC).
//! * [`wire`] — the stable byte encoding of [`ops::Request`] used by the
//!   `gre-durability` write-ahead log.
//! * [`elastic`] — the shared vocabulary of the online elasticity protocol
//!   (typed [`elastic::ElasticError`], committed [`elastic::BoundaryChange`]
//!   events) spoken between `gre-shard`'s mechanism and `gre-elastic`'s
//!   policy layer.
//! * [`replica`] — the shared vocabulary of the replication tier
//!   (per-shard applied-sequence [`replica::Watermark`]s, the
//!   [`replica::ReadPolicy`] for read placement) spoken between
//!   `gre-replica`'s mechanism and the serving/benchmark layers.
//! * [`error`] — the shared error type.

pub mod elastic;
pub mod error;
pub mod index;
pub mod key;
pub mod latency;
pub mod ops;
pub mod replica;
pub mod stats;
pub mod sync;
pub mod wire;

pub use elastic::{BoundaryChange, ElasticError, TopologyKind};
pub use error::{GreError, Result};
pub use index::{ConcurrentIndex, Index, IndexMeta, RangeSpec};
pub use key::{Entry, Key, Payload};
pub use latency::{KindLatency, LatencyHistogram};
pub use ops::{IndexError, Request, RequestKind, Response};
pub use replica::{ReadPolicy, Watermark};
pub use stats::{InsertBreakdown, InsertStats, OpCounters, StatsSnapshot};
pub use sync::{OptLock, OptLockWriteGuard};
