//! Criterion micro-benchmarks backing the paper's figures: point lookups and
//! inserts on every index (Figures 2–5), bulk loading, range scans
//! (Figure 13) and PLA hardness computation (§3.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gre_bench::registry::{concurrent_indexes, single_thread_indexes};
use gre_core::RangeSpec;
use gre_datasets::Dataset;
use gre_pla::{optimal_pla, DataHardness, HardnessConfig};
use std::hint::black_box;

const N: usize = 50_000;

fn dataset_entries(ds: Dataset) -> Vec<(u64, u64)> {
    ds.generate(N, 42).into_iter().map(|k| (k, k ^ 7)).collect()
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup");
    group.sample_size(10);
    for ds in [Dataset::Covid, Dataset::Osm] {
        let entries = dataset_entries(ds);
        for entry in single_thread_indexes() {
            let mut index = entry.index;
            index.bulk_load(&entries);
            group.bench_with_input(
                BenchmarkId::new(entry.name, ds.name()),
                &entries,
                |b, entries| {
                    let mut i = 0usize;
                    b.iter(|| {
                        i = (i + 7919) % entries.len();
                        black_box(index.get(entries[i].0))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert");
    group.sample_size(10);
    for ds in [Dataset::Covid] {
        let entries = dataset_entries(ds);
        let (bulk, rest) = entries.split_at(entries.len() / 2);
        for entry in single_thread_indexes() {
            let mut index = entry.index;
            index.bulk_load(bulk);
            group.bench_with_input(BenchmarkId::new(entry.name, ds.name()), rest, |b, rest| {
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % rest.len();
                    black_box(index.insert(rest[i].0, rest[i].1))
                })
            });
        }
    }
    group.finish();
}

fn bench_bulk_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("bulk_load");
    group.sample_size(10);
    let entries = dataset_entries(Dataset::Books);
    for entry in single_thread_indexes() {
        group.bench_function(entry.name, |b| {
            b.iter_batched(
                || (),
                |_| {
                    let mut fresh = single_thread_indexes()
                        .into_iter()
                        .find(|e| e.name == entry.name)
                        .unwrap()
                        .index;
                    fresh.bulk_load(black_box(&entries));
                    black_box(fresh.len())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_range(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_scan_100");
    group.sample_size(10);
    let entries = dataset_entries(Dataset::Covid);
    for entry in single_thread_indexes() {
        if !entry.index.meta().supports_range {
            continue;
        }
        let mut index = entry.index;
        index.bulk_load(&entries);
        group.bench_function(entry.name, |b| {
            let mut out = Vec::with_capacity(128);
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 8191) % entries.len();
                out.clear();
                black_box(index.range(RangeSpec::new(entries[i].0, 100), &mut out))
            })
        });
    }
    group.finish();
}

fn bench_concurrent_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrent_single_thread_insert_path");
    group.sample_size(10);
    let entries = dataset_entries(Dataset::Covid);
    let (bulk, rest) = entries.split_at(entries.len() / 2);
    for entry in concurrent_indexes(true) {
        let mut index = entry.index;
        index.bulk_load(bulk);
        group.bench_function(entry.name, |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % rest.len();
                black_box(index.insert(rest[i].0, rest[i].1))
            })
        });
    }
    group.finish();
}

fn bench_pla(c: &mut Criterion) {
    let mut group = c.benchmark_group("pla_hardness");
    group.sample_size(10);
    for ds in [Dataset::Covid, Dataset::Genome, Dataset::Osm] {
        let keys = ds.generate(N, 42);
        group.bench_function(format!("segments_eps32_{}", ds.name()), |b| {
            b.iter(|| black_box(optimal_pla(&keys, 32).len()))
        });
        group.bench_function(format!("hardness_{}", ds.name()), |b| {
            b.iter(|| black_box(DataHardness::compute(&keys, HardnessConfig::default()).local))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10);
    targets = bench_lookup,
        bench_insert,
        bench_bulk_load,
        bench_range,
        bench_concurrent_insert,
        bench_pla
}
criterion_main!(benches);
