//! Snapshot exporters: Prometheus text format and the repo's hand-rolled
//! JSON style, plus a strict parser-validator for the Prometheus output
//! (used by the CI smoke checks alongside the JSON validator in
//! `gre-bench`).
//!
//! All metric names carry a `gre_` namespace prefix. Histograms export as
//! Prometheus *summaries*: `{quantile="..."}` samples plus `_sum`/`_count`,
//! which matches what a scrape of a pre-aggregated histogram should look
//! like (quantiles are computed at snapshot time, not by the server).

use crate::metrics::{CounterId, GaugeId, GlobalHistId, MetricsSnapshot, ShardHistId};
use gre_core::LatencyHistogram;
use std::fmt::Write as _;

/// Quantiles exported for every histogram.
const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.99, "0.99"), (0.999, "0.999")];

fn summary(out: &mut String, name: &str, labels: &str, hist: &LatencyHistogram) {
    let comma = if labels.is_empty() { "" } else { "," };
    for (q, qs) in QUANTILES {
        let _ = writeln!(
            out,
            "gre_{name}{{{labels}{comma}quantile=\"{qs}\"}} {}",
            hist.percentile(q)
        );
    }
    let braces = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    let _ = writeln!(
        out,
        "gre_{name}_sum{braces} {:.0}",
        hist.mean() * hist.count() as f64
    );
    let _ = writeln!(out, "gre_{name}_count{braces} {}", hist.count());
}

/// Render a snapshot in Prometheus text exposition format.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    for id in CounterId::ALL {
        let _ = writeln!(out, "# HELP gre_{} {}", id.name(), id.help());
        let _ = writeln!(out, "# TYPE gre_{} counter", id.name());
        let _ = writeln!(out, "gre_{} {}", id.name(), snap.counter(id));
    }
    for id in GaugeId::ALL {
        let _ = writeln!(out, "# TYPE gre_{} gauge", id.name());
        for (s, shard) in snap.shards.iter().enumerate() {
            let _ = writeln!(
                out,
                "gre_{}{{shard=\"{s}\"}} {}",
                id.name(),
                shard.gauge(id)
            );
        }
    }
    let _ = writeln!(out, "# TYPE gre_shard_ops_completed counter");
    for (s, shard) in snap.shards.iter().enumerate() {
        let _ = writeln!(
            out,
            "gre_shard_ops_completed{{shard=\"{s}\"}} {}",
            shard.ops_completed
        );
    }
    for id in ShardHistId::ALL {
        let _ = writeln!(out, "# TYPE gre_{} summary", id.name());
        for (s, shard) in snap.shards.iter().enumerate() {
            summary(
                &mut out,
                id.name(),
                &format!("shard=\"{s}\""),
                shard.hist(id),
            );
        }
    }
    for id in GlobalHistId::ALL {
        let _ = writeln!(out, "# TYPE gre_{} summary", id.name());
        summary(&mut out, id.name(), "", snap.global(id));
    }
    out
}

fn json_hist(out: &mut String, hist: &LatencyHistogram) {
    let _ = write!(
        out,
        "{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p99\":{},\"p999\":{},\"max\":{}}}",
        hist.count(),
        hist.mean(),
        hist.percentile(0.5),
        hist.percentile(0.99),
        hist.percentile(0.999),
        hist.max()
    );
}

/// Render a snapshot in the repo's hand-rolled JSON style (same dialect as
/// `gre-bench`'s `BENCH_*.json` reports; parseable by its `Json` parser).
pub fn json_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"schema_version\": 1,\n  \"counters\": {");
    for (i, id) in CounterId::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", id.name(), snap.counter(*id));
    }
    out.push_str("\n  },\n  \"shards\": [");
    for (s, shard) in snap.shards.iter().enumerate() {
        if s > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {{\"shard\": {s}");
        for id in GaugeId::ALL {
            let _ = write!(out, ", \"{}\": {}", id.name(), shard.gauge(id));
        }
        let _ = write!(out, ", \"ops_completed\": {}", shard.ops_completed);
        for id in ShardHistId::ALL {
            let _ = write!(out, ", \"{}\": ", id.name());
            json_hist(&mut out, shard.hist(id));
        }
        out.push('}');
    }
    out.push_str("\n  ]");
    for id in GlobalHistId::ALL {
        let _ = write!(out, ",\n  \"{}\": ", id.name());
        json_hist(&mut out, snap.global(id));
    }
    out.push_str("\n}\n");
    out
}

/// Strictly validate Prometheus text output: every non-comment line must be
/// `name{labels} value` with a well-formed name, balanced label syntax, and
/// a finite numeric value; every `# TYPE` family must have at least one
/// sample. Returns the number of samples.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    let mut typed_families: Vec<(&str, usize)> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let fam = it.next().ok_or_else(|| format!("line {ln}: empty TYPE"))?;
            match it.next() {
                Some("counter" | "gauge" | "summary" | "histogram" | "untyped") => {}
                other => return Err(format!("line {ln}: bad metric type {other:?}")),
            }
            typed_families.push((fam, 0));
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = match line.find('}') {
            Some(close) => {
                let open = line
                    .find('{')
                    .ok_or_else(|| format!("line {ln}: '}}' without '{{'"))?;
                if open > close {
                    return Err(format!("line {ln}: mismatched braces"));
                }
                for pair in line[open + 1..close].split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("line {ln}: label without '='"))?;
                    if k.is_empty() || !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                        return Err(format!("line {ln}: malformed label {pair:?}"));
                    }
                }
                (&line[..open], line[close + 1..].trim())
            }
            None => {
                let (n, v) = line
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| format!("line {ln}: no value"))?;
                (n, v.trim())
            }
        };
        if name_part.is_empty()
            || !name_part
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {ln}: bad metric name {name_part:?}"));
        }
        let value: f64 = value_part
            .parse()
            .map_err(|_| format!("line {ln}: non-numeric value {value_part:?}"))?;
        if !value.is_finite() {
            return Err(format!("line {ln}: non-finite value {value_part:?}"));
        }
        samples += 1;
        // Samples of family F are named F, F_sum, F_count, or F{...}.
        if let Some((_, n)) = typed_families.iter_mut().find(|(fam, _)| {
            name_part == *fam
                || name_part
                    .strip_prefix(fam)
                    .is_some_and(|s| s == "_sum" || s == "_count")
        }) {
            *n += 1;
        }
    }
    if let Some((fam, _)) = typed_families.iter().find(|(_, n)| *n == 0) {
        return Err(format!("family {fam} declared but has no samples"));
    }
    if samples == 0 {
        return Err(String::from("no samples"));
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn populated_snapshot() -> MetricsSnapshot {
        let reg = MetricsRegistry::new(2, 2);
        reg.stripe(0).add(CounterId::OpsCompleted, 100);
        reg.stripe(1).add(CounterId::GetHits, 60);
        reg.shard(0).gauge_add(GaugeId::QueueDepth, 3);
        reg.shard(1).add_ops_completed(40);
        for v in 1..=100u64 {
            reg.shard(0).hist(ShardHistId::ServiceNs).record(v * 1_000);
            reg.global(GlobalHistId::SessionWindow).record(v % 32);
        }
        reg.snapshot()
    }

    #[test]
    fn prometheus_text_validates_and_carries_values() {
        let text = prometheus_text(&populated_snapshot());
        let samples = validate_prometheus(&text).expect("valid exposition");
        assert!(samples > 30, "got {samples} samples");
        assert!(text.contains("gre_ops_completed 100"));
        assert!(text.contains("gre_shard_queue_depth{shard=\"0\"} 3"));
        assert!(text.contains("gre_shard_ops_completed{shard=\"1\"} 40"));
        assert!(text.contains("gre_service_ns{shard=\"0\",quantile=\"0.99\"}"));
        assert!(text.contains("gre_session_window_count 100"));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_prometheus("").is_err(), "no samples");
        assert!(validate_prometheus("gre_x notanumber").is_err());
        assert!(
            validate_prometheus("gre_x{shard=0} 1").is_err(),
            "unquoted label"
        );
        assert!(validate_prometheus("gre x 1").is_err(), "space in name");
        assert!(
            validate_prometheus("# TYPE gre_y counter\ngre_x 1").is_err(),
            "typed family without samples"
        );
        assert!(validate_prometheus("gre_x{a=\"1\",b=\"2\"} 4.5").is_ok());
    }

    #[test]
    fn json_text_is_structurally_balanced() {
        let json = json_text(&populated_snapshot());
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"ops_completed\": 100"));
        assert!(json.contains("\"session_window\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
