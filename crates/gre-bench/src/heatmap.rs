//! The data-workload heatmap of Figures 2, 4, 7, 14 and 16.
//!
//! Each cell of the heatmap is one (dataset, write-ratio) combination; its
//! value is the throughput ratio between the best learned index and the best
//! traditional index (positive: a traditional index wins, negative: a learned
//! index wins — matching the paper's colour convention).

use crate::registry::{concurrent_indexes, single_thread_indexes, IndexKind};
use crate::runopts::RunOpts;
use gre_datasets::Dataset;
use gre_pla::{DataHardness, HardnessConfig};
use gre_workloads::{run_concurrent, run_single, Workload, WorkloadBuilder, WriteRatio};

/// One heatmap cell.
#[derive(Debug, Clone)]
pub struct HeatmapCell {
    pub dataset: String,
    pub write_ratio: String,
    pub hardness_local: usize,
    pub hardness_global: usize,
    pub best_learned: String,
    pub best_learned_mops: f64,
    pub best_traditional: String,
    pub best_traditional_mops: f64,
    /// `best_traditional / best_learned` if the traditional index wins
    /// (positive), `-(best_learned / best_traditional)` otherwise (negative),
    /// matching the red/blue convention of the paper.
    pub ratio: f64,
}

/// A full heatmap.
#[derive(Debug, Clone, Default)]
pub struct Heatmap {
    pub title: String,
    pub cells: Vec<HeatmapCell>,
}

impl Heatmap {
    /// Fraction of cells won by a learned index (Message 1: >80% single-core).
    pub fn learned_win_fraction(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells.iter().filter(|c| c.ratio < 0.0).count() as f64 / self.cells.len() as f64
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        out.push_str(&format!(
            "{:<18} {:>6} {:>10} {:>10} {:>12} {:>10} {:>14} {:>10} {:>8}\n",
            "dataset",
            "writes",
            "H(eps=32)",
            "H(eps=4096)",
            "best-learned",
            "Mop/s",
            "best-trad",
            "Mop/s",
            "ratio"
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "{:<18} {:>6} {:>10} {:>10} {:>12} {:>10.3} {:>14} {:>10.3} {:>8.2}\n",
                c.dataset,
                c.write_ratio,
                c.hardness_local,
                c.hardness_global,
                c.best_learned,
                c.best_learned_mops,
                c.best_traditional,
                c.best_traditional_mops,
                c.ratio
            ));
        }
        out.push_str(&format!(
            "learned indexes win {:.0}% of the data-workload space\n",
            self.learned_win_fraction() * 100.0
        ));
        out
    }

    /// Serialize to JSON for GRE-style plotting scripts.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"title\": {},\n", json_string(&self.title)));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"dataset\": {}, \"write_ratio\": {}, \"hardness_local\": {}, \
                 \"hardness_global\": {}, \"best_learned\": {}, \"best_learned_mops\": {}, \
                 \"best_traditional\": {}, \"best_traditional_mops\": {}, \"ratio\": {}}}{comma}\n",
                json_string(&c.dataset),
                json_string(&c.write_ratio),
                c.hardness_local,
                c.hardness_global,
                json_string(&c.best_learned),
                json_f64(c.best_learned_mops),
                json_string(&c.best_traditional),
                json_f64(c.best_traditional_mops),
                json_f64(c.ratio),
            ));
        }
        out.push_str("  ]\n}");
        out
    }
}

/// Quote and escape a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` as a JSON number; infinities (possible in degenerate
/// heatmap ratios) have no JSON representation and are emitted as `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Which operation mix the heatmap varies (insert- or delete-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeatmapMode {
    Inserts,
    Deletes,
}

/// Build one workload for a heatmap cell.
fn cell_workload(
    builder: &WorkloadBuilder,
    dataset: &Dataset,
    keys: &[u64],
    ratio: WriteRatio,
    mode: HeatmapMode,
) -> Workload {
    match mode {
        HeatmapMode::Inserts => builder.insert_workload(&dataset.name(), keys, ratio),
        HeatmapMode::Deletes => {
            builder.delete_workload(&dataset.name(), keys, ratio.write_fraction())
        }
    }
}

/// Compute a single-threaded heatmap over `datasets` × the five write ratios.
pub fn single_thread_heatmap(
    title: &str,
    datasets: &[Dataset],
    opts: &RunOpts,
    mode: HeatmapMode,
) -> Heatmap {
    let builder = WorkloadBuilder::new(opts.seed);
    let mut cells = Vec::new();
    for dataset in datasets {
        let keys = dataset.generate(opts.keys, opts.seed);
        let mut dedup = keys.clone();
        dedup.dedup();
        let hardness = DataHardness::compute_sampled(&dedup, HardnessConfig::default(), 100_000);
        for ratio in WriteRatio::ALL {
            let workload = cell_workload(&builder, dataset, &keys, ratio, mode);
            let mut best: [(String, f64); 2] = [("-".into(), 0.0), ("-".into(), 0.0)];
            for entry in single_thread_indexes() {
                // Skip indexes that cannot run this workload.
                if mode == HeatmapMode::Deletes && !entry.index.meta().supports_delete {
                    continue;
                }
                let mut index = entry.index;
                let result = run_single(index.as_mut(), &workload);
                let mops = result.throughput_mops();
                let slot = match entry.kind {
                    IndexKind::Learned => &mut best[0],
                    IndexKind::Traditional => &mut best[1],
                };
                if mops > slot.1 {
                    *slot = (entry.name.to_string(), mops);
                }
            }
            cells.push(make_cell(dataset, ratio, &hardness, best));
        }
    }
    Heatmap {
        title: title.to_string(),
        cells,
    }
}

/// Compute a multi-threaded heatmap with `opts.threads` worker threads.
pub fn concurrent_heatmap(
    title: &str,
    datasets: &[Dataset],
    opts: &RunOpts,
    include_parallelized: bool,
) -> Heatmap {
    let builder = WorkloadBuilder::new(opts.seed);
    let mut cells = Vec::new();
    for dataset in datasets {
        let keys = dataset.generate(opts.keys, opts.seed);
        let mut dedup = keys.clone();
        dedup.dedup();
        let hardness = DataHardness::compute_sampled(&dedup, HardnessConfig::default(), 100_000);
        for ratio in WriteRatio::ALL {
            let workload = builder.insert_workload(&dataset.name(), &keys, ratio);
            let mut best: [(String, f64); 2] = [("-".into(), 0.0), ("-".into(), 0.0)];
            for entry in concurrent_indexes(include_parallelized) {
                let mut index = entry.index;
                let result = run_concurrent(index.as_mut(), &workload, opts.threads);
                let mops = result.throughput_mops();
                let slot = match entry.kind {
                    IndexKind::Learned => &mut best[0],
                    IndexKind::Traditional => &mut best[1],
                };
                if mops > slot.1 {
                    *slot = (entry.name.to_string(), mops);
                }
            }
            cells.push(make_cell(dataset, ratio, &hardness, best));
        }
    }
    Heatmap {
        title: title.to_string(),
        cells,
    }
}

fn make_cell(
    dataset: &Dataset,
    ratio: WriteRatio,
    hardness: &DataHardness,
    best: [(String, f64); 2],
) -> HeatmapCell {
    let [(learned_name, learned_mops), (trad_name, trad_mops)] = best;
    let ratio_value = if learned_mops >= trad_mops {
        if trad_mops > 0.0 {
            -(learned_mops / trad_mops)
        } else {
            -f64::INFINITY
        }
    } else if learned_mops > 0.0 {
        trad_mops / learned_mops
    } else {
        f64::INFINITY
    };
    HeatmapCell {
        dataset: dataset.name(),
        write_ratio: ratio.label().to_string(),
        hardness_local: hardness.local,
        hardness_global: hardness.global,
        best_learned: learned_name,
        best_learned_mops: learned_mops,
        best_traditional: trad_name,
        best_traditional_mops: trad_mops,
        ratio: ratio_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_heatmap_runs_end_to_end() {
        let opts = RunOpts {
            keys: 3_000,
            threads: 2,
            seed: 1,
            shards: 1,
            quick: true,
            verbose: false,
        };
        let hm = single_thread_heatmap("test", &[Dataset::Covid], &opts, HeatmapMode::Inserts);
        assert_eq!(hm.cells.len(), WriteRatio::ALL.len());
        for c in &hm.cells {
            assert!(c.best_learned_mops > 0.0);
            assert!(c.best_traditional_mops > 0.0);
            assert!(c.ratio.is_finite());
        }
        let rendered = hm.render();
        assert!(rendered.contains("covid"));
        assert!(!hm.to_json().is_empty());
        assert!((0.0..=1.0).contains(&hm.learned_win_fraction()));
    }

    #[test]
    fn tiny_concurrent_heatmap_runs() {
        let opts = RunOpts {
            keys: 2_000,
            threads: 2,
            seed: 1,
            shards: 1,
            quick: true,
            verbose: false,
        };
        let hm = concurrent_heatmap("test-mt", &[Dataset::Stack], &opts, true);
        assert_eq!(hm.cells.len(), 5);
        let hm_without = concurrent_heatmap("baseline", &[Dataset::Stack], &opts, false);
        assert_eq!(hm_without.cells.len(), 5);
    }
}
