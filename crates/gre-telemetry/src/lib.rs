//! # gre-telemetry
//!
//! Lock-free runtime telemetry for the GRE serving stack, built so the
//! instrumented hot path costs a handful of relaxed atomic operations per
//! *batch* (not per op) and nothing at all when telemetry is not attached:
//!
//! * [`metrics`] — the static-id metrics registry: per-worker cache-padded
//!   counter stripes, per-shard gauges, and concurrent log-linear
//!   histograms ([`metrics::AtomicHistogram`]) that share
//!   [`gre_core::latency::LatencyHistogram`]'s bucket layout and snapshot
//!   back into it.
//! * [`trace`] — [`trace::TraceRing`], a fixed-capacity power-of-two ring
//!   of operation spans with seqlock-style readers, fed by a deterministic
//!   1-in-N [`trace::Sampler`] and dumpable as Chrome trace-event JSON.
//! * [`export`] — snapshot exporters: Prometheus text format (with a
//!   strict validator used by CI) and the repo's hand-rolled JSON style.
//!
//! [`Telemetry`] bundles the three with a shared monotonic epoch; the
//! serving layer (`gre-shard`) takes an `Option<Arc<Telemetry>>` and
//! records into it when present. See `docs/OBSERVABILITY.md` for the
//! metric catalog and measured overhead.

pub mod export;
pub mod metrics;
pub mod trace;

pub use export::{json_text, prometheus_text, validate_prometheus};
pub use metrics::{
    AtomicHistogram, CounterId, CounterStripe, GaugeId, GlobalHistId, MetricsRegistry,
    MetricsSnapshot, ShardHistId, ShardScope, ShardSnapshot,
};
pub use trace::{chrome_trace_json, Sampler, SpanRecord, TraceRing};

use std::sync::Arc;
use std::time::Instant;

/// Default trace ring capacity (slots).
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Default span sampling period: one traced op per this many submitted ops.
pub const DEFAULT_TRACE_SAMPLE: u64 = 1024;

/// Construction-time sizing for [`Telemetry`].
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Shards served (one gauge/histogram scope each).
    pub shards: usize,
    /// Concurrent writers (one counter stripe each); typically the worker
    /// count plus one stripe for submitters.
    pub writers: usize,
    /// Trace ring capacity in slots; 0 disables span tracing entirely.
    pub trace_capacity: usize,
    /// Trace one in this many operations.
    pub trace_sample_one_in: u64,
}

impl TelemetryConfig {
    /// Tracing-enabled defaults for a given topology.
    pub fn new(shards: usize, writers: usize) -> TelemetryConfig {
        TelemetryConfig {
            shards,
            writers,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            trace_sample_one_in: DEFAULT_TRACE_SAMPLE,
        }
    }

    /// Disable the span tracer (metrics only).
    pub fn without_trace(mut self) -> TelemetryConfig {
        self.trace_capacity = 0;
        self
    }

    /// Set the trace sampling period (1 = trace everything).
    pub fn trace_sample(mut self, one_in: u64) -> TelemetryConfig {
        self.trace_sample_one_in = one_in.max(1);
        self
    }
}

/// One serving stack's telemetry: metrics registry + optional span tracer,
/// sharing a monotonic epoch so every recorded timestamp is comparable.
#[derive(Debug)]
pub struct Telemetry {
    metrics: MetricsRegistry,
    trace: Option<TraceRing>,
    sampler: Sampler,
    epoch: Instant,
}

impl Telemetry {
    pub fn new(config: TelemetryConfig) -> Telemetry {
        Telemetry {
            metrics: MetricsRegistry::new(config.shards, config.writers),
            trace: (config.trace_capacity > 0).then(|| TraceRing::new(config.trace_capacity)),
            sampler: Sampler::new(config.trace_sample_one_in),
            epoch: Instant::now(),
        }
    }

    /// Metrics-only telemetry for a topology, wrapped for sharing.
    pub fn shared(shards: usize, writers: usize) -> Arc<Telemetry> {
        Arc::new(Telemetry::new(TelemetryConfig::new(shards, writers)))
    }

    /// The metrics registry.
    #[inline]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The span tracer, when enabled.
    #[inline]
    pub fn trace(&self) -> Option<&TraceRing> {
        self.trace.as_ref()
    }

    /// The shared 1-in-N op sampler feeding the tracer.
    #[inline]
    pub fn sampler(&self) -> &Sampler {
        &self.sampler
    }

    /// Nanoseconds since this telemetry's construction (the timestamp base
    /// for every span and histogram sample).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Snapshot the metrics registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_bundles_metrics_and_trace() {
        let t = Telemetry::new(TelemetryConfig::new(4, 2).trace_sample(1));
        assert_eq!(t.metrics().shard_count(), 4);
        assert!(t.trace().is_some());
        assert_eq!(t.sampler().one_in(), 1);
        let a = t.now_ns();
        let b = t.now_ns();
        assert!(b >= a);
        t.metrics().stripe(0).inc(CounterId::OpsCompleted);
        assert_eq!(t.snapshot().counter(CounterId::OpsCompleted), 1);
    }

    #[test]
    fn trace_can_be_disabled() {
        let t = Telemetry::new(TelemetryConfig::new(1, 1).without_trace());
        assert!(t.trace().is_none());
        let shared = Telemetry::shared(2, 2);
        assert!(shared.trace().is_some());
    }
}
