//! A concurrent key-value store built on ALEX+, exercised by several writer
//! and reader threads (the §4.2 scenario).
//!
//! Run with `cargo run --release --example concurrent_store`.

use gre::learned::{AlexPlus, LippPlus};
use gre_core::ConcurrentIndex;
use std::sync::Arc;

fn main() {
    let entries: Vec<(u64, u64)> = (0..500_000u64).map(|i| (i * 2, i)).collect();
    let mut alex_plus = AlexPlus::<u64>::new();
    ConcurrentIndex::bulk_load(&mut alex_plus, &entries);
    let index = Arc::new(alex_plus);

    let threads = 4;
    let start = std::time::Instant::now();
    mixed_ops_scoped(&index, threads);
    let elapsed = start.elapsed();
    println!(
        "ALEX+: {} keys after {} threads × 100k mixed ops each in {:.2}s ({:.2} Mop/s)",
        index.len(),
        threads,
        elapsed.as_secs_f64(),
        (threads * 100_000) as f64 / elapsed.as_secs_f64() / 1e6
    );

    // LIPP+ for comparison: correct, but its shared statistics serialize writers.
    let mut lipp_plus = LippPlus::<u64>::new();
    ConcurrentIndex::bulk_load(&mut lipp_plus, &entries);
    let lipp = Arc::new(lipp_plus);
    let start = std::time::Instant::now();
    mixed_ops_scoped(&lipp, threads);
    println!(
        "LIPP+: same workload in {:.2}s (per-node statistics updates: {})",
        start.elapsed().as_secs_f64(),
        lipp.stat_updates()
    );
}

fn mixed_ops_scoped<I: ConcurrentIndex<u64>>(index: &Arc<I>, threads: u64) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let index = Arc::clone(index);
            s.spawn(move || {
                for i in 0..100_000u64 {
                    let key = 10_000_000 + t * 10_000_000 + i;
                    if i % 2 == 0 {
                        index.insert(key, i);
                    } else {
                        index.get((i * 2) % 1_000_000);
                    }
                }
            });
        }
    });
}
