//! PGM-Index — static ε-bound piecewise geometric model index plus the
//! LSM-style dynamic variant (Ferragina & Vinciguerra, VLDB'20).
//!
//! The static PGM segments the sorted key array with the optimal ε-approximate
//! PLA (the same algorithm `gre-pla` exposes) and recursively indexes the
//! segments' first keys until a single segment remains. Lookups descend the
//! levels, each time searching only a `2ε + 1` window around the model
//! prediction. The dynamic PGM handles inserts with the logarithmic method
//! (LSM-style tree merge, §2.2): a sequence of static PGMs of doubling sizes,
//! merged on overflow; deletes insert tombstones (the paper notes its good
//! insert throughput comes from this LSM design rather than from learning).

use gre_core::{Index, IndexMeta, InsertStats, Key, OpCounters, Payload, RangeSpec, StatsSnapshot};
use gre_pla::pla::{optimal_pla, PlaSegment};

/// Error bound of the PGM segments (Table 1: ε = 16).
pub const DEFAULT_EPSILON: u64 = 16;

/// One fully static PGM over a sorted array of entries.
#[derive(Debug)]
pub struct StaticPgm<K> {
    entries: Vec<(K, Payload)>,
    /// Bottom-level segments over `entries`.
    segments: Vec<PlaSegment>,
    /// Upper levels: each level segments the first keys of the level below.
    upper_levels: Vec<Vec<PlaSegment>>,
    epsilon: u64,
}

impl<K: Key> StaticPgm<K> {
    /// Build from entries sorted by strictly ascending key.
    pub fn build(entries: Vec<(K, Payload)>, epsilon: u64) -> Self {
        let keys: Vec<K> = entries.iter().map(|e| e.0).collect();
        let segments = optimal_pla(&keys, epsilon);
        let mut upper_levels = Vec::new();
        let mut current: Vec<f64> = segments.iter().map(|s| s.first_key).collect();
        while current.len() > 1 {
            let level = gre_pla::pla::optimal_pla_f64(current.iter().copied(), epsilon as f64);
            let next: Vec<f64> = level.iter().map(|s| s.first_key).collect();
            upper_levels.push(level);
            if next.len() == current.len() {
                break; // cannot compress further
            }
            current = next;
        }
        StaticPgm {
            entries,
            segments,
            upper_levels,
            epsilon,
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of linear models across all levels.
    pub fn model_count(&self) -> usize {
        self.segments.len() + self.upper_levels.iter().map(Vec::len).sum::<usize>()
    }

    /// Find the bottom-level segment covering `key` by descending the levels.
    fn locate_segment(&self, key: K) -> usize {
        let x = key.to_model_input();
        if self.segments.is_empty() {
            return 0;
        }
        // Start from the top level and narrow down with ε-bounded searches.
        let mut idx = 0usize;
        for level in self.upper_levels.iter().rev() {
            idx = search_segments(level, x, idx, self.epsilon);
        }
        search_segments(&self.segments, x, idx, self.epsilon)
    }

    /// Rank of the first entry with key >= `key`.
    fn lower_bound(&self, key: K) -> usize {
        if self.entries.is_empty() {
            return 0;
        }
        let seg_idx = self.locate_segment(key);
        let seg = &self.segments[seg_idx];
        let predicted = seg.model.predict(key).round();
        let eps = self.epsilon as i64 + 2;
        let lo = ((predicted as i64 - eps).max(seg.start_rank as i64)) as usize;
        let hi = ((predicted as i64 + eps + 1).min(seg.end_rank() as i64)) as usize;
        let lo = lo.min(self.entries.len());
        let hi = hi.clamp(lo, self.entries.len());
        // ε-bounded window; fall back to the whole segment if the window
        // misses (can only happen through floating-point rounding).
        let window = &self.entries[lo..hi];
        let local = window.partition_point(|e| e.0 < key);
        let mut pos = lo + local;
        if (pos == hi && hi < self.entries.len() && self.entries[hi].0 < key)
            || (pos == lo && lo > 0 && self.entries[lo - 1].0 >= key)
        {
            pos = self.entries.partition_point(|e| e.0 < key);
        }
        pos
    }

    pub fn get(&self, key: K) -> Option<Payload> {
        let pos = self.lower_bound(key);
        self.entries
            .get(pos)
            .and_then(|e| (e.0 == key).then_some(e.1))
    }

    /// Entries with key >= start, in order.
    pub fn iter_from(&self, start: K) -> impl Iterator<Item = &(K, Payload)> {
        self.entries[self.lower_bound(start)..].iter()
    }

    pub fn memory(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.entries.capacity() * std::mem::size_of::<(K, Payload)>()
            + self.segments.capacity() * std::mem::size_of::<PlaSegment>()
            + self
                .upper_levels
                .iter()
                .map(|l| l.capacity() * std::mem::size_of::<PlaSegment>())
                .sum::<usize>()
    }
}

/// Find the segment of `segments` covering model-space key `x`, given a hint
/// from the level above, searching only an ε-bounded neighbourhood.
fn search_segments(segments: &[PlaSegment], x: f64, hint: usize, eps: u64) -> usize {
    if segments.is_empty() {
        return 0;
    }
    let radius = eps as usize + 2;
    let lo = hint.saturating_sub(radius);
    let hi = (hint + radius + 1).min(segments.len());
    let window = &segments[lo..hi];
    let local = window.partition_point(|s| s.first_key <= x);
    let mut idx = lo + local;
    if (idx == hi && hi < segments.len() && segments[hi].first_key <= x) || (idx == lo && lo > 0) {
        // The hint window missed: fall back to a global binary search.
        idx = segments.partition_point(|s| s.first_key <= x);
    }
    idx.saturating_sub(1)
}

/// A value or a tombstone in the dynamic PGM's levels.
const TOMBSTONE: Payload = Payload::MAX;

/// The dynamic PGM-Index (LSM of static PGMs).
#[derive(Debug)]
pub struct DynamicPgm<K> {
    /// Small unsorted-insert buffer, kept sorted for cheap merging.
    buffer: Vec<(K, Payload)>,
    /// Static levels; level `i` holds at most `buffer_capacity << i` entries.
    levels: Vec<Option<StaticPgm<K>>>,
    buffer_capacity: usize,
    epsilon: u64,
    len: usize,
    counters: OpCounters,
    last_insert: InsertStats,
}

impl<K: Key> Default for DynamicPgm<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key> DynamicPgm<K> {
    pub fn new() -> Self {
        Self::with_epsilon(DEFAULT_EPSILON)
    }

    pub fn with_epsilon(epsilon: u64) -> Self {
        DynamicPgm {
            buffer: Vec::new(),
            levels: Vec::new(),
            buffer_capacity: 256,
            epsilon,
            len: 0,
            counters: OpCounters::default(),
            last_insert: InsertStats::default(),
        }
    }

    /// Number of non-empty static levels (LSM depth).
    pub fn level_count(&self) -> usize {
        self.levels.iter().filter(|l| l.is_some()).count()
    }

    /// Merge the buffer into the levels using the logarithmic method.
    fn flush_buffer(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut carry: Vec<(K, Payload)> = std::mem::take(&mut self.buffer);
        carry.sort_by_key(|e| e.0);
        dedup_last_wins(&mut carry);
        let mut level = 0usize;
        loop {
            if level >= self.levels.len() {
                self.levels.push(None);
            }
            match self.levels[level].take() {
                None => {
                    // A level deep enough to hold the carry absorbs it.
                    if carry.len() <= self.buffer_capacity << level || level + 1 > self.levels.len()
                    {
                        self.levels[level] = Some(StaticPgm::build(carry, self.epsilon));
                        break;
                    }
                    level += 1;
                }
                Some(existing) => {
                    carry = merge_entries(existing.entries, carry);
                    level += 1;
                }
            }
        }
    }

    fn lookup_raw(&self, key: K) -> Option<Payload> {
        // Newest first: buffer, then levels from shallow to deep.
        if let Some(e) = self.buffer.iter().rev().find(|e| e.0 == key) {
            return Some(e.1);
        }
        for level in self.levels.iter().flatten() {
            if let Some(v) = level.get(key) {
                return Some(v);
            }
        }
        None
    }
}

/// Keep the last occurrence of each key in a sorted run.
fn dedup_last_wins<K: Key>(entries: &mut Vec<(K, Payload)>) {
    let mut out: Vec<(K, Payload)> = Vec::with_capacity(entries.len());
    for &(k, v) in entries.iter() {
        if let Some(last) = out.last_mut() {
            if last.0 == k {
                last.1 = v;
                continue;
            }
        }
        out.push((k, v));
    }
    *entries = out;
}

/// Merge two sorted runs; `newer` wins on key collisions.
fn merge_entries<K: Key>(older: Vec<(K, Payload)>, newer: Vec<(K, Payload)>) -> Vec<(K, Payload)> {
    let mut out = Vec::with_capacity(older.len() + newer.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < older.len() && j < newer.len() {
        match older[i].0.cmp(&newer[j].0) {
            std::cmp::Ordering::Less => {
                out.push(older[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(newer[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(newer[j]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&older[i..]);
    out.extend_from_slice(&newer[j..]);
    out
}

impl<K: Key> Index<K> for DynamicPgm<K> {
    fn bulk_load(&mut self, entries: &[(K, Payload)]) {
        self.buffer.clear();
        self.levels.clear();
        self.len = entries.len();
        if entries.is_empty() {
            return;
        }
        // Bulk data goes straight into one big static level, placed at the
        // depth matching its size so future merges keep the logarithmic
        // structure.
        let level = StaticPgm::build(entries.to_vec(), self.epsilon);
        let mut depth = 0usize;
        while (self.buffer_capacity << depth) < entries.len() {
            depth += 1;
        }
        self.levels = (0..=depth).map(|_| None).collect();
        self.levels[depth] = Some(level);
        self.counters = OpCounters::default();
    }

    fn get(&self, key: K) -> Option<Payload> {
        match self.lookup_raw(key) {
            Some(TOMBSTONE) => None,
            other => other,
        }
    }

    fn insert(&mut self, key: K, value: Payload) -> bool {
        let mut stats = InsertStats::default();
        let existed = self.get(key).is_some();
        self.buffer.push((key, value));
        if !existed {
            self.len += 1;
        }
        if self.buffer.len() >= self.buffer_capacity {
            stats.triggered_smo = true;
            self.flush_buffer();
        }
        stats.nodes_traversed = 1;
        self.last_insert = stats;
        self.counters.record_insert(&stats);
        !existed
    }

    fn remove(&mut self, key: K) -> Option<Payload> {
        self.counters.record_remove(1);
        let existing = self.get(key);
        if existing.is_some() {
            self.buffer.push((key, TOMBSTONE));
            self.len -= 1;
            if self.buffer.len() >= self.buffer_capacity {
                self.flush_buffer();
            }
        }
        existing
    }

    fn range(&self, spec: RangeSpec<K>, out: &mut Vec<(K, Payload)>) -> usize {
        // K-way merge over the buffer and every level, newest wins, skipping
        // tombstones.
        let before = out.len();
        let mut sources: Vec<Vec<(K, Payload)>> = Vec::new();
        // The unsorted buffer can hold several versions of the same key
        // (e.g. an insert followed by a tombstone); only the newest one may
        // participate in the merge.
        let mut buf_newest: std::collections::BTreeMap<K, Payload> =
            std::collections::BTreeMap::new();
        for e in &self.buffer {
            if e.0 >= spec.start {
                buf_newest.insert(e.0, e.1);
            }
        }
        sources.push(buf_newest.into_iter().collect());
        for level in self.levels.iter().flatten() {
            sources.push(level.iter_from(spec.start).copied().collect());
        }
        let mut cursors = vec![0usize; sources.len()];
        while out.len() - before < spec.count {
            // Pick the smallest key across sources; the earliest source
            // (newest data) wins ties.
            let mut best: Option<(K, usize)> = None;
            for (s, src) in sources.iter().enumerate() {
                if let Some(&(k, _)) = src.get(cursors[s]) {
                    match best {
                        None => best = Some((k, s)),
                        Some((bk, _)) if k < bk => best = Some((k, s)),
                        _ => {}
                    }
                }
            }
            let Some((k, s)) = best else { break };
            let v = sources[s][cursors[s]].1;
            // Advance every cursor positioned at this key (older duplicates).
            for (s2, src) in sources.iter().enumerate() {
                while src.get(cursors[s2]).is_some_and(|e| e.0 == k) {
                    cursors[s2] += 1;
                }
            }
            if v != TOMBSTONE {
                out.push((k, v));
            }
        }
        out.len() - before
    }

    fn len(&self) -> usize {
        self.len
    }

    fn memory_usage(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.buffer.capacity() * std::mem::size_of::<(K, Payload)>()
            + self
                .levels
                .iter()
                .flatten()
                .map(StaticPgm::memory)
                .sum::<usize>()
    }

    fn stats(&self) -> StatsSnapshot {
        StatsSnapshot::new(self.counters)
    }

    fn reset_stats(&mut self) {
        self.counters = OpCounters::default();
    }

    fn last_insert_stats(&self) -> InsertStats {
        self.last_insert
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: "PGM-Index",
            learned: true,
            concurrent: false,
            supports_delete: true,
            supports_range: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn entries(n: u64) -> Vec<(u64, Payload)> {
        (0..n).map(|i| (i * 7 + 1, i)).collect()
    }

    #[test]
    fn static_pgm_lookups_respect_epsilon_window() {
        let data = entries(50_000);
        let pgm = StaticPgm::build(data.clone(), 16);
        assert_eq!(pgm.len(), 50_000);
        assert!(pgm.model_count() >= 1);
        for i in (0..50_000).step_by(331) {
            assert_eq!(pgm.get(i * 7 + 1), Some(i));
            assert_eq!(pgm.get(i * 7 + 2), None);
        }
    }

    #[test]
    fn static_pgm_on_hard_data() {
        // Clustered keys force many segments.
        let keys: Vec<u64> = (0..20_000u64)
            .map(|i| (i / 100) * 1_000_000 + (i % 100))
            .collect();
        let data: Vec<(u64, Payload)> = keys.iter().map(|&k| (k, k ^ 7)).collect();
        let pgm = StaticPgm::build(data, 16);
        assert!(pgm.model_count() > 10);
        for &k in keys.iter().step_by(173) {
            assert_eq!(pgm.get(k), Some(k ^ 7));
        }
    }

    #[test]
    fn dynamic_bulk_load_and_lookup() {
        let mut pgm = DynamicPgm::new();
        pgm.bulk_load(&entries(20_000));
        assert_eq!(pgm.len(), 20_000);
        for i in (0..20_000).step_by(271) {
            assert_eq!(pgm.get(i * 7 + 1), Some(i));
        }
    }

    #[test]
    fn inserts_trigger_lsm_merges() {
        let mut pgm = DynamicPgm::new();
        for i in 0..10_000u64 {
            assert!(pgm.insert(i * 3, i));
        }
        assert_eq!(pgm.len(), 10_000);
        assert!(pgm.level_count() >= 1);
        for i in (0..10_000).step_by(97) {
            assert_eq!(pgm.get(i * 3), Some(i));
        }
        // Update in place.
        assert!(!pgm.insert(0, 999));
        assert_eq!(pgm.get(0), Some(999));
        assert_eq!(pgm.len(), 10_000);
    }

    #[test]
    fn deletes_use_tombstones() {
        let mut pgm = DynamicPgm::new();
        pgm.bulk_load(&entries(5_000));
        for i in 0..2_500u64 {
            assert_eq!(pgm.remove(i * 7 + 1), Some(i));
        }
        assert_eq!(pgm.len(), 2_500);
        for i in 0..2_500u64 {
            assert_eq!(pgm.get(i * 7 + 1), None);
        }
        for i in 2_500..5_000u64 {
            assert_eq!(pgm.get(i * 7 + 1), Some(i));
        }
        assert_eq!(pgm.remove(2), None);
        // Deleted keys can be reinserted.
        assert!(pgm.insert(8, 123));
        assert_eq!(pgm.get(8), Some(123));
    }

    #[test]
    fn range_skips_tombstones_and_merges_levels() {
        let mut pgm = DynamicPgm::new();
        pgm.bulk_load(&entries(2_000));
        // Delete every other key and insert some new ones in the buffer.
        for i in 0..1_000u64 {
            pgm.remove(i * 14 + 1);
        }
        for i in 0..50u64 {
            pgm.insert(i * 14 + 2, 1_000_000 + i);
        }
        let mut out = Vec::new();
        pgm.range(RangeSpec::new(0, 100), &mut out);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(out.iter().all(|e| pgm.get(e.0) == Some(e.1)));
    }

    #[test]
    fn matches_model_under_random_ops() {
        let mut pgm = DynamicPgm::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut x: u64 = 0x1234567;
        for i in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = (x % 5_000) + 1;
            match x % 3 {
                0 => assert_eq!(
                    pgm.insert(key, i),
                    model.insert(key, i).is_none(),
                    "insert {key}"
                ),
                1 => assert_eq!(pgm.remove(key), model.remove(&key), "remove {key}"),
                _ => assert_eq!(pgm.get(key), model.get(&key).copied(), "get {key}"),
            }
        }
        assert_eq!(pgm.len(), model.len());
    }

    #[test]
    fn memory_is_compact() {
        let mut pgm = DynamicPgm::new();
        let mut alex = crate::alex::Alex::new();
        let data = entries(20_000);
        pgm.bulk_load(&data);
        alex.bulk_load(&data);
        // PGM is the most space-efficient learned index (Figure 8): no gaps,
        // models only.
        assert!(pgm.memory_usage() < alex.memory_usage());
    }

    #[test]
    fn empty_behaviour() {
        let mut pgm: DynamicPgm<u64> = DynamicPgm::new();
        assert!(pgm.is_empty());
        assert_eq!(pgm.get(1), None);
        assert_eq!(pgm.remove(1), None);
        pgm.bulk_load(&[]);
        assert!(pgm.is_empty());
        assert!(pgm.insert(1, 1));
        assert_eq!(pgm.get(1), Some(1));
        assert_eq!(pgm.meta().name, "PGM-Index");
    }
}
