//! SLO-driven admission: reads are redirected off a replica whose
//! published p99 breaches the target, and shed with
//! `IndexError::Overloaded` when every replica is in breach — with both
//! outcomes surfaced on the driver's `PhaseResult` and counted in
//! telemetry.

use gre_core::ConcurrentIndex;
use gre_durability::util::TempDir;
use gre_learned::AlexPlus;
use gre_replica::{ReplicatedTarget, SloTarget};
use gre_shard::{Partitioner, ShardedIndex};
use gre_telemetry::CounterId;
use gre_workloads::scenario::{KeyDist, Mix, Pacing, Phase, Scenario, Span};
use gre_workloads::{Driver, ServeTarget};
use std::time::Duration;

type DynBackend = Box<dyn ConcurrentIndex<u64>>;

fn sharded() -> ShardedIndex<u64, DynBackend> {
    ShardedIndex::from_factory(Partitioner::range(4), |_| {
        Box::new(AlexPlus::<u64>::new()) as DynBackend
    })
}

fn read_only() -> Scenario {
    let keys: Vec<u64> = (1..=3_000u64).map(|i| i * 32).collect();
    Scenario::new("slo", 0x51_0AD, &keys).phase(Phase::new(
        "reads",
        Mix::points(1, 0, 0, 0),
        KeyDist::Uniform,
        Span::Ops(4_000),
        Pacing::ClosedLoop { threads: 2 },
    ))
}

/// A target whose SLO interval never closes during the test, so breach
/// bits stay exactly where `publish_for_test` put them.
fn slo_target(replicas: usize) -> (TempDir, ReplicatedTarget<DynBackend>) {
    let tmp = TempDir::new("slo-admission");
    let target = ReplicatedTarget::new(sharded(), 2, 64, tmp.path(), |_| {
        Box::new(AlexPlus::<u64>::new()) as DynBackend
    })
    .with_replicas(replicas)
    .with_slo(SloTarget::p99(1_000_000).with_interval(Duration::from_secs(3600)))
    .instrumented();
    (tmp, target)
}

#[test]
fn breached_replica_is_redirected_around() {
    let (_tmp, mut target) = slo_target(2);
    target.load(&[]);
    // Put replica 0 over the 1 ms target; replica 1 stays healthy.
    target.nodes()[0]
        .slo()
        .expect("slo configured")
        .publish_for_test(5_000_000);

    let result = Driver::new().run(&read_only(), &mut target);
    let phase = &result.phases[0];
    assert_eq!(phase.ops(), 4_000);
    assert_eq!(phase.tally.errors, 0, "redirects do not fail reads");
    assert_eq!(phase.shed(), 0, "a healthy replica exists, nothing sheds");
    assert!(
        phase.redirected() > 0,
        "reads routed to replica 0 were redirected to the healthy one"
    );
    // Telemetry counted the same redirects the driver saw.
    let snap = target.telemetry().expect("instrumented").snapshot();
    assert_eq!(snap.counter(CounterId::ReadsRedirected), phase.redirected());
    assert_eq!(snap.counter(CounterId::ReadsShed), 0);
}

#[test]
fn fully_breached_replica_set_sheds_reads() {
    let (_tmp, mut target) = slo_target(2);
    target.load(&[]);
    for node in target.nodes() {
        node.slo()
            .expect("slo configured")
            .publish_for_test(5_000_000);
    }

    let result = Driver::new().run(&read_only(), &mut target);
    let phase = &result.phases[0];
    assert_eq!(phase.ops(), 4_000, "shed ops still complete (as errors)");
    assert!(phase.shed() > 0, "admission control shed reads");
    assert_eq!(
        phase.shed(),
        phase.tally.errors,
        "every error is a shed on a read-only mix"
    );
    assert!(
        phase.shed() < 4_000,
        "probe batches keep trickling traffic through the breach"
    );
    assert_eq!(phase.redirected(), 0, "no healthy replica to redirect to");
    let snap = target.telemetry().expect("instrumented").snapshot();
    assert_eq!(snap.counter(CounterId::ReadsShed), phase.shed());
}

#[test]
fn no_slo_means_no_admission_control() {
    let tmp = TempDir::new("slo-off");
    let mut target = ReplicatedTarget::new(sharded(), 2, 64, tmp.path(), |_| {
        Box::new(AlexPlus::<u64>::new()) as DynBackend
    })
    .with_replicas(2);
    let result = Driver::new().run(&read_only(), &mut target);
    let phase = &result.phases[0];
    assert_eq!(phase.tally.errors, 0);
    assert_eq!(phase.shed(), 0);
    assert_eq!(phase.redirected(), 0);
    assert!(target.nodes()[0].slo().is_none());
}
