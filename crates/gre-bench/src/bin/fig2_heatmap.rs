//! Figure 2: single-threaded throughput heatmap over datasets × write ratios.
use gre_bench::heatmap::{single_thread_heatmap, HeatmapMode};
use gre_bench::RunOpts;
use gre_datasets::Dataset;

fn main() {
    let opts = RunOpts::from_env();
    let hm = single_thread_heatmap(
        "Figure 2: single-threaded heatmap (best learned vs best traditional)",
        &Dataset::HEATMAP_DATASETS,
        &opts,
        HeatmapMode::Inserts,
    );
    print!("{}", hm.render());
}
