//! Replication tier for the GRE serving stack (PR 10).
//!
//! The serving story so far ends at one durable pipeline: `gre-shard`
//! serves a sharded composite through a worker pool, and `gre-durability`
//! group-commits every write to a per-shard WAL before it executes. This
//! crate turns that WAL into a *replication stream*: a write-forwarding
//! **primary** executes all writes, and N **read replicas** tail the WAL
//! with a [`gre_durability::LogFollower`], apply committed records into
//! their own backend copies, and publish per-shard applied-sequence
//! [`gre_core::Watermark`]s.
//!
//! [`ReplicatedTarget`] implements `ServeTarget`, so the existing
//! `Scenario`/`Driver` machinery drives a replicated deployment unchanged:
//!
//! - **Writes** forward to the primary and are acknowledged only after the
//!   WAL commit (the same guarantee `PipelineTarget::durable` gives).
//! - **Reads** fan out across replicas under a [`gre_core::ReadPolicy`]:
//!   round-robin, least-lagged, or watermark-bounded (read-your-writes:
//!   a replica only serves a session's read if its watermark covers the
//!   session's last acknowledged write, else the primary serves it).
//! - **Admission** is SLO-driven when configured ([`SloTarget`]): each
//!   replica tracks its read p99 over an interval, and reads are
//!   redirected off a breached replica — or shed with
//!   `IndexError::Overloaded` when every replica is in breach — with both
//!   outcomes counted in `gre-telemetry` and surfaced on `PhaseResult`.
//!
//! Replica crashes are first-class: shippers die mid-stream at scripted
//! failpoints ([`apply_failpoint`]), and
//! [`ReplicatedTarget::rejoin_replica`] resumes shipping from the
//! replica's own watermark — the follower skips already-applied records,
//! so a re-join neither loses nor duplicates applies.
//!
//! See `docs/REPLICATION.md` for the design walk-through.

pub mod set;
pub mod slo;
pub mod target;

pub use set::{apply_failpoint, ReplicaNode};
pub use slo::{SloMonitor, SloTarget};
pub use target::ReplicatedTarget;
