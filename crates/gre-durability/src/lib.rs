//! # gre-durability
//!
//! The durability tier for the GRE serving stack: per-shard write-ahead
//! logs with group commit, CRC-framed records, periodic snapshots,
//! deterministic fault injection, and crash recovery.
//!
//! * [`record`] — the on-disk record frame: length-prefixed,
//!   CRC-32C-checksummed groups of wire-encoded operations.
//! * [`storage`] — the [`storage::WalSink`] byte-sink abstraction
//!   (append / sync-barrier / truncate) with the production
//!   [`storage::FileSink`] and an in-memory test sink.
//! * [`failpoint`] — scripted failure injection: a
//!   [`failpoint::FailpointRegistry`] of named triggers and an
//!   [`failpoint::InjectingSink`] that turns them into deterministic
//!   errors, short writes, and crashes.
//! * [`wal`] — [`wal::DurableLog`]: one log per shard, one record per
//!   pipeline sub-batch (group commit), log-then-execute fail-stop
//!   semantics, checkpoints.
//! * [`snapshot`] — CRC-trailed, atomically renamed per-shard snapshots.
//! * [`recover`] — [`recover::Recovery`]: scan, classify how each shard's
//!   history ends (clean / torn / corrupt / sequence break), replay into
//!   any [`gre_core::ConcurrentIndex`] backend, and resume logging.
//! * [`follow`] — [`follow::LogFollower`]: tail a live log as the
//!   replication shipping stream, re-using the same record decode and
//!   torn-tail discipline as recovery, with watermark-based resume for
//!   re-joining replicas.
//!
//! The serving pipeline (`gre-shard`) consumes this crate the same way it
//! consumes telemetry: an optional `Arc<DurableLog>` attached at
//! construction, zero-cost when detached. See `docs/DURABILITY.md` for the
//! record format, the group-commit protocol, and the crash matrix the tests
//! cover.

pub mod failpoint;
pub mod follow;
pub mod record;
pub mod recover;
pub mod snapshot;
pub mod storage;
pub mod util;
pub mod wal;

pub use failpoint::{FailAction, FailpointRegistry, InjectingSink, Trigger};
pub use follow::LogFollower;
pub use record::{
    decode_record, encode_record, encode_topology, Record, RecordError, TopologyDirection,
    TopologyRecord, MAX_RECORD_LEN, TOPOLOGY_CHUNK,
};
pub use recover::{Recovery, ShardRecovery, StopReason};
pub use snapshot::{read_snapshot, snapshot_path, write_snapshot, Snapshot};
pub use storage::{FileSink, MemSink, WalSink};
pub use wal::{DurableLog, GroupReceipt, SyncPolicy, WalError, WalStats, MANIFEST};
