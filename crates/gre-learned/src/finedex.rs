//! FINEdex — a fine-grained learned index for concurrent memory systems
//! (Li et al., VLDB'21).
//!
//! FINEdex trains error-bounded linear models over a sorted array (like
//! XIndex) but attaches a *per-record* delta ("level bin") to each position
//! instead of a per-group delta, so concurrent inserts targeting different
//! records never conflict and retraining can proceed in parallel (§2.2).
//! We implement the same structure with one flattening pass when a bin grows
//! past its budget; groups are guarded by reader-writer locks.

use gre_core::{ConcurrentIndex, IndexMeta, Key, Payload, RangeSpec};
use gre_pla::LinearModel;
use parking_lot::RwLock;

/// Configuration (Table 1: error bound 32).
#[derive(Debug, Clone, Copy)]
pub struct FinedexConfig {
    /// Last-mile search error budget.
    pub error_bound: usize,
    /// Entries per record-level bin before the group is flattened.
    pub bin_capacity: usize,
    /// Keys per model group.
    pub group_size: usize,
}

impl Default for FinedexConfig {
    fn default() -> Self {
        FinedexConfig {
            error_bound: 32,
            bin_capacity: 8,
            group_size: 8_192,
        }
    }
}

#[derive(Debug)]
struct FinGroup<K: Key> {
    model: LinearModel,
    keys: Vec<K>,
    values: Vec<Payload>,
    /// Per-record level bins: `bins[i]` holds inserted keys that sort between
    /// `keys[i]` (exclusive) and `keys[i + 1]` (exclusive); `bins[0]` also
    /// absorbs keys below `keys[0]`. Bin entries are kept sorted.
    bins: Vec<Vec<(K, Payload)>>,
    /// Deletion markers for main-array records.
    dead: Vec<bool>,
}

impl<K: Key> FinGroup<K> {
    fn build(keys: Vec<K>, values: Vec<Payload>) -> Self {
        let model = LinearModel::fit_keys(&keys);
        let n = keys.len();
        FinGroup {
            model,
            keys,
            values,
            bins: (0..n.max(1)).map(|_| Vec::new()).collect(),
            dead: vec![false; n],
        }
    }

    fn lower_bound(&self, key: K, error_bound: usize) -> usize {
        let n = self.keys.len();
        if n == 0 {
            return 0;
        }
        let pred = self.model.predict_clamped(key, n);
        let lo = pred.saturating_sub(error_bound);
        let hi = (pred + error_bound + 1).min(n);
        let local = self.keys[lo..hi].partition_point(|k| *k < key);
        let pos = lo + local;
        if (pos == hi && hi < n && self.keys[hi] < key)
            || (pos == lo && lo > 0 && self.keys[lo - 1] >= key)
        {
            self.keys.partition_point(|k| *k < key)
        } else {
            pos
        }
    }

    /// Bin index responsible for a key that is *not* in the main array:
    /// the record preceding it (or bin 0 for keys before every record).
    fn bin_for(&self, key: K, error_bound: usize) -> usize {
        let lb = self.lower_bound(key, error_bound);
        lb.saturating_sub(if lb > 0 && self.keys.get(lb).map_or(true, |k| *k != key) {
            1
        } else {
            0
        })
        .min(self.bins.len().saturating_sub(1))
    }

    fn get(&self, key: K, error_bound: usize) -> Option<Payload> {
        let pos = self.lower_bound(key, error_bound);
        if pos < self.keys.len() && self.keys[pos] == key {
            return (!self.dead[pos]).then(|| self.values[pos]);
        }
        let bin = self.bin_for(key, error_bound);
        self.bins
            .get(bin)
            .and_then(|b| b.iter().find(|e| e.0 == key).map(|e| e.1))
    }

    /// Total live entries.
    fn live_count(&self) -> usize {
        self.keys.len() - self.dead.iter().filter(|d| **d).count()
            + self.bins.iter().map(Vec::len).sum::<usize>()
    }

    /// Flatten bins and tombstones into a fresh sorted array and retrain.
    fn flatten(&mut self) {
        let mut entries: Vec<(K, Payload)> = Vec::with_capacity(self.live_count());
        for (i, k) in self.keys.iter().enumerate() {
            if !self.dead[i] {
                entries.push((*k, self.values[i]));
            }
        }
        for bin in &self.bins {
            entries.extend_from_slice(bin);
        }
        entries.sort_by_key(|e| e.0);
        let rebuilt = FinGroup::build(
            entries.iter().map(|e| e.0).collect(),
            entries.iter().map(|e| e.1).collect(),
        );
        *self = rebuilt;
    }

    fn memory(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.keys.capacity() * std::mem::size_of::<K>()
            + self.values.capacity() * std::mem::size_of::<Payload>()
            + self.dead.capacity()
            + self
                .bins
                .iter()
                .map(|b| {
                    std::mem::size_of::<Vec<(K, Payload)>>()
                        + b.capacity() * std::mem::size_of::<(K, Payload)>()
                })
                .sum::<usize>()
    }

    /// In-order iteration over main array + bins starting at `start`.
    fn scan_into(&self, start: K, target: usize, out: &mut Vec<(K, Payload)>) {
        // bins[i] sorts after keys[i]; bin 0 also holds keys before keys[0].
        let emit_bin = |bin: &Vec<(K, Payload)>, out: &mut Vec<(K, Payload)>, below: Option<K>| {
            for &(k, v) in bin {
                if out.len() >= target {
                    return;
                }
                if k >= start && below.map_or(true, |b| k < b) {
                    out.push((k, v));
                }
            }
        };
        if self.keys.is_empty() {
            if let Some(bin) = self.bins.first() {
                emit_bin(bin, out, None);
            }
            return;
        }
        // Keys in bin 0 that precede the first main key.
        if let Some(bin) = self.bins.first() {
            emit_bin(bin, out, Some(self.keys[0]));
        }
        for i in 0..self.keys.len() {
            if out.len() >= target {
                return;
            }
            if !self.dead[i] && self.keys[i] >= start {
                out.push((self.keys[i], self.values[i]));
            }
            let below = self.keys.get(i + 1).copied();
            if let Some(bin) = self.bins.get(i) {
                // Bin 0's below-first-key entries were already emitted; the
                // filter below keeps only entries after keys[i].
                for &(k, v) in bin {
                    if out.len() >= target {
                        return;
                    }
                    if k >= start && k > self.keys[i] && below.map_or(true, |b| k < b) {
                        out.push((k, v));
                    }
                }
            }
        }
    }
}

/// FINEdex: routed groups with per-record level bins.
pub struct Finedex<K: Key> {
    config: FinedexConfig,
    boundaries: RwLock<Vec<K>>,
    groups: Vec<RwLock<FinGroup<K>>>,
}

impl<K: Key> Default for Finedex<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key> Finedex<K> {
    pub fn new() -> Self {
        Self::with_config(FinedexConfig::default())
    }

    pub fn with_config(config: FinedexConfig) -> Self {
        Finedex {
            config,
            boundaries: RwLock::new(vec![K::MIN]),
            groups: vec![RwLock::new(FinGroup::build(Vec::new(), Vec::new()))],
        }
    }

    pub fn config(&self) -> FinedexConfig {
        self.config
    }

    fn locate(&self, key: K) -> usize {
        let boundaries = self.boundaries.read();
        boundaries.partition_point(|b| *b <= key).saturating_sub(1)
    }
}

impl<K: Key> ConcurrentIndex<K> for Finedex<K> {
    fn bulk_load(&mut self, entries: &[(K, Payload)]) {
        let group_size = self.config.group_size.max(64);
        let mut groups = Vec::new();
        let mut boundaries = Vec::new();
        if entries.is_empty() {
            groups.push(RwLock::new(FinGroup::build(Vec::new(), Vec::new())));
            boundaries.push(K::MIN);
        } else {
            for chunk in entries.chunks(group_size) {
                boundaries.push(chunk[0].0);
                groups.push(RwLock::new(FinGroup::build(
                    chunk.iter().map(|e| e.0).collect(),
                    chunk.iter().map(|e| e.1).collect(),
                )));
            }
            boundaries[0] = K::MIN;
        }
        self.groups = groups;
        *self.boundaries.get_mut() = boundaries;
    }

    fn get(&self, key: K) -> Option<Payload> {
        self.groups[self.locate(key)]
            .read()
            .get(key, self.config.error_bound)
    }

    fn insert(&self, key: K, value: Payload) -> bool {
        let idx = self.locate(key);
        let mut group = self.groups[idx].write();
        let error_bound = self.config.error_bound;
        let pos = group.lower_bound(key, error_bound);
        if pos < group.keys.len() && group.keys[pos] == key {
            let was_dead = group.dead[pos];
            group.values[pos] = value;
            group.dead[pos] = false;
            return was_dead;
        }
        let bin = group.bin_for(key, error_bound);
        let bin_vec = &mut group.bins[bin];
        match bin_vec.binary_search_by_key(&key, |e| e.0) {
            Ok(i) => {
                bin_vec[i].1 = value;
                false
            }
            Err(i) => {
                bin_vec.insert(i, (key, value));
                let overflow = bin_vec.len() > self.config.bin_capacity;
                if overflow {
                    // Parallel-retraining stand-in: flatten this group.
                    group.flatten();
                }
                true
            }
        }
    }

    /// One group write lock covers the presence check and the payload write
    /// (the trait's atomicity contract). Unlike `insert`, an absent (or
    /// tombstoned) key is left absent.
    fn update(&self, key: K, value: Payload) -> bool {
        let idx = self.locate(key);
        let mut group = self.groups[idx].write();
        let error_bound = self.config.error_bound;
        let pos = group.lower_bound(key, error_bound);
        if pos < group.keys.len() && group.keys[pos] == key {
            if group.dead[pos] {
                return false;
            }
            group.values[pos] = value;
            return true;
        }
        let bin = group.bin_for(key, error_bound);
        let bin_vec = &mut group.bins[bin];
        match bin_vec.binary_search_by_key(&key, |e| e.0) {
            Ok(i) => {
                bin_vec[i].1 = value;
                true
            }
            Err(_) => false,
        }
    }

    fn remove(&self, key: K) -> Option<Payload> {
        let idx = self.locate(key);
        let mut group = self.groups[idx].write();
        let error_bound = self.config.error_bound;
        let pos = group.lower_bound(key, error_bound);
        if pos < group.keys.len() && group.keys[pos] == key {
            if group.dead[pos] {
                return None;
            }
            group.dead[pos] = true;
            return Some(group.values[pos]);
        }
        let bin = group.bin_for(key, error_bound);
        let bin_vec = &mut group.bins[bin];
        match bin_vec.binary_search_by_key(&key, |e| e.0) {
            Ok(i) => Some(bin_vec.remove(i).1),
            Err(_) => None,
        }
    }

    fn range(&self, spec: RangeSpec<K>, out: &mut Vec<(K, Payload)>) -> usize {
        let before = out.len();
        let target = before + spec.count;
        let mut idx = self.locate(spec.start);
        while idx < self.groups.len() && out.len() < target {
            self.groups[idx].read().scan_into(spec.start, target, out);
            idx += 1;
        }
        out.len() - before
    }

    fn len(&self) -> usize {
        self.groups.iter().map(|g| g.read().live_count()).sum()
    }

    fn memory_usage(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.groups.iter().map(|g| g.read().memory()).sum::<usize>()
            + self.boundaries.read().capacity() * std::mem::size_of::<K>()
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: "FINEdex",
            learned: true,
            concurrent: true,
            supports_delete: true,
            supports_range: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn entries(n: u64) -> Vec<(u64, Payload)> {
        (0..n).map(|i| (i * 6 + 5, i)).collect()
    }

    #[test]
    fn bulk_load_and_lookup() {
        let mut f = Finedex::new();
        ConcurrentIndex::bulk_load(&mut f, &entries(20_000));
        assert_eq!(f.len(), 20_000);
        for i in (0..20_000).step_by(257) {
            assert_eq!(f.get(i * 6 + 5), Some(i));
            assert_eq!(f.get(i * 6 + 6), None);
        }
    }

    #[test]
    fn inserts_land_in_record_bins_then_flatten() {
        let mut f = Finedex::with_config(FinedexConfig {
            bin_capacity: 4,
            ..Default::default()
        });
        ConcurrentIndex::bulk_load(&mut f, &entries(2_000));
        for i in 0..2_000u64 {
            assert!(f.insert(i * 6 + 6, i + 40_000), "insert {}", i * 6 + 6);
        }
        assert_eq!(f.len(), 4_000);
        for i in (0..2_000).step_by(41) {
            assert_eq!(f.get(i * 6 + 5), Some(i));
            assert_eq!(f.get(i * 6 + 6), Some(i + 40_000));
        }
        assert!(!f.insert(5, 1), "update existing key");
        assert_eq!(f.get(5), Some(1));
    }

    #[test]
    fn removes_from_main_and_bins() {
        let mut f = Finedex::new();
        ConcurrentIndex::bulk_load(&mut f, &entries(1_000));
        f.insert(3, 33); // goes to a bin (below the first key)
        assert_eq!(f.remove(3), Some(33));
        assert_eq!(f.remove(3), None);
        assert_eq!(f.remove(5), Some(0));
        assert_eq!(f.get(5), None);
        assert_eq!(f.remove(5), None);
        assert_eq!(f.len(), 999);
        // Reinsert a deleted main-array key.
        assert!(f.insert(5, 50));
        assert_eq!(f.get(5), Some(50));
    }

    #[test]
    fn range_interleaves_bins_and_main() {
        let mut f = Finedex::new();
        ConcurrentIndex::bulk_load(&mut f, &entries(1_000));
        for i in 0..50u64 {
            f.insert(i * 6 + 7, 900_000 + i);
        }
        let mut out = Vec::new();
        let got = f.range(RangeSpec::new(0, 150), &mut out);
        assert_eq!(got, 150);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "{out:?}");
        assert!(out.iter().any(|e| e.1 >= 900_000));
    }

    #[test]
    fn concurrent_inserts_are_not_lost() {
        let mut f = Finedex::new();
        ConcurrentIndex::bulk_load(&mut f, &entries(5_000));
        let f = Arc::new(f);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let f = Arc::clone(&f);
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        let key = 10_000_000 + t * 1_000_000 + i;
                        f.insert(key, i);
                        assert_eq!(f.get(key), Some(i));
                    }
                });
            }
        });
        assert_eq!(f.len(), 5_000 + 4_000);
        assert_eq!(f.meta().name, "FINEdex");
    }

    #[test]
    fn empty_behaviour() {
        let f: Finedex<u64> = Finedex::new();
        assert_eq!(f.get(1), None);
        assert_eq!(f.remove(1), None);
        assert!(f.insert(1, 1));
        assert_eq!(f.get(1), Some(1));
        assert_eq!(f.len(), 1);
    }
}
