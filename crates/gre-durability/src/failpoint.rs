//! Deterministic fault injection for the durability tier.
//!
//! Crash-recovery code is only as good as the crashes it has survived, and
//! real crashes are not reproducible. This module makes them so: a
//! [`FailpointRegistry`] holds *scripted* failures keyed by name (e.g.
//! `"wal/2/sync"`), and an [`InjectingSink`] wraps any [`WalSink`],
//! consulting the registry at every append/sync/truncate. A triggered
//! failpoint can
//!
//! * **error** — report an `io::Error` once and otherwise keep working
//!   (a transient device hiccup; the WAL layer still fail-stops on it),
//! * **short-write** — persist only a prefix of the pending bytes, then
//!   crash (the torn-tail signature of a power loss mid-write), or
//! * **crash** — persist nothing further, ever (the process died; all
//!   unsynced bytes are gone, like a lost page cache).
//!
//! Triggers fire on the *n*-th evaluation of their point or once the sink's
//! byte position crosses a scripted offset, so a seeded scenario can place a
//! crash "at byte 8192 of shard 3's log" and land on the exact same group
//! commit every run.
//!
//! The injecting sink buffers appended bytes itself and forwards them to the
//! wrapped sink **only at a successful sync** — exactly the page-cache model
//! the [`WalSink`] contract describes — which is what makes short writes and
//! crashes byte-deterministic instead of racing the OS.

use crate::storage::WalSink;
use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Mutex};

/// What a triggered failpoint does to the operation that hit it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Fail the operation with an `io::Error`; the sink stays usable.
    Error,
    /// Persist only the first `keep` bytes of the un-persisted pending
    /// buffer (clamped to its length), then behave as [`FailAction::Crash`].
    ShortWrite { keep: usize },
    /// Persist nothing further: every subsequent operation fails.
    Crash,
}

/// When a failpoint fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// On the `n`-th evaluation of the point (1-based).
    OnHit(u64),
    /// On the first evaluation at or past this sink byte position.
    AtByte(u64),
}

#[derive(Debug)]
struct Failpoint {
    trigger: Trigger,
    action: FailAction,
    hits: u64,
    fired: bool,
}

/// A shared registry of named, scripted failpoints.
///
/// Points are named by convention `"{component}/{shard}/{operation}"`, e.g.
/// `"wal/0/sync"` or `"checkpoint/3/truncate"`. Evaluating a point that was
/// never scripted is free (one map lookup) and returns no action, so
/// production code paths can evaluate unconditionally.
#[derive(Debug, Default)]
pub struct FailpointRegistry {
    points: Mutex<HashMap<String, Failpoint>>,
}

impl FailpointRegistry {
    pub fn new() -> Arc<FailpointRegistry> {
        Arc::new(FailpointRegistry::default())
    }

    /// Script `action` to fire at `trigger` on the named point. Re-scripting
    /// a name replaces the previous script.
    pub fn script(&self, name: &str, trigger: Trigger, action: FailAction) {
        self.points
            .lock()
            .expect("failpoint registry poisoned")
            .insert(
                name.to_string(),
                Failpoint {
                    trigger,
                    action,
                    hits: 0,
                    fired: false,
                },
            );
    }

    /// Evaluate the named point at the current byte `position`. Counts the
    /// hit and returns the scripted action if its trigger fired. Each script
    /// fires at most once.
    pub fn check(&self, name: &str, position: u64) -> Option<FailAction> {
        let mut points = self.points.lock().expect("failpoint registry poisoned");
        let point = points.get_mut(name)?;
        if point.fired {
            return None;
        }
        point.hits += 1;
        let due = match point.trigger {
            Trigger::OnHit(n) => point.hits >= n,
            Trigger::AtByte(off) => position >= off,
        };
        if due {
            point.fired = true;
            Some(point.action)
        } else {
            None
        }
    }

    /// Whether the named script has fired.
    pub fn fired(&self, name: &str) -> bool {
        self.points
            .lock()
            .expect("failpoint registry poisoned")
            .get(name)
            .is_some_and(|p| p.fired)
    }
}

/// A [`WalSink`] wrapper that executes the registry's scripts.
pub struct InjectingSink<S: WalSink> {
    inner: S,
    registry: Arc<FailpointRegistry>,
    /// Point-name prefix, e.g. `"wal/3"`; operations evaluate
    /// `"{prefix}/append"`, `"{prefix}/sync"`, `"{prefix}/truncate"`.
    prefix: String,
    /// Appended but not yet forwarded to the wrapped sink.
    pending: Vec<u8>,
    position: u64,
    crashed: bool,
}

fn injected_error(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

impl<S: WalSink> InjectingSink<S> {
    pub fn new(inner: S, registry: Arc<FailpointRegistry>, prefix: impl Into<String>) -> Self {
        let prefix = prefix.into();
        let position = inner.position();
        InjectingSink {
            inner,
            registry,
            prefix,
            pending: Vec::new(),
            position,
            crashed: false,
        }
    }

    /// Whether a scripted crash has stopped this sink for good.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    fn apply(&mut self, action: FailAction, what: &str) -> io::Error {
        match action {
            FailAction::Error => injected_error(what),
            FailAction::ShortWrite { keep } => {
                // Persist a deterministic prefix of the pending bytes — the
                // torn record a power loss leaves — then stop for good.
                let keep = keep.min(self.pending.len());
                let _ = self.inner.append(&self.pending[..keep]);
                let _ = self.inner.sync();
                self.pending.clear();
                self.crashed = true;
                injected_error(what)
            }
            FailAction::Crash => {
                self.pending.clear();
                self.crashed = true;
                injected_error(what)
            }
        }
    }
}

impl<S: WalSink> WalSink for InjectingSink<S> {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        if self.crashed {
            return Err(injected_error("sink crashed"));
        }
        self.position += buf.len() as u64;
        let name = format!("{}/append", self.prefix);
        if let Some(action) = self.registry.check(&name, self.position) {
            // The bytes of this append are considered never handed over.
            self.position -= buf.len() as u64;
            return Err(self.apply(action, "append"));
        }
        self.pending.extend_from_slice(buf);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.crashed {
            return Err(injected_error("sink crashed"));
        }
        let name = format!("{}/sync", self.prefix);
        if let Some(action) = self.registry.check(&name, self.position) {
            return Err(self.apply(action, "sync"));
        }
        self.inner.append(&self.pending)?;
        self.pending.clear();
        self.inner.sync()
    }

    fn truncate(&mut self) -> io::Result<()> {
        if self.crashed {
            return Err(injected_error("sink crashed"));
        }
        let name = format!("{}/truncate", self.prefix);
        if let Some(action) = self.registry.check(&name, self.position) {
            return Err(self.apply(action, "truncate"));
        }
        self.pending.clear();
        self.position = 0;
        self.inner.truncate()
    }

    fn position(&self) -> u64 {
        self.position
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemSink;

    fn injecting() -> (
        InjectingSink<MemSink>,
        Arc<FailpointRegistry>,
        Arc<Mutex<Vec<u8>>>,
    ) {
        let (mem, store) = MemSink::new();
        let registry = FailpointRegistry::new();
        (
            InjectingSink::new(mem, Arc::clone(&registry), "wal/0"),
            registry,
            store,
        )
    }

    #[test]
    fn unscripted_points_pass_through() {
        let (mut sink, _registry, store) = injecting();
        sink.append(b"abcd").unwrap();
        sink.sync().unwrap();
        assert_eq!(store.lock().unwrap().as_slice(), b"abcd");
    }

    #[test]
    fn crash_on_sync_loses_unsynced_bytes_only() {
        let (mut sink, registry, store) = injecting();
        registry.script("wal/0/sync", Trigger::OnHit(2), FailAction::Crash);
        sink.append(b"first").unwrap();
        sink.sync().unwrap(); // hit 1: survives
        sink.append(b"second").unwrap();
        assert!(sink.sync().is_err()); // hit 2: crash
        assert!(sink.is_crashed());
        assert!(registry.fired("wal/0/sync"));
        assert_eq!(store.lock().unwrap().as_slice(), b"first");
        // Everything after a crash fails.
        assert!(sink.append(b"x").is_err());
        assert!(sink.sync().is_err());
        assert!(sink.truncate().is_err());
    }

    #[test]
    fn short_write_persists_a_prefix_then_crashes() {
        let (mut sink, registry, store) = injecting();
        registry.script(
            "wal/0/sync",
            Trigger::OnHit(1),
            FailAction::ShortWrite { keep: 3 },
        );
        sink.append(b"abcdef").unwrap();
        assert!(sink.sync().is_err());
        assert_eq!(store.lock().unwrap().as_slice(), b"abc", "torn prefix");
        assert!(sink.is_crashed());
    }

    #[test]
    fn transient_error_leaves_the_sink_usable() {
        let (mut sink, registry, store) = injecting();
        registry.script("wal/0/append", Trigger::OnHit(1), FailAction::Error);
        assert!(sink.append(b"abc").is_err());
        assert!(!sink.is_crashed());
        // The failed append handed nothing over; later traffic works.
        sink.append(b"xyz").unwrap();
        sink.sync().unwrap();
        assert_eq!(store.lock().unwrap().as_slice(), b"xyz");
    }

    #[test]
    fn byte_offset_triggers_fire_at_the_crossing() {
        let (mut sink, registry, store) = injecting();
        registry.script("wal/0/append", Trigger::AtByte(10), FailAction::Crash);
        sink.append(b"12345").unwrap(); // position 5 < 10
        assert!(sink.append(b"67890").is_err()); // position crosses 10
        sink.sync().expect_err("crashed");
        assert!(store.lock().unwrap().is_empty(), "nothing was ever synced");
    }

    #[test]
    fn scripts_fire_once() {
        let registry = FailpointRegistry::new();
        registry.script("p", Trigger::OnHit(1), FailAction::Error);
        assert_eq!(registry.check("p", 0), Some(FailAction::Error));
        assert_eq!(registry.check("p", 0), None, "already fired");
        assert!(registry.fired("p"));
        assert_eq!(registry.check("unscripted", 0), None);
    }
}
