//! A sharded key-value "server": the `gre-shard` serving layer over ALEX+,
//! taking batched requests from several client threads through the typed
//! request/response client API.
//!
//! Demonstrates the full serving stack: the typed `IndexBuilder`
//! configuration surface, range partitioner fitted from the loaded key CDF,
//! per-shard backends, `Session`s pipelining batches with FIFO completion,
//! per-op `Response` values (not just counters), a non-blocking
//! `SubmitHandle` polled to completion without ever calling `wait()`, and
//! cross-shard bounded range scans.
//!
//! Run with `cargo run --release --example sharded_server`.

use gre::shard::{OpBatch, Session, ShardPipeline};
use gre_bench::registry::IndexBuilder;
use gre_core::{ConcurrentIndex, RangeSpec, Response};
use gre_workloads::Op;
use std::sync::Arc;

const SHARDS: usize = 8;
const WORKERS: usize = 4;
const CLIENTS: u64 = 4;
const BATCHES_PER_CLIENT: u64 = 100;
const OPS_PER_BATCH: u64 = 1_000;
const INFLIGHT: usize = 8;

fn main() {
    // Boot the store through the typed builder: 500k keys bulk-loaded into
    // ALEX+ shards behind a range partitioner fitted to the loaded key CDF.
    let entries: Vec<(u64, u64)> = (0..500_000u64).map(|i| (i * 4, i)).collect();
    let mut store = IndexBuilder::backend("alex+")
        .expect("alex+ registered")
        .shards(SHARDS)
        .build_sharded();
    store.bulk_load(&entries);
    println!(
        "serving {} keys as {} ({} shards, per-shard entries {:?})",
        store.len(),
        store.meta().name,
        store.num_shards(),
        store.per_shard_lens()
    );
    let pipeline = ShardPipeline::new(Arc::new(store), WORKERS);

    // A client reading its own typed results through a non-blocking
    // SubmitHandle: no wait() on the hot path — poll try_take and do other
    // work (here: just count the polls) until the responses arrive.
    let mut handle = pipeline.submit(OpBatch::new(vec![
        Op::Get(400_000),                            // loaded key → payload 100_000
        Op::Insert(400_001, 7),                      // fresh odd key
        Op::Get(123_456_789),                        // miss
        Op::Range(RangeSpec::bounded(80, 100, 100)), // bounded window scan
    ]));
    let mut polls = 0u64;
    let responses = loop {
        match handle.try_take() {
            Some(responses) => break responses,
            None => {
                polls += 1;
                std::thread::yield_now();
            }
        }
    };
    assert_eq!(responses[0], Response::Get(Some(100_000)));
    assert_eq!(responses[1], Response::Insert(true));
    assert_eq!(responses[2], Response::Get(None));
    println!(
        "non-blocking handle ready after {polls} polls: \
         get(400000) -> {:?}, insert(400001) -> {:?}, get(miss) -> {:?}",
        responses[0], responses[1], responses[2]
    );
    if let Response::Range(window) = &responses[3] {
        println!("bounded scan [80, 100] -> {window:?}");
        assert!(window.iter().all(|e| (80..=100).contains(&e.0)));
    }

    // Serve pipelined traffic: CLIENTS submitter threads, each keeping up to
    // INFLIGHT batches in flight through its own Session, consuming typed
    // responses in FIFO order as they complete.
    let start = std::time::Instant::now();
    let (hits, new_keys) = std::thread::scope(|s| {
        let pipeline = &pipeline;
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                s.spawn(move || {
                    let mut session = Session::with_max_inflight(pipeline, INFLIGHT);
                    let mut hits = 0usize;
                    let mut new_keys = 0usize;
                    let mut tally = |responses: Vec<Response<u64>>| {
                        for r in responses {
                            match r {
                                Response::Get(found) => hits += usize::from(found.is_some()),
                                Response::Insert(new) => new_keys += usize::from(new),
                                _ => {}
                            }
                        }
                    };
                    for b in 0..BATCHES_PER_CLIENT {
                        let ops: Vec<Op> = (0..OPS_PER_BATCH)
                            .map(|i| {
                                let n = b * OPS_PER_BATCH + i;
                                if n % 2 == 0 {
                                    // Lookup of a loaded key.
                                    Op::Get((n * 7919) % 2_000_000 / 4 * 4)
                                } else {
                                    // Fresh insert at an odd (absent) key
                                    // inside the loaded domain, so writes
                                    // spread across shards. (An append-only
                                    // tail would route every insert to the
                                    // last shard — the access-skew case the
                                    // hash partitioner exists for.)
                                    Op::Insert(((c * 499_979 + n * 7919) % 2_000_000) | 1, n)
                                }
                            })
                            .collect();
                        session.submit(OpBatch::new(ops));
                        // Drain whatever has completed without blocking the
                        // submission stream.
                        while let Some(responses) = session.try_recv() {
                            tally(responses);
                        }
                    }
                    for responses in session.drain() {
                        tally(responses);
                    }
                    (hits, new_keys)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .fold((0, 0), |acc, r| (acc.0 + r.0, acc.1 + r.1))
    });
    let elapsed = start.elapsed();
    let total_ops = CLIENTS * BATCHES_PER_CLIENT * OPS_PER_BATCH;
    println!(
        "{CLIENTS} clients x {BATCHES_PER_CLIENT} batches x {OPS_PER_BATCH} ops \
         ({total_ops} total) on {WORKERS} workers, {INFLIGHT} batches in flight per \
         session, in {:.2}s ({:.2} Mop/s)",
        elapsed.as_secs_f64(),
        total_ops as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!("lookup hits: {hits}, inserted keys: {new_keys}");

    // No lost updates: every insert landed exactly once (+1 for the
    // non-blocking demo insert above).
    let store = pipeline.index();
    assert_eq!(
        store.len() as u64,
        500_000 + 1 + new_keys as u64,
        "inserted batch ops must all be visible"
    );

    // A cross-shard scan through the serving layer.
    let mut window = Vec::new();
    let got = store.range(RangeSpec::new(1_000_000, 10), &mut window);
    println!(
        "scan of 10 keys from 1000000 crossed shards in key order: {got} keys, first {:?}",
        window.first()
    );
    assert!(window.windows(2).all(|w| w[0].0 < w[1].0));
}
