//! Per-operation statistics.
//!
//! Reproducing Figure 3 (insert-time breakdown into lookup / insert / SMO /
//! statistics maintenance / key shifting / node chaining) and Table 3
//! (nodes traversed, keys shifted, nodes created per insert) requires the
//! indexes themselves to account where time and work go. Every index embeds
//! an [`OpCounters`] and fills an [`InsertStats`] for its most recent insert.

use std::time::Duration;

/// Phases of an insert operation, matching the stacked bars of Figure 3.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InsertBreakdown {
    /// Pre-insertion key lookup (locating the slot), nanoseconds.
    pub lookup_ns: u64,
    /// Writing the entry itself, nanoseconds.
    pub insert_ns: u64,
    /// Structural modification operations (splits, resizes, retrains), ns.
    pub smo_ns: u64,
    /// Statistics / metadata maintenance on the insertion path, ns.
    pub stat_ns: u64,
    /// Shifting existing keys to make room (ALEX-style collision handling), ns.
    pub shift_ns: u64,
    /// Creating and chaining new nodes (LIPP-style collision handling), ns.
    pub chain_ns: u64,
}

impl InsertBreakdown {
    /// Total time excluding the pre-insertion lookup ("remaining steps" in
    /// Figure 3 bottom).
    pub fn remaining_ns(&self) -> u64 {
        self.insert_ns + self.smo_ns + self.stat_ns + self.shift_ns + self.chain_ns
    }

    /// Total insert latency.
    pub fn total_ns(&self) -> u64 {
        self.lookup_ns + self.remaining_ns()
    }

    /// Element-wise accumulation.
    pub fn accumulate(&mut self, other: &InsertBreakdown) {
        self.lookup_ns += other.lookup_ns;
        self.insert_ns += other.insert_ns;
        self.smo_ns += other.smo_ns;
        self.stat_ns += other.stat_ns;
        self.shift_ns += other.shift_ns;
        self.chain_ns += other.chain_ns;
    }

    /// Element-wise mean over `n` accumulated operations.
    pub fn mean(&self, n: u64) -> InsertBreakdown {
        if n == 0 {
            return *self;
        }
        InsertBreakdown {
            lookup_ns: self.lookup_ns / n,
            insert_ns: self.insert_ns / n,
            smo_ns: self.smo_ns / n,
            stat_ns: self.stat_ns / n,
            shift_ns: self.shift_ns / n,
            chain_ns: self.chain_ns / n,
        }
    }
}

/// Work counters for a single insert (Table 3).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InsertStats {
    /// Nodes traversed to reach the target node.
    pub nodes_traversed: u64,
    /// Existing keys shifted to make room (ALEX-style write amplification).
    pub keys_shifted: u64,
    /// New nodes created (LIPP-style chaining).
    pub nodes_created: u64,
    /// Whether a structural modification operation was triggered.
    pub triggered_smo: bool,
    /// Time breakdown of this insert.
    pub breakdown: InsertBreakdown,
}

/// Monotonically accumulated counters reported by `Index::stats()`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpCounters {
    pub lookups: u64,
    pub inserts: u64,
    pub removes: u64,
    pub range_scans: u64,
    /// Total nodes traversed across all operations.
    pub nodes_traversed: u64,
    /// Total keys shifted across all inserts.
    pub keys_shifted: u64,
    /// Total nodes created (chaining or SMO output).
    pub nodes_created: u64,
    /// Total structural modification operations.
    pub smo_count: u64,
    /// Total model retrains (learned indexes only).
    pub retrains: u64,
    /// Accumulated insert time breakdown.
    pub insert_breakdown: InsertBreakdown,
}

impl OpCounters {
    /// Record the effects of one insert.
    pub fn record_insert(&mut self, stats: &InsertStats) {
        self.inserts += 1;
        self.nodes_traversed += stats.nodes_traversed;
        self.keys_shifted += stats.keys_shifted;
        self.nodes_created += stats.nodes_created;
        if stats.triggered_smo {
            self.smo_count += 1;
        }
        self.insert_breakdown.accumulate(&stats.breakdown);
    }

    /// Record a lookup that traversed `nodes` nodes.
    pub fn record_lookup(&mut self, nodes: u64) {
        self.lookups += 1;
        self.nodes_traversed += nodes;
    }

    /// Record a delete.
    pub fn record_remove(&mut self, nodes: u64) {
        self.removes += 1;
        self.nodes_traversed += nodes;
    }

    /// Record a range scan.
    pub fn record_range(&mut self) {
        self.range_scans += 1;
    }

    /// Element-wise accumulation of another counter set, used by composite
    /// indexes (sharded / partitioned stores) to report merged statistics
    /// across their per-partition backends.
    pub fn merge(&mut self, other: &OpCounters) {
        self.lookups += other.lookups;
        self.inserts += other.inserts;
        self.removes += other.removes;
        self.range_scans += other.range_scans;
        self.nodes_traversed += other.nodes_traversed;
        self.keys_shifted += other.keys_shifted;
        self.nodes_created += other.nodes_created;
        self.smo_count += other.smo_count;
        self.retrains += other.retrains;
        self.insert_breakdown.accumulate(&other.insert_breakdown);
    }
}

/// A point-in-time snapshot of an index's accumulated statistics, together
/// with the derived per-insert averages the paper tabulates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StatsSnapshot {
    pub counters: OpCounters,
}

impl StatsSnapshot {
    pub fn new(counters: OpCounters) -> Self {
        StatsSnapshot { counters }
    }

    /// Average nodes traversed per insert (Table 3 column 1).
    pub fn avg_nodes_traversed_per_insert(&self) -> f64 {
        ratio(self.counters.nodes_traversed, self.counters.inserts)
    }

    /// Average keys shifted per insert (Table 3, ALEX column).
    pub fn avg_keys_shifted_per_insert(&self) -> f64 {
        ratio(self.counters.keys_shifted, self.counters.inserts)
    }

    /// Average nodes created per insert (Table 3, LIPP column).
    pub fn avg_nodes_created_per_insert(&self) -> f64 {
        ratio(self.counters.nodes_created, self.counters.inserts)
    }

    /// Mean insert breakdown.
    pub fn mean_insert_breakdown(&self) -> InsertBreakdown {
        self.counters.insert_breakdown.mean(self.counters.inserts)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// A minimal scoped timer for filling [`InsertBreakdown`] fields without
/// cluttering index code. Timing calls are cheap (`Instant::now` twice) and
/// only taken on insert paths.
#[derive(Debug)]
pub struct PhaseTimer {
    start: std::time::Instant,
}

impl PhaseTimer {
    #[inline]
    pub fn start() -> Self {
        PhaseTimer {
            start: std::time::Instant::now(),
        }
    }

    /// Elapsed nanoseconds since `start`, saturating into `u64`.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        duration_to_ns(self.start.elapsed())
    }

    /// Elapsed nanoseconds, and restart the timer for the next phase.
    #[inline]
    pub fn lap_ns(&mut self) -> u64 {
        let ns = self.elapsed_ns();
        self.start = std::time::Instant::now();
        ns
    }
}

#[inline]
pub fn duration_to_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulate_and_mean() {
        let mut total = InsertBreakdown::default();
        let one = InsertBreakdown {
            lookup_ns: 100,
            insert_ns: 10,
            smo_ns: 20,
            stat_ns: 5,
            shift_ns: 40,
            chain_ns: 0,
        };
        total.accumulate(&one);
        total.accumulate(&one);
        assert_eq!(total.lookup_ns, 200);
        assert_eq!(total.remaining_ns(), 150);
        assert_eq!(total.total_ns(), 350);
        let mean = total.mean(2);
        assert_eq!(mean, one);
        // mean over zero ops is the identity
        assert_eq!(total.mean(0), total);
    }

    #[test]
    fn counters_record_operations() {
        let mut c = OpCounters::default();
        c.record_lookup(3);
        c.record_remove(2);
        c.record_range();
        let ins = InsertStats {
            nodes_traversed: 2,
            keys_shifted: 8,
            nodes_created: 1,
            triggered_smo: true,
            breakdown: InsertBreakdown {
                lookup_ns: 50,
                ..Default::default()
            },
        };
        c.record_insert(&ins);
        assert_eq!(c.lookups, 1);
        assert_eq!(c.removes, 1);
        assert_eq!(c.range_scans, 1);
        assert_eq!(c.inserts, 1);
        assert_eq!(c.nodes_traversed, 7);
        assert_eq!(c.keys_shifted, 8);
        assert_eq!(c.nodes_created, 1);
        assert_eq!(c.smo_count, 1);
        assert_eq!(c.insert_breakdown.lookup_ns, 50);
    }

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = OpCounters {
            lookups: 1,
            inserts: 2,
            removes: 3,
            range_scans: 4,
            nodes_traversed: 5,
            keys_shifted: 6,
            nodes_created: 7,
            smo_count: 8,
            retrains: 9,
            insert_breakdown: InsertBreakdown {
                lookup_ns: 10,
                ..Default::default()
            },
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.lookups, 2);
        assert_eq!(a.inserts, 4);
        assert_eq!(a.removes, 6);
        assert_eq!(a.range_scans, 8);
        assert_eq!(a.nodes_traversed, 10);
        assert_eq!(a.keys_shifted, 12);
        assert_eq!(a.nodes_created, 14);
        assert_eq!(a.smo_count, 16);
        assert_eq!(a.retrains, 18);
        assert_eq!(a.insert_breakdown.lookup_ns, 20);
    }

    #[test]
    fn snapshot_averages() {
        let mut c = OpCounters::default();
        for _ in 0..4 {
            c.record_insert(&InsertStats {
                nodes_traversed: 2,
                keys_shifted: 10,
                nodes_created: 1,
                ..Default::default()
            });
        }
        let snap = StatsSnapshot::new(c);
        assert!((snap.avg_nodes_traversed_per_insert() - 2.0).abs() < 1e-9);
        assert!((snap.avg_keys_shifted_per_insert() - 10.0).abs() < 1e-9);
        assert!((snap.avg_nodes_created_per_insert() - 1.0).abs() < 1e-9);
        // Empty snapshot yields zeros, not NaN.
        let empty = StatsSnapshot::default();
        assert_eq!(empty.avg_keys_shifted_per_insert(), 0.0);
    }

    #[test]
    fn phase_timer_monotone() {
        let mut t = PhaseTimer::start();
        let a = t.lap_ns();
        let b = t.elapsed_ns();
        // Both laps are valid durations; not asserting magnitudes to stay
        // robust on virtualized clocks.
        let _ = (a, b);
        assert!(duration_to_ns(Duration::from_nanos(5)) == 5);
    }
}
