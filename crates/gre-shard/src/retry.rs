//! Backpressure retry policies: bounded attempts with jittered exponential
//! backoff.
//!
//! The pipeline's bounded shard queues reject overload with
//! [`Backpressure`](crate::pipeline::Backpressure) instead of queueing
//! without limit; what a client does next is policy. Immediate blind retry
//! turns every saturation event into a thundering herd — all rejected
//! submitters hammer the same full queue in lock-step. A [`RetryPolicy`]
//! spaces the attempts out with **full-jitter exponential backoff**: attempt
//! `n` sleeps a uniformly random duration in `[0, min(cap, base · 2ⁿ)]`, so
//! retries decorrelate across submitters and the queue gets room to drain.
//!
//! Honored by [`ShardPipeline::submit_with_retry`](crate::ShardPipeline::submit_with_retry),
//! [`Session::submit_with_retry`](crate::Session::submit_with_retry), and the
//! serve-layer targets via `PipelineTarget::with_retry`.

use rand::{Rng, RngCore};
use std::time::Duration;

/// Bounded-retry policy for rejected submissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total submission attempts, including the first (clamped to ≥ 1).
    pub max_attempts: u32,
    /// Backoff scale: the jitter ceiling of the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    /// Tuned for an in-process pipeline whose queues drain in microseconds:
    /// 8 attempts, 50 µs base, 5 ms cap (≈ 10 ms worst-case total sleep).
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base: Duration::from_micros(50),
            cap: Duration::from_millis(5),
        }
    }
}

impl RetryPolicy {
    pub fn new(max_attempts: u32, base: Duration, cap: Duration) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base,
            cap,
        }
    }

    /// Retries after the first attempt (0 for a no-retry policy).
    pub fn retries(&self) -> u32 {
        self.max_attempts.saturating_sub(1)
    }

    /// The backoff to sleep after failed attempt `attempt` (0-based):
    /// uniform in `[0, min(cap, base · 2^attempt)]` — "full jitter".
    pub fn backoff<R: RngCore>(&self, attempt: u32, rng: &mut R) -> Duration {
        // 2^attempt saturates well before the shift could overflow.
        let exp = self.base.saturating_mul(1u32 << attempt.min(20));
        let ceiling_ns = exp.min(self.cap).as_nanos() as u64;
        if ceiling_ns == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(rng.gen_range(0..=ceiling_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn backoff_is_jittered_and_capped() {
        let policy = RetryPolicy::new(10, Duration::from_micros(100), Duration::from_millis(1));
        let mut rng = StdRng::seed_from_u64(7);
        for attempt in 0..32u32 {
            let ceiling = policy
                .base
                .saturating_mul(1 << attempt.min(20))
                .min(policy.cap);
            let mut seen_distinct = std::collections::HashSet::new();
            for _ in 0..64 {
                let d = policy.backoff(attempt, &mut rng);
                assert!(d <= ceiling, "attempt {attempt}: {d:?} > {ceiling:?}");
                seen_distinct.insert(d);
            }
            assert!(
                seen_distinct.len() > 1,
                "attempt {attempt}: backoff must be jittered, not constant"
            );
        }
    }

    #[test]
    fn ceilings_grow_exponentially_until_the_cap() {
        let policy = RetryPolicy::new(8, Duration::from_micros(50), Duration::from_millis(5));
        let mut rng = StdRng::seed_from_u64(3);
        // Statistically: the max over many samples approaches the ceiling,
        // so ceilings must order as 50µs < 100µs < ... < 5ms.
        let max_of = |attempt: u32, rng: &mut StdRng| {
            (0..256)
                .map(|_| policy.backoff(attempt, rng))
                .max()
                .unwrap()
        };
        let early = max_of(0, &mut rng);
        let late = max_of(6, &mut rng);
        assert!(early <= Duration::from_micros(50));
        assert!(late > Duration::from_micros(500), "got {late:?}");
        assert!(late <= Duration::from_millis(5));
    }

    #[test]
    fn attempts_clamp_to_one() {
        let p = RetryPolicy::new(0, Duration::ZERO, Duration::ZERO);
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.retries(), 0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.backoff(5, &mut rng), Duration::ZERO);
    }
}
