//! Elastic rebalancing end to end: serve a scripted hotspot collapse through
//! an instrumented `PipelineTarget` with an [`ElasticController`] watching
//! the telemetry, and show the serving layer heal itself:
//!
//! * phase 1 (`uniform`) establishes the balanced-load baseline;
//! * phase 2 (`hotspot`) parks 90% of the traffic on one range shard — the
//!   per-interval series shows the collapse while the controller detects the
//!   sustained imbalance and splits the hot range live, migrating segments
//!   onto the cooler shards;
//! * phase 3 (`hotspot-steady`) keeps the same skewed distribution and
//!   measures the *post-split* steady state, which must recover to within
//!   25% of the uniform baseline (asserted);
//! * a `hash`-partitioned control runs the identical script with no
//!   controller: hash routing is skew-resistant by construction, which is
//!   exactly why the paper's range-sharded learned indexes need elasticity
//!   while hash sharding gives up range scans to get it for free.
//!
//! Serving is never *globally* paused (asserted two ways):
//!
//! * every settled interval of the steady phases (`uniform`,
//!   `hotspot-steady`) retires operations — the per-interval series has no
//!   holes outside the active-migration phase;
//! * a dedicated **prober thread** reads the store's minimum key in a tight
//!   loop through all three phases. A split freezes only the *upper* half
//!   `[mid, hi)` of a segment, so the global minimum key can never be inside
//!   a frozen window — the prober's completion gaps measure exactly how long
//!   serving *outside* the migrating range ever stalls, and the maximum gap
//!   must stay far below the migration pauses the driver threads see (their
//!   closed-loop batches mix hot keys in, so they legitimately park while
//!   the hot range is frozen).
//!
//! The per-interval series, topology changes, prober gaps, and counters are
//! exported to `figs_rebalance.json` (uploaded as a CI artifact). `--quick`
//! shrinks the spans for a CI smoke run.

use gre_bench::registry::IndexBuilder;
use gre_bench::report::interval_series;
use gre_bench::RunOpts;
use gre_datasets::Dataset;
use gre_elastic::{ElasticController, ElasticPolicy};
use gre_shard::{PipelineTarget, Scheme};
use gre_telemetry::CounterId;
use gre_workloads::driver::{Driver, PhaseResult, ScenarioResult};
use gre_workloads::scenario::{KeyDist, Mix, Pacing, Phase, Scenario, Span};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// JSON report consumed by CI as an artifact.
const REPORT_OUT: &str = "figs_rebalance.json";

/// The steady-state throughput floor relative to the uniform baseline.
const RECOVERY_FLOOR: f64 = 0.75;

/// Worst tolerated gap between consecutive prober completions. Sized to sit
/// far below a real migration pause (hundreds of ms while a segment's keys
/// transfer) but far above scheduler noise on a loaded CI box.
const MAX_PROBE_GAP: Duration = Duration::from_millis(250);

fn main() {
    let opts = RunOpts::from_env();
    let keys = Dataset::Covid.generate(opts.keys, opts.seed);
    // Exactly 4 shards with one worker each: the hot quarter is exactly one
    // shard, and that shard's FIFO queue serializes on its pinned worker —
    // the collapse the controller exists to heal.
    let shards = 4;
    let threads = opts.threads.clamp(2, 8);
    // Time-based phases: migration convergence is a wall-clock process (a
    // handful of splits separated by sustain+cooldown ticks, each pausing
    // the moved range while its keys transfer), so op-count phases would
    // make the steady-state phase start at an unpredictable point.
    let phase_time = |millis: u64| {
        Span::Time(Duration::from_millis(if opts.quick {
            millis / 4
        } else {
            millis
        }))
    };
    let interval = Duration::from_millis(if opts.quick { 20 } else { 50 });
    // The controller ticks much faster than the driver's reporting interval
    // so a sustained imbalance is detected within a few reporting rows.
    let controller_interval = Duration::from_millis(if opts.quick { 2 } else { 5 });

    // 90% of accesses land on the hot quarter of the keyspace — i.e. on
    // exactly one of the 4 range shards.
    let hotspot = KeyDist::Hotspot {
        start: 0.75,
        span: 0.25,
        hot_access: 0.9,
    };
    // Read-only: the figure isolates *routing* skew. A write mix would
    // degrade the learned backends over the run (model aging) and blur the
    // recovery comparison against the pre-shift baseline.
    let mix = Mix::read_only();
    let pacing = Pacing::ClosedLoop { threads };
    let scenario = |name: &str| {
        Scenario::new(name, opts.seed, &keys)
            .phase(Phase::new(
                "uniform",
                mix,
                KeyDist::Uniform,
                phase_time(1_000),
                pacing,
            ))
            // The collapse-and-react window: long enough for the controller
            // to detect, split a few times, and settle.
            .phase(Phase::new(
                "hotspot",
                mix,
                hotspot,
                phase_time(3_000),
                pacing,
            ))
            .phase(Phase::new(
                "hotspot-steady",
                mix,
                hotspot,
                phase_time(2_000),
                pacing,
            ))
    };

    // --- Range-sharded target with the elasticity controller attached. ---
    let spec = IndexBuilder::backend("alex+")
        .expect("alex+ registered")
        .shards(shards);
    println!("# Rebalance: {} + elastic controller", spec.display_name());
    let elastic_scenario = scenario("hotspot-collapse");
    let mut target = PipelineTarget::new(spec.build_sharded(), shards, 256).instrumented();
    // Pre-load so the pipeline exists before the driver starts; the
    // driver's own load() call then no-ops (loading is idempotent).
    use gre_workloads::driver::ServeTarget;
    target.load(&elastic_scenario.bulk);
    let pipeline = target.pipeline_handle().expect("loaded above");

    // Split whenever a shard sustains over 35% of the traffic (fair share
    // is 25%): the 90%-hot shard splits to 2x45%, both still qualify, and
    // splitting continues until the skew is spread to roughly fair shares.
    // Merging is effectively disabled — this figure is about splits, and the
    // ~2.5% background share of the cool shards sits near any useful merge
    // threshold.
    let policy = ElasticPolicy {
        hot_share: 0.35,
        hot_sustain: 2,
        cold_share: 0.001,
        cold_sustain: u32::MAX,
        cooldown: 2,
        min_ops_per_tick: 200,
        min_split_keys: 256,
    };
    let controller = Arc::new(ElasticController::new(pipeline, policy));
    let stop = Arc::new(AtomicBool::new(false));
    let watcher = {
        let controller = Arc::clone(&controller);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || controller.run(&stop, controller_interval))
    };
    // A second observer samples the per-shard load so the figure can show
    // the hot shard's share collapsing back to fair after the splits.
    let monitor = {
        let telemetry = Arc::clone(target.telemetry().expect("instrumented"));
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let shards = telemetry.metrics().shard_count();
            let mut last = vec![0u64; shards];
            let mut series: Vec<Vec<u64>> = Vec::new();
            while !stop.load(Ordering::Acquire) {
                std::thread::sleep(interval);
                let deltas: Vec<u64> = (0..shards)
                    .map(|s| {
                        let total = telemetry.metrics().shard(s).ops_completed();
                        let d = total - last[s];
                        last[s] = total;
                        d
                    })
                    .collect();
                series.push(deltas);
            }
            series
        })
    };

    // The liveness prober: read the store's minimum key in a tight loop.
    // Splits freeze only the *upper* half `[mid, hi)` of a segment, so this
    // key is never inside a frozen window — any long gap between its
    // completions would mean serving paused globally.
    let prober = {
        let pipeline = target.pipeline_handle().expect("loaded above");
        let min_key = elastic_scenario.bulk.first().expect("non-empty bulk").0;
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last = std::time::Instant::now();
            let mut max_gap = Duration::ZERO;
            let mut probes = 0u64;
            while !stop.load(Ordering::Acquire) {
                let responses = pipeline
                    .submit(gre_shard::OpBatch::new(vec![gre_core::ops::Request::Get(
                        min_key,
                    )]))
                    .wait();
                assert_eq!(responses.len(), 1, "the probe op must be answered");
                let now = std::time::Instant::now();
                max_gap = max_gap.max(now - last);
                last = now;
                probes += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
            (probes, max_gap)
        })
    };

    let elastic = Driver::new()
        .interval(interval)
        .run(&elastic_scenario, &mut target);
    stop.store(true, Ordering::Release);
    watcher.join().expect("controller thread panicked");
    let shard_series = monitor.join().expect("monitor thread panicked");
    let (probes, max_probe_gap) = prober.join().expect("prober thread panicked");

    print_phases(&elastic);
    print_shard_shares(&shard_series);
    let changes = controller.changes();
    println!("\n## Topology changes ({})", changes.len());
    for c in &changes {
        println!(
            "  {:?} shard{}->shard{} keys={} pause={}us epoch={}",
            c.kind, c.from, c.to, c.keys_moved, c.pause_micros, c.epoch
        );
    }
    let snap = target.telemetry().expect("instrumented").snapshot();
    println!(
        "  counters: splits {}/{} merges {}/{} keys_migrated {} pause_us {}",
        snap.counter(CounterId::SplitsStarted),
        snap.counter(CounterId::SplitsCompleted),
        snap.counter(CounterId::MergesStarted),
        snap.counter(CounterId::MergesCompleted),
        snap.counter(CounterId::KeysMigrated),
        snap.counter(CounterId::MigrationPauseMicros),
    );

    // --- Hash-partitioned control: skew-resistant, no controller. ---
    let hash_spec = IndexBuilder::backend("alex+")
        .expect("alex+ registered")
        .shards(shards)
        .partitioner(Scheme::Hash);
    println!("\n# Control: {} (no controller)", hash_spec.display_name());
    let mut hash_target = PipelineTarget::new(hash_spec.build_sharded(), shards, 256);
    let hash = Driver::new()
        .interval(interval)
        .run(&scenario("hotspot-collapse-hash"), &mut hash_target);
    print_phases(&hash);

    // --- Assertions: the acceptance properties of the figure. ---
    // (1) The controller reacted: at least one split committed.
    assert!(
        snap.counter(CounterId::SplitsCompleted) >= 1,
        "the sustained hotspot must trigger at least one live split"
    );
    // (2a) Steady-state serving has no holes: every settled interval of the
    // non-migrating phases retired operations (the final interval of a
    // phase may be a partial window, so it is exempt). The `hotspot` phase
    // is where migrations pause the hot range — the closed-loop driver
    // batches mix hot keys into every batch, so they park while it is
    // frozen; that phase's liveness is carried by the prober instead.
    for (run, phases) in [
        (&elastic, &["uniform", "hotspot-steady"][..]),
        (&hash, &["uniform", "hotspot", "hotspot-steady"][..]),
    ] {
        for name in phases {
            let phase = phase_named(run, name);
            let settled = &phase.intervals[..phase.intervals.len().saturating_sub(1)];
            assert!(
                settled.iter().all(|&ops| ops > 0),
                "{}/{}: an empty settled interval means serving paused: {:?}",
                run.scenario,
                phase.phase,
                phase.intervals
            );
        }
    }
    // (2b) Serving was never *globally* paused: the min-key prober — whose
    // key can never be inside a frozen split window — kept completing
    // throughout, with a worst gap far below the per-migration pauses.
    println!(
        "\n## Prober: {probes} min-key reads, max completion gap {:?} (budget {:?})",
        max_probe_gap, MAX_PROBE_GAP
    );
    assert!(probes > 0, "the prober must have run");
    assert!(
        max_probe_gap <= MAX_PROBE_GAP,
        "serving paused globally: the min-key prober stalled {max_probe_gap:?} \
         (budget {MAX_PROBE_GAP:?})"
    );
    // (3) Post-split steady state recovers to within 25% of the uniform
    // baseline.
    let baseline = median_interval_ops(phase_named(&elastic, "uniform"));
    let steady = median_interval_ops(phase_named(&elastic, "hotspot-steady"));
    let ratio = steady as f64 / baseline as f64;
    println!(
        "\n## Recovery: baseline {baseline} ops/interval, post-split steady {steady} \
         ({ratio:.2}x, floor {RECOVERY_FLOOR})"
    );
    assert!(
        ratio >= RECOVERY_FLOOR,
        "post-split steady state must recover to within 25% of the uniform baseline \
         (got {ratio:.2}x)"
    );

    write_report(
        &elastic,
        &hash,
        &changes,
        baseline,
        steady,
        probes,
        max_probe_gap,
    );
    println!("  report -> {REPORT_OUT}");
}

fn phase_named<'a>(run: &'a ScenarioResult, name: &str) -> &'a PhaseResult {
    run.phase(name).expect("scripted phase exists")
}

/// Median completions per settled (non-final) interval of a phase — robust
/// against the ramp-in rows at a phase boundary and the partial last window.
fn median_interval_ops(phase: &PhaseResult) -> u64 {
    let mut settled: Vec<u64> = phase.intervals[..phase.intervals.len().saturating_sub(1)].to_vec();
    assert!(
        !settled.is_empty(),
        "phase {} too short for an interval series",
        phase.phase
    );
    settled.sort_unstable();
    settled[settled.len() / 2]
}

/// Print the sampled per-shard load series: each row is one monitor window
/// with the busiest shard's share of that window's completions.
fn print_shard_shares(series: &[Vec<u64>]) {
    println!("\n## Per-shard load (ops/window, monitor thread)");
    let active: Vec<&Vec<u64>> = series
        .iter()
        .filter(|d| d.iter().sum::<u64>() > 0)
        .collect();
    let cols = active.len().min(10);
    let stride = active.len().div_ceil(cols.max(1)).max(1);
    for (i, deltas) in active.iter().enumerate().step_by(stride) {
        let total: u64 = deltas.iter().sum();
        let max = *deltas.iter().max().expect("at least one shard");
        println!(
            "  t{i:<3} hot_share={:.2}  {}",
            max as f64 / total as f64,
            deltas
                .iter()
                .map(|d| format!("{d:>7}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
}

fn print_phases(run: &ScenarioResult) {
    println!("\n## {} on {}", run.scenario, run.target);
    for phase in &run.phases {
        println!(
            "{:<16} ops={:<8} {:.3} Mop/s  read p99 {:.1}us",
            phase.phase,
            phase.ops(),
            phase.throughput_mops(),
            phase.read_summary().p99_ns as f64 / 1e3,
        );
        println!("  throughput: {}", interval_series(phase, 8));
    }
}

/// Hand-rolled JSON (the repo's perfjson dialect): interval series per phase
/// for both runs, the committed topology changes, and the recovery verdict.
fn write_report(
    elastic: &ScenarioResult,
    hash: &ScenarioResult,
    changes: &[gre_elastic::BoundaryChange],
    baseline: u64,
    steady: u64,
    probes: u64,
    max_probe_gap: Duration,
) {
    let series = |run: &ScenarioResult| {
        run.phases
            .iter()
            .map(|p| {
                format!(
                    "{{\"phase\":\"{}\",\"ops\":{},\"elapsed_ns\":{},\"intervals\":[{}]}}",
                    p.phase,
                    p.ops(),
                    p.elapsed_ns,
                    p.intervals
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(",")
                )
            })
            .collect::<Vec<_>>()
            .join(",")
    };
    let changes_json = changes
        .iter()
        .map(|c| {
            format!(
                "{{\"kind\":\"{:?}\",\"from\":{},\"to\":{},\"keys_moved\":{},\
                 \"pause_micros\":{},\"epoch\":{}}}",
                c.kind, c.from, c.to, c.keys_moved, c.pause_micros, c.epoch
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\"elastic\":[{}],\"hash\":[{}],\"changes\":[{}],\
         \"baseline_ops_per_interval\":{},\"steady_ops_per_interval\":{},\
         \"probes\":{probes},\"max_probe_gap_micros\":{},\
         \"recovery_ratio\":{:.4},\"recovery_floor\":{}}}\n",
        series(elastic),
        series(hash),
        changes_json,
        baseline,
        steady,
        max_probe_gap.as_micros(),
        steady as f64 / baseline as f64,
        RECOVERY_FLOOR
    );
    std::fs::write(REPORT_OUT, json).expect("write report");
}
