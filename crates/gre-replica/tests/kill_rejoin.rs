//! Kill-window robustness: a replica whose shipper crashes mid-stream (via
//! a scripted `gre-durability` failpoint) re-joins by resuming the WAL from
//! its last applied watermark, and ends byte-identical to the primary with
//! no record lost and none applied twice.

use gre_core::{ConcurrentIndex, Payload, RangeSpec};
use gre_durability::util::TempDir;
use gre_durability::{FailAction, FailpointRegistry, Trigger};
use gre_learned::AlexPlus;
use gre_replica::{apply_failpoint, ReplicatedTarget};
use gre_shard::{Partitioner, ShardedIndex};
use gre_workloads::scenario::{KeyDist, Mix, Pacing, Phase, Scenario, Span};
use gre_workloads::Driver;
use std::sync::Arc;
use std::time::{Duration, Instant};

type DynBackend = Box<dyn ConcurrentIndex<u64>>;

fn sharded() -> ShardedIndex<u64, DynBackend> {
    ShardedIndex::from_factory(Partitioner::range(4), |_| {
        Box::new(AlexPlus::<u64>::new()) as DynBackend
    })
}

fn write_heavy() -> Scenario {
    let keys: Vec<u64> = (1..=4_000u64).map(|i| i * 64).collect();
    Scenario::new("kill-window", 0xDEADBEA7, &keys).phase(Phase::new(
        "churn",
        Mix::points(1, 4, 2, 1),
        KeyDist::Uniform,
        Span::Ops(10_000),
        Pacing::ClosedLoop { threads: 3 },
    ))
}

fn contents(index: &ShardedIndex<u64, DynBackend>, who: &str) -> Vec<(u64, Payload)> {
    let mut out = Vec::new();
    let got = index.range(RangeSpec::new(0, index.len() + 1_000), &mut out);
    assert_eq!(got, index.len(), "{who}: scan covers the whole store");
    out
}

#[test]
fn crashed_replica_rejoins_from_its_watermark_without_loss_or_duplication() {
    const CRASH_AFTER: u64 = 25;
    let failpoints = FailpointRegistry::new();
    failpoints.script(
        &apply_failpoint(0),
        Trigger::OnHit(CRASH_AFTER),
        FailAction::Crash,
    );

    let tmp = TempDir::new("kill-rejoin");
    let mut target = ReplicatedTarget::new(sharded(), 2, 128, tmp.path(), |_| {
        Box::new(AlexPlus::<u64>::new()) as DynBackend
    })
    .with_replicas(2)
    .with_failpoints(Arc::clone(&failpoints));

    Driver::new().run(&write_heavy(), &mut target);

    // The scripted crash fired, killing replica 0's shipper mid-stream
    // while replica 1 kept applying.
    let name = apply_failpoint(0);
    assert!(failpoints.fired(&name), "failpoint fired during the run");
    let deadline = Instant::now() + Duration::from_secs(10);
    while target.nodes()[0].is_running() {
        assert!(Instant::now() < deadline, "crashed shipper exits");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(target.nodes()[0].applied_records(), CRASH_AFTER);

    // Survivor catches up; the crashed replica is frozen strictly behind.
    target.quiesce();
    let survivor_records = target.nodes()[1].applied_records();
    assert!(
        survivor_records > CRASH_AFTER,
        "crash landed mid-stream: survivor applied {survivor_records} > {CRASH_AFTER}"
    );
    assert!(
        target.nodes()[0].watermark().total_lag(&target.committed()) > 0,
        "crashed replica is behind before the re-join"
    );

    // Re-join: resume shipping from replica 0's own watermark.
    target.rejoin_replica(0).expect("rejoin");
    target.quiesce();

    let primary = contents(target.primary().index(), "primary");
    for node in target.nodes() {
        assert!(node.is_running(), "replica {} shipping again", node.id());
        assert_eq!(
            contents(node.index(), "replica"),
            primary,
            "replica {} state equals primary after re-join",
            node.id()
        );
    }
    // Exactly-once: across crash + re-join, replica 0 applied the same
    // record and op counts as the replica that never crashed — nothing
    // was skipped (loss) and nothing replayed twice (duplication).
    assert_eq!(
        target.nodes()[0].applied_records(),
        target.nodes()[1].applied_records(),
        "record counts agree across the crash window"
    );
    assert_eq!(
        target.nodes()[0].applied_ops(),
        target.nodes()[1].applied_ops(),
        "op counts agree across the crash window"
    );
}

#[test]
fn graceful_kill_freezes_and_rejoin_catches_up() {
    // The controlled half of the drill: kill_replica stops shipping
    // cooperatively; writes keep committing; re-join replays the gap.
    let tmp = TempDir::new("kill-graceful");
    let mut target = ReplicatedTarget::new(sharded(), 2, 128, tmp.path(), |_| {
        Box::new(AlexPlus::<u64>::new()) as DynBackend
    })
    .with_replicas(1);

    let scenario = write_heavy();
    Driver::new().run(&scenario, &mut target);
    target.quiesce();
    target.kill_replica(0);
    assert!(!target.nodes()[0].is_running());
    let frozen = target.nodes()[0].watermark().snapshot();

    // More traffic while the replica is down.
    Driver::new().run(&scenario, &mut target);
    let committed = target.committed();
    assert!(
        target.nodes()[0].watermark().total_lag(&committed) > 0,
        "watermark frozen at {frozen:?} while writes advanced to {committed:?}"
    );

    target.rejoin_replica(0).expect("rejoin");
    target.quiesce();
    assert_eq!(
        contents(target.nodes()[0].index(), "replica"),
        contents(target.primary().index(), "primary"),
        "replica equals primary after catching up"
    );
}
