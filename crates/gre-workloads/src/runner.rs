//! Workload execution and measurement — the materialized-[`Workload`]
//! compatibility surface over the scenario engine.
//!
//! # MIGRATION
//!
//! The pre-materialized `Vec<Op>` workload path is now a thin adapter over
//! the typed scenario engine:
//!
//! * [`run_concurrent`] wraps the workload in a one-phase replay
//!   [`Scenario`] (closed loop, contiguous
//!   per-thread chunks — the exact execution shape it always had) and
//!   executes it through the [`Driver`], then folds
//!   the phase measurements back into the stable [`RunResult`] shape.
//! * New code should describe traffic as a `Scenario` (mix + key
//!   distribution + span + pacing per phase) and call `Driver::run`
//!   directly: that unlocks multi-phase scripts, open-loop pacing with
//!   coordinated-omission-safe latency, per-kind histograms, and the
//!   non-bare serving targets (`ShardPipeline`/`Session` in `gre-shard`).
//! * [`run_single`] keeps its direct loop: single-threaded indexes
//!   (`Index`, `&mut self`) sit outside the concurrent `ServeTarget`
//!   surface.
//!
//! Latencies on the closed-loop paths are sampled (1 op in
//! [`LATENCY_SAMPLE_RATE`], as in §6.1) to keep measurement overhead
//! negligible; [`RunResult`] now carries per-[`OpKind`] summaries next to
//! the merged read/write views so read and write tails stay separable.

use crate::driver::Driver;
use crate::scenario::{Pacing, Scenario};
use crate::spec::{Op, OpKind, Workload};
use gre_core::{ConcurrentIndex, Index, KindLatency, LatencyHistogram};
use std::time::Instant;

/// Fraction of operations whose latency is sampled: one in every N ops.
/// An odd prime stride avoids aliasing with the read/write interleaving
/// pattern of the generated request streams.
pub const LATENCY_SAMPLE_RATE: usize = 101;

/// Summary statistics over a set of sampled latencies (nanoseconds).
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    pub samples: usize,
    pub mean_ns: f64,
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    pub max_ns: u64,
    pub std_ns: f64,
}

impl LatencySummary {
    /// Build a summary from raw samples (order irrelevant).
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let sum: u128 = samples.iter().map(|&v| v as u128).sum();
        let mean = sum as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        LatencySummary {
            samples: n,
            mean_ns: mean,
            p50_ns: percentile(&samples, 0.50),
            p99_ns: percentile(&samples, 0.99),
            p999_ns: percentile(&samples, 0.999),
            max_ns: samples[n - 1],
            std_ns: var.sqrt(),
        }
    }

    /// Build a summary from a recorded histogram (the scenario driver's
    /// representation; percentiles carry the histogram's ~3% bucket
    /// resolution, mean and max are exact).
    pub fn from_histogram(hist: &LatencyHistogram) -> Self {
        if hist.is_empty() {
            return LatencySummary::default();
        }
        LatencySummary {
            samples: hist.count() as usize,
            mean_ns: hist.mean(),
            p50_ns: hist.percentile(0.50),
            p99_ns: hist.percentile(0.99),
            p999_ns: hist.percentile(0.999),
            max_ns: hist.max(),
            std_ns: hist.std_dev(),
        }
    }
}

/// The `p`-quantile of an ascending-sorted sample set, with linear
/// interpolation between the two straddling ranks (the nearest-rank
/// `.round()` this replaces biased p999 low on small sample sets, where the
/// rounded rank collapses onto an interior sample).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() - 1) as f64 * p.clamp(0.0, 1.0);
    let lo = rank.floor() as usize;
    let hi = (rank.ceil() as usize).min(sorted.len() - 1);
    if lo == hi {
        return sorted[lo];
    }
    let frac = rank - lo as f64;
    (sorted[lo] as f64 + (sorted[hi] - sorted[lo]) as f64 * frac).round() as u64
}

/// Per-[`OpKind`] latency summaries (Get vs Insert vs Update vs Remove vs
/// Range), so read and write tails are separable in every report.
#[derive(Debug, Clone, Default)]
pub struct KindSummaries([LatencySummary; OpKind::COUNT]);

impl KindSummaries {
    /// The summary for one kind.
    pub fn get(&self, kind: OpKind) -> &LatencySummary {
        &self.0[kind.index()]
    }

    /// Build from per-kind raw sample vectors.
    pub fn from_samples(per_kind: [Vec<u64>; OpKind::COUNT]) -> Self {
        KindSummaries(per_kind.map(LatencySummary::from_samples))
    }

    /// Build from a kind-indexed histogram recorder.
    pub fn from_kind_latency(latency: &KindLatency) -> Self {
        let mut out = KindSummaries::default();
        for (kind, hist) in latency.iter() {
            out.0[kind.index()] = LatencySummary::from_histogram(hist);
        }
        out
    }

    /// Iterate `(kind, summary)` pairs for kinds that recorded any samples.
    pub fn iter_nonempty(&self) -> impl Iterator<Item = (OpKind, &LatencySummary)> {
        OpKind::ALL
            .iter()
            .map(|&k| (k, self.get(k)))
            .filter(|(_, s)| s.samples > 0)
    }
}

/// The result of executing one workload on one index.
#[derive(Debug, Clone, Default)]
pub struct RunResult {
    /// Index name.
    pub index: String,
    /// Workload name.
    pub workload: String,
    /// Threads used.
    pub threads: usize,
    /// Number of timed operations executed.
    pub ops: usize,
    /// Wall-clock time of the timed phase in nanoseconds.
    pub elapsed_ns: u64,
    /// Bulk-load time in nanoseconds.
    pub bulk_load_ns: u64,
    /// Lookup hits observed (sanity check that the workload makes sense).
    pub hits: usize,
    /// Keys returned by range scans.
    pub scanned_keys: usize,
    /// Lookup latency summary (sampled).
    pub read_latency: LatencySummary,
    /// Write (insert/update/remove) latency summary (sampled).
    pub write_latency: LatencySummary,
    /// Per-kind latency summaries (sampled), separating Get / Insert /
    /// Update / Remove / Range tails.
    pub kind_latency: KindSummaries,
    /// End-to-end index memory after the run, in bytes.
    pub memory_bytes: usize,
}

impl RunResult {
    /// Throughput in million operations per second.
    pub fn throughput_mops(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.ops as f64 / (self.elapsed_ns as f64 / 1e9) / 1e6
    }

    /// Throughput in keys scanned per second (for range workloads, which the
    /// paper reports as "M keys/s").
    pub fn scan_throughput_mkeys(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.scanned_keys as f64 / (self.elapsed_ns as f64 / 1e9) / 1e6
    }
}

/// Execute a workload on a single-threaded index.
pub fn run_single<I: Index<u64> + ?Sized>(index: &mut I, workload: &Workload) -> RunResult {
    let bulk_timer = Instant::now();
    index.bulk_load(&workload.bulk);
    let bulk_load_ns = bulk_timer.elapsed().as_nanos() as u64;

    let mut hits = 0usize;
    let mut scanned = 0usize;
    let mut kind_samples: [Vec<u64>; OpKind::COUNT] = Default::default();
    let mut scan_buf: Vec<(u64, u64)> = Vec::new();

    let timer = Instant::now();
    for (i, op) in workload.ops.iter().enumerate() {
        let sample = i % LATENCY_SAMPLE_RATE == 0;
        let start = if sample { Some(Instant::now()) } else { None };
        match *op {
            Op::Get(k) => {
                if index.get(k).is_some() {
                    hits += 1;
                }
            }
            Op::Insert(k, v) => {
                index.insert(k, v);
            }
            Op::Update(k, v) => {
                index.update(k, v);
            }
            Op::Remove(k) => {
                index.remove(k);
            }
            Op::Range(spec) => {
                scan_buf.clear();
                scanned += index.range(spec, &mut scan_buf);
            }
        }
        if let Some(start) = start {
            let ns = start.elapsed().as_nanos() as u64;
            kind_samples[op.kind().index()].push(ns);
        }
    }
    let elapsed_ns = timer.elapsed().as_nanos() as u64;

    let read_samples: Vec<u64> = kind_samples[OpKind::Get.index()]
        .iter()
        .chain(kind_samples[OpKind::Range.index()].iter())
        .copied()
        .collect();
    let write_samples: Vec<u64> = kind_samples[OpKind::Insert.index()]
        .iter()
        .chain(kind_samples[OpKind::Update.index()].iter())
        .chain(kind_samples[OpKind::Remove.index()].iter())
        .copied()
        .collect();

    RunResult {
        index: index.meta().name.to_string(),
        workload: workload.name.clone(),
        threads: 1,
        ops: workload.ops.len(),
        elapsed_ns,
        bulk_load_ns,
        hits,
        scanned_keys: scanned,
        read_latency: LatencySummary::from_samples(read_samples),
        write_latency: LatencySummary::from_samples(write_samples),
        kind_latency: KindSummaries::from_samples(kind_samples),
        memory_bytes: index.memory_usage(),
    }
}

/// Execute a workload on a concurrent index with `threads` worker threads.
///
/// The request stream is split into `threads` contiguous chunks; each thread
/// executes its chunk independently (the paper's client threads likewise
/// issue independent request streams). This is the migration adapter over
/// the scenario engine: a one-phase closed-loop replay scenario driven
/// against the bare backend (see the module-level MIGRATION note).
pub fn run_concurrent<I: ConcurrentIndex<u64> + ?Sized>(
    index: &mut I,
    workload: &Workload,
    threads: usize,
) -> RunResult {
    let threads = threads.max(1);
    let scenario = Scenario::from_workload(workload, Pacing::ClosedLoop { threads });
    let result = Driver::new().run(&scenario, index);
    let phase = result
        .phases
        .first()
        .expect("one-phase replay scenario produced a phase");
    RunResult {
        index: result.target.clone(),
        workload: workload.name.clone(),
        threads,
        ops: phase.ops() as usize,
        elapsed_ns: phase.elapsed_ns,
        bulk_load_ns: result.bulk_load_ns,
        hits: phase.tally.hits as usize,
        scanned_keys: phase.tally.scanned_keys as usize,
        read_latency: phase.read_summary(),
        write_latency: phase.write_summary(),
        kind_latency: KindSummaries::from_kind_latency(&phase.latency),
        memory_bytes: index.memory_usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::WorkloadBuilder;
    use crate::spec::WriteRatio;
    use gre_core::index::MutexIndex;
    use gre_core::{IndexMeta, Payload, RangeSpec};
    use std::collections::BTreeMap;

    /// Reference index used to exercise the runner.
    #[derive(Default)]
    struct MapIndex {
        map: BTreeMap<u64, Payload>,
    }

    impl Index<u64> for MapIndex {
        fn bulk_load(&mut self, entries: &[(u64, Payload)]) {
            self.map = entries.iter().copied().collect();
        }
        fn get(&self, key: u64) -> Option<Payload> {
            self.map.get(&key).copied()
        }
        fn insert(&mut self, key: u64, value: Payload) -> bool {
            self.map.insert(key, value).is_none()
        }
        fn remove(&mut self, key: u64) -> Option<Payload> {
            self.map.remove(&key)
        }
        fn range(&self, spec: RangeSpec<u64>, out: &mut Vec<(u64, Payload)>) -> usize {
            let before = out.len();
            out.extend(
                self.map
                    .range(spec.start..)
                    .take(spec.count)
                    .map(|(k, v)| (*k, *v)),
            );
            out.len() - before
        }
        fn len(&self) -> usize {
            self.map.len()
        }
        fn memory_usage(&self) -> usize {
            self.map.len() * 48
        }
        fn meta(&self) -> IndexMeta {
            IndexMeta {
                name: "map",
                learned: false,
                concurrent: false,
                supports_delete: true,
                supports_range: true,
            }
        }
    }

    fn keys(n: u64) -> Vec<u64> {
        (1..=n).map(|i| i * 13).collect()
    }

    #[test]
    fn single_threaded_run_counts_hits() {
        let b = WorkloadBuilder::new(1);
        let w = b.insert_workload("test", &keys(2000), WriteRatio::ReadOnly);
        let mut idx = MapIndex::default();
        let r = run_single(&mut idx, &w);
        assert_eq!(r.ops, w.ops.len());
        assert_eq!(r.hits, w.ops.len(), "all read-only lookups must hit");
        assert!(r.throughput_mops() > 0.0);
        assert!(r.memory_bytes > 0);
        assert_eq!(r.threads, 1);
        // Per-kind view: everything landed under Get.
        assert!(r.kind_latency.get(OpKind::Get).samples > 0);
        assert_eq!(r.kind_latency.get(OpKind::Insert).samples, 0);
        assert_eq!(r.kind_latency.iter_nonempty().count(), 1);
    }

    #[test]
    fn balanced_run_ends_with_all_keys_present() {
        let b = WorkloadBuilder::new(2);
        let all = keys(2000);
        let w = b.insert_workload("test", &all, WriteRatio::Balanced);
        let mut idx = MapIndex::default();
        let r = run_single(&mut idx, &w);
        assert_eq!(idx.len(), all.len());
        // Both kinds sampled, and the per-kind split is consistent with the
        // merged read/write views.
        assert_eq!(
            r.kind_latency.get(OpKind::Get).samples,
            r.read_latency.samples
        );
        assert_eq!(
            r.kind_latency.get(OpKind::Insert).samples,
            r.write_latency.samples
        );
    }

    #[test]
    fn scan_workload_counts_keys() {
        let b = WorkloadBuilder::new(3);
        let w = b.range_workload("test", &keys(1000), 50, 20);
        let mut idx = MapIndex::default();
        let r = run_single(&mut idx, &w);
        assert!(r.scanned_keys > 0);
        assert!(r.scan_throughput_mkeys() > 0.0);
        assert!(r.kind_latency.get(OpKind::Range).samples > 0);
    }

    #[test]
    fn concurrent_run_matches_single_thread_outcome() {
        let b = WorkloadBuilder::new(4);
        let all = keys(4000);
        let w = b.insert_workload("test", &all, WriteRatio::Balanced);
        let mut conc = MutexIndex::new(MapIndex::default(), "map-mutex");
        let r = run_concurrent(&mut conc, &w, 4);
        assert_eq!(r.threads, 4);
        assert_eq!(r.ops, w.ops.len());
        assert_eq!(ConcurrentIndex::len(&conc), all.len());
        assert_eq!(r.index, "map-mutex");
        assert!(r.read_latency.samples > 0);
        assert!(r.write_latency.samples > 0);
        assert!(r.kind_latency.get(OpKind::Get).samples > 0);
        assert!(r.kind_latency.get(OpKind::Insert).samples > 0);
        assert!(r.memory_bytes > 0);
    }

    #[test]
    fn concurrent_run_executes_every_op_when_threads_do_not_divide() {
        // Regression: the replay chunking must agree with the driver's
        // per-thread op budgets, or the tail of a chunk is silently
        // dropped (10 ops over 4 threads used to execute only 9).
        for (n, threads) in [(10u64, 4usize), (103, 4), (13, 4), (2_001, 7)] {
            let w = Workload {
                name: "odd".into(),
                bulk: vec![(1, 1)],
                ops: (0..n).map(|i| Op::Insert(1_000 + i, i)).collect(),
            };
            let mut conc = MutexIndex::new(MapIndex::default(), "map-mutex");
            let r = run_concurrent(&mut conc, &w, threads);
            assert_eq!(r.ops as u64, n, "{n} ops / {threads} threads");
            assert_eq!(
                ConcurrentIndex::len(&conc) as u64,
                1 + n,
                "{n} ops / {threads} threads: every insert must land"
            );
        }
    }

    #[test]
    fn latency_summary_statistics() {
        let s = LatencySummary::from_samples(vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 1000]);
        assert_eq!(s.samples, 10);
        assert_eq!(s.max_ns, 1000);
        assert!(s.p999_ns >= s.p99_ns && s.p99_ns >= s.p50_ns);
        assert!(s.std_ns > 0.0);
        assert!(s.mean_ns > 0.0);
        let empty = LatencySummary::from_samples(vec![]);
        assert_eq!(empty.samples, 0);
        assert_eq!(empty.p999_ns, 0);
    }

    #[test]
    fn percentile_interpolates_between_ranks() {
        // Ten evenly spaced samples: p50 sits exactly between ranks 4 and 5.
        let samples: Vec<u64> = (1..=10).map(|i| i * 10).collect();
        assert_eq!(percentile(&samples, 0.50), 55);
        assert_eq!(percentile(&samples, 0.0), 10);
        assert_eq!(percentile(&samples, 1.0), 100);
        // p25 rank = 2.25 → 30 + 0.25 * 10 = 32.5 → 33 (round half up).
        assert_eq!(percentile(&samples, 0.25), 33);

        // The motivating case: a 10-sample set with one outlier. The old
        // nearest-rank round() collapsed p999 (rank 8.991) onto the 1000
        // outlier only via rounding to rank 9; interpolation instead blends
        // 90 and 1000: 90 + 0.991 * 910 = 991.81 → 992.
        let skewed = vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 1000];
        assert_eq!(percentile(&skewed, 0.999), 992);
        // p99 rank = 8.91 → 90 + 0.91 * 910 = 918.1 → 918 (the old code
        // reported the raw 1000 here, overstating p99 by 9%).
        assert_eq!(percentile(&skewed, 0.99), 918);

        // Exact ranks are returned untouched, and the summary fields stay
        // consistent with the function.
        let s = LatencySummary::from_samples(skewed.clone());
        assert_eq!(s.p50_ns, 55);
        assert_eq!(s.p99_ns, 918);
        assert_eq!(s.p999_ns, 992);
        assert_eq!(percentile(&[42], 0.999), 42);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn summary_from_histogram_matches_samples_within_resolution() {
        let samples: Vec<u64> = (1..=10_000u64).map(|i| i * 7).collect();
        let mut hist = LatencyHistogram::new();
        for &s in &samples {
            hist.record(s);
        }
        let from_samples = LatencySummary::from_samples(samples);
        let from_hist = LatencySummary::from_histogram(&hist);
        assert_eq!(from_hist.samples, from_samples.samples);
        assert_eq!(from_hist.max_ns, from_samples.max_ns);
        assert!((from_hist.mean_ns - from_samples.mean_ns).abs() < 1e-6);
        for (a, b) in [
            (from_hist.p50_ns, from_samples.p50_ns),
            (from_hist.p99_ns, from_samples.p99_ns),
            (from_hist.p999_ns, from_samples.p999_ns),
        ] {
            let rel = (a as f64 - b as f64).abs() / b as f64;
            assert!(rel < 0.05, "histogram {a} vs samples {b}");
        }
        assert_eq!(
            LatencySummary::from_histogram(&LatencyHistogram::new()).samples,
            0
        );
    }

    #[test]
    fn delete_workload_shrinks_the_index() {
        let b = WorkloadBuilder::new(5);
        let all = keys(2000);
        let w = b.delete_workload("test", &all, 0.5);
        let mut idx = MapIndex::default();
        run_single(&mut idx, &w);
        assert_eq!(idx.len(), all.len() - all.len() / 2);
    }
}
