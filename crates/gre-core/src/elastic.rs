//! Shared vocabulary for **online elasticity**: the typed error surface and
//! the boundary-change events emitted when a serving layer splits, merges,
//! or migrates key-range shards under live traffic.
//!
//! The mechanism lives in `gre-shard` (routing freeze / drain / handoff) and
//! the policy in `gre-elastic` (imbalance detection, split/merge planning);
//! this module holds only the types both sides — and observers such as the
//! durability layer — need to agree on.

use std::fmt;

/// Errors surfaced by the elasticity protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElasticError {
    /// A migration is already in flight; only one range may be frozen at a
    /// time (the protocol serializes topology changes).
    AlreadyMigrating,
    /// The partitioning scheme cannot change topology (hash partitioning
    /// has no boundary table to move — it is the skew-resistant baseline).
    UnsupportedScheme(&'static str),
    /// The backend lacks a capability the drain-and-handoff protocol needs
    /// (range scans to extract, deletes to vacate the source shard).
    UnsupportedBackend(&'static str),
    /// The requested key range or segment does not describe a legal
    /// topology change (empty window, boundary outside the segment,
    /// source and target shard identical, out-of-range ids, …).
    InvalidRange(String),
    /// The write-ahead log refused the topology handoff record; the
    /// migration was rolled back to the pre-handoff state.
    Wal(String),
    /// The migration was abandoned before the routing swap; the source
    /// shard still owns the range.
    Aborted(&'static str),
}

impl fmt::Display for ElasticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElasticError::AlreadyMigrating => {
                write!(f, "a range migration is already in flight")
            }
            ElasticError::UnsupportedScheme(s) => {
                write!(f, "partitioning scheme does not support elasticity: {s}")
            }
            ElasticError::UnsupportedBackend(what) => {
                write!(f, "backend capability missing for migration: {what}")
            }
            ElasticError::InvalidRange(msg) => write!(f, "invalid topology change: {msg}"),
            ElasticError::Wal(msg) => write!(f, "topology WAL handoff failed: {msg}"),
            ElasticError::Aborted(why) => write!(f, "migration aborted: {why}"),
        }
    }
}

impl std::error::Error for ElasticError {}

/// What kind of topology change a [`BoundaryChange`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// A hot segment was cut in two and one half moved to another shard.
    Split,
    /// A cold segment was folded into a neighbour's shard and the shared
    /// boundary removed.
    Merge,
    /// A segment changed owner without boundary edits.
    Migrate,
}

impl TopologyKind {
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Split => "split",
            TopologyKind::Merge => "merge",
            TopologyKind::Migrate => "migrate",
        }
    }
}

/// One committed topology change: the event record the controller emits
/// after the routing table swap, consumed by logs/diagnostics and mirrored
/// into the WAL as a topology record by the durability layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundaryChange {
    /// Protocol-unique id of the handoff (also the WAL correlation id).
    pub id: u64,
    pub kind: TopologyKind,
    /// Inclusive low key of the moved range (`None` = domain minimum).
    pub lo: Option<u64>,
    /// Exclusive high key of the moved range (`None` = domain maximum).
    pub hi: Option<u64>,
    /// Shard that owned the range before the change.
    pub from: usize,
    /// Shard that owns the range after the change.
    pub to: usize,
    /// Number of live entries moved during the handoff.
    pub keys_moved: usize,
    /// Routing epoch after the swap committed.
    pub epoch: u64,
    /// Wall-clock length of the frozen window, in microseconds: the pause
    /// experienced by traffic targeting the moved range (other ranges are
    /// never paused).
    pub pause_micros: u64,
}

impl fmt::Display for BoundaryChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} #{}: [{}, {}) shard {} -> {} ({} keys, {} us pause, epoch {})",
            self.kind.name(),
            self.id,
            self.lo.map_or("-inf".to_string(), |k| k.to_string()),
            self.hi.map_or("+inf".to_string(), |k| k.to_string()),
            self.from,
            self.to,
            self.keys_moved,
            self.pause_micros,
            self.epoch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_informative_text() {
        assert!(ElasticError::AlreadyMigrating
            .to_string()
            .contains("in flight"));
        assert!(ElasticError::UnsupportedScheme("hash")
            .to_string()
            .contains("hash"));
        assert!(ElasticError::UnsupportedBackend("delete")
            .to_string()
            .contains("delete"));
        assert!(ElasticError::InvalidRange("empty".into())
            .to_string()
            .contains("empty"));
        assert!(ElasticError::Wal("sync failed".into())
            .to_string()
            .contains("sync failed"));
        assert!(ElasticError::Aborted("wal").to_string().contains("wal"));
        fn assert_err<E: std::error::Error>() {}
        assert_err::<ElasticError>();
    }

    #[test]
    fn boundary_change_formats_open_and_closed_bounds() {
        let change = BoundaryChange {
            id: 7,
            kind: TopologyKind::Split,
            lo: Some(100),
            hi: None,
            from: 0,
            to: 3,
            keys_moved: 42,
            epoch: 2,
            pause_micros: 1_500,
        };
        let text = change.to_string();
        assert!(text.contains("split #7"));
        assert!(text.contains("[100, +inf)"));
        assert!(text.contains("shard 0 -> 3"));
        assert_eq!(TopologyKind::Merge.name(), "merge");
        assert_eq!(TopologyKind::Migrate.name(), "migrate");
    }
}
