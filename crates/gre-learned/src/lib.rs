//! # gre-learned
//!
//! From-scratch Rust implementations of the updatable learned indexes the
//! paper evaluates (§2, Table 1):
//!
//! * [`alex`] — ALEX (gapped arrays, cost-model SMOs) and the ALEX-M
//!   memory-matched configuration of Figure 9.
//! * [`lipp`] — LIPP (collision-driven chaining, unified nodes, per-node
//!   statistics and subtree rebuilds).
//! * [`pgm`] — the static PGM-Index and its LSM-style dynamic variant.
//! * [`xindex`] — XIndex (group models + per-group delta, two-phase merge).
//! * [`finedex`] — FINEdex (per-record level bins).
//! * [`concurrent`] — ALEX+ and LIPP+, the concurrent derivatives the paper
//!   contributes, including the lock-granularity variant of Appendix A.

pub mod alex;
pub mod concurrent;
pub mod finedex;
pub mod lipp;
pub mod pgm;
pub mod xindex;

pub use alex::{Alex, AlexConfig, BATCH_WIDTH};
pub use concurrent::{AlexPlus, LippPlus, LockGranularity};
pub use finedex::{Finedex, FinedexConfig};
pub use lipp::{Lipp, LippConfig};
pub use pgm::{DynamicPgm, StaticPgm};
pub use xindex::{XIndex, XIndexConfig};
