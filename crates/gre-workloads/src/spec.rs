//! Workload and operation types.

use gre_core::Payload;

/// A single request issued against an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point lookup of a key.
    Get(u64),
    /// Insert a key with a payload.
    Insert(u64, Payload),
    /// Update the payload of an (expected-present) key in place.
    Update(u64, Payload),
    /// Delete a key.
    Remove(u64),
    /// Range scan: fetch `count` keys starting from `start`.
    Scan(u64, usize),
}

impl Op {
    /// The kind of this operation (used for per-kind latency sampling).
    pub fn kind(&self) -> OpKind {
        match self {
            Op::Get(_) => OpKind::Get,
            Op::Insert(_, _) => OpKind::Insert,
            Op::Update(_, _) => OpKind::Update,
            Op::Remove(_) => OpKind::Remove,
            Op::Scan(_, _) => OpKind::Scan,
        }
    }

    /// Whether the operation mutates the index.
    pub fn is_write(&self) -> bool {
        matches!(self, Op::Insert(_, _) | Op::Update(_, _) | Op::Remove(_))
    }
}

/// Operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    Get,
    Insert,
    Update,
    Remove,
    Scan,
}

/// The five write-ratio points of the paper's workload axis (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteRatio {
    /// Read-Only (0% writes): bulk load everything, lookups only.
    ReadOnly,
    /// Read-Intensive (20% writes).
    ReadIntensive,
    /// Balanced (50% writes).
    Balanced,
    /// Write-Heavy (80% writes).
    WriteHeavy,
    /// Write-Only (100% writes).
    WriteOnly,
}

impl WriteRatio {
    /// All five points, in heatmap row order.
    pub const ALL: [WriteRatio; 5] = [
        WriteRatio::ReadOnly,
        WriteRatio::ReadIntensive,
        WriteRatio::Balanced,
        WriteRatio::WriteHeavy,
        WriteRatio::WriteOnly,
    ];

    /// Fraction of write operations in the request stream.
    pub fn write_fraction(&self) -> f64 {
        match self {
            WriteRatio::ReadOnly => 0.0,
            WriteRatio::ReadIntensive => 0.2,
            WriteRatio::Balanced => 0.5,
            WriteRatio::WriteHeavy => 0.8,
            WriteRatio::WriteOnly => 1.0,
        }
    }

    /// Display label ("0%", "20%", …).
    pub fn label(&self) -> &'static str {
        match self {
            WriteRatio::ReadOnly => "0%",
            WriteRatio::ReadIntensive => "20%",
            WriteRatio::Balanced => "50%",
            WriteRatio::WriteHeavy => "80%",
            WriteRatio::WriteOnly => "100%",
        }
    }
}

/// A fully materialized workload: the entries to bulk load plus the request
/// stream to execute (and time) afterwards.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable name, e.g. `"osm/balanced"`.
    pub name: String,
    /// Entries bulk-loaded before the timed phase, sorted by key.
    pub bulk: Vec<(u64, Payload)>,
    /// The timed request stream.
    pub ops: Vec<Op>,
}

impl Workload {
    /// Number of write operations in the request stream.
    pub fn write_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.is_write()).count()
    }

    /// Number of read operations (lookups + scans) in the request stream.
    pub fn read_ops(&self) -> usize {
        self.ops.len() - self.write_ops()
    }

    /// The observed write fraction of the request stream.
    pub fn write_fraction(&self) -> f64 {
        if self.ops.is_empty() {
            0.0
        } else {
            self.write_ops() as f64 / self.ops.len() as f64
        }
    }
}

/// The payload stored for a key in all generated workloads: a cheap,
/// deterministic function of the key so correctness checks can recompute it.
#[inline]
pub fn payload_for(key: u64) -> Payload {
    key ^ 0x5bd1_e995_9e37_79b9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kinds_and_write_classification() {
        assert_eq!(Op::Get(1).kind(), OpKind::Get);
        assert_eq!(Op::Insert(1, 2).kind(), OpKind::Insert);
        assert_eq!(Op::Update(1, 2).kind(), OpKind::Update);
        assert_eq!(Op::Remove(1).kind(), OpKind::Remove);
        assert_eq!(Op::Scan(1, 10).kind(), OpKind::Scan);
        assert!(!Op::Get(1).is_write());
        assert!(!Op::Scan(1, 10).is_write());
        assert!(Op::Insert(1, 2).is_write());
        assert!(Op::Update(1, 2).is_write());
        assert!(Op::Remove(1).is_write());
    }

    #[test]
    fn write_ratio_fractions_match_labels() {
        assert_eq!(WriteRatio::ALL.len(), 5);
        for wr in WriteRatio::ALL {
            let f = wr.write_fraction();
            assert!((0.0..=1.0).contains(&f));
        }
        assert_eq!(WriteRatio::Balanced.write_fraction(), 0.5);
        assert_eq!(WriteRatio::WriteOnly.label(), "100%");
    }

    #[test]
    fn workload_counts() {
        let w = Workload {
            name: "t".into(),
            bulk: vec![(1, 1)],
            ops: vec![Op::Get(1), Op::Insert(2, 2), Op::Remove(1), Op::Scan(0, 5)],
        };
        assert_eq!(w.write_ops(), 2);
        assert_eq!(w.read_ops(), 2);
        assert!((w.write_fraction() - 0.5).abs() < 1e-9);
        let empty = Workload {
            name: "e".into(),
            bulk: vec![],
            ops: vec![],
        };
        assert_eq!(empty.write_fraction(), 0.0);
    }

    #[test]
    fn payload_is_deterministic_and_key_dependent() {
        assert_eq!(payload_for(5), payload_for(5));
        assert_ne!(payload_for(5), payload_for(6));
    }
}
