//! Registry smoke tests: fast-failing coverage that every registered index
//! survives a tiny insert/lookup round-trip, so registry regressions (a
//! renamed entry, a broken constructor, a trait-impl typo) surface in
//! milliseconds without the heavy end-to-end suite.

use gre_bench::registry::{concurrent_indexes, single_thread_indexes};

const TINY: u64 = 64;

fn tiny_entries() -> Vec<(u64, u64)> {
    (0..TINY).map(|i| (i * 3 + 1, i + 100)).collect()
}

#[test]
fn registries_are_non_empty() {
    assert!(!single_thread_indexes().is_empty());
    assert!(!concurrent_indexes(true).is_empty());
    assert!(!concurrent_indexes(false).is_empty());
}

#[test]
fn registry_names_are_unique() {
    let mut names: Vec<&str> = single_thread_indexes().iter().map(|e| e.name).collect();
    names.sort_unstable();
    let len = names.len();
    names.dedup();
    assert_eq!(names.len(), len, "duplicate single-thread registry name");

    let mut names: Vec<&str> = concurrent_indexes(true).iter().map(|e| e.name).collect();
    names.sort_unstable();
    let len = names.len();
    names.dedup();
    assert_eq!(names.len(), len, "duplicate concurrent registry name");
}

#[test]
fn every_single_thread_entry_round_trips() {
    let entries = tiny_entries();
    for mut e in single_thread_indexes() {
        e.index.bulk_load(&entries);
        assert_eq!(e.index.len(), entries.len(), "{} bulk load", e.name);
        for &(k, v) in &entries {
            assert_eq!(e.index.get(k), Some(v), "{} lookup {k}", e.name);
        }
        assert!(e.index.insert(2, 999), "{} fresh insert", e.name);
        assert_eq!(e.index.get(2), Some(999), "{} read-own-insert", e.name);
        assert_eq!(e.index.get(0), None, "{} absent key", e.name);
    }
}

#[test]
fn every_concurrent_entry_round_trips() {
    let entries = tiny_entries();
    for mut e in concurrent_indexes(true) {
        e.index.bulk_load(&entries);
        assert_eq!(e.index.len(), entries.len(), "{} bulk load", e.name);
        for &(k, v) in &entries {
            assert_eq!(e.index.get(k), Some(v), "{} lookup {k}", e.name);
        }
        assert!(e.index.insert(2, 999), "{} fresh insert", e.name);
        assert_eq!(e.index.get(2), Some(999), "{} read-own-insert", e.name);
        assert_eq!(e.index.get(0), None, "{} absent key", e.name);
    }
}
