//! Table 3: per-insert statistics of ALEX and LIPP (nodes traversed, keys
//! shifted, nodes created).
use gre_bench::{registry::single_thread_indexes, RunOpts};
use gre_datasets::Dataset;
use gre_workloads::{run_single, WorkloadBuilder, WriteRatio};

fn main() {
    let opts = RunOpts::from_env();
    let builder = WorkloadBuilder::new(opts.seed);
    println!("# Table 3: statistics per insert (write-only workload)");
    println!(
        "{:<10} {:<8} {:>16} {:>14} {:>14}",
        "dataset", "index", "nodes traversed", "keys shifted", "nodes created"
    );
    for ds in Dataset::DRILLDOWN_DATASETS {
        let keys = ds.generate(opts.keys, opts.seed);
        let workload = builder.insert_workload(&ds.name(), &keys, WriteRatio::WriteOnly);
        for entry in single_thread_indexes() {
            if !matches!(entry.name, "ALEX" | "LIPP") {
                continue;
            }
            let mut index = entry.index;
            run_single(index.as_mut(), &workload);
            let s = index.stats();
            println!(
                "{:<10} {:<8} {:>16.2} {:>14.2} {:>14.2}",
                ds.name(),
                entry.name,
                s.avg_nodes_traversed_per_insert(),
                s.avg_keys_shifted_per_insert(),
                s.avg_nodes_created_per_insert()
            );
        }
    }
}
