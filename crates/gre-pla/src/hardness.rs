//! The two-dimensional data-hardness metric (§3.2, Appendix D).
//!
//! For a sorted key array `D` and error bound ε, hardness `H` is the number
//! of segments of `D`'s ε-approximate PLA. The paper uses ε = 4096 to capture
//! *global* non-linearity (challenging index structure and SMO cost models)
//! and ε = 32 to capture *local* non-linearity (challenging the accuracy of
//! individual models), and additionally evaluates the mean-squared error of a
//! single regression line as an (inferior) alternative global metric.

use crate::model::LinearModel;
use crate::pla::segment_count;
use gre_core::Key;

/// Epsilon values defining the hardness plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardnessConfig {
    /// Small ε for local non-linearity (paper default 32).
    pub local_eps: u64,
    /// Large ε for global non-linearity (paper default 4096).
    pub global_eps: u64,
}

impl Default for HardnessConfig {
    fn default() -> Self {
        HardnessConfig {
            local_eps: 32,
            global_eps: 4096,
        }
    }
}

/// The hardness coordinates of a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataHardness {
    /// `H_PLA(ε = local_eps)` — local non-linearity.
    pub local: usize,
    /// `H_PLA(ε = global_eps)` — global non-linearity.
    pub global: usize,
    /// MSE of a single least-squares line fit to the whole CDF
    /// (Appendix D's alternative metric, kept for the Fig E/F reproduction).
    pub single_line_mse: f64,
    /// The ε values used.
    pub config: HardnessConfig,
}

impl DataHardness {
    /// Compute hardness for a sorted (ascending) key array.
    pub fn compute<K: Key>(sorted_keys: &[K], config: HardnessConfig) -> Self {
        debug_assert!(sorted_keys.windows(2).all(|w| w[0] <= w[1]));
        let local = segment_count(sorted_keys, config.local_eps);
        let global = segment_count(sorted_keys, config.global_eps);
        let line = LinearModel::fit_keys(sorted_keys);
        let single_line_mse = line.mse_on_keys(sorted_keys);
        DataHardness {
            local,
            global,
            single_line_mse,
            config,
        }
    }

    /// Compute hardness with the paper's default ε values (32 / 4096).
    pub fn compute_default<K: Key>(sorted_keys: &[K]) -> Self {
        Self::compute(sorted_keys, HardnessConfig::default())
    }

    /// Compute hardness on a uniform sample of `sample` keys, which is what
    /// the harness does for large datasets (hardness is a density-shape
    /// property, so sub-sampling preserves the ordering between datasets
    /// while scaling the absolute segment counts down proportionally).
    pub fn compute_sampled<K: Key>(
        sorted_keys: &[K],
        config: HardnessConfig,
        sample: usize,
    ) -> Self {
        if sorted_keys.len() <= sample || sample == 0 {
            return Self::compute(sorted_keys, config);
        }
        let step = sorted_keys.len() as f64 / sample as f64;
        let sampled: Vec<K> = (0..sample)
            .map(|i| sorted_keys[(i as f64 * step) as usize])
            .collect();
        Self::compute(&sampled, config)
    }

    /// A scalar "difficulty score" combining both axes; used only for sorting
    /// datasets from easy to difficult when rendering heatmap rows.
    pub fn difficulty_score(&self) -> f64 {
        (self.local as f64).ln_1p() + (self.global as f64).ln_1p() * 4.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_keys(n: u64) -> Vec<u64> {
        (0..n).map(|i| i * 1000).collect()
    }

    /// A key set with high local bumpiness but globally linear shape
    /// (genome-like in the paper's terminology): dense runs of 100 keys
    /// separated by regular jumps, so individual models struggle while the
    /// overall CDF is a straight staircase.
    fn locally_bumpy_keys(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i / 100) * 1_000_000 + (i % 100)).collect()
    }

    /// A key set with a sharp global deflection (planet-like): dense region
    /// followed by a sparse region.
    fn globally_deflected_keys(n: u64) -> Vec<u64> {
        let half = n / 2;
        let mut keys: Vec<u64> = (0..half).collect();
        keys.extend((0..n - half).map(|i| 1_000_000_000 + i * 5_000_000));
        keys
    }

    #[test]
    fn linear_data_is_easy_on_both_axes() {
        let h = DataHardness::compute_default(&linear_keys(50_000));
        assert_eq!(h.local, 1);
        assert_eq!(h.global, 1);
        assert!(h.single_line_mse < 1e-6);
    }

    #[test]
    fn local_bumpiness_raises_local_hardness_more() {
        let easy = DataHardness::compute_default(&linear_keys(50_000));
        let bumpy = DataHardness::compute_default(&locally_bumpy_keys(50_000));
        assert!(bumpy.local > easy.local);
        // Bumps are local: the global axis stays much smaller than local.
        assert!(bumpy.global <= bumpy.local);
    }

    #[test]
    fn global_deflection_raises_global_hardness() {
        let easy = DataHardness::compute_default(&linear_keys(50_000));
        let hard = DataHardness::compute_default(&globally_deflected_keys(50_000));
        assert!(hard.global >= easy.global);
        assert!(hard.single_line_mse > easy.single_line_mse);
        assert!(hard.difficulty_score() > easy.difficulty_score());
    }

    #[test]
    fn sampled_hardness_preserves_ordering() {
        let easy = linear_keys(200_000);
        let hard = globally_deflected_keys(200_000);
        let cfg = HardnessConfig::default();
        let he = DataHardness::compute_sampled(&easy, cfg, 20_000);
        let hh = DataHardness::compute_sampled(&hard, cfg, 20_000);
        assert!(hh.difficulty_score() >= he.difficulty_score());
        // Sampling with a budget larger than the data falls back to exact.
        let exact = DataHardness::compute_sampled(&easy, cfg, 1_000_000);
        assert_eq!(exact.local, DataHardness::compute(&easy, cfg).local);
    }

    #[test]
    fn custom_epsilons_are_respected() {
        let keys = locally_bumpy_keys(20_000);
        let tight = DataHardness::compute(
            &keys,
            HardnessConfig {
                local_eps: 4,
                global_eps: 64,
            },
        );
        let loose = DataHardness::compute(
            &keys,
            HardnessConfig {
                local_eps: 64,
                global_eps: 8192,
            },
        );
        assert!(tight.local >= loose.local);
        assert!(tight.global >= loose.global);
        assert_eq!(tight.config.local_eps, 4);
    }
}
