//! Figure 9: ALEX-M vs LIPP — ALEX tuned to use roughly the same memory as
//! LIPP (fill factor lowered), compared across write ratios.
use gre_bench::RunOpts;
use gre_core::Index;
use gre_datasets::Dataset;
use gre_learned::{Alex, AlexConfig, Lipp};
use gre_workloads::{run_single, WorkloadBuilder, WriteRatio};

fn main() {
    let opts = RunOpts::from_env();
    let builder = WorkloadBuilder::new(opts.seed);
    println!("# Figure 9: ALEX-M (memory-matched) vs LIPP");
    println!(
        "{:<10} {:<6} {:>12} {:>12} {:>12} {:>12}",
        "dataset", "writes", "ALEX-M MB", "LIPP MB", "ALEX-M Mop/s", "LIPP Mop/s"
    );
    for ds in Dataset::DRILLDOWN_DATASETS {
        let keys = ds.generate(opts.keys, opts.seed);
        for ratio in WriteRatio::ALL {
            let workload = builder.insert_workload(&ds.name(), &keys, ratio);
            let mut alex_m = Alex::<u64>::with_config(AlexConfig::memory_matched());
            let mut lipp = Lipp::<u64>::new();
            let ra = run_single(&mut alex_m, &workload);
            let rl = run_single(&mut lipp, &workload);
            println!(
                "{:<10} {:<6} {:>12.2} {:>12.2} {:>12.3} {:>12.3}",
                ds.name(),
                ratio.label(),
                alex_m.memory_usage() as f64 / (1024.0 * 1024.0),
                lipp.memory_usage() as f64 / (1024.0 * 1024.0),
                ra.throughput_mops(),
                rl.throughput_mops()
            );
        }
    }
}
