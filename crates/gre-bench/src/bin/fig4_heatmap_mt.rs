//! Figure 4: throughput heatmap under multi-threaded execution.
use gre_bench::heatmap::concurrent_heatmap;
use gre_bench::RunOpts;
use gre_datasets::Dataset;

fn main() {
    let opts = RunOpts::from_env();
    let hm = concurrent_heatmap(
        &format!("Figure 4: heatmap under {} threads", opts.threads),
        &Dataset::HEATMAP_DATASETS,
        &opts,
        true,
    );
    print!("{}", hm.render());
}
