//! Synchronization primitives for the concurrent index variants.
//!
//! The surveyed concurrent indexes (§2.3) rely on *optimistic versioned
//! locks*: a single word carries a lock bit plus a version counter. Readers
//! record the version before reading, re-validate it afterwards, and retry if
//! a writer intervened; writers acquire the lock bit and bump the version on
//! release. [`OptLock`] implements that word. The concurrent indexes in this
//! workspace combine it with out-of-place structural modifications
//! (new nodes are swapped in atomically under `Arc`), so no epoch-based
//! reclamation machinery is needed for safety.

use std::sync::atomic::{AtomicU64, Ordering};

/// An optimistic versioned lock ("OLC word").
///
/// Bit 0 is the writer-lock bit; bits 1..64 form the version counter.
#[derive(Debug, Default)]
pub struct OptLock {
    word: AtomicU64,
}

const LOCK_BIT: u64 = 1;
const VERSION_STEP: u64 = 2;

impl OptLock {
    /// Create an unlocked lock with version zero.
    pub const fn new() -> Self {
        OptLock {
            word: AtomicU64::new(0),
        }
    }

    /// Begin an optimistic read: returns the current version if unlocked,
    /// or `None` if a writer currently holds the lock.
    #[inline]
    pub fn read_begin(&self) -> Option<u64> {
        let v = self.word.load(Ordering::Acquire);
        if v & LOCK_BIT == 0 {
            Some(v)
        } else {
            None
        }
    }

    /// Spin until the lock is free and return the observed version.
    #[inline]
    pub fn read_begin_spin(&self) -> u64 {
        loop {
            if let Some(v) = self.read_begin() {
                return v;
            }
            std::hint::spin_loop();
        }
    }

    /// Validate an optimistic read: the read is consistent iff the version is
    /// unchanged and no writer holds the lock.
    #[inline]
    pub fn read_validate(&self, version: u64) -> bool {
        self.word.load(Ordering::Acquire) == version
    }

    /// Try to acquire the writer lock. Returns a guard on success.
    #[inline]
    pub fn try_write(&self) -> Option<OptLockWriteGuard<'_>> {
        let v = self.word.load(Ordering::Acquire);
        if v & LOCK_BIT != 0 {
            return None;
        }
        if self
            .word
            .compare_exchange(v, v | LOCK_BIT, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(OptLockWriteGuard { lock: self })
        } else {
            None
        }
    }

    /// Spin until the writer lock is acquired.
    #[inline]
    pub fn write(&self) -> OptLockWriteGuard<'_> {
        loop {
            if let Some(g) = self.try_write() {
                return g;
            }
            std::hint::spin_loop();
        }
    }

    /// Upgrade an optimistic read to a write lock only if the version is
    /// still the one observed at `read_begin`. Returns `None` (caller should
    /// restart) if the version moved or another writer won the race.
    #[inline]
    pub fn try_upgrade(&self, version: u64) -> Option<OptLockWriteGuard<'_>> {
        if self
            .word
            .compare_exchange(
                version,
                version | LOCK_BIT,
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            Some(OptLockWriteGuard { lock: self })
        } else {
            None
        }
    }

    /// Current raw word (for diagnostics).
    pub fn raw(&self) -> u64 {
        self.word.load(Ordering::Relaxed)
    }

    /// Whether a writer currently holds the lock.
    pub fn is_locked(&self) -> bool {
        self.word.load(Ordering::Relaxed) & LOCK_BIT != 0
    }
}

/// RAII guard for [`OptLock`]: releasing it bumps the version so concurrent
/// optimistic readers observe the change and retry.
#[derive(Debug)]
pub struct OptLockWriteGuard<'a> {
    lock: &'a OptLock,
}

impl Drop for OptLockWriteGuard<'_> {
    fn drop(&mut self) {
        // Release: clear the lock bit and advance the version in one step.
        let v = self.lock.word.load(Ordering::Relaxed);
        self.lock
            .word
            .store((v & !LOCK_BIT) + VERSION_STEP, Ordering::Release);
    }
}

/// A cache-line padded atomic counter, used for per-thread statistics in the
/// execution harness and for the per-node statistics of LIPP+ whose
/// contention behaviour the paper analyses (§4.2).
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct PaddedCounter {
    value: AtomicU64,
}

impl PaddedCounter {
    pub const fn new(v: u64) -> Self {
        PaddedCounter {
            value: AtomicU64::new(v),
        }
    }

    #[inline]
    pub fn add(&self, delta: u64) -> u64 {
        self.value.fetch_add(delta, Ordering::Relaxed)
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_validate_detects_writer() {
        let lock = OptLock::new();
        let v = lock.read_begin().expect("unlocked");
        assert!(lock.read_validate(v));
        {
            let _g = lock.write();
            // While locked, optimistic readers must not start.
            assert!(lock.read_begin().is_none());
            assert!(lock.is_locked());
        }
        // After the write completes the version must have advanced.
        assert!(!lock.read_validate(v));
        let v2 = lock.read_begin().expect("unlocked again");
        assert!(v2 > v);
    }

    #[test]
    fn try_upgrade_fails_on_stale_version() {
        let lock = OptLock::new();
        let v = lock.read_begin().unwrap();
        {
            let _g = lock.write();
        }
        assert!(lock.try_upgrade(v).is_none());
        let v2 = lock.read_begin().unwrap();
        let g = lock.try_upgrade(v2);
        assert!(g.is_some());
    }

    #[test]
    fn try_write_is_exclusive() {
        let lock = OptLock::new();
        let g1 = lock.try_write();
        assert!(g1.is_some());
        assert!(lock.try_write().is_none());
        drop(g1);
        assert!(lock.try_write().is_some());
    }

    #[test]
    fn concurrent_writers_serialize() {
        // SAFETY wrapper: all mutation happens under the lock.
        struct SharedCell(std::cell::UnsafeCell<u64>);
        unsafe impl Sync for SharedCell {}
        let lock = Arc::new(OptLock::new());
        let shared = Arc::new(SharedCell(std::cell::UnsafeCell::new(0u64)));

        std::thread::scope(|s| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                let shared = Arc::clone(&shared);
                s.spawn(move || {
                    for _ in 0..1000 {
                        let _g = lock.write();
                        // SAFETY: exclusive access guaranteed by the guard.
                        unsafe {
                            *shared.0.get() += 1;
                        }
                    }
                });
            }
        });
        let total = unsafe { *shared.0.get() };
        assert_eq!(total, 4000);
        // Version advanced once per write release.
        assert!(lock.raw() >= 4000 * VERSION_STEP);
    }

    #[test]
    fn padded_counter_is_cacheline_sized_and_counts() {
        assert!(std::mem::align_of::<PaddedCounter>() >= 64);
        let c = PaddedCounter::new(5);
        assert_eq!(c.get(), 5);
        c.add(10);
        assert_eq!(c.get(), 15);
        c.set(1);
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn read_begin_spin_returns_when_unlocked() {
        let lock = OptLock::new();
        let v = lock.read_begin_spin();
        assert!(lock.read_validate(v));
    }
}
