//! A sharded key-value "server": the `gre-shard` serving layer over ALEX+,
//! taking batched requests from several client threads through the
//! `ShardPipeline` worker pool.
//!
//! Demonstrates the full serving stack: range partitioner fitted from the
//! loaded key CDF, per-shard backends, batched submission with per-shard
//! FIFO execution, cross-shard range scans, and merged reporting.
//!
//! Run with `cargo run --release --example sharded_server`.

use gre::shard::{OpBatch, Partitioner, ShardPipeline, ShardedIndex};
use gre_bench::registry;
use gre_core::ConcurrentIndex;
use gre_workloads::Op;
use std::sync::Arc;

const SHARDS: usize = 8;
const WORKERS: usize = 4;
const CLIENTS: u64 = 4;
const BATCHES_PER_CLIENT: u64 = 100;
const OPS_PER_BATCH: u64 = 1_000;

fn main() {
    // Boot the store: 500k keys bulk-loaded into ALEX+ shards behind a
    // range partitioner fitted to the loaded keys' CDF.
    let entries: Vec<(u64, u64)> = (0..500_000u64).map(|i| (i * 4, i)).collect();
    let mut store: ShardedIndex<u64, _> =
        ShardedIndex::from_factory(Partitioner::range(SHARDS), |_| {
            registry::concurrent_backend("alex+").expect("alex+ registered")
        })
        .with_name("sharded(ALEX+,8)");
    store.bulk_load(&entries);
    println!(
        "serving {} keys as {} ({} shards, per-shard entries {:?})",
        store.len(),
        store.meta().name,
        store.num_shards(),
        store.per_shard_lens()
    );

    // Serve batched traffic: CLIENTS submitter threads, WORKERS executors.
    let pipeline = ShardPipeline::new(Arc::new(store), WORKERS);
    let start = std::time::Instant::now();
    let (hits, new_keys) = std::thread::scope(|s| {
        let pipeline = &pipeline;
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                s.spawn(move || {
                    let mut hits = 0usize;
                    let mut new_keys = 0usize;
                    for b in 0..BATCHES_PER_CLIENT {
                        let ops: Vec<Op> = (0..OPS_PER_BATCH)
                            .map(|i| {
                                let n = b * OPS_PER_BATCH + i;
                                if n % 2 == 0 {
                                    // Lookup of a loaded key.
                                    Op::Get((n * 7919) % 2_000_000 / 4 * 4)
                                } else {
                                    // Fresh insert at an odd (absent) key
                                    // inside the loaded domain, so writes
                                    // spread across shards. (An append-only
                                    // tail would route every insert to the
                                    // last shard — the access-skew case the
                                    // hash partitioner exists for.)
                                    Op::Insert(((c * 499_979 + n * 7919) % 2_000_000) | 1, n)
                                }
                            })
                            .collect();
                        let r = pipeline.execute(OpBatch::new(ops));
                        hits += r.hits;
                        new_keys += r.new_keys;
                    }
                    (hits, new_keys)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .fold((0, 0), |acc, r| (acc.0 + r.0, acc.1 + r.1))
    });
    let elapsed = start.elapsed();
    let total_ops = CLIENTS * BATCHES_PER_CLIENT * OPS_PER_BATCH;
    println!(
        "{CLIENTS} clients x {BATCHES_PER_CLIENT} batches x {OPS_PER_BATCH} ops \
         ({total_ops} total) on {WORKERS} workers in {:.2}s ({:.2} Mop/s)",
        elapsed.as_secs_f64(),
        total_ops as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!("lookup hits: {hits}, inserted keys: {new_keys}");

    // No lost updates: every insert landed exactly once.
    let store = pipeline.index();
    assert_eq!(
        store.len() as u64,
        500_000 + new_keys as u64,
        "inserted batch ops must all be visible"
    );

    // A cross-shard scan through the serving layer.
    let mut window = Vec::new();
    let got = store.range(gre_core::RangeSpec::new(1_000_000, 10), &mut window);
    println!(
        "scan of 10 keys from 1000000 crossed shards in key order: {got} keys, first {:?}",
        window.first()
    );
    assert!(window.windows(2).all(|w| w[0].0 < w[1].0));
}
