//! Per-shard snapshots: the checkpointed base state a WAL replay starts
//! from.
//!
//! A snapshot is written to a temp file, synced, then atomically renamed
//! into place, so readers only ever observe either the old snapshot or the
//! complete new one — never a partial write. The format carries a CRC-32C
//! trailer; any snapshot that fails validation (bad magic, short file, bad
//! checksum, inconsistent count) is treated as **absent**, which is always
//! safe: the WAL it superseded was only truncated after the rename
//! succeeded, so a discarded snapshot at worst forces a longer replay, never
//! a wrong state.
//!
//! Layout (little-endian):
//!
//! ```text
//! +-----------+--------------+-----------+---------------------+---------+
//! | magic [8] | last_seq u64 | count u64 | count × (k u64,v64) | crc u32 |
//! +-----------+--------------+-----------+---------------------+---------+
//!  crc = CRC-32C over every preceding byte (magic included)
//! ```

use crate::failpoint::FailpointRegistry;
use crate::record::crc32c;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"GRESNAP1";
const HEADER: usize = 24; // magic + last_seq + count
const TRAILER: usize = 4;

/// Path of shard `shard`'s snapshot inside a log directory.
pub fn snapshot_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.snap"))
}

/// A validated snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Seq of the last group whose effects the entries include. WAL records
    /// with seq ≤ this are already folded in and are skipped on replay.
    pub last_seq: u64,
    pub entries: Vec<(u64, u64)>,
}

/// Write shard `shard`'s snapshot via temp + rename. When a failpoint
/// registry is supplied, the point `snapshot/{shard}/commit` is evaluated
/// *between* the temp-file sync and the rename — firing it models a crash
/// that leaves only the temp file (i.e. no new snapshot published).
pub fn write_snapshot(
    dir: &Path,
    shard: usize,
    last_seq: u64,
    entries: &[(u64, u64)],
    registry: Option<&FailpointRegistry>,
) -> io::Result<()> {
    let mut buf = Vec::with_capacity(HEADER + entries.len() * 16 + TRAILER);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&last_seq.to_le_bytes());
    buf.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for &(k, v) in entries {
        buf.extend_from_slice(&k.to_le_bytes());
        buf.extend_from_slice(&v.to_le_bytes());
    }
    let crc = crc32c(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());

    let path = snapshot_path(dir, shard);
    let tmp = path.with_extension("snap.tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&buf)?;
        file.sync_data()?;
    }
    if let Some(reg) = registry {
        if let Some(action) = reg.check(&format!("snapshot/{shard}/commit"), 0) {
            // Whatever the scripted action, the effect at this point is the
            // same: the rename never happens.
            return Err(io::Error::other(format!(
                "injected fault before snapshot rename: {action:?}"
            )));
        }
    }
    std::fs::rename(&tmp, &path)
}

/// Read and validate the snapshot at `path`. `None` means "no usable
/// snapshot" — missing file and corrupt file are deliberately
/// indistinguishable to the caller.
pub fn read_snapshot(path: &Path) -> Option<Snapshot> {
    let buf = std::fs::read(path).ok()?;
    if buf.len() < HEADER + TRAILER || &buf[..8] != MAGIC {
        return None;
    }
    let body = &buf[..buf.len() - TRAILER];
    let stored_crc = u32::from_le_bytes(buf[buf.len() - TRAILER..].try_into().expect("4 bytes"));
    if crc32c(body) != stored_crc {
        return None;
    }
    let last_seq = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
    let count = u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes"));
    let entry_bytes = body.len() - HEADER;
    if entry_bytes as u64 != count.checked_mul(16)? {
        return None;
    }
    let mut entries = Vec::with_capacity(count as usize);
    for chunk in body[HEADER..].chunks_exact(16) {
        let k = u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes"));
        let v = u64::from_le_bytes(chunk[8..].try_into().expect("8 bytes"));
        entries.push((k, v));
    }
    Some(Snapshot { last_seq, entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failpoint::{FailAction, FailpointRegistry, Trigger};
    use crate::util::TempDir;

    #[test]
    fn snapshot_round_trips() {
        let dir = TempDir::new("snap-roundtrip");
        let entries = vec![(1, 10), (2, 20), (u64::MAX, 0)];
        write_snapshot(dir.path(), 3, 42, &entries, None).unwrap();
        let snap = read_snapshot(&snapshot_path(dir.path(), 3)).expect("valid");
        assert_eq!(snap.last_seq, 42);
        assert_eq!(snap.entries, entries);
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let dir = TempDir::new("snap-empty");
        write_snapshot(dir.path(), 0, 7, &[], None).unwrap();
        let snap = read_snapshot(&snapshot_path(dir.path(), 0)).expect("valid");
        assert_eq!(snap.last_seq, 7);
        assert!(snap.entries.is_empty());
    }

    #[test]
    fn corruption_reads_as_absent() {
        let dir = TempDir::new("snap-corrupt");
        write_snapshot(dir.path(), 0, 9, &[(5, 50)], None).unwrap();
        let path = snapshot_path(dir.path(), 0);
        let pristine = std::fs::read(&path).unwrap();
        // Missing file.
        assert!(read_snapshot(&dir.path().join("missing.snap")).is_none());
        // Any single-bit flip.
        for byte in 0..pristine.len() {
            let mut buf = pristine.clone();
            buf[byte] ^= 1;
            std::fs::write(&path, &buf).unwrap();
            assert!(read_snapshot(&path).is_none(), "flip at byte {byte}");
        }
        // Any truncation.
        for cut in 0..pristine.len() {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            assert!(read_snapshot(&path).is_none(), "cut at byte {cut}");
        }
        // Pristine bytes restored read fine again.
        std::fs::write(&path, &pristine).unwrap();
        assert!(read_snapshot(&path).is_some());
    }

    #[test]
    fn rewrites_replace_atomically() {
        let dir = TempDir::new("snap-rewrite");
        write_snapshot(dir.path(), 0, 1, &[(1, 1)], None).unwrap();
        write_snapshot(dir.path(), 0, 2, &[(2, 2), (3, 3)], None).unwrap();
        let snap = read_snapshot(&snapshot_path(dir.path(), 0)).expect("valid");
        assert_eq!(snap.last_seq, 2);
        assert_eq!(snap.entries, vec![(2, 2), (3, 3)]);
    }

    #[test]
    fn injected_crash_before_rename_keeps_the_old_snapshot() {
        let dir = TempDir::new("snap-inject");
        write_snapshot(dir.path(), 0, 1, &[(1, 1)], None).unwrap();
        let registry = FailpointRegistry::new();
        registry.script("snapshot/0/commit", Trigger::OnHit(1), FailAction::Crash);
        let err = write_snapshot(dir.path(), 0, 2, &[(2, 2)], Some(&registry));
        assert!(err.is_err());
        let snap = read_snapshot(&snapshot_path(dir.path(), 0)).expect("old snapshot intact");
        assert_eq!(snap.last_seq, 1, "rename never happened");
    }
}
