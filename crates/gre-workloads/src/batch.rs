//! Per-shard splitting of generated operation streams.
//!
//! A partitioned serving layer (see the `gre-shard` crate) executes a batch
//! of operations as per-shard sub-batches on a worker pool. The splitting
//! itself is a property of the *op stream*, not of any particular index, so
//! it lives here next to the generators: given a routing function
//! `key -> shard`, [`split_ops_by_shard`] buckets a request stream into one
//! sub-stream per shard while preserving the original relative order of the
//! operations inside each bucket (the per-shard FIFO the pipeline relies
//! on). [`split_indexed_ops_by_shard`] additionally carries each operation's
//! position in the original stream, which is what lets the pipeline fill
//! per-op result slots in submission order.

use crate::spec::Op;

/// The key an operation is routed by: its target key for point operations,
/// the scan start key for range scans (the executor is responsible for
/// continuing a scan that crosses into neighbouring shards).
#[inline]
pub fn route_key(op: &Op) -> u64 {
    op.route_key()
}

/// Split a request stream into `shards` per-shard sub-streams using `route`
/// (a `key -> shard` map; out-of-range results are clamped to the last
/// shard). Within each sub-stream, operations keep the relative order they
/// had in `ops`, so executing every sub-stream FIFO preserves per-key
/// program order.
pub fn split_ops_by_shard<F>(ops: &[Op], shards: usize, route: F) -> Vec<Vec<Op>>
where
    F: Fn(u64) -> usize,
{
    let shards = shards.max(1);
    // Pre-size each bucket at the uniform share to avoid repeated regrowth
    // on large streams without overcommitting on skewed ones.
    let hint = ops.len() / shards;
    let mut buckets: Vec<Vec<Op>> = (0..shards).map(|_| Vec::with_capacity(hint)).collect();
    for op in ops {
        let s = route(op.route_key()).min(shards - 1);
        buckets[s].push(*op);
    }
    buckets
}

/// Like [`split_ops_by_shard`], but each bucketed operation carries its index
/// in the original stream, so a per-shard executor can report results back
/// into a response slot at the operation's submission position.
pub fn split_indexed_ops_by_shard<F>(ops: &[Op], shards: usize, route: F) -> Vec<Vec<(usize, Op)>>
where
    F: Fn(u64) -> usize,
{
    let shards = shards.max(1);
    let hint = ops.len() / shards;
    let mut buckets: Vec<Vec<(usize, Op)>> =
        (0..shards).map(|_| Vec::with_capacity(hint)).collect();
    for (i, op) in ops.iter().enumerate() {
        let s = route(op.route_key()).min(shards - 1);
        buckets[s].push((i, *op));
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use gre_core::RangeSpec;

    #[test]
    fn route_key_covers_every_op() {
        assert_eq!(route_key(&Op::Get(7)), 7);
        assert_eq!(route_key(&Op::Insert(8, 1)), 8);
        assert_eq!(route_key(&Op::Update(9, 1)), 9);
        assert_eq!(route_key(&Op::Remove(10)), 10);
        assert_eq!(route_key(&Op::Range(RangeSpec::new(11, 100))), 11);
    }

    #[test]
    fn split_preserves_order_and_membership() {
        let ops: Vec<Op> = (0..100u64)
            .map(|i| {
                if i % 3 == 0 {
                    Op::Get(i)
                } else {
                    Op::Insert(i, i)
                }
            })
            .collect();
        let buckets = split_ops_by_shard(&ops, 4, |k| (k % 4) as usize);
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), ops.len());
        for (s, bucket) in buckets.iter().enumerate() {
            // Every op landed in its shard, in ascending (= original) order.
            assert!(bucket.iter().all(|op| route_key(op) % 4 == s as u64));
            assert!(bucket
                .windows(2)
                .all(|w| route_key(&w[0]) < route_key(&w[1])));
        }
    }

    #[test]
    fn split_clamps_out_of_range_routes() {
        let ops = vec![Op::Get(1), Op::Get(2)];
        let buckets = split_ops_by_shard(&ops, 2, |_| 99);
        assert_eq!(buckets[1].len(), 2);
        // Zero shards is treated as one.
        let buckets = split_ops_by_shard(&ops, 0, |_| 0);
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].len(), 2);
    }

    #[test]
    fn indexed_split_carries_submission_positions() {
        let ops: Vec<Op> = (0..50u64).map(|i| Op::Insert(i, i)).collect();
        let buckets = split_indexed_ops_by_shard(&ops, 3, |k| (k % 3) as usize);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), ops.len());
        let mut seen = vec![false; ops.len()];
        for (s, bucket) in buckets.iter().enumerate() {
            for &(i, op) in bucket {
                // The carried index points at the original op.
                assert_eq!(ops[i], op);
                assert_eq!(route_key(&op) % 3, s as u64);
                seen[i] = true;
            }
            // Indices inside a bucket keep submission order.
            assert!(bucket.windows(2).all(|w| w[0].0 < w[1].0));
        }
        assert!(
            seen.iter().all(|&s| s),
            "every op lands in exactly one bucket"
        );
    }
}
