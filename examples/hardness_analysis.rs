//! How hard is my data? Compute the paper's PLA-based hardness coordinates
//! for the emulated real datasets and the synthetic corner datasets, which is
//! the information a practitioner needs to decide whether a learned index is
//! the right choice (§3.2, §9).
//!
//! Run with `cargo run --release --example hardness_analysis`.

use gre::datasets::Dataset;
use gre::pla::{synth, DataHardness, HardnessConfig, SynthCorner};

fn main() {
    let n = 200_000;
    println!(
        "{:<20} {:>12} {:>12} {:>14}",
        "dataset", "H(eps=32)", "H(eps=4096)", "1-line MSE"
    );
    for ds in Dataset::ALL_REAL {
        let h = ds.hardness(n, 42, HardnessConfig::default());
        println!(
            "{:<20} {:>12} {:>12} {:>14.3e}",
            ds.name(),
            h.local,
            h.global,
            h.single_line_mse
        );
    }
    println!("\nSynthetic corner datasets (Figure 15):");
    for corner in SynthCorner::ALL {
        let keys = synth::generate_corner(corner, n, 42);
        let h = DataHardness::compute_default(&keys);
        println!("{:<20} {:>12} {:>12}", corner.name(), h.local, h.global);
    }
    println!("\nEasy data ⇒ learned indexes win; hard data + heavy writes ⇒ prefer ART/B+tree (Message 3).");
}
