//! Figure 5: throughput of read-only / balanced / write-only workloads while
//! scaling the thread count on one socket.
//!
//! Runs through the scenario `Driver` (one-phase closed-loop replay per
//! workload) so `--verbose` can report per-kind latency tails next to the
//! throughput cells.
use gre_bench::report::print_phase_latency;
use gre_bench::{registry::concurrent_indexes, RunOpts};
use gre_datasets::Dataset;
use gre_workloads::driver::Driver;
use gre_workloads::scenario::{Pacing, Scenario};
use gre_workloads::{WorkloadBuilder, WriteRatio};

fn main() {
    let opts = RunOpts::from_env();
    let builder = WorkloadBuilder::new(opts.seed);
    let thread_points: Vec<usize> = [1usize, 2, 4, 8, 16, 24, 36, 48]
        .into_iter()
        .filter(|t| *t <= opts.threads.max(1) * 2)
        .collect();
    println!(
        "# Figure 5: scalability (Mop/s); hyper-threaded points are those beyond {} threads",
        opts.threads
    );
    for ds in Dataset::DRILLDOWN_DATASETS {
        let keys = ds.generate(opts.keys, opts.seed);
        for ratio in [
            WriteRatio::ReadOnly,
            WriteRatio::Balanced,
            WriteRatio::WriteOnly,
        ] {
            let workload = builder.insert_workload(&ds.name(), &keys, ratio);
            for entry in concurrent_indexes(true) {
                let mut row = format!("{:<10} {:<6} {:<10}", ds.name(), ratio.label(), entry.name);
                let mut index = entry.index;
                let mut tails = Vec::new();
                for &t in &thread_points {
                    let scenario =
                        Scenario::from_workload(&workload, Pacing::ClosedLoop { threads: t });
                    let result = Driver::new().run(&scenario, index.as_mut());
                    let phase = result.phases.into_iter().next().expect("one phase");
                    row.push_str(&format!(" {:>8.3}", phase.throughput_mops()));
                    if opts.verbose {
                        tails.push((t, phase));
                    }
                }
                println!("{row}");
                for (t, phase) in &tails {
                    println!("    latency @{t}T:");
                    print_phase_latency("      ", phase);
                }
            }
        }
    }
}
