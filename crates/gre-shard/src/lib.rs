//! # gre-shard
//!
//! A range-partitioned concurrent serving layer over any GRE index backend.
//!
//! The paper's multi-thread experiments (Figures 4–6) show every updatable
//! learned index hitting a scalability wall from structure-modification
//! contention: past some thread count, one structure's internal
//! synchronization — however fine-grained — serializes writers. This crate
//! sits *above* the [`ConcurrentIndex`](gre_core::ConcurrentIndex) trait and
//! scales horizontally instead: partition the key space into `N` shards,
//! give each shard its own backend instance (learned or traditional), and
//! contention drops by construction because unrelated keys never touch the
//! same structure.
//!
//! Three pieces:
//!
//! * [`partition`] — the `key -> shard` maps: [`Partitioner::range_from_samples`]
//!   places boundaries at the quantiles of a sampled key CDF (even spread
//!   under key-distribution skew, ordered shards for sequential cross-shard
//!   scans); [`Partitioner::hash`] scatters hot contiguous regions across
//!   all shards (access-skew resistance, at the cost of fan-out scans).
//! * [`sharded`] — [`ShardedIndex`], the composite store. It implements
//!   `ConcurrentIndex` itself, so every existing harness entry point
//!   (`run_concurrent`, figure binaries, examples) serves a sharded variant
//!   unchanged; `range()` stitches cross-shard scans in key order and
//!   `len`/`memory_usage`/`stats`/`meta` report merged values.
//! * [`pipeline`] — [`ShardPipeline`], the batched request path:
//!   [`OpBatch`]es are split into per-shard sub-batches (amortizing routing
//!   over many ops) and executed on a fixed worker pool with per-shard FIFO
//!   order. Every operation is answered with a typed
//!   [`Response`](gre_core::Response) delivered through a non-blocking
//!   [`SubmitHandle`]; [`Session`] pipelines many in-flight batches per
//!   client with FIFO completion, and bounded shard queues reject overload
//!   with [`Backpressure`] instead of queueing without limit.
//! * [`serve`] — scenario-driver adapters ([`PipelineTarget`],
//!   [`SessionTarget`]) that plug the batched and pipelined client paths
//!   into the `gre-workloads` scenario [`Driver`](gre_workloads::Driver) as
//!   [`ServeTarget`](gre_workloads::ServeTarget)s, next to the blanket
//!   bare-backend target.
//!
//! The pipeline and both serve targets can carry a
//! [`Telemetry`](gre_telemetry::Telemetry) registry
//! ([`ShardPipeline::with_telemetry`], `PipelineTarget::instrumented`):
//! per-shard queue/in-flight gauges, sub-batch histograms, outcome counters
//! mirroring the driver's tally, and 1-in-N sampled request spans. The
//! uninstrumented path records nothing and reads no clocks.
//!
//! Durability attaches the same way: an optional per-shard write-ahead log
//! ([`gre_durability::DurableLog`], via [`ShardPipeline::with_durability`]
//! or `PipelineTarget::durable`) group-commits each sub-batch's writes
//! before execution, with fail-stop refusal
//! ([`gre_core::IndexError::Shutdown`]) when the log cannot accept a group.
//! [`retry`] adds the client-side complement for the bounded queues:
//! [`RetryPolicy`]-driven jittered backoff on [`Backpressure`].

pub mod partition;
pub mod pipeline;
pub mod retry;
pub mod serve;
pub mod sharded;

pub use partition::{HashPartitioner, Partitioner, RangePartitioner, Scheme};
pub use pipeline::{
    Backpressure, BackpressureReason, BatchResult, OpBatch, Session, ShardPipeline, SubmitHandle,
    DEFAULT_MAX_INFLIGHT, DEFAULT_QUEUE_CAPACITY,
};
pub use retry::RetryPolicy;
pub use serve::{reconcile_tally, PipelineTarget, SessionTarget, DEFAULT_DRIVER_BATCH};
pub use sharded::ShardedIndex;
